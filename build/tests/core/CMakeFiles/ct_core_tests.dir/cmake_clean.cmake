file(REMOVE_RECURSE
  "CMakeFiles/ct_core_tests.dir/test_algebra.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_algebra.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_datatype.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_datatype.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_distribution.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_distribution.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_distribution2d.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_distribution2d.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_expr.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_expr.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_latency_model.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_latency_model.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_machine_params.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_machine_params.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_parser.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_parser.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_parser_fuzz.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_parser_fuzz.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_pattern.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_pattern.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_planner.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_planner.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_sized_planner.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_sized_planner.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_strategies.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_strategies.cc.o.d"
  "CMakeFiles/ct_core_tests.dir/test_throughput_table.cc.o"
  "CMakeFiles/ct_core_tests.dir/test_throughput_table.cc.o.d"
  "ct_core_tests"
  "ct_core_tests.pdb"
  "ct_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
