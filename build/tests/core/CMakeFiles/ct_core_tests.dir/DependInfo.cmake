
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_algebra.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_algebra.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_algebra.cc.o.d"
  "/root/repo/tests/core/test_datatype.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_datatype.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_datatype.cc.o.d"
  "/root/repo/tests/core/test_distribution.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_distribution.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_distribution.cc.o.d"
  "/root/repo/tests/core/test_distribution2d.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_distribution2d.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_distribution2d.cc.o.d"
  "/root/repo/tests/core/test_expr.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_expr.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_expr.cc.o.d"
  "/root/repo/tests/core/test_latency_model.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_latency_model.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_latency_model.cc.o.d"
  "/root/repo/tests/core/test_machine_params.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_machine_params.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_machine_params.cc.o.d"
  "/root/repo/tests/core/test_parser.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_parser.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/core/test_parser_fuzz.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_parser_fuzz.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_parser_fuzz.cc.o.d"
  "/root/repo/tests/core/test_pattern.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_pattern.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_pattern.cc.o.d"
  "/root/repo/tests/core/test_planner.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_planner.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_planner.cc.o.d"
  "/root/repo/tests/core/test_sized_planner.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_sized_planner.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_sized_planner.cc.o.d"
  "/root/repo/tests/core/test_strategies.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_strategies.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_strategies.cc.o.d"
  "/root/repo/tests/core/test_throughput_table.cc" "tests/core/CMakeFiles/ct_core_tests.dir/test_throughput_table.cc.o" "gcc" "tests/core/CMakeFiles/ct_core_tests.dir/test_throughput_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
