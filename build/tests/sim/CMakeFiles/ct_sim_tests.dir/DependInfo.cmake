
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_bus.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_bus.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_bus.cc.o.d"
  "/root/repo/tests/sim/test_cache.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_cache.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/sim/test_dram.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_dram.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/sim/test_engines.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_engines.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_engines.cc.o.d"
  "/root/repo/tests/sim/test_event.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_event.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_event.cc.o.d"
  "/root/repo/tests/sim/test_machine.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_machine.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/sim/test_measure.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_measure.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_measure.cc.o.d"
  "/root/repo/tests/sim/test_memory.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_memory.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/sim/test_network.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_network.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/sim/test_node_ram.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_node_ram.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_node_ram.cc.o.d"
  "/root/repo/tests/sim/test_prefetch.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_prefetch.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_prefetch.cc.o.d"
  "/root/repo/tests/sim/test_processor.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_processor.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_processor.cc.o.d"
  "/root/repo/tests/sim/test_reference_fuzz.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_reference_fuzz.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_reference_fuzz.cc.o.d"
  "/root/repo/tests/sim/test_topology.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_topology.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/sim/test_walk.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_walk.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_walk.cc.o.d"
  "/root/repo/tests/sim/test_write_buffer.cc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_write_buffer.cc.o" "gcc" "tests/sim/CMakeFiles/ct_sim_tests.dir/test_write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
