# Empty compiler generated dependencies file for ct_sim_tests.
# This may be replaced when dependencies are built.
