
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rt/test_chained_layer.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_chained_layer.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_chained_layer.cc.o.d"
  "/root/repo/tests/rt/test_closed_loop.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_closed_loop.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_closed_loop.cc.o.d"
  "/root/repo/tests/rt/test_collectives.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_collectives.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_collectives.cc.o.d"
  "/root/repo/tests/rt/test_comm_op.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_comm_op.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_comm_op.cc.o.d"
  "/root/repo/tests/rt/test_fuzz_layers.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_fuzz_layers.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_fuzz_layers.cc.o.d"
  "/root/repo/tests/rt/test_layers_vs_model.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_layers_vs_model.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_layers_vs_model.cc.o.d"
  "/root/repo/tests/rt/test_packing_layer.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_packing_layer.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_packing_layer.cc.o.d"
  "/root/repo/tests/rt/test_redistribute.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_redistribute.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_redistribute.cc.o.d"
  "/root/repo/tests/rt/test_redistribute2d.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_redistribute2d.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_redistribute2d.cc.o.d"
  "/root/repo/tests/rt/test_report.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_report.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/rt/test_traffic_planner.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_traffic_planner.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_traffic_planner.cc.o.d"
  "/root/repo/tests/rt/test_typed_flows.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_typed_flows.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_typed_flows.cc.o.d"
  "/root/repo/tests/rt/test_workload.cc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_workload.cc.o" "gcc" "tests/rt/CMakeFiles/ct_rt_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ct_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ct_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
