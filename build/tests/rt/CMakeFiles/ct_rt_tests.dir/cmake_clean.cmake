file(REMOVE_RECURSE
  "CMakeFiles/ct_rt_tests.dir/test_chained_layer.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_chained_layer.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_closed_loop.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_closed_loop.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_collectives.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_collectives.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_comm_op.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_comm_op.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_fuzz_layers.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_fuzz_layers.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_layers_vs_model.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_layers_vs_model.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_packing_layer.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_packing_layer.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_redistribute.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_redistribute.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_redistribute2d.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_redistribute2d.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_report.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_report.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_traffic_planner.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_traffic_planner.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_typed_flows.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_typed_flows.cc.o.d"
  "CMakeFiles/ct_rt_tests.dir/test_workload.cc.o"
  "CMakeFiles/ct_rt_tests.dir/test_workload.cc.o.d"
  "ct_rt_tests"
  "ct_rt_tests.pdb"
  "ct_rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
