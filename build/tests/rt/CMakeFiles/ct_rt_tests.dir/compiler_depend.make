# Empty compiler generated dependencies file for ct_rt_tests.
# This may be replaced when dependencies are built.
