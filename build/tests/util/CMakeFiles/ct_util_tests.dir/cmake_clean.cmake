file(REMOVE_RECURSE
  "CMakeFiles/ct_util_tests.dir/test_logging.cc.o"
  "CMakeFiles/ct_util_tests.dir/test_logging.cc.o.d"
  "CMakeFiles/ct_util_tests.dir/test_rng.cc.o"
  "CMakeFiles/ct_util_tests.dir/test_rng.cc.o.d"
  "CMakeFiles/ct_util_tests.dir/test_stats.cc.o"
  "CMakeFiles/ct_util_tests.dir/test_stats.cc.o.d"
  "CMakeFiles/ct_util_tests.dir/test_string_util.cc.o"
  "CMakeFiles/ct_util_tests.dir/test_string_util.cc.o.d"
  "CMakeFiles/ct_util_tests.dir/test_table.cc.o"
  "CMakeFiles/ct_util_tests.dir/test_table.cc.o.d"
  "CMakeFiles/ct_util_tests.dir/test_units.cc.o"
  "CMakeFiles/ct_util_tests.dir/test_units.cc.o.d"
  "ct_util_tests"
  "ct_util_tests.pdb"
  "ct_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
