# Empty dependencies file for ct_util_tests.
# This may be replaced when dependencies are built.
