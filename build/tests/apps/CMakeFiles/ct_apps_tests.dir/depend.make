# Empty dependencies file for ct_apps_tests.
# This may be replaced when dependencies are built.
