file(REMOVE_RECURSE
  "CMakeFiles/ct_apps_tests.dir/test_fem.cc.o"
  "CMakeFiles/ct_apps_tests.dir/test_fem.cc.o.d"
  "CMakeFiles/ct_apps_tests.dir/test_fft.cc.o"
  "CMakeFiles/ct_apps_tests.dir/test_fft.cc.o.d"
  "CMakeFiles/ct_apps_tests.dir/test_irregular.cc.o"
  "CMakeFiles/ct_apps_tests.dir/test_irregular.cc.o.d"
  "CMakeFiles/ct_apps_tests.dir/test_sor.cc.o"
  "CMakeFiles/ct_apps_tests.dir/test_sor.cc.o.d"
  "CMakeFiles/ct_apps_tests.dir/test_transpose.cc.o"
  "CMakeFiles/ct_apps_tests.dir/test_transpose.cc.o.d"
  "ct_apps_tests"
  "ct_apps_tests.pdb"
  "ct_apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
