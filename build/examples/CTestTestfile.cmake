# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft2d "/root/repo/build/examples/fft2d")
set_tests_properties(example_fft2d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_earthquake_solver "/root/repo/build/examples/earthquake_solver")
set_tests_properties(example_earthquake_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_redistribution_planner "/root/repo/build/examples/redistribution_planner")
set_tests_properties(example_redistribution_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
