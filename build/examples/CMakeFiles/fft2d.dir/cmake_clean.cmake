file(REMOVE_RECURSE
  "CMakeFiles/fft2d.dir/fft2d.cpp.o"
  "CMakeFiles/fft2d.dir/fft2d.cpp.o.d"
  "fft2d"
  "fft2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
