# Empty compiler generated dependencies file for fft2d.
# This may be replaced when dependencies are built.
