# Empty compiler generated dependencies file for redistribution_planner.
# This may be replaced when dependencies are built.
