file(REMOVE_RECURSE
  "CMakeFiles/redistribution_planner.dir/redistribution_planner.cpp.o"
  "CMakeFiles/redistribution_planner.dir/redistribution_planner.cpp.o.d"
  "redistribution_planner"
  "redistribution_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribution_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
