# Empty dependencies file for earthquake_solver.
# This may be replaced when dependencies are built.
