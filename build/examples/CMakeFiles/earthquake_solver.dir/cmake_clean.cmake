file(REMOVE_RECURSE
  "CMakeFiles/earthquake_solver.dir/earthquake_solver.cpp.o"
  "CMakeFiles/earthquake_solver.dir/earthquake_solver.cpp.o.d"
  "earthquake_solver"
  "earthquake_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthquake_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
