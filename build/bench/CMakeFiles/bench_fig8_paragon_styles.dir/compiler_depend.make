# Empty compiler generated dependencies file for bench_fig8_paragon_styles.
# This may be replaced when dependencies are built.
