file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_paragon_styles.dir/bench_fig8_paragon_styles.cc.o"
  "CMakeFiles/bench_fig8_paragon_styles.dir/bench_fig8_paragon_styles.cc.o.d"
  "bench_fig8_paragon_styles"
  "bench_fig8_paragon_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_paragon_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
