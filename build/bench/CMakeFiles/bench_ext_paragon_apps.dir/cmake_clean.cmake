file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_paragon_apps.dir/bench_ext_paragon_apps.cc.o"
  "CMakeFiles/bench_ext_paragon_apps.dir/bench_ext_paragon_apps.cc.o.d"
  "bench_ext_paragon_apps"
  "bench_ext_paragon_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_paragon_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
