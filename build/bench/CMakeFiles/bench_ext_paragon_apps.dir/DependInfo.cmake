
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_paragon_apps.cc" "bench/CMakeFiles/bench_ext_paragon_apps.dir/bench_ext_paragon_apps.cc.o" "gcc" "bench/CMakeFiles/bench_ext_paragon_apps.dir/bench_ext_paragon_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ct_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ct_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ct_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
