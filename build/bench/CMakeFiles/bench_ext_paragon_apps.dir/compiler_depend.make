# Empty compiler generated dependencies file for bench_ext_paragon_apps.
# This may be replaced when dependencies are built.
