file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_send.dir/bench_tab2_send.cc.o"
  "CMakeFiles/bench_tab2_send.dir/bench_tab2_send.cc.o.d"
  "bench_tab2_send"
  "bench_tab2_send.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_send.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
