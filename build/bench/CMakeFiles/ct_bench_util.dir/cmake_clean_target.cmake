file(REMOVE_RECURSE
  "libct_bench_util.a"
)
