file(REMOVE_RECURSE
  "CMakeFiles/ct_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ct_bench_util.dir/bench_util.cc.o.d"
  "libct_bench_util.a"
  "libct_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
