# Empty dependencies file for ct_bench_util.
# This may be replaced when dependencies are built.
