file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_t3d_styles.dir/bench_fig7_t3d_styles.cc.o"
  "CMakeFiles/bench_fig7_t3d_styles.dir/bench_fig7_t3d_styles.cc.o.d"
  "bench_fig7_t3d_styles"
  "bench_fig7_t3d_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_t3d_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
