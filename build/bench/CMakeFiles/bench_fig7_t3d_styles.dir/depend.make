# Empty dependencies file for bench_fig7_t3d_styles.
# This may be replaced when dependencies are built.
