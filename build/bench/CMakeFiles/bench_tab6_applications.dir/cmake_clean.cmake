file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_applications.dir/bench_tab6_applications.cc.o"
  "CMakeFiles/bench_tab6_applications.dir/bench_tab6_applications.cc.o.d"
  "bench_tab6_applications"
  "bench_tab6_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
