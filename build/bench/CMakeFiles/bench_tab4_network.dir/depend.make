# Empty dependencies file for bench_tab4_network.
# This may be replaced when dependencies are built.
