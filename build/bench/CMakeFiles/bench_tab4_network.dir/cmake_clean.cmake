file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_network.dir/bench_tab4_network.cc.o"
  "CMakeFiles/bench_tab4_network.dir/bench_tab4_network.cc.o.d"
  "bench_tab4_network"
  "bench_tab4_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
