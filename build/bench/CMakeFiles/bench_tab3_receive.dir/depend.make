# Empty dependencies file for bench_tab3_receive.
# This may be replaced when dependencies are built.
