file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_receive.dir/bench_tab3_receive.cc.o"
  "CMakeFiles/bench_tab3_receive.dir/bench_tab3_receive.cc.o.d"
  "bench_tab3_receive"
  "bench_tab3_receive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_receive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
