# Empty dependencies file for bench_ext_redistribution.
# This may be replaced when dependencies are built.
