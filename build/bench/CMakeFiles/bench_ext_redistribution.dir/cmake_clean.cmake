file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_redistribution.dir/bench_ext_redistribution.cc.o"
  "CMakeFiles/bench_ext_redistribution.dir/bench_ext_redistribution.cc.o.d"
  "bench_ext_redistribution"
  "bench_ext_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
