file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_load_vs_store.dir/bench_tab5_load_vs_store.cc.o"
  "CMakeFiles/bench_tab5_load_vs_store.dir/bench_tab5_load_vs_store.cc.o.d"
  "bench_tab5_load_vs_store"
  "bench_tab5_load_vs_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_load_vs_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
