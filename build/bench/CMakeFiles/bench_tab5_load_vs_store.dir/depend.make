# Empty dependencies file for bench_tab5_load_vs_store.
# This may be replaced when dependencies are built.
