# Empty compiler generated dependencies file for bench_fig1_library_throughput.
# This may be replaced when dependencies are built.
