file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_library_throughput.dir/bench_fig1_library_throughput.cc.o"
  "CMakeFiles/bench_fig1_library_throughput.dir/bench_fig1_library_throughput.cc.o.d"
  "bench_fig1_library_throughput"
  "bench_fig1_library_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_library_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
