file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_local_copies.dir/bench_tab1_local_copies.cc.o"
  "CMakeFiles/bench_tab1_local_copies.dir/bench_tab1_local_copies.cc.o.d"
  "bench_tab1_local_copies"
  "bench_tab1_local_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_local_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
