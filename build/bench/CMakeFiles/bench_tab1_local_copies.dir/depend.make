# Empty dependencies file for bench_tab1_local_copies.
# This may be replaced when dependencies are built.
