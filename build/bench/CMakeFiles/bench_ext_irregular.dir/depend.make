# Empty dependencies file for bench_ext_irregular.
# This may be replaced when dependencies are built.
