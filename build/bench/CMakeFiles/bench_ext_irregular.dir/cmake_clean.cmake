file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_irregular.dir/bench_ext_irregular.cc.o"
  "CMakeFiles/bench_ext_irregular.dir/bench_ext_irregular.cc.o.d"
  "bench_ext_irregular"
  "bench_ext_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
