# Empty dependencies file for bench_fig4_stride_sweep.
# This may be replaced when dependencies are built.
