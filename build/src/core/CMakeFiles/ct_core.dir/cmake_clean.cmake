file(REMOVE_RECURSE
  "CMakeFiles/ct_core.dir/algebra.cc.o"
  "CMakeFiles/ct_core.dir/algebra.cc.o.d"
  "CMakeFiles/ct_core.dir/basic_transfer.cc.o"
  "CMakeFiles/ct_core.dir/basic_transfer.cc.o.d"
  "CMakeFiles/ct_core.dir/datatype.cc.o"
  "CMakeFiles/ct_core.dir/datatype.cc.o.d"
  "CMakeFiles/ct_core.dir/distribution.cc.o"
  "CMakeFiles/ct_core.dir/distribution.cc.o.d"
  "CMakeFiles/ct_core.dir/distribution2d.cc.o"
  "CMakeFiles/ct_core.dir/distribution2d.cc.o.d"
  "CMakeFiles/ct_core.dir/expr.cc.o"
  "CMakeFiles/ct_core.dir/expr.cc.o.d"
  "CMakeFiles/ct_core.dir/latency_model.cc.o"
  "CMakeFiles/ct_core.dir/latency_model.cc.o.d"
  "CMakeFiles/ct_core.dir/machine_params.cc.o"
  "CMakeFiles/ct_core.dir/machine_params.cc.o.d"
  "CMakeFiles/ct_core.dir/parser.cc.o"
  "CMakeFiles/ct_core.dir/parser.cc.o.d"
  "CMakeFiles/ct_core.dir/pattern.cc.o"
  "CMakeFiles/ct_core.dir/pattern.cc.o.d"
  "CMakeFiles/ct_core.dir/planner.cc.o"
  "CMakeFiles/ct_core.dir/planner.cc.o.d"
  "CMakeFiles/ct_core.dir/strategies.cc.o"
  "CMakeFiles/ct_core.dir/strategies.cc.o.d"
  "libct_core.a"
  "libct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
