
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algebra.cc" "src/core/CMakeFiles/ct_core.dir/algebra.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/algebra.cc.o.d"
  "/root/repo/src/core/basic_transfer.cc" "src/core/CMakeFiles/ct_core.dir/basic_transfer.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/basic_transfer.cc.o.d"
  "/root/repo/src/core/datatype.cc" "src/core/CMakeFiles/ct_core.dir/datatype.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/datatype.cc.o.d"
  "/root/repo/src/core/distribution.cc" "src/core/CMakeFiles/ct_core.dir/distribution.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/distribution.cc.o.d"
  "/root/repo/src/core/distribution2d.cc" "src/core/CMakeFiles/ct_core.dir/distribution2d.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/distribution2d.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/core/CMakeFiles/ct_core.dir/expr.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/expr.cc.o.d"
  "/root/repo/src/core/latency_model.cc" "src/core/CMakeFiles/ct_core.dir/latency_model.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/latency_model.cc.o.d"
  "/root/repo/src/core/machine_params.cc" "src/core/CMakeFiles/ct_core.dir/machine_params.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/machine_params.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/core/CMakeFiles/ct_core.dir/parser.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/parser.cc.o.d"
  "/root/repo/src/core/pattern.cc" "src/core/CMakeFiles/ct_core.dir/pattern.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/pattern.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/ct_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/planner.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/core/CMakeFiles/ct_core.dir/strategies.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
