file(REMOVE_RECURSE
  "CMakeFiles/ct_util.dir/logging.cc.o"
  "CMakeFiles/ct_util.dir/logging.cc.o.d"
  "CMakeFiles/ct_util.dir/rng.cc.o"
  "CMakeFiles/ct_util.dir/rng.cc.o.d"
  "CMakeFiles/ct_util.dir/stats.cc.o"
  "CMakeFiles/ct_util.dir/stats.cc.o.d"
  "CMakeFiles/ct_util.dir/string_util.cc.o"
  "CMakeFiles/ct_util.dir/string_util.cc.o.d"
  "CMakeFiles/ct_util.dir/table.cc.o"
  "CMakeFiles/ct_util.dir/table.cc.o.d"
  "CMakeFiles/ct_util.dir/units.cc.o"
  "CMakeFiles/ct_util.dir/units.cc.o.d"
  "libct_util.a"
  "libct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
