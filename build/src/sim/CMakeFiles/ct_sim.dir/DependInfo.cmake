
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus.cc" "src/sim/CMakeFiles/ct_sim.dir/bus.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/bus.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ct_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/ct_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/engines.cc" "src/sim/CMakeFiles/ct_sim.dir/engines.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/engines.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/sim/CMakeFiles/ct_sim.dir/event.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/event.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/ct_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/measure.cc" "src/sim/CMakeFiles/ct_sim.dir/measure.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/measure.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/ct_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/ct_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/node.cc" "src/sim/CMakeFiles/ct_sim.dir/node.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/node.cc.o.d"
  "/root/repo/src/sim/node_ram.cc" "src/sim/CMakeFiles/ct_sim.dir/node_ram.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/node_ram.cc.o.d"
  "/root/repo/src/sim/prefetch.cc" "src/sim/CMakeFiles/ct_sim.dir/prefetch.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/prefetch.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/sim/CMakeFiles/ct_sim.dir/processor.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/processor.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/ct_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/topology.cc" "src/sim/CMakeFiles/ct_sim.dir/topology.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/topology.cc.o.d"
  "/root/repo/src/sim/walk.cc" "src/sim/CMakeFiles/ct_sim.dir/walk.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/walk.cc.o.d"
  "/root/repo/src/sim/write_buffer.cc" "src/sim/CMakeFiles/ct_sim.dir/write_buffer.cc.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
