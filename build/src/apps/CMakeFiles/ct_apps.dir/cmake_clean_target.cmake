file(REMOVE_RECURSE
  "libct_apps.a"
)
