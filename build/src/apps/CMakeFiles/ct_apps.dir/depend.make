# Empty dependencies file for ct_apps.
# This may be replaced when dependencies are built.
