file(REMOVE_RECURSE
  "CMakeFiles/ct_apps.dir/fem.cc.o"
  "CMakeFiles/ct_apps.dir/fem.cc.o.d"
  "CMakeFiles/ct_apps.dir/fft.cc.o"
  "CMakeFiles/ct_apps.dir/fft.cc.o.d"
  "CMakeFiles/ct_apps.dir/irregular.cc.o"
  "CMakeFiles/ct_apps.dir/irregular.cc.o.d"
  "CMakeFiles/ct_apps.dir/sor.cc.o"
  "CMakeFiles/ct_apps.dir/sor.cc.o.d"
  "CMakeFiles/ct_apps.dir/transpose.cc.o"
  "CMakeFiles/ct_apps.dir/transpose.cc.o.d"
  "libct_apps.a"
  "libct_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
