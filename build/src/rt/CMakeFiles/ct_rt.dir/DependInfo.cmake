
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/chained_layer.cc" "src/rt/CMakeFiles/ct_rt.dir/chained_layer.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/chained_layer.cc.o.d"
  "/root/repo/src/rt/collectives.cc" "src/rt/CMakeFiles/ct_rt.dir/collectives.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/collectives.cc.o.d"
  "/root/repo/src/rt/comm_op.cc" "src/rt/CMakeFiles/ct_rt.dir/comm_op.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/comm_op.cc.o.d"
  "/root/repo/src/rt/packing_layer.cc" "src/rt/CMakeFiles/ct_rt.dir/packing_layer.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/packing_layer.cc.o.d"
  "/root/repo/src/rt/redistribute.cc" "src/rt/CMakeFiles/ct_rt.dir/redistribute.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/redistribute.cc.o.d"
  "/root/repo/src/rt/redistribute2d.cc" "src/rt/CMakeFiles/ct_rt.dir/redistribute2d.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/redistribute2d.cc.o.d"
  "/root/repo/src/rt/traffic_planner.cc" "src/rt/CMakeFiles/ct_rt.dir/traffic_planner.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/traffic_planner.cc.o.d"
  "/root/repo/src/rt/workload.cc" "src/rt/CMakeFiles/ct_rt.dir/workload.cc.o" "gcc" "src/rt/CMakeFiles/ct_rt.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
