file(REMOVE_RECURSE
  "CMakeFiles/ct_rt.dir/chained_layer.cc.o"
  "CMakeFiles/ct_rt.dir/chained_layer.cc.o.d"
  "CMakeFiles/ct_rt.dir/collectives.cc.o"
  "CMakeFiles/ct_rt.dir/collectives.cc.o.d"
  "CMakeFiles/ct_rt.dir/comm_op.cc.o"
  "CMakeFiles/ct_rt.dir/comm_op.cc.o.d"
  "CMakeFiles/ct_rt.dir/packing_layer.cc.o"
  "CMakeFiles/ct_rt.dir/packing_layer.cc.o.d"
  "CMakeFiles/ct_rt.dir/redistribute.cc.o"
  "CMakeFiles/ct_rt.dir/redistribute.cc.o.d"
  "CMakeFiles/ct_rt.dir/redistribute2d.cc.o"
  "CMakeFiles/ct_rt.dir/redistribute2d.cc.o.d"
  "CMakeFiles/ct_rt.dir/traffic_planner.cc.o"
  "CMakeFiles/ct_rt.dir/traffic_planner.cc.o.d"
  "CMakeFiles/ct_rt.dir/workload.cc.o"
  "CMakeFiles/ct_rt.dir/workload.cc.o.d"
  "libct_rt.a"
  "libct_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
