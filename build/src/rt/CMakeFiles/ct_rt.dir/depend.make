# Empty dependencies file for ct_rt.
# This may be replaced when dependencies are built.
