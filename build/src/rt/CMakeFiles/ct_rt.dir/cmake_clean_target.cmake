file(REMOVE_RECURSE
  "libct_rt.a"
)
