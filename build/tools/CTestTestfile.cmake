# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ctplan_plan "/root/repo/build/tools/ctplan" "t3d" "1Q64")
set_tests_properties(ctplan_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ctplan_sized "/root/repo/build/tools/ctplan" "t3d" "1Q1" "2048")
set_tests_properties(ctplan_sized PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ctplan_eval "/root/repo/build/tools/ctplan" "paragon" "eval" "wS0 || Nadp || 0Rw")
set_tests_properties(ctplan_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ctplan_table "/root/repo/build/tools/ctplan" "t3d" "table")
set_tests_properties(ctplan_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ctplan_usage_error "/root/repo/build/tools/ctplan" "bogus")
set_tests_properties(ctplan_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
