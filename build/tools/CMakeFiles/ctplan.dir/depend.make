# Empty dependencies file for ctplan.
# This may be replaced when dependencies are built.
