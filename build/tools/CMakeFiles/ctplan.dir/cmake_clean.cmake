file(REMOVE_RECURSE
  "CMakeFiles/ctplan.dir/ctplan.cc.o"
  "CMakeFiles/ctplan.dir/ctplan.cc.o.d"
  "ctplan"
  "ctplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
