/**
 * @file
 * The parallel sweep farm: a work-stealing thread pool specialized
 * for embarrassingly-parallel parameter sweeps whose merged output
 * must be byte-identical to a serial run.
 *
 * Determinism contract. The farm never promises anything about the
 * *schedule* -- cells run on whichever worker steals them -- it
 * promises that the schedule is unobservable: map() writes each
 * cell's result into a slot chosen by the cell's index, so the merged
 * vector is in canonical grid order no matter how the chunks were
 * stolen. As long as every cell is a pure function of its descriptor
 * (see the isolation invariants in DESIGN.md §14: one Machine /
 * EventQueue / FaultInjector / metrics registry per run, no shared
 * mutable state), the merged results -- and anything rendered from
 * them -- are byte-identical across thread counts and steal
 * schedules.
 *
 * Stealing is chunked-deque, not Chase-Lev: each worker owns a
 * mutex-guarded deque of index ranges; the owner pops from the back
 * (LIFO, cache-warm), thieves take from the front (FIFO, the oldest
 * and least-local work). A sweep cell is a whole discrete-event
 * simulation -- milliseconds to seconds of work -- so a mutex
 * acquisition per chunk is noise, and the simple structure keeps the
 * farm obviously correct under TSan. The same deques also serve
 * post()ed one-off tasks, which lets long-lived owners (the planning
 * service) use the farm as their worker pool.
 *
 * threads = 0 is inline mode: forEach()/map()/post() run the work
 * synchronously on the calling thread and no threads are spawned.
 * threads >= 1 spawns that many workers; the caller blocks in
 * forEach()/waitPosted() but does not execute cells itself, so a
 * cell can rely on being thread-confined to one worker.
 */

#ifndef CT_SWEEP_FARM_H
#define CT_SWEEP_FARM_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ct::sweep {

/** Farm configuration. */
struct FarmOptions
{
    /** Worker threads; 0 = run everything inline on the caller. */
    int threads = 0;
    /**
     * Indices per work chunk for forEach()/map(); 0 picks a grain
     * that gives every worker several chunks to steal (n / threads /
     * 4, at least 1). Grain 1 maximizes balance for very uneven
     * cells at the cost of one deque operation per cell.
     */
    std::size_t grain = 0;
};

/** Cumulative farm statistics (for tests and metrics mirrors). */
struct FarmStats
{
    std::uint64_t cellsRun = 0;   ///< indices executed via forEach
    std::uint64_t chunks = 0;     ///< chunks dequeued (own + stolen)
    std::uint64_t steals = 0;     ///< chunks taken from another deque
    std::uint64_t posted = 0;     ///< one-off tasks executed
};

/** The work-stealing farm (see file comment). */
class Farm
{
  public:
    explicit Farm(FarmOptions options);
    ~Farm();

    Farm(const Farm &) = delete;
    Farm &operator=(const Farm &) = delete;

    int threads() const { return opts.threads; }

    /**
     * Run body(index, worker) for every index in [0, n), blocking
     * until all complete. Worker ids are in [0, max(threads, 1));
     * inline mode passes worker 0. Cells must not touch shared
     * mutable state (DESIGN.md §14); the body is called at most once
     * per index.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t, int)> &body);

    /**
     * forEach() with a canonical-order result merge: out[i] is
     * body(i)'s return value, positioned by index regardless of
     * which worker computed it or in what order.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t n, const std::function<R(std::size_t, int)> &body)
    {
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i, int worker) {
            out[i] = body(i, worker);
        });
        return out;
    }

    /**
     * Enqueue a one-off task onto a worker deque (round-robin); any
     * idle worker may steal it. Inline mode executes it immediately
     * on the caller. Never blocks. Tasks must not call forEach() or
     * waitPosted() on the farm that runs them (a worker cannot wait
     * for itself).
     */
    void post(std::function<void(int)> task);

    /** Block until every post()ed task so far has finished. */
    void waitPosted();

    /**
     * Worker-loan batch: run body(index, worker) for every index in
     * [0, n) as post()ed tasks (grain 1 -- loan batches are small
     * and uneven, e.g. one task per event partition), blocking until
     * all complete. This is the API long-lived owners (the parallel
     * engine, the planning service) use to borrow the workers for a
     * bounded burst; it shares waitPosted()'s accounting, so only
     * call it when the caller is the farm's sole posting client, and
     * never from a worker thread.
     */
    void runBatch(std::size_t n,
                  const std::function<void(std::size_t, int)> &body);

    FarmStats stats() const;

  private:
    /** One contiguous index range of a batch, or a posted task. */
    struct Job;
    struct Chunk
    {
        Job *job = nullptr;              ///< batch chunk when set
        std::size_t begin = 0, end = 0;  ///< [begin, end) of the batch
        std::function<void(int)> task;   ///< posted task otherwise
    };

    struct WorkerDeque
    {
        std::mutex mu;
        std::deque<Chunk> chunks;
    };

    void workerLoop(int worker);
    bool tryRunOne(int worker);
    void runChunk(Chunk &&chunk, int worker);
    void enqueue(Chunk &&chunk, std::size_t at);

    FarmOptions opts;
    std::vector<std::unique_ptr<WorkerDeque>> deques;
    std::vector<std::thread> workers;

    /** Chunks enqueued but not yet dequeued; the workers' wake
     *  predicate. */
    std::atomic<std::size_t> pendingItems{0};
    /** post()ed tasks admitted but not yet finished. */
    std::atomic<std::size_t> postedInFlight{0};
    std::atomic<std::size_t> nextDeque{0};
    std::atomic<bool> stopping{false};

    std::mutex wakeMutex;
    std::condition_variable wakeCv;
    std::condition_variable postedCv;

    std::atomic<std::uint64_t> statCells{0}, statChunks{0},
        statSteals{0}, statPosted{0};
};

/**
 * The farm's thread-count policy for tools: parse a --threads value
 * in [1, kMaxThreads], rejecting zero, non-numeric text and
 * oversubscribed counts. Returns false with a diagnostic in @p error.
 */
inline constexpr int kMaxThreads = 256;
bool parseThreadCount(const char *text, int &threads,
                      std::string &error);

} // namespace ct::sweep

#endif // CT_SWEEP_FARM_H
