/**
 * @file
 * Sweep grids: canonical cell descriptors for the parameter sweeps
 * every figure/table reproduction walks (machine x style x pattern
 * pair x words x fault spec), plus the thread-confined cell runner
 * the Farm fans them across.
 *
 * The grid is expanded to a cell list BEFORE any cell runs: illegal
 * (machine, style, pattern) combinations are filtered during
 * expansion by building their TransferProgram once, so the cell list
 * -- and with it every merged summary -- is a pure function of the
 * grid, never of the schedule. Cell ids are canonical
 * ("t3d/chained/1Q16/w16384", "paragon/copy/64C1/w32768") and double
 * as summary row keys.
 *
 * Every cell is thread-confined by construction: runCell() builds
 * its own MachineConfig, SimBackend (and with it Machine, EventQueue,
 * FaultInjector, metrics registry) and AnalyticBackend, shares
 * nothing mutable, and returns plain values (DESIGN.md §14).
 */

#ifndef CT_SWEEP_GRID_H
#define CT_SWEEP_GRID_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/machine_params.h"
#include "core/pattern.h"
#include "sim/fault.h"
#include "sweep/farm.h"

namespace ct::sweep {

/** What a cell executes. */
enum class CellKind
{
    /** Pairwise exchange xQy of one style through the sim backend. */
    Exchange,
    /** Local memory-to-memory copy xCy (the fig4/tab1 measurement). */
    Copy,
};

/** One fully-specified sweep cell. */
struct CellSpec
{
    CellKind kind = CellKind::Exchange;
    core::MachineId machine = core::MachineId::T3d;
    /** Style registry key; unused for Copy cells. */
    std::string style;
    core::AccessPattern x, y;
    std::uint64_t words = 1 << 14;
    /**
     * Machine size for scale cells: 0 runs the machine's default
     * dims; a power of two in [8, 8192] rebuilds the topology at
     * that node count (sim::dimsForNodes). Exchange cells only.
     * Cells above kScaleSimNodes answer from the analytic backend
     * alone (simMBps stays 0) so an 8192-node cell costs
     * microseconds, not a machine.
     */
    int nodes = 0;
    sim::FaultSpec faults;
    /** Canonical id, e.g. "t3d/chained/1Q16/w16384[/nN][/drop=...]". */
    std::string id;
};

/** Largest scale cell that still cross-validates through the sim. */
inline constexpr int kScaleSimNodes = 256;

/** One cell's merged outcome (plain values only). */
struct CellResult
{
    std::string id;
    /** 0 for Copy cells and analytic-only scale cells. */
    double simMBps = 0.0;
    /** Analytic-model rate; 0 for Copy cells (no model column). */
    double modelMBps = 0.0;
    std::uint64_t makespanCycles = 0;
    std::uint64_t corruptWords = 0;
    /** Analyzed congestion of the cell's pair-exchange pattern on
     *  the scaled topology; 0 for non-scale cells. */
    double congestion = 0.0;
};

/**
 * Grid builder: dimensions multiply machine-major, then style, then
 * pattern pair, then words, then faults -- the canonical cell order.
 * pairs() overrides the xs() x ys() cross product when a sweep needs
 * an explicit pattern-pair list (the fig4 stride sweep pairs every
 * stride with the contiguous pattern instead of squaring the list).
 */
class Grid
{
  public:
    Grid &kind(CellKind k);
    Grid &machines(std::vector<core::MachineId> ms);
    Grid &styles(std::vector<std::string> keys);
    Grid &xs(std::vector<core::AccessPattern> patterns);
    Grid &ys(std::vector<core::AccessPattern> patterns);
    Grid &pairs(
        std::vector<std::pair<core::AccessPattern,
                              core::AccessPattern>> pattern_pairs);
    Grid &words(std::vector<std::uint64_t> counts);
    /** Machine sizes (CellSpec::nodes); exchange cells only. */
    Grid &nodes(std::vector<int> counts);
    Grid &faults(std::vector<sim::FaultSpec> specs);

    /**
     * Expand to the canonical cell list. Exchange cells whose
     * (machine, style, x, y) has no TransferProgram are skipped, so
     * the list only names runnable cells.
     */
    std::vector<CellSpec> cells() const;

    /**
     * Parse a grid spec. Two forms:
     *  - a preset name: "fig4" (the stride sweep over local copies),
     *    "faultsweep" (chained vs packing under rising drop rates)
     *    or "nodes:LO..HI" (the scale sweep: chained exchange on
     *    both machines at every power-of-two node count from LO to
     *    HI, 8 <= LO <= HI <= 8192);
     *  - a dimension list "key=v[,v...];key=..." with keys kind
     *    (exchange|copy), machine (t3d,paragon), style (registry
     *    keys or "all"), x / y (pattern labels: 1, 16, w, ...),
     *    words (element counts), nodes (power-of-two machine sizes,
     *    exchange cells only) and faults (FaultSpec strings
     *    separated by '|'; "none" = fault-free).
     * Unknown keys, duplicate keys, empty or malformed values are an
     * error with the offending token named in @p error.
     */
    static std::optional<Grid> parse(const std::string &spec,
                                     std::string *error);

  private:
    CellKind kindValue = CellKind::Exchange;
    std::vector<core::MachineId> machineList;
    std::vector<std::string> styleList; ///< empty = all registered
    std::vector<core::AccessPattern> xList, yList;
    std::vector<std::pair<core::AccessPattern, core::AccessPattern>>
        pairList; ///< overrides xList x yList when non-empty
    std::vector<std::uint64_t> wordList;
    std::vector<int> nodeList; ///< empty = default dims only
    std::vector<sim::FaultSpec> faultList; ///< empty = one clean run
};

/**
 * Run one cell to completion on the calling thread. Pure function of
 * the spec: builds every piece of simulator state privately.
 */
CellResult runCell(const CellSpec &spec);

/**
 * Expand @p grid and fan the cells across @p farm; results come back
 * merged in canonical cell order regardless of thread count.
 */
std::vector<CellResult> runGrid(const Grid &grid, Farm &farm);

/** Text table of merged results (canonical order). */
std::string formatResults(const std::vector<CellResult> &results);

/**
 * JSON rendering of merged results. Doubles are printed with
 * round-trip precision so equal sweeps produce byte-identical files
 * (the CI determinism gate cmp()s a 1-thread vs N-thread run).
 */
std::string resultsJson(const std::vector<CellResult> &results);

} // namespace ct::sweep

#endif // CT_SWEEP_GRID_H
