#include "sweep/grid.h"

#include <iomanip>
#include <sstream>

#include "core/analytic_backend.h"
#include "core/style_registry.h"
#include "rt/sim_backend.h"
#include "rt/workload.h"
#include "sim/machine.h"
#include "sim/measure.h"
#include "util/table.h"

namespace ct::sweep {

namespace {

const char *
machineLabel(core::MachineId id)
{
    return id == core::MachineId::T3d ? "t3d" : "paragon";
}

std::string
cellId(const CellSpec &spec)
{
    std::string id = machineLabel(spec.machine);
    id += '/';
    if (spec.kind == CellKind::Copy)
        id += "copy/" + spec.x.label() + "C" + spec.y.label();
    else
        id += spec.style + "/" + spec.x.label() + "Q" +
              spec.y.label();
    id += "/w" + std::to_string(spec.words);
    if (spec.nodes != 0)
        id += "/n" + std::to_string(spec.nodes);
    if (spec.faults.any())
        id += "/" + spec.faults.summary();
    return id;
}

std::vector<std::string>
allStyleKeys()
{
    std::vector<std::string> keys;
    for (const core::StyleInfo &info : core::styleRegistry())
        keys.push_back(info.key);
    return keys;
}

} // namespace

Grid &
Grid::kind(CellKind k)
{
    kindValue = k;
    return *this;
}

Grid &
Grid::machines(std::vector<core::MachineId> ms)
{
    machineList = std::move(ms);
    return *this;
}

Grid &
Grid::styles(std::vector<std::string> keys)
{
    styleList = std::move(keys);
    return *this;
}

Grid &
Grid::xs(std::vector<core::AccessPattern> patterns)
{
    xList = std::move(patterns);
    return *this;
}

Grid &
Grid::ys(std::vector<core::AccessPattern> patterns)
{
    yList = std::move(patterns);
    return *this;
}

Grid &
Grid::pairs(std::vector<std::pair<core::AccessPattern,
                                  core::AccessPattern>> pattern_pairs)
{
    pairList = std::move(pattern_pairs);
    return *this;
}

Grid &
Grid::words(std::vector<std::uint64_t> counts)
{
    wordList = std::move(counts);
    return *this;
}

Grid &
Grid::nodes(std::vector<int> counts)
{
    nodeList = std::move(counts);
    return *this;
}

Grid &
Grid::faults(std::vector<sim::FaultSpec> specs)
{
    faultList = std::move(specs);
    return *this;
}

std::vector<CellSpec>
Grid::cells() const
{
    std::vector<core::MachineId> machines = machineList;
    if (machines.empty())
        machines = {core::MachineId::T3d, core::MachineId::Paragon};
    std::vector<std::string> styles = styleList;
    if (styles.empty() && kindValue == CellKind::Exchange)
        styles = allStyleKeys();
    if (kindValue == CellKind::Copy)
        styles = {""}; // copies have no style dimension
    std::vector<std::pair<core::AccessPattern, core::AccessPattern>>
        pattern_pairs = pairList;
    if (pattern_pairs.empty()) {
        std::vector<core::AccessPattern> xs = xList;
        if (xs.empty())
            xs = {core::AccessPattern::contiguous()};
        std::vector<core::AccessPattern> ys = yList;
        if (ys.empty())
            ys = {core::AccessPattern::contiguous()};
        for (const core::AccessPattern &x : xs)
            for (const core::AccessPattern &y : ys)
                pattern_pairs.emplace_back(x, y);
    }
    std::vector<std::uint64_t> word_counts = wordList;
    if (word_counts.empty())
        word_counts = {kindValue == CellKind::Copy ? sim::measureWords
                                                   : 1 << 14};
    std::vector<sim::FaultSpec> fault_specs = faultList;
    if (fault_specs.empty())
        fault_specs = {sim::FaultSpec{}};
    std::vector<int> node_counts = nodeList;
    if (node_counts.empty() || kindValue == CellKind::Copy)
        node_counts = {0}; // default dims; copies have no network

    std::vector<CellSpec> out;
    for (core::MachineId machine : machines) {
        for (const std::string &style : styles) {
            for (const auto &[x, y] : pattern_pairs) {
                // Filter illegal exchange cells at expansion time so
                // the canonical list never depends on run outcomes.
                if (kindValue == CellKind::Exchange &&
                    !core::buildProgram(machine, style, x, y))
                    continue;
                for (std::uint64_t words : word_counts) {
                    for (int nodes : node_counts) {
                        for (const sim::FaultSpec &faults :
                             fault_specs) {
                            CellSpec spec;
                            spec.kind = kindValue;
                            spec.machine = machine;
                            spec.style = style;
                            spec.x = x;
                            spec.y = y;
                            spec.words = words;
                            spec.nodes = nodes;
                            spec.faults = faults;
                            spec.id = cellId(spec);
                            out.push_back(std::move(spec));
                        }
                    }
                }
            }
        }
    }
    return out;
}

namespace {

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t end = text.find(sep, begin);
        if (end == std::string::npos)
            end = text.size();
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

std::optional<Grid>
presetGrid(const std::string &name, std::string *error)
{
    if (name == "fig4") {
        // The fig4 class: strided loads (sC1) then strided stores
        // (1Cs) over the power-of-two strides, on both machines.
        std::vector<
            std::pair<core::AccessPattern, core::AccessPattern>>
            pattern_pairs;
        for (std::uint32_t s = 1; s <= 256; s *= 2)
            pattern_pairs.emplace_back(
                core::AccessPattern::strided(s),
                core::AccessPattern::contiguous());
        for (std::uint32_t s = 2; s <= 256; s *= 2)
            pattern_pairs.emplace_back(
                core::AccessPattern::contiguous(),
                core::AccessPattern::strided(s));
        return Grid()
            .kind(CellKind::Copy)
            .pairs(std::move(pattern_pairs))
            .words({sim::measureWords});
    }
    if (name.rfind("nodes:", 0) == 0) {
        // The scale preset "nodes:LO..HI": chained exchange on both
        // machines at every power-of-two node count from LO to HI.
        // Cells past kScaleSimNodes answer from the analytic model
        // alone, so the top of the range costs microseconds.
        std::string range = name.substr(6);
        std::size_t dots = range.find("..");
        std::string lo_text = dots == std::string::npos
                                  ? range
                                  : range.substr(0, dots);
        std::string hi_text = dots == std::string::npos
                                  ? range
                                  : range.substr(dots + 2);
        char *end = nullptr;
        long lo = std::strtol(lo_text.c_str(), &end, 10);
        bool lo_ok = !lo_text.empty() && *end == '\0';
        long hi = std::strtol(hi_text.c_str(), &end, 10);
        bool hi_ok = !hi_text.empty() && *end == '\0';
        if (!lo_ok || !hi_ok || lo > hi ||
            !sim::validScaleNodes(static_cast<int>(lo)) ||
            !sim::validScaleNodes(static_cast<int>(hi))) {
            if (error)
                *error = "bad scale range '" + range +
                         "' (expected LO..HI, powers of two in "
                         "[8, 8192])";
            return std::nullopt;
        }
        std::vector<int> counts;
        for (long n = lo; n <= hi; n *= 2)
            counts.push_back(static_cast<int>(n));
        return Grid()
            .styles({"chained"})
            .words({1024})
            .nodes(std::move(counts));
    }
    if (name == "faultsweep") {
        // Chained vs buffer packing as the wire degrades: the
        // representative stride/fault grid of the perf headline.
        std::vector<sim::FaultSpec> fault_specs{sim::FaultSpec{}};
        for (const char *spec :
             {"drop=0.001,seed=1", "drop=0.01,seed=1",
              "drop=0.05,seed=1", "drop=0.1,seed=1"})
            fault_specs.push_back(sim::FaultSpec::parse(spec));
        return Grid()
            .machines({core::MachineId::T3d})
            .styles({"chained", "buffer-packing"})
            .pairs({{core::AccessPattern::strided(4),
                     core::AccessPattern::strided(4)}})
            .words({2048})
            .faults(std::move(fault_specs));
    }
    if (error)
        *error = "unknown grid preset '" + name + "'";
    return std::nullopt;
}

} // namespace

std::optional<Grid>
Grid::parse(const std::string &spec, std::string *error)
{
    if (spec.empty()) {
        if (error)
            *error = "empty grid spec";
        return std::nullopt;
    }
    if (spec.find('=') == std::string::npos)
        return presetGrid(spec, error);

    Grid grid;
    bool seen[8] = {};
    enum
    {
        kKind,
        kMachine,
        kStyle,
        kX,
        kY,
        kWords,
        kNodes,
        kFaults
    };
    auto fail = [&](const std::string &message) {
        if (error)
            *error = message;
        return std::nullopt;
    };
    for (const std::string &clause : splitList(spec, ';')) {
        std::size_t eq = clause.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail("bad grid clause '" + clause +
                        "' (expected key=value[,value...])");
        std::string key = clause.substr(0, eq);
        std::string value = clause.substr(eq + 1);
        if (value.empty())
            return fail("grid key '" + key + "' has an empty value");

        int index;
        if (key == "kind")
            index = kKind;
        else if (key == "machine")
            index = kMachine;
        else if (key == "style")
            index = kStyle;
        else if (key == "x")
            index = kX;
        else if (key == "y")
            index = kY;
        else if (key == "words")
            index = kWords;
        else if (key == "nodes")
            index = kNodes;
        else if (key == "faults")
            index = kFaults;
        else
            return fail("unknown grid key '" + key + "'");
        if (seen[index])
            return fail("duplicate grid key '" + key + "'");
        seen[index] = true;

        if (index == kKind) {
            if (value == "exchange")
                grid.kind(CellKind::Exchange);
            else if (value == "copy")
                grid.kind(CellKind::Copy);
            else
                return fail("bad kind '" + value +
                            "' (expected exchange or copy)");
        } else if (index == kMachine) {
            std::vector<core::MachineId> machines;
            for (const std::string &m : splitList(value, ',')) {
                if (m == "t3d")
                    machines.push_back(core::MachineId::T3d);
                else if (m == "paragon")
                    machines.push_back(core::MachineId::Paragon);
                else
                    return fail("unknown machine '" + m + "'");
            }
            grid.machines(std::move(machines));
        } else if (index == kStyle) {
            std::vector<std::string> styles;
            for (const std::string &s : splitList(value, ',')) {
                if (s == "all") {
                    styles.clear();
                    break;
                }
                if (!core::findStyle(s))
                    return fail("unknown style '" + s + "'");
                styles.push_back(s);
            }
            grid.styles(std::move(styles));
        } else if (index == kX || index == kY) {
            std::vector<core::AccessPattern> patterns;
            for (const std::string &p : splitList(value, ',')) {
                auto pattern = core::AccessPattern::parse(p);
                if (!pattern || pattern->isFixed())
                    return fail("bad pattern '" + p + "' for '" +
                                key + "'");
                patterns.push_back(*pattern);
            }
            if (index == kX)
                grid.xs(std::move(patterns));
            else
                grid.ys(std::move(patterns));
        } else if (index == kWords) {
            std::vector<std::uint64_t> counts;
            for (const std::string &w : splitList(value, ',')) {
                char *end = nullptr;
                unsigned long long v =
                    std::strtoull(w.c_str(), &end, 10);
                if (w.empty() || *end != '\0' || v == 0)
                    return fail("bad word count '" + w + "'");
                counts.push_back(v);
            }
            grid.words(std::move(counts));
        } else if (index == kNodes) {
            std::vector<int> counts;
            for (const std::string &n : splitList(value, ',')) {
                char *end = nullptr;
                long v = std::strtol(n.c_str(), &end, 10);
                if (n.empty() || *end != '\0' ||
                    !sim::validScaleNodes(static_cast<int>(v)))
                    return fail("bad node count '" + n +
                                "' (powers of two in [8, 8192])");
                counts.push_back(static_cast<int>(v));
            }
            grid.nodes(std::move(counts));
        } else { // kFaults
            std::vector<sim::FaultSpec> fault_specs;
            for (const std::string &f : splitList(value, '|')) {
                if (f == "none") {
                    fault_specs.push_back(sim::FaultSpec{});
                    continue;
                }
                std::string parse_error;
                auto parsed = sim::FaultSpec::tryParse(f,
                                                      &parse_error);
                if (!parsed)
                    return fail("bad fault spec '" + f + "': " +
                                parse_error);
                fault_specs.push_back(*parsed);
            }
            grid.faults(std::move(fault_specs));
        }
    }
    if (seen[kNodes] && grid.kindValue == CellKind::Copy)
        return fail("grid key 'nodes' applies to exchange cells "
                    "only (copies have no network)");
    return grid;
}

CellResult
runCell(const CellSpec &spec)
{
    CellResult result;
    result.id = spec.id;

    sim::MachineConfig cfg =
        spec.nodes != 0 ? sim::configFor(spec.machine, spec.nodes)
                        : sim::configFor(spec.machine);
    cfg.faults = spec.faults;

    if (spec.kind == CellKind::Copy) {
        result.simMBps =
            sim::measureLocalCopy(cfg, spec.x, spec.y, spec.words);
        return result;
    }

    auto program =
        core::buildProgram(spec.machine, spec.style, spec.x, spec.y);
    if (!program)
        return result; // filtered at expansion; defensive only

    // Scale cells derive the congestion of the exchange pattern from
    // the scaled topology alone: a Topology plus the demand list is
    // the whole footprint, so an 8192-node analysis allocates O(links
    // touched), never a machine. Default-dims cells keep the paper's
    // default congestion, byte-for-byte as before.
    double congestion =
        core::paperCaps(spec.machine).defaultCongestion;
    if (spec.nodes != 0) {
        sim::Topology topo(cfg.topology);
        sim::CongestionReport report = topo.analyzeCongestion(
            rt::pairExchangeDemands(spec.nodes, spec.words * 8));
        congestion = report.factor;
        result.congestion = report.factor;
    }

    core::AnalyticBackend analytic(core::paperTable(spec.machine),
                                   rt::executionProfileFor(cfg));
    if (auto model = analytic.predictThroughputAt(
            *program, spec.words * 8, congestion))
        result.modelMBps = *model;

    // Past the sim cap the cell is analytic-only: the model answers
    // the large-N question; sampled smaller cells cross-validate it.
    if (spec.nodes > kScaleSimNodes)
        return result;

    // Faulted wires need the reliable transport to deliver at all;
    // clean cells run the raw program like the paper's measurements.
    core::TransferProgram to_run =
        spec.faults.any() ? core::withReliability(*program)
                          : *program;
    rt::SimBackend backend(cfg);
    rt::SimRun run = backend.exchange(to_run, spec.words);
    result.simMBps = run.perNodeMBps;
    result.makespanCycles =
        static_cast<std::uint64_t>(run.result.makespan);
    result.corruptWords = run.corruptWords;
    return result;
}

std::vector<CellResult>
runGrid(const Grid &grid, Farm &farm)
{
    const std::vector<CellSpec> cells = grid.cells();
    return farm.map<CellResult>(
        cells.size(),
        [&cells](std::size_t i, int) { return runCell(cells[i]); });
}

std::string
formatResults(const std::vector<CellResult> &results)
{
    util::TextTable table({"cell", "sim MB/s", "model MB/s"});
    for (const CellResult &r : results)
        table.addRow({r.id,
                      r.simMBps > 0.0
                          ? util::TextTable::num(r.simMBps, 2)
                          : "-", // analytic-only scale cell
                      r.modelMBps > 0.0
                          ? util::TextTable::num(r.modelMBps, 2)
                          : "-"});
    return table.render();
}

std::string
resultsJson(const std::vector<CellResult> &results)
{
    std::ostringstream os;
    // max_digits10 round-trips doubles exactly: equal sweeps render
    // byte-identical JSON (the threads=1 vs threads=N cmp gate).
    os << std::setprecision(17);
    os << "{\n  \"cells\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult &r = results[i];
        os << "    {\"id\": \"" << r.id
           << "\", \"sim_mbps\": " << r.simMBps
           << ", \"model_mbps\": " << r.modelMBps
           << ", \"makespan_cycles\": " << r.makespanCycles
           << ", \"corrupt_words\": " << r.corruptWords
           << ", \"congestion\": " << r.congestion << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace ct::sweep
