#include "sweep/farm.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace ct::sweep {

/**
 * One batch in flight: the body shared by its chunks and the
 * completion latch the submitting thread waits on. Lives on the
 * submitter's stack for the duration of forEach().
 */
struct Farm::Job
{
    const std::function<void(std::size_t, int)> *body = nullptr;
    std::size_t remaining = 0; ///< guarded by mu
    std::mutex mu;
    std::condition_variable done;
};

Farm::Farm(FarmOptions options) : opts(options)
{
    if (opts.threads < 0)
        util::fatal("Farm: threads must be >= 0");
    for (int i = 0; i < opts.threads; ++i)
        deques.push_back(std::make_unique<WorkerDeque>());
    for (int i = 0; i < opts.threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

Farm::~Farm()
{
    waitPosted();
    stopping.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(wakeMutex);
    }
    wakeCv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
Farm::enqueue(Chunk &&chunk, std::size_t at)
{
    WorkerDeque &dq = *deques[at % deques.size()];
    // Count the chunk before it becomes stealable so a worker's
    // fetch_sub can never transiently wrap the counter below zero.
    pendingItems.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(dq.mu);
        dq.chunks.push_back(std::move(chunk));
    }
    {
        std::lock_guard<std::mutex> lock(wakeMutex);
    }
    wakeCv.notify_all();
}

void
Farm::forEach(std::size_t n,
              const std::function<void(std::size_t, int)> &body)
{
    if (n == 0)
        return;
    if (opts.threads == 0) {
        for (std::size_t i = 0; i < n; ++i)
            body(i, 0);
        statCells.fetch_add(n, std::memory_order_relaxed);
        return;
    }

    Job job;
    job.body = &body;
    job.remaining = n;

    std::size_t grain = opts.grain;
    if (grain == 0)
        grain = std::max<std::size_t>(
            1, n / (static_cast<std::size_t>(opts.threads) * 4));
    std::size_t at = nextDeque.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t begin = 0; begin < n; begin += grain) {
        Chunk chunk;
        chunk.job = &job;
        chunk.begin = begin;
        chunk.end = std::min(n, begin + grain);
        enqueue(std::move(chunk), at++);
    }

    std::unique_lock<std::mutex> lock(job.mu);
    job.done.wait(lock, [&] { return job.remaining == 0; });
}

void
Farm::post(std::function<void(int)> task)
{
    if (opts.threads == 0) {
        task(0);
        statPosted.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    postedInFlight.fetch_add(1, std::memory_order_release);
    Chunk chunk;
    chunk.task = std::move(task);
    enqueue(std::move(chunk),
            nextDeque.fetch_add(1, std::memory_order_relaxed));
}

void
Farm::runBatch(std::size_t n,
               const std::function<void(std::size_t, int)> &body)
{
    // Inline mode: post() runs each task immediately on the caller.
    for (std::size_t i = 0; i < n; ++i)
        post([&body, i](int worker) { body(i, worker); });
    if (opts.threads > 0)
        waitPosted();
}

void
Farm::waitPosted()
{
    std::unique_lock<std::mutex> lock(wakeMutex);
    postedCv.wait(lock, [&] {
        return postedInFlight.load(std::memory_order_acquire) == 0;
    });
}

void
Farm::runChunk(Chunk &&chunk, int worker)
{
    statChunks.fetch_add(1, std::memory_order_relaxed);
    if (chunk.job) {
        Job &job = *chunk.job;
        std::size_t count = chunk.end - chunk.begin;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
            (*job.body)(i, worker);
        statCells.fetch_add(count, std::memory_order_relaxed);
        {
            // Decrement and notify under job.mu: the submitter can
            // only observe remaining == 0 (and destroy the
            // stack-allocated Job) after this worker has released
            // the mutex, so the latch is never touched after free.
            std::lock_guard<std::mutex> lock(job.mu);
            job.remaining -= count;
            if (job.remaining == 0)
                job.done.notify_all();
        }
        return;
    }
    chunk.task(worker);
    statPosted.fetch_add(1, std::memory_order_relaxed);
    if (postedInFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wakeMutex);
        postedCv.notify_all();
    }
}

bool
Farm::tryRunOne(int worker)
{
    // Own deque first, newest chunk (LIFO keeps the owner on the
    // range it was just working through).
    {
        WorkerDeque &own = *deques[worker];
        std::unique_lock<std::mutex> lock(own.mu);
        if (!own.chunks.empty()) {
            Chunk chunk = std::move(own.chunks.back());
            own.chunks.pop_back();
            lock.unlock();
            pendingItems.fetch_sub(1, std::memory_order_release);
            runChunk(std::move(chunk), worker);
            return true;
        }
    }
    // Steal: scan the other deques from the oldest end (FIFO), which
    // takes the work farthest from the victim's current locality.
    int n = static_cast<int>(deques.size());
    for (int hop = 1; hop < n; ++hop) {
        WorkerDeque &victim = *deques[(worker + hop) % n];
        std::unique_lock<std::mutex> lock(victim.mu);
        if (victim.chunks.empty())
            continue;
        Chunk chunk = std::move(victim.chunks.front());
        victim.chunks.pop_front();
        lock.unlock();
        pendingItems.fetch_sub(1, std::memory_order_release);
        statSteals.fetch_add(1, std::memory_order_relaxed);
        runChunk(std::move(chunk), worker);
        return true;
    }
    return false;
}

void
Farm::workerLoop(int worker)
{
    for (;;) {
        if (tryRunOne(worker))
            continue;
        std::unique_lock<std::mutex> lock(wakeMutex);
        wakeCv.wait(lock, [&] {
            return stopping.load(std::memory_order_acquire) ||
                   pendingItems.load(std::memory_order_acquire) > 0;
        });
        if (stopping.load(std::memory_order_acquire) &&
            pendingItems.load(std::memory_order_acquire) == 0)
            return;
    }
}

FarmStats
Farm::stats() const
{
    FarmStats s;
    s.cellsRun = statCells.load(std::memory_order_relaxed);
    s.chunks = statChunks.load(std::memory_order_relaxed);
    s.steals = statSteals.load(std::memory_order_relaxed);
    s.posted = statPosted.load(std::memory_order_relaxed);
    return s;
}

bool
parseThreadCount(const char *text, int &threads, std::string &error)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
        error = "thread count must be a decimal integer";
        return false;
    }
    if (v < 1) {
        error = "thread count must be >= 1 (1 = serial)";
        return false;
    }
    if (v > kMaxThreads) {
        error = "thread count exceeds the oversubscription cap of " +
                std::to_string(kMaxThreads);
        return false;
    }
    threads = static_cast<int>(v);
    return true;
}

} // namespace ct::sweep
