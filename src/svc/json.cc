#include "svc/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ct::svc {

namespace {

/** Cursor over one request line, with position-stamped errors. */
struct Cursor
{
    const std::string &s;
    std::size_t i = 0;
    std::string *error;

    bool fail(const std::string &msg)
    {
        if (error)
            *error = msg + " at offset " + std::to_string(i);
        return false;
    }

    void skipWs()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool eat(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return false;
        ++i;
        return true;
    }

    bool parseString(std::string &out)
    {
        skipWs();
        if (i >= s.size() || s[i] != '"')
            return fail("expected '\"'");
        ++i;
        out.clear();
        while (i < s.size() && s[i] != '"') {
            char c = s[i];
            if (c == '\\') {
                if (i + 1 >= s.size())
                    return fail("dangling escape");
                char e = s[i + 1];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                default:
                    return fail(std::string("unsupported escape \\") +
                                e);
                }
                i += 2;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            out += c;
            ++i;
        }
        if (i >= s.size())
            return fail("unterminated string");
        ++i; // closing quote
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        skipWs();
        if (i >= s.size())
            return fail("expected a value");
        char c = s[i];
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (c == '{' || c == '[')
            return fail("nested objects/arrays are not part of the "
                        "request grammar");
        if (s.compare(i, 4, "true") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            i += 4;
            return true;
        }
        if (s.compare(i, 5, "false") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            i += 5;
            return true;
        }
        if (s.compare(i, 4, "null") == 0) {
            out.kind = JsonValue::Kind::Null;
            i += 4;
            return true;
        }
        // Number.
        const char *start = s.c_str() + i;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("malformed value");
        out.kind = JsonValue::Kind::Number;
        out.num = v;
        i += static_cast<std::size_t>(end - start);
        return true;
    }
};

} // namespace

std::optional<JsonObject>
parseFlatJson(const std::string &line, std::string *error)
{
    Cursor cur{line, 0, error};
    JsonObject obj;
    if (!cur.eat('{')) {
        cur.fail("expected '{'");
        return std::nullopt;
    }
    cur.skipWs();
    if (cur.eat('}')) {
        cur.skipWs();
        if (cur.i != line.size()) {
            cur.fail("trailing garbage after object");
            return std::nullopt;
        }
        return obj;
    }
    for (;;) {
        std::string key;
        if (!cur.parseString(key))
            return std::nullopt;
        if (!cur.eat(':')) {
            cur.fail("expected ':'");
            return std::nullopt;
        }
        JsonValue value;
        if (!cur.parseValue(value))
            return std::nullopt;
        if (!obj.emplace(key, std::move(value)).second) {
            cur.fail("duplicate key \"" + key + "\"");
            return std::nullopt;
        }
        if (cur.eat(','))
            continue;
        if (cur.eat('}'))
            break;
        cur.fail("expected ',' or '}'");
        return std::nullopt;
    }
    cur.skipWs();
    if (cur.i != line.size()) {
        cur.fail("trailing garbage after object");
        return std::nullopt;
    }
    return obj;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else
                out += c;
        }
    }
    return out;
}

JsonWriter &
JsonWriter::append(const std::string &key, const std::string &rendered)
{
    if (!body.empty())
        body += ',';
    body += '"';
    body += jsonEscape(key);
    body += "\":";
    body += rendered;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, const std::string &v)
{
    std::string rendered;
    rendered.reserve(v.size() + 2);
    rendered += '"';
    rendered += jsonEscape(v);
    rendered += '"';
    return append(key, rendered);
}

JsonWriter &
JsonWriter::field(const std::string &key, const char *v)
{
    return field(key, std::string(v));
}

JsonWriter &
JsonWriter::field(const std::string &key, std::uint64_t v)
{
    return append(key, std::to_string(v));
}

JsonWriter &
JsonWriter::field(const std::string &key, std::int64_t v)
{
    return append(key, std::to_string(v));
}

JsonWriter &
JsonWriter::field(const std::string &key, int v)
{
    return append(key, std::to_string(v));
}

JsonWriter &
JsonWriter::field(const std::string &key, bool v)
{
    return append(key, v ? "true" : "false");
}

JsonWriter &
JsonWriter::fixed(const std::string &key, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return append(key, buf);
}

JsonWriter &
JsonWriter::raw(const std::string &key, const std::string &json)
{
    return append(key, json);
}

std::string
JsonWriter::str() const
{
    return "{" + body + "}";
}

} // namespace ct::svc
