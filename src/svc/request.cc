#include "svc/request.h"

#include <cmath>

#include "svc/json.h"

namespace ct::svc {

const char *
opName(Op op)
{
    switch (op) {
    case Op::Plan: return "plan";
    case Op::Validate: return "validate";
    case Op::Sim: return "sim";
    case Op::Health: return "health";
    }
    return "?";
}

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok: return "ok";
    case Status::Degraded: return "degraded";
    case Status::Rejected: return "rejected";
    case Status::Error: return "error";
    }
    return "?";
}

const char *
fidelityName(Fidelity f)
{
    switch (f) {
    case Fidelity::Exact: return "exact";
    case Fidelity::Truncated: return "truncated";
    case Fidelity::Analytic: return "analytic";
    case Fidelity::None: return "none";
    }
    return "?";
}

namespace {

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Read a non-negative integer field; false + diagnostic otherwise. */
bool
readUint(const JsonObject &obj, const char *key, std::uint64_t &out,
         std::string *error)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return true; // optional; caller checks presence separately
    const JsonValue &v = it->second;
    if (v.kind != JsonValue::Kind::Number || v.num < 0 ||
        v.num != std::floor(v.num) || v.num > 1.8e19)
        return fail(error, std::string("field '") + key +
                               "' must be a non-negative integer");
    out = static_cast<std::uint64_t>(v.num);
    return true;
}

/** Read a string field into @p out; false when present but not a
 *  string. */
bool
readString(const JsonObject &obj, const char *key, std::string &out,
           std::string *error)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return true;
    if (it->second.kind != JsonValue::Kind::String)
        return fail(error, std::string("field '") + key +
                               "' must be a string");
    out = it->second.str;
    return true;
}

} // namespace

std::optional<Request>
Request::tryParse(const std::string &line, std::string *error,
                  std::uint64_t *id_out)
{
    if (id_out)
        *id_out = 0;
    auto parsed = parseFlatJson(line, error);
    if (!parsed)
        return std::nullopt;
    const JsonObject &obj = *parsed;

    Request req;
    if (obj.find("id") == obj.end()) {
        fail(error, "missing required field 'id'");
        return std::nullopt;
    }
    if (!readUint(obj, "id", req.id, error))
        return std::nullopt;
    if (id_out)
        *id_out = req.id;

    std::string op;
    if (!readString(obj, "op", op, error))
        return std::nullopt;
    if (op.empty()) {
        fail(error, "missing required field 'op'");
        return std::nullopt;
    }
    if (op == "plan")
        req.op = Op::Plan;
    else if (op == "validate")
        req.op = Op::Validate;
    else if (op == "sim")
        req.op = Op::Sim;
    else if (op == "health")
        req.op = Op::Health;
    else {
        fail(error, "unknown op '" + op +
                        "' (expected plan|validate|sim|health)");
        return std::nullopt;
    }

    // Reject unknown keys loudly before interpreting anything else:
    // a typo like "budgte" must not silently run without a deadline.
    static const char *const known[] = {"id",    "op",     "machine",
                                        "xqy",   "words",  "bytes",
                                        "budget", "faults", "chaos"};
    for (const auto &[key, value] : obj) {
        (void)value;
        bool ok = false;
        for (const char *k : known)
            if (key == k)
                ok = true;
        if (!ok) {
            fail(error, "unknown field '" + key + "'");
            return std::nullopt;
        }
    }

    std::string machine, xqy, faults, chaos;
    if (!readString(obj, "machine", machine, error) ||
        !readString(obj, "xqy", xqy, error) ||
        !readString(obj, "faults", faults, error) ||
        !readString(obj, "chaos", chaos, error) ||
        !readUint(obj, "words", req.words, error) ||
        !readUint(obj, "bytes", req.bytes, error) ||
        !readUint(obj, "budget", req.budget, error))
        return std::nullopt;

    // Fields that only make sense for some ops are rejected on the
    // others instead of being ignored.
    auto rejectField = [&](const char *key, const std::string &why) {
        if (obj.find(key) != obj.end()) {
            fail(error, std::string("field '") + key + "' " + why);
            return true;
        }
        return false;
    };
    if (req.op == Op::Health || req.op == Op::Validate) {
        for (const char *key :
             {"machine", "xqy", "words", "bytes", "budget", "faults",
              "chaos"})
            if (rejectField(key, std::string("does not apply to op "
                                             "'") +
                                     opName(req.op) + "'"))
                return std::nullopt;
        return req;
    }
    if (req.op == Op::Plan) {
        for (const char *key : {"words", "budget", "faults", "chaos"})
            if (rejectField(key, "does not apply to op 'plan' "
                                 "(planning is analytic)"))
                return std::nullopt;
    }
    if (req.op == Op::Sim && rejectField("bytes",
                                         "does not apply to op 'sim' "
                                         "(use words)"))
        return std::nullopt;

    // machine + xqy are required for plan and sim.
    if (machine == "t3d")
        req.machine = core::MachineId::T3d;
    else if (machine == "paragon")
        req.machine = core::MachineId::Paragon;
    else if (machine.empty()) {
        fail(error, std::string("op '") + opName(req.op) +
                        "' requires field 'machine'");
        return std::nullopt;
    } else {
        fail(error, "unknown machine '" + machine +
                        "' (expected t3d|paragon)");
        return std::nullopt;
    }
    if (xqy.empty()) {
        fail(error, std::string("op '") + opName(req.op) +
                        "' requires field 'xqy'");
        return std::nullopt;
    }
    auto q = xqy.find('Q');
    if (q == std::string::npos) {
        fail(error, "bad xqy '" + xqy + "' (expected e.g. 1Q64)");
        return std::nullopt;
    }
    auto x = core::AccessPattern::parse(xqy.substr(0, q));
    auto y = core::AccessPattern::parse(xqy.substr(q + 1));
    if (!x || !y || x->isFixed() || y->isFixed()) {
        fail(error, "bad xqy '" + xqy + "' (expected e.g. 1Q64)");
        return std::nullopt;
    }
    req.x = *x;
    req.y = *y;

    if (req.op == Op::Sim && req.words == 0) {
        fail(error, "field 'words' must be positive");
        return std::nullopt;
    }

    if (!faults.empty()) {
        std::string spec_error;
        auto parsed_faults =
            sim::FaultSpec::tryParse(faults, &spec_error);
        if (!parsed_faults) {
            fail(error, "bad faults spec: " + spec_error);
            return std::nullopt;
        }
        req.faults = *parsed_faults;
        req.faultsSummary = req.faults.summary();
    }
    if (!chaos.empty()) {
        std::string spec_error;
        auto parsed_chaos =
            sim::ChaosSchedule::tryParse(chaos, &spec_error);
        if (!parsed_chaos) {
            fail(error, "bad chaos spec: " + spec_error);
            return std::nullopt;
        }
        req.chaos = *parsed_chaos;
        req.chaosSummary = req.chaos.summary();
    }
    return req;
}

std::uint64_t
peekRequestId(const std::string &line)
{
    auto parsed = parseFlatJson(line, nullptr);
    if (!parsed)
        return 0;
    auto it = parsed->find("id");
    if (it == parsed->end() ||
        it->second.kind != JsonValue::Kind::Number ||
        it->second.num < 0 ||
        it->second.num != std::floor(it->second.num))
        return 0;
    return static_cast<std::uint64_t>(it->second.num);
}

} // namespace ct::svc
