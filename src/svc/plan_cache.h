/**
 * @file
 * Memoized answer cache of the planning service. Entries are keyed
 * on the canonical query key (core::canonicalQueryKey -- equivalent
 * queries share one entry however they were spelled) and stamped
 * with a CRC32C over key + payload at insertion. Every lookup
 * re-verifies the stamp: a corrupt entry is treated as a miss,
 * counted, and evicted so the recomputed answer replaces it -- a
 * flipped bit in the cache must never reach a client.
 *
 * Capacity is bounded; insertion past capacity evicts in FIFO order
 * (the service's working sets are storm-shaped, where FIFO and LRU
 * behave alike and FIFO keeps eviction deterministic).
 *
 * Thread-safe: one mutex over the map (lookups copy the payload out
 * under the lock; the service's unit of work is a whole simulation,
 * so the cache lock is never the bottleneck).
 */

#ifndef CT_SVC_PLAN_CACHE_H
#define CT_SVC_PLAN_CACHE_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace ct::svc {

/** Counters of one cache's lifetime (see svc.cache.* metrics). */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Lookups whose stored checksum no longer matched: served as a
     *  miss, never as data. */
    std::uint64_t corruptHits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
};

/** Bounded, checksummed memoization cache (see file comment). */
class PlanCache
{
  public:
    explicit PlanCache(std::size_t capacity = 256);

    /**
     * Look @p key up. Returns the stored payload on a verified hit;
     * nullopt on miss *or* on checksum mismatch (the corrupt entry
     * is dropped and counted).
     */
    std::optional<std::string> lookup(const std::string &key);

    /** Insert/overwrite @p key -> @p payload, CRC-stamping it. */
    void insert(const std::string &key, const std::string &payload);

    /**
     * Chaos hook: flip bit @p bit_index (mod payload bits) of the
     * entry stored under @p key, *without* refreshing its stamp.
     * Returns false when the key is absent. Deterministic corruption
     * for self-chaos campaigns and tests.
     */
    bool corruptBit(const std::string &key, std::uint32_t bit_index);

    PlanCacheStats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return cap; }

  private:
    struct Entry
    {
        std::string payload;
        std::uint32_t crc = 0;
    };

    /** Stamp covering the key too, so a payload swapped between two
     *  entries is detected as corruption, not served. */
    static std::uint32_t stamp(const std::string &key,
                               const std::string &payload);

    mutable std::mutex mu;
    std::size_t cap;
    std::map<std::string, Entry> entries;
    std::deque<std::string> insertionOrder;
    PlanCacheStats counters;
};

} // namespace ct::svc

#endif // CT_SVC_PLAN_CACHE_H
