/**
 * @file
 * The crash-calm planning service: a fixed-size worker pool (a
 * sweep::Farm -- the same work-stealing deques that run parameter
 * sweeps double as the request executor) answering NDJSON plan /
 * validate / sim / health requests with robustness as the contract
 * (docs/SERVICE.md):
 *
 *  - Bounded admission: submit() never blocks and never queues
 *    without bound. A full queue (or a chaos-injected saturation
 *    window) answers immediately with a structured "rejected"
 *    response -- every request gets exactly one response, always.
 *  - Deadlines as degradation, not failure: a sim request's event
 *    budget is threaded into the simulator as a cooperative
 *    cancellation checkpoint. Budgets that cut a run short degrade
 *    the answer down the ladder full sim -> truncated sim ->
 *    analytic-only, with the response's "fidelity" field naming the
 *    tier honestly.
 *  - Checksummed memoization: answers are cached under canonical
 *    query keys and CRC32C-stamped; a corrupt entry is detected on
 *    read, counted, and recomputed -- never served.
 *  - Deterministic self-chaos: an SvcChaos plan injects worker
 *    stalls, cache bit flips and admission saturation as pure
 *    functions of (seed, arrival index / cache key), so a chaos
 *    replay of the same request stream produces a byte-identical
 *    response log regardless of worker scheduling.
 *
 * Responses are delivered to the sink in arrival order (a sequencer
 * holds out-of-order completions; its buffer is bounded by the
 * admission queue's capacity, since only admitted requests can
 * complete out of order). Response *content* is a pure function of
 * the request line and the service configuration -- wall-clock
 * timing, worker identity and cache hit/miss state are observable
 * only through svc.* metrics, never through response bytes.
 */

#ifndef CT_SVC_SERVICE_H
#define CT_SVC_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/chaos.h"
#include "svc/plan_cache.h"
#include "svc/request.h"
#include "sweep/farm.h"

namespace ct::svc {

/** Service configuration. */
struct ServiceOptions
{
    /** Worker threads executing requests (a sweep::Farm pool;
     *  0 = submit() handles each line synchronously). */
    int workers = 4;
    /** Admission-queue bound; submissions past it are rejected. */
    std::size_t queueCapacity = 64;
    /** Memoization cache entries. */
    std::size_t cacheCapacity = 256;
    /**
     * Default event budget of sim requests that carry none.
     * 0 = unlimited (full fidelity unless the request asks).
     */
    std::uint64_t defaultBudget = 0;
    /**
     * Budgets below this floor skip the simulator entirely and
     * answer from the analytic backend: a sim that cannot even
     * finish its first chunks tells less than the model does.
     */
    std::uint64_t analyticFloor = 4096;
    /** Deterministic self-chaos plan (default: none). */
    SvcChaos chaos;
};

/** One finished response. */
struct ServiceResponse
{
    std::uint64_t id = 0;
    Status status = Status::Ok;
    Fidelity fidelity = Fidelity::None;
    /** The full rendered NDJSON line (no trailing newline). */
    std::string line;
};

/** The service (see file comment). */
class PlanService
{
  public:
    /** Sink invoked in arrival order, serialized by the service. */
    using ResponseSink = std::function<void(const ServiceResponse &)>;

    PlanService(ServiceOptions options, ResponseSink sink);
    ~PlanService();

    PlanService(const PlanService &) = delete;
    PlanService &operator=(const PlanService &) = delete;

    /** Launch the worker pool. */
    void start();

    /**
     * Submit one NDJSON request line. Never blocks: over-capacity
     * (or chaos-saturated) submissions complete immediately with a
     * "rejected" response through the sink.
     */
    void submit(const std::string &line);

    /** Block until every submitted request has been answered. */
    void drain();

    /** drain(), then stop and join the workers. Idempotent. */
    void stop();

    /** Registry holding the svc.* counters (and nothing else). */
    obs::MetricsRegistry &metrics() { return registry; }
    const obs::MetricsRegistry &metrics() const { return registry; }

    /**
     * Mirror the cache counters into svc.cache.* registry cells
     * (called automatically by stop(); exposed for mid-run dumps).
     */
    void publishCacheMetrics();

    PlanCacheStats cacheStats() const { return cache.stats(); }

    /** Attach a tracer for svc.request spans (nullptr = off).
     *  Timestamps are wall microseconds since start(). */
    void setTracer(obs::Tracer *t) { tracer = t; }

    const ServiceOptions &options() const { return opts; }

    /**
     * Handle one already-admitted request line synchronously on the
     * calling thread. Exposed for the degenerate --workers=0 mode
     * and for tests that need the pure request -> response function
     * without pool scheduling.
     */
    ServiceResponse handleLine(const std::string &line);

  private:
    struct Job
    {
        std::uint64_t index = 0;
        std::string line;
    };

    /** Posted onto the farm once per admitted line: pop the oldest
     *  queued job and answer it on @p worker_id. */
    void runJob(int worker_id);
    /** Sequencer: record @p index's response, flush in order. */
    void complete(std::uint64_t index, ServiceResponse &&response);

    ServiceResponse handleParsed(const Request &request);
    ServiceResponse handlePlan(const Request &request);
    ServiceResponse handleSim(const Request &request);
    ServiceResponse handleValidate(const Request &request);
    ServiceResponse handleHealth(const Request &request);

    /**
     * Render the standard response envelope + payload fragment, and
     * memoize the fragment under @p cache_key when non-empty (with
     * the chaos flip applied after insertion).
     */
    ServiceResponse finish(const Request &request, Status status,
                           Fidelity fidelity,
                           const std::string &fragment,
                           const std::string &cache_key);

    ServiceOptions opts;
    ResponseSink sink;
    PlanCache cache;
    obs::MetricsRegistry registry;
    obs::Tracer *tracer = nullptr;
    std::chrono::steady_clock::time_point epoch;

    /** Admission ledger: jobs admitted but not yet picked up. Its
     *  size (bounded by queueCapacity) is the overload signal; the
     *  farm's deques hold only opaque pop-and-run tasks, one per
     *  entry here, so FIFO pickup order is preserved. */
    std::mutex queueMutex;
    std::deque<Job> queue;
    /** The worker pool; null until start() when workers > 0. */
    std::unique_ptr<sweep::Farm> pool;

    std::mutex outMutex;
    std::condition_variable outCv;
    std::map<std::uint64_t, ServiceResponse> outOfOrder;
    std::uint64_t nextSubmitIndex = 0;
    std::uint64_t nextEmitIndex = 0;

    std::mutex tracerMutex;

    // svc.* metric handles (registered once in the constructor).
    obs::Counter requestsTotal;
    obs::Counter requestsByOp[4];
    obs::Counter responsesOk, responsesDegraded, responsesRejected,
        responsesError;
    obs::Counter overloadRejects, chaosSaturationRejects;
    obs::Counter chaosStalls, chaosFlips;
    obs::Counter deadlineTruncated, deadlineAnalytic;
    obs::Counter parseErrors;
    obs::Gauge queuePeakDepth;
};

} // namespace ct::svc

#endif // CT_SVC_SERVICE_H
