/**
 * @file
 * Minimal flat-JSON support for the planning service's NDJSON
 * protocol. Requests are single-line JSON objects whose values are
 * strings, numbers or booleans -- no nesting, no arrays -- which is
 * all the request grammar needs (docs/SERVICE.md) and small enough
 * to parse deterministically without an external dependency.
 *
 * Responses are rendered with JsonWriter, which emits fields in
 * insertion order with fixed formatting, so the same response object
 * always serializes to the same bytes -- the foundation of the
 * service's replay-exactness contract.
 */

#ifndef CT_SVC_JSON_H
#define CT_SVC_JSON_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace ct::svc {

/** One scalar value of a flat JSON object. */
struct JsonValue
{
    enum class Kind { String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::string str;     ///< String
    double num = 0.0;    ///< Number
    bool boolean = false; ///< Bool
};

/** A parsed flat object, keys sorted (std::map). */
using JsonObject = std::map<std::string, JsonValue>;

/**
 * Parse one flat JSON object. Rejects nesting, arrays, duplicate
 * keys, trailing garbage and malformed literals with a diagnostic in
 * @p error (when non-null) naming the offending position.
 */
std::optional<JsonObject> parseFlatJson(const std::string &line,
                                        std::string *error);

/** JSON string escaping (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &s);

/**
 * Deterministic single-line JSON object writer: fields appear in the
 * order they were added, numbers print through fixed formats.
 */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key, const std::string &v);
    JsonWriter &field(const std::string &key, const char *v);
    JsonWriter &field(const std::string &key, std::uint64_t v);
    JsonWriter &field(const std::string &key, std::int64_t v);
    JsonWriter &field(const std::string &key, int v);
    JsonWriter &field(const std::string &key, bool v);
    /** Fixed %.3f rendering -- stable across hosts for the
     *  deterministic quantities the service reports. */
    JsonWriter &fixed(const std::string &key, double v);
    /** Verbatim raw JSON fragment (pre-rendered nested value). */
    JsonWriter &raw(const std::string &key, const std::string &json);

    /** The finished single-line object, e.g. {"a":1,"b":"x"}. */
    std::string str() const;

    /** The comma-joined fields without the surrounding braces, for
     *  splicing into another object (the response envelope). */
    const std::string &fragment() const { return body; }

  private:
    JsonWriter &append(const std::string &key,
                       const std::string &rendered);
    std::string body;
};

} // namespace ct::svc

#endif // CT_SVC_JSON_H
