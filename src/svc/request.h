/**
 * @file
 * Request/response model of the planning service (docs/SERVICE.md).
 *
 * Requests arrive as NDJSON: one flat JSON object per line with an
 * integer "id", an "op" of plan | validate | sim | health, and
 * op-specific fields. Parsing is loud: unknown keys, missing
 * required fields, malformed patterns and bad fault/chaos specs are
 * all rejected with a diagnostic naming the offender -- a mistyped
 * request must never silently run a different query than the client
 * asked for.
 *
 * Every response line carries the request id, the op, a "status" of
 * ok | degraded | rejected | error and a "fidelity" of
 * exact | truncated | analytic | none, so a client can always tell
 * not just *what* the answer is but *how much* of the machinery
 * stood behind it.
 */

#ifndef CT_SVC_REQUEST_H
#define CT_SVC_REQUEST_H

#include <cstdint>
#include <optional>
#include <string>

#include "core/pattern.h"
#include "core/machine_params.h"
#include "sim/chaos.h"
#include "sim/fault.h"

namespace ct::svc {

/** The operations a service request can ask for. */
enum class Op { Plan, Validate, Sim, Health };

/** Wire name of an op ("plan", ...). */
const char *opName(Op op);

/** How a request was answered (drives counters and exit codes). */
enum class Status { Ok, Degraded, Rejected, Error };

/** Wire name of a status ("ok", ...). */
const char *statusName(Status s);

/** How much machinery stood behind the numbers in a response. */
enum class Fidelity { Exact, Truncated, Analytic, None };

/** Wire name of a fidelity tier ("exact", ...). */
const char *fidelityName(Fidelity f);

/** One parsed request. */
struct Request
{
    std::uint64_t id = 0;
    Op op = Op::Health;
    core::MachineId machine = core::MachineId::T3d;
    core::AccessPattern x;
    core::AccessPattern y;
    /** Per-node words of a sim exchange. */
    std::uint64_t words = 1024;
    /** Message size for size-aware planning; 0 = steady state only. */
    std::uint64_t bytes = 0;
    /**
     * Deterministic deadline: the cooperative event budget of a sim
     * request. 0 = unlimited (full-fidelity run). Budgets below the
     * service's analytic floor skip the simulator entirely.
     */
    std::uint64_t budget = 0;
    /** Parsed fault/chaos environment of a sim request. */
    sim::FaultSpec faults;
    sim::ChaosSchedule chaos;
    /** Canonical spec renderings (cache-key inputs). */
    std::string faultsSummary;
    std::string chaosSummary;

    /** True when the op needs machine + patterns. */
    bool needsQuery() const
    {
        return op == Op::Plan || op == Op::Sim;
    }

    /**
     * Parse one NDJSON request line. nullopt on any violation with a
     * diagnostic in @p error; @p id_out (when non-null) receives the
     * request id when one was readable, so even a rejected line can
     * be answered with the right id.
     */
    static std::optional<Request> tryParse(const std::string &line,
                                           std::string *error,
                                           std::uint64_t *id_out);
};

/**
 * Best-effort id extraction for responses that must be produced
 * without full parsing (admission rejects). 0 when unreadable.
 */
std::uint64_t peekRequestId(const std::string &line);

} // namespace ct::svc

#endif // CT_SVC_REQUEST_H
