#include "svc/service.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "core/analytic_backend.h"
#include "core/planner.h"
#include "core/machine_params.h"
#include "core/transfer_program.h"
#include "rt/layer.h"
#include "rt/reliable_layer.h"
#include "rt/sim_backend.h"
#include "rt/validation.h"
#include "sim/machine.h"
#include "svc/json.h"
#include "util/logging.h"

namespace ct::svc {

namespace {

/** Wire spelling of a machine id ("t3d" / "paragon"). */
const char *
wireMachineName(core::MachineId id)
{
    return id == core::MachineId::T3d ? "t3d" : "paragon";
}

char
statusCode(Status s)
{
    switch (s) {
    case Status::Ok: return 'O';
    case Status::Degraded: return 'D';
    case Status::Rejected: return 'R';
    case Status::Error: return 'E';
    }
    return '?';
}

char
fidelityCode(Fidelity f)
{
    switch (f) {
    case Fidelity::Exact: return 'x';
    case Fidelity::Truncated: return 't';
    case Fidelity::Analytic: return 'a';
    case Fidelity::None: return 'n';
    }
    return '?';
}

/**
 * Cache payload encoding: status + fidelity codes, ':', then the
 * response's payload fragment. The envelope (id, op) is re-rendered
 * per request, so one cached answer serves every equivalent query.
 */
std::string
encodeCached(Status status, Fidelity fidelity,
             const std::string &fragment)
{
    std::string out;
    out.reserve(fragment.size() + 3);
    out += statusCode(status);
    out += fidelityCode(fidelity);
    out += ':';
    out += fragment;
    return out;
}

bool
decodeCached(const std::string &payload, Status &status,
             Fidelity &fidelity, std::string &fragment)
{
    if (payload.size() < 3 || payload[2] != ':')
        return false;
    switch (payload[0]) {
    case 'O': status = Status::Ok; break;
    case 'D': status = Status::Degraded; break;
    case 'R': status = Status::Rejected; break;
    case 'E': status = Status::Error; break;
    default: return false;
    }
    switch (payload[1]) {
    case 'x': fidelity = Fidelity::Exact; break;
    case 't': fidelity = Fidelity::Truncated; break;
    case 'a': fidelity = Fidelity::Analytic; break;
    case 'n': fidelity = Fidelity::None; break;
    default: return false;
    }
    fragment = payload.substr(3);
    return true;
}

/** Analytic rate of @p program under the request's static fault
 *  load (the service's fast fallback tier). */
double
analyticRateFor(const Request &req,
                const core::TransferProgram &program,
                const sim::MachineConfig &cfg)
{
    core::AnalyticBackend analytic(core::paperTable(req.machine),
                                   rt::executionProfileFor(cfg));
    core::FaultEnvironment env;
    env.packetLoss =
        std::min(0.95, req.faults.drop + req.faults.corrupt);
    env.congestion = core::paperCaps(req.machine).defaultCongestion;
    env.retransmitTimeout = rt::ReliableOptions{}.retransmitTimeout;
    env.packetWords = rt::layerChunkWords;
    if (auto rate = analytic.faultedRate(program, env))
        return *rate;
    // Degenerate programs fall back to the plain steady-state rate.
    if (auto rate =
            analytic.predictRate(program, env.congestion))
        return *rate;
    return 0.0;
}

} // namespace

PlanService::PlanService(ServiceOptions options, ResponseSink sink)
    : opts(std::move(options)), sink(std::move(sink)),
      cache(opts.cacheCapacity),
      epoch(std::chrono::steady_clock::now())
{
    if (opts.workers < 0)
        util::fatal("PlanService: workers must be >= 0");
    if (opts.queueCapacity == 0)
        util::fatal("PlanService: queueCapacity must be positive");
    if (!this->sink)
        util::fatal("PlanService: a response sink is required");

    requestsTotal = registry.counter("svc.requests.total");
    requestsByOp[static_cast<int>(Op::Plan)] =
        registry.counter("svc.requests.plan");
    requestsByOp[static_cast<int>(Op::Validate)] =
        registry.counter("svc.requests.validate");
    requestsByOp[static_cast<int>(Op::Sim)] =
        registry.counter("svc.requests.sim");
    requestsByOp[static_cast<int>(Op::Health)] =
        registry.counter("svc.requests.health");
    responsesOk = registry.counter("svc.responses.ok");
    responsesDegraded = registry.counter("svc.responses.degraded");
    responsesRejected = registry.counter("svc.responses.rejected");
    responsesError = registry.counter("svc.responses.error");
    overloadRejects = registry.counter("svc.queue.overload_rejects");
    chaosSaturationRejects =
        registry.counter("svc.queue.chaos_saturation_rejects");
    chaosStalls = registry.counter("svc.chaos.stalls");
    chaosFlips = registry.counter("svc.chaos.flips");
    deadlineTruncated = registry.counter("svc.deadline.truncated");
    deadlineAnalytic =
        registry.counter("svc.deadline.analytic_fallbacks");
    parseErrors = registry.counter("svc.parse_errors");
    queuePeakDepth = registry.gauge("svc.queue.peak_depth");
}

PlanService::~PlanService()
{
    stop();
}

void
PlanService::start()
{
    if (opts.workers <= 0)
        return;
    // Publish the pool and count the backlog under the one lock, so
    // every admitted line is posted for exactly once: lines pushed
    // before this critical section are covered by the backlog loop,
    // and any submit() that observes a non-null pool pushed (and
    // posts) after the backlog was counted.
    std::size_t backlog;
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        if (pool)
            return;
        pool = std::make_unique<sweep::Farm>(
            sweep::FarmOptions{opts.workers, 0});
        backlog = queue.size();
    }
    for (std::size_t i = 0; i < backlog; ++i)
        pool->post([this](int worker) { runJob(worker); });
}

void
PlanService::submit(const std::string &line)
{
    requestsTotal.inc();

    std::uint64_t index;
    bool chaos_reject = false;
    bool overload_reject = false;
    bool post_now = false;
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        index = nextSubmitIndex++;
        if (opts.chaos.saturatedAt(index))
            chaos_reject = true;
        else if (opts.workers > 0 &&
                 queue.size() >= opts.queueCapacity)
            overload_reject = true;
        else if (opts.workers > 0) {
            queue.push_back(Job{index, line});
            auto depth = static_cast<std::int64_t>(queue.size());
            if (depth > queuePeakDepth.value())
                queuePeakDepth.set(depth);
            // Read pool under the same lock that start() publishes
            // it: either the pool existed when we pushed (we post
            // below) or start()'s backlog count includes this line.
            post_now = pool != nullptr;
        }
    }

    if (chaos_reject || overload_reject) {
        if (chaos_reject)
            chaosSaturationRejects.inc();
        else
            overloadRejects.inc();
        ServiceResponse resp;
        resp.id = peekRequestId(line);
        resp.status = Status::Rejected;
        resp.fidelity = Fidelity::None;
        JsonWriter w;
        w.field("id", resp.id)
            .field("status", statusName(resp.status))
            .field("fidelity", fidelityName(resp.fidelity))
            .field("error", "overloaded");
        resp.line = w.str();
        complete(index, std::move(resp));
        return;
    }

    if (opts.workers == 0) {
        // Degenerate synchronous mode: the caller's thread is the
        // worker (tests and one-shot tools).
        if (opts.chaos.stallFor(index)) {
            chaosStalls.inc();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.chaos.stallMillis));
        }
        complete(index, handleLine(line));
        return;
    }
    if (post_now)
        pool->post([this](int worker) { runJob(worker); });
}

void
PlanService::drain()
{
    std::uint64_t target;
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        target = nextSubmitIndex;
    }
    std::unique_lock<std::mutex> lock(outMutex);
    outCv.wait(lock, [&] { return nextEmitIndex >= target; });
}

void
PlanService::stop()
{
    drain();
    pool.reset();
    publishCacheMetrics();
}

void
PlanService::publishCacheMetrics()
{
    PlanCacheStats s = cache.stats();
    auto mirror = [&](const char *name, std::uint64_t value) {
        obs::Counter c = registry.counter(name);
        c.reset();
        c.add(value);
    };
    mirror("svc.cache.hits", s.hits);
    mirror("svc.cache.misses", s.misses);
    mirror("svc.cache.corrupt_hits", s.corruptHits);
    mirror("svc.cache.insertions", s.insertions);
    mirror("svc.cache.evictions", s.evictions);
}

void
PlanService::runJob(int worker_id)
{
    // One posted task per admitted line, so the ledger is never
    // empty here; taking the front preserves FIFO pickup order even
    // when the farm's steal schedule reorders the tasks themselves.
    Job job;
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        job = std::move(queue.front());
        queue.pop_front();
    }
    if (opts.chaos.stallFor(job.index)) {
        chaosStalls.inc();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.chaos.stallMillis));
    }
    auto start = std::chrono::steady_clock::now();
    ServiceResponse resp = handleLine(job.line);
    if (tracer) {
        auto us = [this](std::chrono::steady_clock::time_point t) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    t - epoch)
                    .count());
        };
        auto end = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(tracerMutex);
        tracer->span("svc", "request", worker_id, us(start),
                     us(end) - us(start), "id", resp.id);
    }
    complete(job.index, std::move(resp));
}

void
PlanService::complete(std::uint64_t index, ServiceResponse &&response)
{
    {
        std::lock_guard<std::mutex> lock(outMutex);
        outOfOrder.emplace(index, std::move(response));
        // Flush in arrival order; the sink runs under the lock so
        // emissions are serialized and ordered by construction.
        while (!outOfOrder.empty() &&
               outOfOrder.begin()->first == nextEmitIndex) {
            const ServiceResponse &out = outOfOrder.begin()->second;
            switch (out.status) {
            case Status::Ok: responsesOk.inc(); break;
            case Status::Degraded: responsesDegraded.inc(); break;
            case Status::Rejected: responsesRejected.inc(); break;
            case Status::Error: responsesError.inc(); break;
            }
            sink(out);
            outOfOrder.erase(outOfOrder.begin());
            ++nextEmitIndex;
        }
    }
    outCv.notify_all();
}

ServiceResponse
PlanService::handleLine(const std::string &line)
{
    std::string error;
    std::uint64_t id = 0;
    auto req = Request::tryParse(line, &error, &id);
    if (!req) {
        parseErrors.inc();
        ServiceResponse resp;
        resp.id = id;
        resp.status = Status::Error;
        resp.fidelity = Fidelity::None;
        JsonWriter w;
        w.field("id", id)
            .field("status", statusName(resp.status))
            .field("fidelity", fidelityName(resp.fidelity))
            .field("error", error);
        resp.line = w.str();
        return resp;
    }
    requestsByOp[static_cast<int>(req->op)].inc();
    return handleParsed(*req);
}

ServiceResponse
PlanService::handleParsed(const Request &request)
{
    switch (request.op) {
    case Op::Plan: return handlePlan(request);
    case Op::Sim: return handleSim(request);
    case Op::Validate: return handleValidate(request);
    case Op::Health: return handleHealth(request);
    }
    util::fatal("PlanService: unreachable op");
}

ServiceResponse
PlanService::finish(const Request &request, Status status,
                    Fidelity fidelity, const std::string &fragment,
                    const std::string &cache_key)
{
    if (!cache_key.empty()) {
        cache.insert(cache_key,
                     encodeCached(status, fidelity, fragment));
        // Self-chaos: corrupt the just-stamped entry so the *next*
        // lookup exercises the detection path. Keyed on the cache
        // key, so replays corrupt the same entries no matter how the
        // pool interleaved.
        if (auto bit = opts.chaos.flipBitFor(cache_key)) {
            cache.corruptBit(cache_key, *bit);
            chaosFlips.inc();
        }
    }
    ServiceResponse resp;
    resp.id = request.id;
    resp.status = status;
    resp.fidelity = fidelity;
    JsonWriter w;
    w.field("id", request.id)
        .field("op", opName(request.op))
        .field("status", statusName(status))
        .field("fidelity", fidelityName(fidelity));
    std::string line = w.str();
    if (!fragment.empty()) {
        line.pop_back(); // strip '}'
        line += ',';
        line += fragment;
        line += '}';
    }
    resp.line = std::move(line);
    return resp;
}

ServiceResponse
PlanService::handlePlan(const Request &request)
{
    std::string key = core::canonicalQueryKey(
        "plan", request.machine, request.x, request.y, 0,
        request.bytes, 0, "", "");
    if (auto hit = cache.lookup(key)) {
        Status status;
        Fidelity fidelity;
        std::string fragment;
        if (decodeCached(*hit, status, fidelity, fragment))
            return finish(request, status, fidelity, fragment, "");
    }

    core::PlanQuery query{request.machine, request.x, request.y, 0.0};
    auto plans = core::plan(query);

    JsonWriter w;
    w.field("machine", wireMachineName(request.machine))
        .field("xqy",
               request.x.label() + "Q" + request.y.label())
        .field("best", plans.front().strategy.program.styleKey);
    w.fixed("best_mbps", plans.front().estimate);
    std::ostringstream styles;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", plans[i].estimate);
        styles << (i ? "," : "")
               << plans[i].strategy.program.styleKey << '=' << buf;
    }
    w.field("styles", styles.str());
    if (request.bytes > 0) {
        auto sized = core::planForSize(request.machine, request.x,
                                       request.y, request.bytes);
        w.field("message_bytes", request.bytes);
        if (!sized.empty()) {
            w.field("best_sized", sized.front().key);
            w.fixed("effective_mbps", sized.front().effective);
            w.field("half_power_bytes",
                    static_cast<std::uint64_t>(
                        sized.front().halfPower));
        }
    }
    return finish(request, Status::Ok, Fidelity::Analytic,
                  w.fragment(), key);
}

ServiceResponse
PlanService::handleSim(const Request &request)
{
    std::uint64_t budget =
        request.budget > 0 ? request.budget : opts.defaultBudget;
    std::string key = core::canonicalQueryKey(
        "sim", request.machine, request.x, request.y, request.words,
        0, budget, request.faultsSummary, request.chaosSummary);
    if (auto hit = cache.lookup(key)) {
        Status status;
        Fidelity fidelity;
        std::string fragment;
        if (decodeCached(*hit, status, fidelity, fragment)) {
            if (fidelity == Fidelity::Truncated)
                deadlineTruncated.inc();
            else if (fidelity == Fidelity::Analytic)
                deadlineAnalytic.inc();
            return finish(request, status, fidelity, fragment, "");
        }
    }

    sim::MachineConfig cfg = sim::configFor(request.machine);
    cfg.faults = request.faults;
    cfg.chaos = request.chaos;

    core::PlanQuery query{request.machine, request.x, request.y, 0.0};
    core::PlannedStrategy best = core::bestPlan(query);
    const core::TransferProgram &base = best.strategy.program;

    JsonWriter w;
    w.field("machine", wireMachineName(request.machine))
        .field("xqy", request.x.label() + "Q" + request.y.label())
        .field("words", request.words)
        .field("style", base.styleKey)
        .field("budget", budget);

    if (budget > 0 && budget < opts.analyticFloor) {
        // Bottom rung: the budget cannot buy a meaningful sim, so
        // answer from the model immediately (microseconds, and a
        // principled estimate rather than a garbage partial run).
        deadlineAnalytic.inc();
        w.fixed("analytic_mbps", analyticRateFor(request, base, cfg));
        return finish(request, Status::Degraded, Fidelity::Analytic,
                      w.fragment(), key);
    }

    rt::SimBackend backend(cfg);
    backend.setEventBudget(budget);
    core::TransferProgram program =
        core::withReliability(base);
    rt::SimRun run = backend.exchange(program, request.words);

    w.field("layer", run.layerName)
        .field("events", run.eventsExecuted)
        .field("makespan_cycles",
               static_cast<std::uint64_t>(run.result.makespan));

    if (run.truncated) {
        // Middle rung: the sim ran out of budget mid-flight. Report
        // the progress made plus the model's view of the full run.
        deadlineTruncated.inc();
        w.fixed("analytic_mbps", analyticRateFor(request, base, cfg));
        return finish(request, Status::Degraded, Fidelity::Truncated,
                      w.fragment(), key);
    }
    if (run.corruptWords > 0) {
        w.field("corrupt_words", run.corruptWords)
            .field("error", "delivery corrupted");
        return finish(request, Status::Error, Fidelity::Exact,
                      w.fragment(), key);
    }
    w.fixed("goodput_mbps", run.perNodeMBps);
    if (run.result.degraded)
        w.field("transport_degraded", true);
    return finish(request, Status::Ok, Fidelity::Exact, w.fragment(),
                  key);
}

ServiceResponse
PlanService::handleValidate(const Request &request)
{
    // A plain local, deliberately: a function-local static here
    // would add a hidden guard-variable rendezvous between workers
    // (the shared-static audit in DESIGN.md §14 flags exactly this).
    const std::string key = "validate|all";
    if (auto hit = cache.lookup(key)) {
        Status status;
        Fidelity fidelity;
        std::string fragment;
        if (decodeCached(*hit, status, fidelity, fragment))
            return finish(request, status, fidelity, fragment, "");
    }
    rt::ValidationReport report = rt::crossValidate();
    JsonWriter w;
    w.field("cells",
            static_cast<std::uint64_t>(report.cells.size()));
    w.fixed("worst_err_pct", report.worstAbsErrPct);
    w.fixed("tolerance_pct", report.options.tolerancePct);
    w.field("all_pass", report.allPass);
    return finish(request, Status::Ok, Fidelity::Exact, w.fragment(),
                  key);
}

ServiceResponse
PlanService::handleHealth(const Request &request)
{
    JsonWriter w;
    w.field("workers", opts.workers)
        .field("queue_capacity",
               static_cast<std::uint64_t>(opts.queueCapacity))
        .field("cache_capacity",
               static_cast<std::uint64_t>(opts.cacheCapacity))
        .field("svc_chaos", opts.chaos.summary());
    return finish(request, Status::Ok, Fidelity::Exact, w.fragment(),
                  "");
}

} // namespace ct::svc
