#include "svc/plan_cache.h"

#include <algorithm>

#include "util/crc32c.h"
#include "util/logging.h"

namespace ct::svc {

PlanCache::PlanCache(std::size_t capacity) : cap(capacity)
{
    if (cap == 0)
        util::fatal("PlanCache: capacity must be positive");
}

std::uint32_t
PlanCache::stamp(const std::string &key, const std::string &payload)
{
    std::uint32_t state = 0xFFFFFFFFu;
    state = util::crc32cUpdate(state, key.data(), key.size());
    state = util::crc32cUpdate(state, payload.data(), payload.size());
    return state ^ 0xFFFFFFFFu;
}

std::optional<std::string>
PlanCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end()) {
        ++counters.misses;
        return std::nullopt;
    }
    if (stamp(key, it->second.payload) != it->second.crc) {
        // A corrupt hit is a miss, never data: drop the entry so the
        // recomputed answer replaces it.
        ++counters.corruptHits;
        entries.erase(it);
        insertionOrder.erase(std::find(insertionOrder.begin(),
                                       insertionOrder.end(), key));
        return std::nullopt;
    }
    ++counters.hits;
    return it->second.payload;
}

void
PlanCache::insert(const std::string &key, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it != entries.end()) {
        // Overwrite in place (refreshing a dropped-corrupt or stale
        // entry); insertion order keeps the original slot.
        it->second.payload = payload;
        it->second.crc = stamp(key, payload);
        ++counters.insertions;
        return;
    }
    while (entries.size() >= cap) {
        entries.erase(insertionOrder.front());
        insertionOrder.pop_front();
        ++counters.evictions;
    }
    entries.emplace(key, Entry{payload, stamp(key, payload)});
    insertionOrder.push_back(key);
    ++counters.insertions;
}

bool
PlanCache::corruptBit(const std::string &key, std::uint32_t bit_index)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end() || it->second.payload.empty())
        return false;
    std::string &payload = it->second.payload;
    std::size_t bits = payload.size() * 8;
    std::size_t bit = bit_index % bits;
    payload[bit / 8] =
        static_cast<char>(static_cast<unsigned char>(payload[bit / 8]) ^
                          (1u << (bit % 8)));
    return true;
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

} // namespace ct::svc
