#include "svc/chaos.h"

#include <cstdlib>
#include <sstream>

#include "util/rng.h"

namespace ct::svc {

namespace {

/** FNV-1a over a byte string (stable decision hashing). */
std::uint64_t
fnv1a(const std::string &s, std::uint64_t state)
{
    for (unsigned char c : s) {
        state ^= c;
        state *= 0x100000001B3ULL;
    }
    return state;
}

std::uint64_t
fnv1aU64(std::uint64_t v, std::uint64_t state)
{
    for (int i = 0; i < 8; ++i) {
        state ^= (v >> (i * 8)) & 0xFFu;
        state *= 0x100000001B3ULL;
    }
    return state;
}

/**
 * Private decision stream: seed mixed with a per-purpose tag and the
 * stable identifier. Each decision draws from a fresh Rng so no
 * ordering between decisions can shift any other decision.
 */
util::Rng
streamFor(std::uint64_t seed, const char *tag, std::uint64_t id)
{
    std::uint64_t h = fnv1a(tag, 0xcbf29ce484222325ULL);
    h = fnv1aU64(id, h);
    return util::Rng(seed ^ h);
}

util::Rng
streamForKey(std::uint64_t seed, const char *tag,
             const std::string &key)
{
    std::uint64_t h = fnv1a(tag, 0xcbf29ce484222325ULL);
    h = fnv1a(key, h);
    return util::Rng(seed ^ h);
}

bool
splitFields(const std::string &item, std::vector<std::string> &out)
{
    out.clear();
    std::size_t start = 0;
    while (true) {
        std::size_t colon = item.find(':', start);
        if (colon == std::string::npos) {
            out.push_back(item.substr(start));
            return !out.back().empty();
        }
        out.push_back(item.substr(start, colon - start));
        if (out.back().empty())
            return false;
        start = colon + 1;
    }
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (*end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseRate(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (*end != '\0' || v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

} // namespace

bool
SvcChaos::stallFor(std::uint64_t index) const
{
    if (stallRate <= 0.0)
        return false;
    util::Rng rng = streamFor(seed, "svc.stall", index);
    return rng.nextDouble() < stallRate;
}

std::optional<std::uint32_t>
SvcChaos::flipBitFor(const std::string &key) const
{
    if (flipRate <= 0.0)
        return std::nullopt;
    util::Rng rng = streamForKey(seed, "svc.flip", key);
    if (rng.nextDouble() >= flipRate)
        return std::nullopt;
    return static_cast<std::uint32_t>(rng.nextBelow(1u << 20));
}

bool
SvcChaos::saturatedAt(std::uint64_t index) const
{
    for (const SaturationWindow &w : saturations)
        if (index >= w.start && index - w.start < w.count)
            return true;
    return false;
}

std::optional<SvcChaos>
SvcChaos::tryParse(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    SvcChaos chaos;
    // "none" is the canonical rendering of an inactive plan (see
    // summary()); accept it so summaries always round-trip.
    if (spec.empty() || spec == "none")
        return chaos;

    std::vector<std::string> items;
    std::size_t start = 0;
    while (true) {
        std::size_t semi = spec.find(';', start);
        if (semi == std::string::npos) {
            items.push_back(spec.substr(start));
            break;
        }
        items.push_back(spec.substr(start, semi - start));
        start = semi + 1;
    }

    bool seed_seen = false, stall_seen = false, flip_seen = false;
    for (const std::string &item : items) {
        if (item.empty())
            return fail("empty item in svc-chaos spec");

        std::vector<std::string> f;
        if (!splitFields(item, f))
            return fail("empty field in svc-chaos item '" + item +
                        "'");
        const std::string &verb = f[0];
        if (verb == "seed") {
            if (f.size() != 2 || !parseU64(f[1], chaos.seed))
                return fail("bad seed item '" + item +
                            "' (expected seed:N)");
            if (seed_seen)
                return fail("duplicate seed item '" + item + "'");
            seed_seen = true;
        } else if (verb == "stall") {
            std::uint64_t ms = 0;
            if (f.size() != 3 || !parseRate(f[1], chaos.stallRate) ||
                !parseU64(f[2], ms) || ms > 60000)
                return fail("bad stall item '" + item +
                            "' (expected stall:RATE:MS, rate in "
                            "[0,1], ms <= 60000)");
            if (stall_seen)
                return fail("duplicate stall item '" + item + "'");
            chaos.stallMillis = static_cast<std::uint32_t>(ms);
            stall_seen = true;
        } else if (verb == "flip") {
            if (f.size() != 2 || !parseRate(f[1], chaos.flipRate))
                return fail("bad flip item '" + item +
                            "' (expected flip:RATE, rate in [0,1])");
            if (flip_seen)
                return fail("duplicate flip item '" + item + "'");
            flip_seen = true;
        } else if (verb == "satq") {
            SaturationWindow w;
            if (f.size() != 3 || !parseU64(f[1], w.start) ||
                !parseU64(f[2], w.count) || w.count == 0)
                return fail("bad satq item '" + item +
                            "' (expected satq:START:COUNT, "
                            "count > 0)");
            chaos.saturations.push_back(w);
        } else
            return fail("unknown svc-chaos verb '" + verb + "'");
    }
    return chaos;
}

std::string
SvcChaos::summary() const
{
    if (!any())
        return "none";
    std::ostringstream os;
    os << "seed:" << seed;
    if (stallRate > 0.0)
        os << ";stall:" << stallRate << ':' << stallMillis;
    if (flipRate > 0.0)
        os << ";flip:" << flipRate;
    for (const SaturationWindow &w : saturations)
        os << ";satq:" << w.start << ':' << w.count;
    return os.str();
}

} // namespace ct::svc
