/**
 * @file
 * Deterministic service-level self-chaos. Where sim::ChaosSchedule
 * perturbs the simulated wire, SvcChaos perturbs the *service
 * around* the simulator: worker stalls, cache-entry bit flips and
 * admission-queue saturation, so the service's failure behavior is
 * tested with the same replay-exact discipline as the simulator's.
 *
 * Spec grammar (same shape as the simulator's chaos specs --
 * semicolon-separated items, colon-separated fields):
 *
 *     seed:N               decision seed
 *     stall:RATE:MS        each admitted request stalls its worker
 *                          for MS wall-milliseconds with
 *                          probability RATE
 *     flip:RATE            each cache insertion gets one seed-drawn
 *                          bit of its stored payload flipped with
 *                          probability RATE (the stamp is NOT
 *                          refreshed: the next hit must detect it)
 *     satq:START:COUNT     requests with arrival index in
 *                          [START, START+COUNT) are refused
 *                          admission as if the queue were full
 *
 * Determinism contract: every decision is a pure function of the
 * seed and a stable identifier -- the request's arrival index for
 * stall/satq, the cache key for flip -- never of worker timing or
 * completion order. Two replays of the same request stream under
 * the same spec therefore make identical decisions even though the
 * worker pool schedules differently. Unknown verbs, wrong field
 * counts, out-of-range rates and trailing garbage are rejected
 * loudly with the offending token, exactly like the simulator's
 * spec parsers.
 */

#ifndef CT_SVC_CHAOS_H
#define CT_SVC_CHAOS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ct::svc {

/** A replayable service-fault plan (see file comment). */
struct SvcChaos
{
    /** One satq window of refused admissions. */
    struct SaturationWindow
    {
        std::uint64_t start = 0;
        std::uint64_t count = 0;
    };

    std::uint64_t seed = 1;
    double stallRate = 0.0;
    std::uint32_t stallMillis = 0;
    double flipRate = 0.0;
    std::vector<SaturationWindow> saturations;

    /** True when the spec perturbs anything. */
    bool any() const
    {
        return stallRate > 0.0 || flipRate > 0.0 ||
               !saturations.empty();
    }

    /** Should the worker handling arrival @p index stall? */
    bool stallFor(std::uint64_t index) const;

    /**
     * Bit to flip in the payload cached under @p key (taken modulo
     * the payload's bit length), or nullopt to leave it intact.
     */
    std::optional<std::uint32_t>
    flipBitFor(const std::string &key) const;

    /** Is arrival @p index inside a refused-admission window? */
    bool saturatedAt(std::uint64_t index) const;

    /**
     * Non-fatal parse; nullopt on error with a diagnostic naming the
     * offending token in @p error (when non-null).
     */
    static std::optional<SvcChaos> tryParse(const std::string &spec,
                                            std::string *error);

    /** Canonical one-line rendering (round-trips through tryParse). */
    std::string summary() const;
};

} // namespace ct::svc

#endif // CT_SVC_CHAOS_H
