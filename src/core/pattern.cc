#include "pattern.h"

#include <charconv>
#include <tuple>

#include "util/logging.h"
#include "util/string_util.h"

namespace ct::core {

AccessPattern
AccessPattern::fixed()
{
    return {PatternKind::Fixed, 0, 0};
}

AccessPattern
AccessPattern::contiguous()
{
    return {PatternKind::Contiguous, 1, 1};
}

AccessPattern
AccessPattern::strided(std::uint32_t stride_words,
                       std::uint32_t block_words)
{
    if (stride_words == 0 || block_words == 0)
        util::fatal("AccessPattern::strided: zero stride or block");
    if (block_words > stride_words)
        util::fatal("AccessPattern::strided: block (", block_words,
                    ") larger than stride (", stride_words, ")");
    if (stride_words == block_words)
        return contiguous();
    return {PatternKind::Strided, stride_words, block_words};
}

AccessPattern
AccessPattern::indexed()
{
    return {PatternKind::Indexed, 0, 0};
}

namespace {

std::optional<std::uint32_t>
parseNumber(std::string_view s)
{
    if (!util::isAllDigits(s))
        return std::nullopt;
    std::uint32_t value = 0;
    auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc() || ptr != s.data() + s.size())
        return std::nullopt;
    return value;
}

} // namespace

std::optional<AccessPattern>
AccessPattern::parse(std::string_view text)
{
    auto s = util::trim(text);
    if (s == "w" || s == "omega" || s == "W")
        return indexed();

    // "stride.block" for block-strided patterns.
    if (auto dot = s.find('.'); dot != std::string_view::npos) {
        auto stride = parseNumber(s.substr(0, dot));
        auto block = parseNumber(s.substr(dot + 1));
        if (!stride || !block || *stride == 0 || *block == 0 ||
            *block > *stride)
            return std::nullopt;
        return strided(*stride, *block);
    }

    auto value = parseNumber(s);
    if (!value)
        return std::nullopt;
    if (*value == 0)
        return fixed();
    return strided(*value);
}

std::string
AccessPattern::label() const
{
    switch (kindValue) {
      case PatternKind::Fixed:
        return "0";
      case PatternKind::Contiguous:
        return "1";
      case PatternKind::Strided:
        if (blockWords > 1)
            return std::to_string(strideWords) + "." +
                   std::to_string(blockWords);
        return std::to_string(strideWords);
      case PatternKind::Indexed:
        return "w";
    }
    util::panic("AccessPattern::label: bad kind");
}

bool
PatternLess::operator()(const AccessPattern &a,
                        const AccessPattern &b) const
{
    return std::tuple(static_cast<int>(a.kind()), a.stride(),
                      a.block()) <
           std::tuple(static_cast<int>(b.kind()), b.stride(),
                      b.block());
}

} // namespace ct::core
