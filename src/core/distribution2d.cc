#include "distribution2d.h"

#include "util/logging.h"

namespace ct::core {

DimSpec
DimSpec::whole(std::uint64_t extent)
{
    if (extent == 0)
        util::fatal("DimSpec::whole: empty dimension");
    DimSpec s;
    s.wholeExtent = extent;
    return s;
}

DimSpec
DimSpec::dist(const Distribution &d)
{
    DimSpec s;
    s.distributed = d;
    return s;
}

std::uint64_t
DimSpec::extent() const
{
    return isWhole() ? wholeExtent : distributed->elements();
}

int
DimSpec::gridNodes() const
{
    return isWhole() ? 1 : distributed->nodes();
}

const Distribution &
DimSpec::distribution() const
{
    if (isWhole())
        util::fatal("DimSpec: dimension is not distributed");
    return *distributed;
}

Distribution2d::Distribution2d(DimSpec row_spec, DimSpec col_spec)
    : rowSpec(std::move(row_spec)), colSpec(std::move(col_spec))
{
}

std::uint64_t
Distribution2d::localRowCount(int grid_row) const
{
    return rowSpec.isWhole() ? rowSpec.extent()
                             : rowSpec.distribution().localCount(
                                   grid_row);
}

std::uint64_t
Distribution2d::localColCount(int grid_col) const
{
    return colSpec.isWhole() ? colSpec.extent()
                             : colSpec.distribution().localCount(
                                   grid_col);
}

int
Distribution2d::ownerOf(std::uint64_t i, std::uint64_t j) const
{
    int grid_row =
        rowSpec.isWhole() ? 0 : rowSpec.distribution().ownerOf(i);
    int grid_col =
        colSpec.isWhole() ? 0 : colSpec.distribution().ownerOf(j);
    return grid_row * colSpec.gridNodes() + grid_col;
}

std::uint64_t
Distribution2d::localOffsetOf(std::uint64_t i, std::uint64_t j) const
{
    std::uint64_t li =
        rowSpec.isWhole() ? i : rowSpec.distribution().localIndexOf(i);
    std::uint64_t lj =
        colSpec.isWhole() ? j : colSpec.distribution().localIndexOf(j);
    int grid_col =
        colSpec.isWhole() ? 0 : colSpec.distribution().ownerOf(j);
    return li * localColCount(grid_col) + lj;
}

std::uint64_t
Distribution2d::localWords(int node) const
{
    if (node < 0 || node >= nodes())
        util::fatal("Distribution2d::localWords: bad node");
    int grid_row = node / colSpec.gridNodes();
    int grid_col = node % colSpec.gridNodes();
    return localRowCount(grid_row) * localColCount(grid_col);
}

std::string
Distribution2d::name() const
{
    auto dim = [](const DimSpec &s) {
        return s.isWhole() ? std::string("*") : s.distribution().name();
    };
    std::string out = "(";
    out += dim(rowSpec);
    out += ", ";
    out += dim(colSpec);
    out += ")";
    return out;
}

Redist2dPair
redistribution2dIndices(const Distribution2d &from,
                        const Distribution2d &to, int sender,
                        int receiver, bool transpose)
{
    std::uint64_t rows = to.rows();
    std::uint64_t cols = to.cols();
    if (!transpose &&
        (from.rows() != rows || from.cols() != cols))
        util::fatal("redistribution2dIndices: shape mismatch");
    if (transpose &&
        (from.rows() != cols || from.cols() != rows))
        util::fatal("redistribution2dIndices: transposed shape "
                    "mismatch");

    Redist2dPair pair;
    // Walk the receiver's local storage in order (row-major), so the
    // destination offsets come out sorted; classifyIndices then
    // recognizes the induced pattern on both sides.
    for (std::uint64_t i = 0; i < rows; ++i) {
        for (std::uint64_t j = 0; j < cols; ++j) {
            if (to.ownerOf(i, j) != receiver)
                continue;
            std::uint64_t si = transpose ? j : i;
            std::uint64_t sj = transpose ? i : j;
            if (from.ownerOf(si, sj) != sender)
                continue;
            pair.srcOffsets.push_back(from.localOffsetOf(si, sj));
            pair.dstOffsets.push_back(to.localOffsetOf(i, j));
        }
    }
    return pair;
}

} // namespace ct::core
