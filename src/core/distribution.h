/**
 * @file
 * HPF-style array distributions (paper §2.1). A parallelizing
 * compiler maps an array over the nodes with a BLOCK, CYCLIC or
 * BLOCK-CYCLIC(k) distribution; array assignments between arrays
 * with different distributions become the communication operations
 * xQy this library models. This module provides the ownership
 * arithmetic and derives the memory access pattern each
 * redistribution induces.
 */

#ifndef CT_CORE_DISTRIBUTION_H
#define CT_CORE_DISTRIBUTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/pattern.h"

namespace ct::core {

/** The standard-HPF distribution formats (§2.1). */
enum class DistKind {
    Block,       ///< contiguous chunks of ceil(n/p) elements
    Cyclic,      ///< element i lives on node i mod p
    BlockCyclic, ///< blocks of k elements dealt round-robin
};

/**
 * One dimension's distribution over @p nodes() nodes of an array of
 * @p elements() elements. Immutable value type.
 */
class Distribution
{
  public:
    /** BLOCK distribution of @p n elements over @p p nodes. */
    static Distribution block(std::uint64_t n, int p);

    /** CYCLIC distribution. */
    static Distribution cyclic(std::uint64_t n, int p);

    /** BLOCK-CYCLIC(k) distribution. */
    static Distribution blockCyclic(std::uint64_t n, int p,
                                    std::uint64_t k);

    DistKind kind() const { return kindValue; }
    std::uint64_t elements() const { return n; }
    int nodes() const { return p; }

    /** Block size: n/p-ish for Block, 1 for Cyclic, k otherwise. */
    std::uint64_t blockSize() const { return k; }

    /** The node owning global element @p i. */
    int ownerOf(std::uint64_t i) const;

    /** Position of global element @p i within its owner's storage. */
    std::uint64_t localIndexOf(std::uint64_t i) const;

    /** Number of elements stored on @p node. */
    std::uint64_t localCount(int node) const;

    /** Global index of @p node's local element @p li. */
    std::uint64_t globalIndexOf(int node, std::uint64_t li) const;

    /** "BLOCK", "CYCLIC" or "BLOCK-CYCLIC(k)". */
    std::string name() const;

    bool operator==(const Distribution &other) const = default;

  private:
    Distribution(DistKind kind, std::uint64_t n, int p,
                 std::uint64_t k);

    DistKind kindValue = DistKind::Block;
    std::uint64_t n = 0;
    int p = 1;
    std::uint64_t k = 1; ///< block size
};

/**
 * Classify a sorted list of local word indices into the access
 * pattern a compiler-generated loop over them would show: contiguous,
 * (block-)strided, or indexed. This is how the redistribution layer
 * recognizes that e.g. BLOCK -> CYCLIC sends with a constant stride.
 */
AccessPattern classifyIndices(const std::vector<std::uint64_t> &indices);

/**
 * The element traffic of a redistribution A(to) = B(from): for the
 * (sender, receiver) pair, the global indices that move, in receiver
 * storage order.
 */
std::vector<std::uint64_t>
redistributionIndices(const Distribution &from, const Distribution &to,
                      int sender, int receiver);

} // namespace ct::core

#endif // CT_CORE_DISTRIBUTION_H
