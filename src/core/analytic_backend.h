/**
 * @file
 * The analytic backend: rates a TransferProgram with the paper's
 * copy-transfer model. Three levels of fidelity:
 *
 *  - rate(): the steady-state algebra of §3.3 (sequential stages
 *    share resources -> reciprocal sum; parallel stages -> min),
 *    evaluated on the program's expr with its resource constraints.
 *  - costModel(): the latency extension — rate() plus the program's
 *    own per-message/per-step software costs, giving throughput as a
 *    function of message size and the half-power point.
 *  - predictRate(): the execution-aware predictor used for
 *    cross-validation against the simulator. It rates the program's
 *    *stages* grouped by hardware resource, adding the effects the
 *    steady-state algebra abstracts away: the shared-bus
 *    interleaving term of §5.1.4 (processor line fills serialize
 *    with engine bus bursts), per-chunk DMA setup amortization, and
 *    the sender-side address stream of chained transfers.
 */

#ifndef CT_CORE_ANALYTIC_BACKEND_H
#define CT_CORE_ANALYTIC_BACKEND_H

#include "core/latency_model.h"
#include "core/transfer_program.h"

namespace ct::core {

/**
 * Execution parameters of a machine beyond its throughput table —
 * what the execution-aware predictor needs to know about *how* the
 * runtime layers drive the hardware. rt::executionProfileFor()
 * derives one from a simulator machine config.
 */
struct ExecutionProfile
{
    /** Node clock, for converting cycle costs to time. */
    double clockHz = 0.0;
    /**
     * True when processors and engines contend on one memory bus
     * (Paragon): contiguous processor loads then serialize with
     * engine bursts instead of overlapping them (§5.1.4).
     */
    bool sharedBus = false;
    /** Words moved per pipelined chunk by the runtime layers. */
    std::uint64_t chunkWords = 64;
    /** Per-chunk setup cost of the DMA fetch engine, paid by layers
     *  that kick the engine once per chunk. */
    util::Cycles dmaChunkSetupCycles = 0;
    /** Rate of a pure contiguous index-load stream (the machine's
     *  load-only bandwidth), used for addressCompute stages. */
    util::MBps indexStreamMBps = 0.0;
};

/**
 * The measured fault environment a program executes under, sampled by
 * a closed-loop controller at a round boundary. The backend folds it
 * into the cost surface: every lost packet is eventually resent, so
 * the extra copies serialize on the program's wire stage (at that
 * style's own framing rate — address-data pairs pay twice the bytes
 * of data framing), and the transport detects each loss by a timer,
 * stalling roughly one retransmit timeout per lost transmission. The
 * stall term is style-independent; the wire term is what moves the
 * chained/packing break-even point.
 */
struct FaultEnvironment
{
    /** Per-packet wire loss probability (drops + corruptions). */
    double packetLoss = 0.0;
    /** Observed congestion factor of the traffic pattern. */
    double congestion = 1.0;
    /** Transport retransmission timeout (detection stall per loss). */
    util::Cycles retransmitTimeout = 0;
    /** Payload words per wire packet (the layers' chunk size). */
    std::uint64_t packetWords = 64;
};

/** Rates TransferPrograms against one machine's throughput table. */
class AnalyticBackend
{
  public:
    AnalyticBackend(ThroughputTable table, ExecutionProfile profile);

    /** Steady-state model rate (the paper's algebra, with the
     *  program's resource constraints applied). */
    std::optional<util::MBps> rate(const TransferProgram &program,
                                   double congestion) const;

    /** rate() extended with the program's software costs. */
    std::optional<MessageCostModel>
    costModel(const TransferProgram &program,
              double congestion) const;

    /**
     * Execution-aware steady-state prediction (see file comment).
     * @p congestion applies to the wire stage only.
     */
    std::optional<util::MBps>
    predictRate(const TransferProgram &program,
                double congestion) const;

    /** predictRate() pushed through the latency model: effective
     *  throughput for one message of @p bytes. */
    std::optional<util::MBps>
    predictThroughputAt(const TransferProgram &program,
                        util::Bytes bytes, double congestion) const;

    /**
     * predictRate() under a measured fault environment: the base
     * prediction at env.congestion, degraded by retransmission wire
     * traffic and timeout-detection stalls (see FaultEnvironment).
     */
    std::optional<util::MBps>
    faultedRate(const TransferProgram &program,
                const FaultEnvironment &env) const;

    /**
     * Packet-loss probability at which programs @p a and @p b rate
     * equal under @p env (env.packetLoss is ignored; congestion and
     * transport parameters are held fixed). nullopt when the faulted
     * rates never cross on [0, 0.95] — one style dominates the whole
     * loss range.
     */
    std::optional<double>
    breakEvenLoss(const TransferProgram &a, const TransferProgram &b,
                  const FaultEnvironment &env) const;

    /**
     * Congestion factor at which @p a and @p b rate equal under
     * @p env (env.congestion ignored, loss held fixed). nullopt when
     * the surfaces never cross on [1, @p maxCongestion].
     */
    std::optional<double>
    breakEvenCongestion(const TransferProgram &a,
                        const TransferProgram &b,
                        const FaultEnvironment &env,
                        double maxCongestion = 16.0) const;

    const ThroughputTable &table() const { return table_; }
    const ExecutionProfile &profile() const { return profile_; }

  private:
    ThroughputTable table_;
    ExecutionProfile profile_;
};

} // namespace ct::core

#endif // CT_CORE_ANALYTIC_BACKEND_H
