#include "basic_transfer.h"

#include <cmath>
#include <tuple>
#include <vector>

#include "util/logging.h"

namespace ct::core {

bool
isNetworkOp(TransferOp op)
{
    return op == TransferOp::NetData || op == TransferOp::NetAddrData;
}

bool
isProcessorOp(TransferOp op)
{
    return op == TransferOp::LocalCopy || op == TransferOp::LoadSend ||
           op == TransferOp::ReceiveStore;
}

std::string
opName(TransferOp op)
{
    switch (op) {
      case TransferOp::LocalCopy:
        return "C";
      case TransferOp::LoadSend:
        return "S";
      case TransferOp::FetchSend:
        return "F";
      case TransferOp::ReceiveStore:
        return "R";
      case TransferOp::ReceiveDeposit:
        return "D";
      case TransferOp::NetData:
        return "Nd";
      case TransferOp::NetAddrData:
        return "Nadp";
    }
    util::panic("opName: bad op");
}

std::string
BasicTransfer::name() const
{
    if (isNetworkOp(op))
        return opName(op);
    return read.label() + opName(op) + write.label();
}

BasicTransfer
localCopy(AccessPattern read, AccessPattern write)
{
    if (read.isFixed() || write.isFixed())
        util::fatal("localCopy: fixed pattern not allowed in xCy");
    return {TransferOp::LocalCopy, read, write};
}

BasicTransfer
loadSend(AccessPattern read)
{
    if (read.isFixed())
        util::fatal("loadSend: read pattern must touch memory");
    return {TransferOp::LoadSend, read, AccessPattern::fixed()};
}

BasicTransfer
fetchSend(AccessPattern read)
{
    if (read.isFixed())
        util::fatal("fetchSend: read pattern must touch memory");
    return {TransferOp::FetchSend, read, AccessPattern::fixed()};
}

BasicTransfer
receiveStore(AccessPattern write)
{
    if (write.isFixed())
        util::fatal("receiveStore: write pattern must touch memory");
    return {TransferOp::ReceiveStore, AccessPattern::fixed(), write};
}

BasicTransfer
receiveDeposit(AccessPattern write)
{
    if (write.isFixed())
        util::fatal("receiveDeposit: write pattern must touch memory");
    return {TransferOp::ReceiveDeposit, AccessPattern::fixed(), write};
}

BasicTransfer
netData()
{
    return {TransferOp::NetData, AccessPattern::fixed(),
            AccessPattern::fixed()};
}

BasicTransfer
netAddrData()
{
    return {TransferOp::NetAddrData, AccessPattern::fixed(),
            AccessPattern::fixed()};
}

bool
ThroughputTable::Key::operator<(const Key &other) const
{
    PatternLess less;
    auto rank = [](const Key &k) {
        return static_cast<int>(k.op);
    };
    if (rank(*this) != rank(other))
        return rank(*this) < rank(other);
    if (read != other.read)
        return less(read, other.read);
    return less(write, other.write);
}

void
ThroughputTable::set(const BasicTransfer &t, util::MBps mbps)
{
    if (isNetworkOp(t.op))
        util::fatal("ThroughputTable::set: use setNetwork for ", t.name());
    if (mbps <= 0.0)
        util::fatal("ThroughputTable::set: non-positive throughput for ",
                    t.name());
    entries[Key{t.op, t.read, t.write}] = mbps;
}

void
ThroughputTable::setNetwork(TransferOp op, int congestion,
                            util::MBps mbps)
{
    if (!isNetworkOp(op))
        util::fatal("ThroughputTable::setNetwork: not a network op");
    if (congestion < 1)
        util::fatal("ThroughputTable::setNetwork: congestion < 1");
    if (mbps <= 0.0)
        util::fatal("ThroughputTable::setNetwork: non-positive rate");
    network[{static_cast<int>(op), congestion}] = mbps;
}

std::optional<util::MBps>
ThroughputTable::exact(const BasicTransfer &t) const
{
    auto it = entries.find(Key{t.op, t.read, t.write});
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

std::optional<util::MBps>
ThroughputTable::lookupStrided(TransferOp op, std::uint32_t stride,
                               bool vary_read) const
{
    // Gather the sampled (stride, throughput) curve for this op with
    // the non-varying side contiguous (or fixed for S/F/R/D ops).
    std::vector<std::pair<std::uint32_t, util::MBps>> samples;
    for (const auto &[key, mbps] : entries) {
        if (key.op != op)
            continue;
        const AccessPattern &varying = vary_read ? key.read : key.write;
        const AccessPattern &fixed_side =
            vary_read ? key.write : key.read;
        if (varying.isIndexed() || varying.isFixed())
            continue;
        if (!(fixed_side.isContiguous() || fixed_side.isFixed()))
            continue;
        samples.emplace_back(varying.stride(), mbps);
    }
    if (samples.empty())
        return std::nullopt;
    // Map is ordered, so samples arrive sorted by stride already for a
    // given op, but re-check cheaply.
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i - 1].first >= samples[i].first)
            util::panic("lookupStrided: samples not sorted");
    }

    if (stride <= samples.front().first)
        return samples.front().second;
    if (stride >= samples.back().first) {
        // Clamp beyond the largest sampled stride ("stride 64 applies
        // to any larger stride") -- but only when a strided sample
        // exists at all. A table with only a contiguous entry means
        // the hardware cannot do strided transfers (e.g. the Paragon
        // DMA deposit engine).
        if (samples.back().first < 2)
            return std::nullopt;
        return samples.back().second;
    }
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (stride <= samples[i].first) {
            auto [s0, v0] = samples[i - 1];
            auto [s1, v1] = samples[i];
            double t = (std::log2(double(stride)) - std::log2(double(s0))) /
                       (std::log2(double(s1)) - std::log2(double(s0)));
            return v0 + t * (v1 - v0);
        }
    }
    util::panic("lookupStrided: interpolation fell through");
}

std::optional<util::MBps>
ThroughputTable::lookup(const BasicTransfer &t) const
{
    if (isNetworkOp(t.op))
        util::fatal("ThroughputTable::lookup: use lookupNetwork for ",
                    t.name());

    if (auto hit = exact(t))
        return hit;

    // Block-strided patterns (n.b): within a block, b-1 of every b
    // words behave like contiguous accesses and one word pays the
    // strided block-start cost (paper §2.2's "blocks of data words").
    auto deblock = [&](const AccessPattern &p) {
        return p.isStrided() && p.block() > 1;
    };
    if (deblock(t.read) || deblock(t.write)) {
        auto flatten = [&](const AccessPattern &p, bool strided_form) {
            if (!deblock(p))
                return p;
            return strided_form ? AccessPattern::strided(p.stride())
                                : AccessPattern::contiguous();
        };
        double blocks = static_cast<double>(
            std::max(deblock(t.read) ? t.read.block() : 1,
                     deblock(t.write) ? t.write.block() : 1));
        BasicTransfer contig_form{t.op, flatten(t.read, false),
                                  flatten(t.write, false)};
        BasicTransfer strided_form{t.op, flatten(t.read, true),
                                   flatten(t.write, true)};
        auto contig_rate = lookup(contig_form);
        auto strided_rate = lookup(strided_form);
        if (contig_rate && strided_rate) {
            double inv = (blocks - 1.0) / blocks / *contig_rate +
                         1.0 / blocks / *strided_rate;
            return 1.0 / inv;
        }
        return std::optional<util::MBps>();
    }

    // Strided interpolation when exactly one side varies.
    auto one_sided = [&](bool vary_read) -> std::optional<util::MBps> {
        const AccessPattern &varying = vary_read ? t.read : t.write;
        const AccessPattern &fixed_side = vary_read ? t.write : t.read;
        if (!(varying.isStrided() || varying.isContiguous()))
            return std::nullopt;
        if (!(fixed_side.isContiguous() || fixed_side.isFixed()))
            return std::nullopt;
        return lookupStrided(t.op, varying.stride(), vary_read);
    };

    switch (t.op) {
      case TransferOp::LoadSend:
      case TransferOp::FetchSend:
        if (auto v = one_sided(true))
            return v;
        break;
      case TransferOp::ReceiveStore:
      case TransferOp::ReceiveDeposit:
        if (auto v = one_sided(false))
            return v;
        break;
      case TransferOp::LocalCopy: {
        if (t.write.isContiguous()) {
            if (auto v = one_sided(true))
                return v;
        }
        if (t.read.isContiguous()) {
            if (auto v = one_sided(false))
                return v;
        }
        // General xCy with both sides non-contiguous: combine the
        // measured one-sided costs. Each element pays the load cost
        // of xC1 plus the store cost of 1Cy; the shared contiguous
        // half is counted once. (Guarding on both sides avoids
        // recursing into this same lookup.)
        if (t.read.isContiguous() || t.write.isContiguous())
            break;
        auto load_side =
            lookup(localCopy(t.read, AccessPattern::contiguous()));
        auto store_side =
            lookup(localCopy(AccessPattern::contiguous(), t.write));
        auto base = lookup(localCopy(AccessPattern::contiguous(),
                                     AccessPattern::contiguous()));
        if (load_side && store_side && base) {
            double inv = 1.0 / *load_side + 1.0 / *store_side -
                         1.0 / *base;
            if (inv > 0.0)
                return 1.0 / inv;
        }
        break;
      }
      default:
        break;
    }
    return std::nullopt;
}

std::optional<util::MBps>
ThroughputTable::lookupNetwork(TransferOp op, double congestion) const
{
    if (!isNetworkOp(op))
        util::fatal("lookupNetwork: not a network op");
    if (congestion < 1.0)
        util::fatal("lookupNetwork: congestion < 1");

    std::vector<std::pair<int, util::MBps>> samples;
    for (const auto &[key, mbps] : network)
        if (key.first == static_cast<int>(op))
            samples.emplace_back(key.second, mbps);
    if (samples.empty())
        return std::nullopt;

    if (congestion <= samples.front().first)
        return samples.front().second;
    if (congestion >= samples.back().first) {
        // Extrapolate: bandwidth scales inversely with congestion.
        auto [c, v] = samples.back();
        return v * static_cast<double>(c) / congestion;
    }
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (congestion <= samples[i].first) {
            auto [c0, v0] = samples[i - 1];
            auto [c1, v1] = samples[i];
            // Geometric interpolation matches the ~1/c falloff.
            double t = (std::log2(congestion) - std::log2(double(c0))) /
                       (std::log2(double(c1)) - std::log2(double(c0)));
            return v0 * std::pow(v1 / v0, t);
        }
    }
    util::panic("lookupNetwork: interpolation fell through");
}

} // namespace ct::core
