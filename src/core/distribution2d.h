/**
 * @file
 * Two-dimensional HPF distributions. An HPF array is distributed per
 * dimension over a node grid; `*` (no distribution) keeps a
 * dimension whole on every owner. The paper's transpose (§5.2,
 * Figure 9) is exactly the redistribution
 *
 *     A(BLOCK, *)  ->  B(*, BLOCK)
 *
 * and the loop-order choice of Table 5 is which side of that
 * redistribution carries the stride.
 */

#ifndef CT_CORE_DISTRIBUTION2D_H
#define CT_CORE_DISTRIBUTION2D_H

#include "core/distribution.h"

namespace ct::core {

/** Per-dimension distribution spec: a Distribution or `*`. */
struct DimSpec
{
    /** Whole dimension replicated along this grid axis. */
    static DimSpec whole(std::uint64_t extent);

    /** Distributed dimension. */
    static DimSpec dist(const Distribution &d);

    bool isWhole() const { return !distributed.has_value(); }
    std::uint64_t extent() const;
    int gridNodes() const;
    const Distribution &distribution() const;

    std::optional<Distribution> distributed;
    std::uint64_t wholeExtent = 0;
};

/**
 * A 2-D array of rows x cols elements distributed over a grid of
 * rowSpec.gridNodes() x colSpec.gridNodes() nodes. Node (r, c) of
 * the grid is linear node r * colNodes + c. Local storage is
 * row-major over the node's local rows and columns.
 */
class Distribution2d
{
  public:
    Distribution2d(DimSpec row_spec, DimSpec col_spec);

    std::uint64_t rows() const { return rowSpec.extent(); }
    std::uint64_t cols() const { return colSpec.extent(); }
    int nodes() const
    {
        return rowSpec.gridNodes() * colSpec.gridNodes();
    }

    /** The linear node owning element (i, j). */
    int ownerOf(std::uint64_t i, std::uint64_t j) const;

    /** Word offset of (i, j) within its owner's local array. */
    std::uint64_t localOffsetOf(std::uint64_t i, std::uint64_t j) const;

    /** Local words stored on linear node @p node. */
    std::uint64_t localWords(int node) const;

    /** e.g. "(BLOCK, *)". */
    std::string name() const;

  private:
    std::uint64_t localRowCount(int grid_row) const;
    std::uint64_t localColCount(int grid_col) const;

    DimSpec rowSpec;
    DimSpec colSpec;
};

/**
 * Element traffic of B(to) = A(from) for one (sender, receiver)
 * pair, optionally transposing (B[i][j] = A[j][i]). Returns parallel
 * lists of local word offsets: source offsets on the sender and
 * destination offsets on the receiver, in destination storage order.
 */
struct Redist2dPair
{
    std::vector<std::uint64_t> srcOffsets;
    std::vector<std::uint64_t> dstOffsets;
};

Redist2dPair redistribution2dIndices(const Distribution2d &from,
                                     const Distribution2d &to,
                                     int sender, int receiver,
                                     bool transpose = false);

} // namespace ct::core

#endif // CT_CORE_DISTRIBUTION2D_H
