#include "machine_params.h"

#include "util/logging.h"

namespace ct::core {

namespace {

using P = AccessPattern;

/** Record a strided store curve 1Cy / 0Dy / 0Ry style entries. */
struct StrideSample
{
    std::uint32_t stride;
    util::MBps mbps;
};

void
setStoreCurve(ThroughputTable &t, TransferOp op,
              std::initializer_list<StrideSample> samples)
{
    for (const auto &s : samples) {
        P pat = P::strided(s.stride);
        switch (op) {
          case TransferOp::LocalCopy:
            t.set(localCopy(P::contiguous(), pat), s.mbps);
            break;
          case TransferOp::ReceiveStore:
            t.set(receiveStore(pat), s.mbps);
            break;
          case TransferOp::ReceiveDeposit:
            t.set(receiveDeposit(pat), s.mbps);
            break;
          default:
            util::panic("setStoreCurve: bad op");
        }
    }
}

void
setLoadCurve(ThroughputTable &t, TransferOp op,
             std::initializer_list<StrideSample> samples)
{
    for (const auto &s : samples) {
        P pat = P::strided(s.stride);
        switch (op) {
          case TransferOp::LocalCopy:
            t.set(localCopy(pat, P::contiguous()), s.mbps);
            break;
          case TransferOp::LoadSend:
            t.set(loadSend(pat), s.mbps);
            break;
          case TransferOp::FetchSend:
            t.set(fetchSend(pat), s.mbps);
            break;
          default:
            util::panic("setLoadCurve: bad op");
        }
    }
}

ThroughputTable
t3dTable()
{
    ThroughputTable t;
    t.setMachineName("T3D");

    // Table 1 anchors plus Figure 4 / Table 5 consistent fill-ins.
    // Strided stores benefit from the write-back queue; strided loads
    // lose the read-ahead stream and fall to single-word rates.
    setStoreCurve(t, TransferOp::LocalCopy,
                  {{1, 93.0},
                   {2, 80.0},
                   {4, 75.0},
                   {8, 72.0},
                   {16, 70.8},
                   {32, 69.0},
                   {64, 67.9}});
    setLoadCurve(t, TransferOp::LocalCopy,
                 {{2, 48.0},
                  {4, 40.0},
                  {8, 36.0},
                  {16, 34.4},
                  {32, 33.8},
                  {64, 33.3}});
    t.set(localCopy(P::contiguous(), P::indexed()), 38.5);
    t.set(localCopy(P::indexed(), P::contiguous()), 32.9);

    // Table 2: sends go through the memory-mapped annex port.
    setLoadCurve(t, TransferOp::LoadSend,
                 {{1, 126.0},
                  {2, 95.0},
                  {4, 70.0},
                  {8, 52.0},
                  {16, 41.0},
                  {32, 37.0},
                  {64, 35.0}});
    t.set(loadSend(P::indexed()), 32.0);

    // Table 3: the annex deposit engine handles every pattern; plain
    // receive-store does not exist (receives always run in the
    // background), hence no 0Ry entries.
    setStoreCurve(t, TransferOp::ReceiveDeposit,
                  {{1, 142.0},
                   {2, 110.0},
                   {4, 85.0},
                   {8, 65.0},
                   {16, 56.0},
                   {32, 53.0},
                   {64, 52.0}});
    t.set(receiveDeposit(P::indexed()), 52.0);

    // Table 4: network bandwidth vs congestion.
    t.setNetwork(TransferOp::NetData, 1, 142.0);
    t.setNetwork(TransferOp::NetData, 2, 69.0);
    t.setNetwork(TransferOp::NetData, 4, 35.0);
    t.setNetwork(TransferOp::NetAddrData, 1, 62.0);
    t.setNetwork(TransferOp::NetAddrData, 2, 38.0);
    t.setNetwork(TransferOp::NetAddrData, 4, 20.0);
    return t;
}

ThroughputTable
paragonTable()
{
    ThroughputTable t;
    t.setMachineName("Paragon");

    // Table 1 anchors; the i860 pre-fetch queue pipelines strided and
    // indexed loads, while write-through caching hurts strided stores.
    setStoreCurve(t, TransferOp::LocalCopy,
                  {{1, 67.6},
                   {2, 55.0},
                   {4, 45.0},
                   {8, 38.5},
                   {16, 34.8},
                   {32, 30.0},
                   {64, 27.6}});
    setLoadCurve(t, TransferOp::LocalCopy,
                 {{2, 60.0},
                  {4, 55.0},
                  {8, 52.0},
                  {16, 50.0},
                  {32, 36.0},
                  {64, 31.1}});
    t.set(localCopy(P::contiguous(), P::indexed()), 35.2);
    t.set(localCopy(P::indexed(), P::contiguous()), 45.1);

    // Table 2: processor sends via the bus-attached NI FIFO; the DMA
    // (line-transfer unit) reaches network speed for contiguous data.
    setLoadCurve(t, TransferOp::LoadSend,
                 {{1, 52.0},
                  {2, 48.0},
                  {4, 45.0},
                  {8, 43.0},
                  {16, 42.0},
                  {64, 42.0}});
    t.set(loadSend(P::indexed()), 36.0);
    t.set(fetchSend(P::contiguous()), 160.0);

    // Table 3: the co-processor drains the NI with any store pattern
    // (0Ry); the DMA deposits contiguous blocks only (0D1).
    setStoreCurve(t, TransferOp::ReceiveStore,
                  {{1, 82.0},
                   {2, 60.0},
                   {4, 48.0},
                   {8, 42.0},
                   {16, 40.0},
                   {32, 39.0},
                   {64, 38.0}});
    t.set(receiveStore(P::indexed()), 42.0);
    t.set(receiveDeposit(P::contiguous()), 160.0);

    // Table 4.
    t.setNetwork(TransferOp::NetData, 1, 176.0);
    t.setNetwork(TransferOp::NetData, 2, 90.0);
    t.setNetwork(TransferOp::NetData, 4, 44.0);
    t.setNetwork(TransferOp::NetAddrData, 1, 88.0);
    t.setNetwork(TransferOp::NetAddrData, 2, 45.0);
    t.setNetwork(TransferOp::NetAddrData, 4, 22.0);
    return t;
}

} // namespace

std::string
machineName(MachineId id)
{
    switch (id) {
      case MachineId::T3d:
        return "T3D";
      case MachineId::Paragon:
        return "Paragon";
    }
    util::panic("machineName: bad id");
}

ThroughputTable
paperTable(MachineId id)
{
    switch (id) {
      case MachineId::T3d:
        return t3dTable();
      case MachineId::Paragon:
        return paragonTable();
    }
    util::panic("paperTable: bad id");
}

MachineCaps
paperCaps(MachineId id)
{
    MachineCaps caps;
    caps.name = machineName(id);
    switch (id) {
      case MachineId::T3d:
        caps.hasFetchSend = false;
        caps.depositAnyPattern = true;
        caps.depositContiguous = true;
        caps.coProcReceive = false;
        caps.defaultCongestion = 2.0;
        // The DRAM write path sustains well above twice the fastest
        // end-to-end operation, so the constraint never binds (§3.4).
        caps.storeOnlyBandwidth = 120.0;
        caps.loadOnlyBandwidth = 320.0;
        caps.clockHz = 150e6;
        return caps;
      case MachineId::Paragon:
        caps.hasFetchSend = true;
        caps.depositAnyPattern = false;
        caps.depositContiguous = true;
        caps.coProcReceive = true;
        caps.defaultCongestion = 2.0;
        // Write-through caches: the store path saturates at 41.4
        // MB/s, which caps buffer packing at 20.7 MB/s per direction
        // when every node sends and receives at once (§5.1.3).
        caps.storeOnlyBandwidth = 41.4;
        caps.loadOnlyBandwidth = 83.0;
        caps.clockHz = 50e6;
        return caps;
    }
    util::panic("paperCaps: bad id");
}

} // namespace ct::core
