#include "transfer_program.h"

#include <sstream>

#include "util/logging.h"

namespace ct::core {

std::string
resourceName(StageResource resource)
{
    switch (resource) {
      case StageResource::SenderCpu:
        return "sender-cpu";
      case StageResource::SenderEngine:
        return "sender-engine";
      case StageResource::Wire:
        return "wire";
      case StageResource::ReceiverEngine:
        return "receiver-engine";
      case StageResource::ReceiverCpu:
        return "receiver-cpu";
    }
    util::panic("resourceName: bad resource");
}

std::string
bufferName(BufferBinding buffer)
{
    switch (buffer) {
      case BufferBinding::SourceArray:
        return "source-array";
      case BufferBinding::PackBuffer:
        return "pack-buffer";
      case BufferBinding::SenderSystemBuffer:
        return "sender-system-buffer";
      case BufferBinding::NetworkPort:
        return "network-port";
      case BufferBinding::ReceiverSystemBuffer:
        return "receiver-system-buffer";
      case BufferBinding::ReceiveBuffer:
        return "receive-buffer";
      case BufferBinding::DestArray:
        return "dest-array";
    }
    util::panic("bufferName: bad buffer");
}

std::string
TransferProgram::format() const
{
    if (!expr)
        util::panic("TransferProgram::format: program has no expr");
    return expr->format();
}

std::string
TransferProgram::describe() const
{
    std::ostringstream os;
    os << styleKey << " " << x.label() << "Q" << y.label() << " on "
       << paperCaps(machine).name << ":  " << format() << "\n";
    for (const ProgramStage &s : stages) {
        os << "  " << (s.addressCompute ? "addr" : s.transfer.name());
        os << "\t" << resourceName(s.resource) << "\t"
           << bufferName(s.from) << " -> " << bufferName(s.to) << "\n";
    }
    os << "  costs: startup " << costs.senderStartup << "+"
       << costs.receiverStartup << " cycles, sync " << costs.stepSync
       << " cycles; staging copies: " << stagingBuffers;
    if (reliable)
        os << "; reliable transport";
    os << "\n";
    return os.str();
}

std::optional<std::string>
TransferProgram::validate() const
{
    if (!expr)
        return "program has no algebra view";
    return expr->validate();
}

const ProgramStage *
TransferProgram::stageOn(StageResource resource) const
{
    for (const ProgramStage &s : stages)
        if (s.resource == resource)
            return &s;
    return nullptr;
}

double
stageLoadSigma(const ProgramStage &stage)
{
    if (stage.addressCompute)
        return 1.0; // pure contiguous index-load stream
    auto loads = [](const AccessPattern &p) {
        if (p.isContiguous())
            return 1.0;
        if (p.isIndexed())
            return 0.5; // contiguous index stream + random data lines
        return 0.0;     // strided: pipelined, latency-bound
    };
    switch (stage.transfer.op) {
      case TransferOp::LocalCopy:
      case TransferOp::LoadSend:
        return loads(stage.transfer.read);
      case TransferOp::ReceiveStore:
        // Data arrives through the port; memory loads happen only for
        // an indexed destination (the index vector, contiguous).
        return stage.transfer.write.isIndexed() ? 1.0 : 0.0;
      case TransferOp::FetchSend:
      case TransferOp::ReceiveDeposit:
      case TransferOp::NetData:
      case TransferOp::NetAddrData:
        return 0.0; // engines and the wire carry no processor loads
    }
    util::panic("stageLoadSigma: bad op");
}

TransferProgram
withReliability(TransferProgram program)
{
    program.reliable = true;
    program.description += " behind the reliable transport";
    return program;
}

} // namespace ct::core
