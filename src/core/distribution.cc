#include "distribution.h"

#include <algorithm>

#include "util/logging.h"

namespace ct::core {

Distribution::Distribution(DistKind kind, std::uint64_t n, int p,
                           std::uint64_t k)
    : kindValue(kind), n(n), p(p), k(k)
{
    if (n == 0)
        util::fatal("Distribution: empty array");
    if (p <= 0)
        util::fatal("Distribution: need at least one node");
    if (k == 0)
        util::fatal("Distribution: zero block size");
}

Distribution
Distribution::block(std::uint64_t n, int p)
{
    std::uint64_t chunk =
        (n + static_cast<std::uint64_t>(p) - 1) /
        static_cast<std::uint64_t>(p);
    return {DistKind::Block, n, p, chunk};
}

Distribution
Distribution::cyclic(std::uint64_t n, int p)
{
    return {DistKind::Cyclic, n, p, 1};
}

Distribution
Distribution::blockCyclic(std::uint64_t n, int p, std::uint64_t k)
{
    return {DistKind::BlockCyclic, n, p, k};
}

int
Distribution::ownerOf(std::uint64_t i) const
{
    if (i >= n)
        util::fatal("Distribution::ownerOf: index out of range");
    std::uint64_t block_idx = i / k;
    switch (kindValue) {
      case DistKind::Block:
        return static_cast<int>(block_idx);
      case DistKind::Cyclic:
      case DistKind::BlockCyclic:
        return static_cast<int>(block_idx %
                                static_cast<std::uint64_t>(p));
    }
    util::panic("Distribution::ownerOf: bad kind");
}

std::uint64_t
Distribution::localIndexOf(std::uint64_t i) const
{
    std::uint64_t block_idx = i / k;
    std::uint64_t within = i % k;
    switch (kindValue) {
      case DistKind::Block:
        return within;
      case DistKind::Cyclic:
      case DistKind::BlockCyclic:
        return (block_idx / static_cast<std::uint64_t>(p)) * k + within;
    }
    util::panic("Distribution::localIndexOf: bad kind");
}

std::uint64_t
Distribution::localCount(int node) const
{
    if (node < 0 || node >= p)
        util::fatal("Distribution::localCount: bad node");
    std::uint64_t count = 0;
    switch (kindValue) {
      case DistKind::Block: {
        auto nn = static_cast<std::uint64_t>(node);
        std::uint64_t lo = std::min(n, nn * k);
        std::uint64_t hi = std::min(n, (nn + 1) * k);
        count = hi - lo;
        break;
      }
      case DistKind::Cyclic:
      case DistKind::BlockCyclic: {
        std::uint64_t blocks = (n + k - 1) / k;
        auto nn = static_cast<std::uint64_t>(node);
        auto pp = static_cast<std::uint64_t>(p);
        std::uint64_t full = blocks / pp;
        count = full * k;
        if (blocks % pp > nn)
            count += k;
        // The very last block may be partial.
        std::uint64_t last_block = blocks - 1;
        if (last_block % pp == nn && n % k != 0)
            count -= k - n % k;
        break;
      }
    }
    return count;
}

std::uint64_t
Distribution::globalIndexOf(int node, std::uint64_t li) const
{
    auto nn = static_cast<std::uint64_t>(node);
    auto pp = static_cast<std::uint64_t>(p);
    std::uint64_t global;
    switch (kindValue) {
      case DistKind::Block:
        global = nn * k + li;
        break;
      case DistKind::Cyclic:
      case DistKind::BlockCyclic: {
        std::uint64_t block_round = li / k;
        std::uint64_t within = li % k;
        global = (block_round * pp + nn) * k + within;
        break;
      }
      default:
        util::panic("Distribution::globalIndexOf: bad kind");
    }
    if (global >= n)
        util::fatal("Distribution::globalIndexOf: local index out of "
                    "range");
    return global;
}

std::string
Distribution::name() const
{
    switch (kindValue) {
      case DistKind::Block:
        return "BLOCK";
      case DistKind::Cyclic:
        return "CYCLIC";
      case DistKind::BlockCyclic:
        return "BLOCK-CYCLIC(" + std::to_string(k) + ")";
    }
    util::panic("Distribution::name: bad kind");
}

AccessPattern
classifyIndices(const std::vector<std::uint64_t> &indices)
{
    if (indices.empty())
        return AccessPattern::contiguous();
    for (std::size_t i = 1; i < indices.size(); ++i)
        if (indices[i] <= indices[i - 1])
            return AccessPattern::indexed();

    // Contiguous?
    bool contiguous = true;
    for (std::size_t i = 1; i < indices.size(); ++i)
        contiguous &= indices[i] == indices[i - 1] + 1;
    if (contiguous)
        return AccessPattern::contiguous();

    // Block-strided: runs of `block` consecutive indices whose run
    // starts are a constant stride apart.
    std::size_t block = 1;
    while (block < indices.size() &&
           indices[block] == indices[block - 1] + 1)
        ++block;
    if (indices.size() % block != 0)
        return AccessPattern::indexed();
    std::uint64_t stride = 0;
    for (std::size_t run = 0; run * block < indices.size(); ++run) {
        std::size_t base = run * block;
        for (std::size_t j = 1; j < block; ++j)
            if (indices[base + j] != indices[base] + j)
                return AccessPattern::indexed();
        if (run > 0) {
            std::uint64_t gap =
                indices[base] - indices[base - block];
            if (stride == 0)
                stride = gap;
            else if (gap != stride)
                return AccessPattern::indexed();
        }
    }
    if (stride == 0 || stride > UINT32_MAX || block > stride)
        return AccessPattern::indexed();
    return AccessPattern::strided(static_cast<std::uint32_t>(stride),
                                  static_cast<std::uint32_t>(block));
}

std::vector<std::uint64_t>
redistributionIndices(const Distribution &from, const Distribution &to,
                      int sender, int receiver)
{
    if (from.elements() != to.elements())
        util::fatal("redistributionIndices: size mismatch");
    std::vector<std::uint64_t> moved;
    // Walk the receiver's storage in order; keep the elements the
    // sender currently owns.
    for (std::uint64_t li = 0; li < to.localCount(receiver); ++li) {
        std::uint64_t g = to.globalIndexOf(receiver, li);
        if (from.ownerOf(g) == sender)
            moved.push_back(g);
    }
    return moved;
}

} // namespace ct::core
