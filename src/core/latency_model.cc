#include "latency_model.h"

#include "util/logging.h"

namespace ct::core {

MessageCostModel::MessageCostModel(util::MBps asymptotic_mbps,
                                   util::Cycles startup_cycles,
                                   util::Cycles sync_cycles,
                                   double clock_hz)
    : peak(asymptotic_mbps),
      startupSeconds(static_cast<double>(startup_cycles) / clock_hz),
      syncSeconds(static_cast<double>(sync_cycles) / clock_hz)
{
    if (peak <= 0.0)
        util::fatal("MessageCostModel: non-positive throughput");
    if (clock_hz <= 0.0)
        util::fatal("MessageCostModel: non-positive clock");
}

double
MessageCostModel::secondsFor(util::Bytes bytes) const
{
    return startupSeconds + syncSeconds +
           static_cast<double>(bytes) / (peak * 1e6);
}

util::MBps
MessageCostModel::throughputAt(util::Bytes bytes) const
{
    if (bytes == 0)
        return 0.0;
    return static_cast<double>(bytes) / 1e6 / secondsFor(bytes);
}

util::Bytes
MessageCostModel::halfPowerPoint() const
{
    // throughput(n) = peak/2  <=>  n / peak = startup + sync + n/peak
    // ... solving n/(s + n/B) = B/2 gives n = s * B.
    double n = (startupSeconds + syncSeconds) * peak * 1e6;
    return static_cast<util::Bytes>(n);
}

std::optional<MessageCostModel>
makeMessageCostModel(MachineId id, Style style, AccessPattern x,
                     AccessPattern y)
{
    auto strategy = makeStrategy(id, style, x, y);
    if (!strategy)
        return std::nullopt;
    auto caps = paperCaps(id);
    auto table = paperTable(id);
    auto rate =
        rateStrategy(*strategy, table, caps.defaultCongestion);
    if (!rate)
        return std::nullopt;

    // The software costs come from the program itself (set by the
    // style's registry entry, matching the runtime layers' defaults):
    // the chained path pays an annex partner switch per message and a
    // cache-invalidating synchronization per step; the packing path a
    // cheaper library call and barrier; PVM adds protocol work.
    const SoftwareCosts &costs = strategy->program.costs;
    return MessageCostModel(*rate, costs.startup(), costs.stepSync,
                            caps.clockHz);
}

} // namespace ct::core
