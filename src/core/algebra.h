/**
 * @file
 * Throughput evaluation rules of the copy-transfer model (paper §3.3):
 * parallel composition takes the minimum, sequential composition takes
 * the reciprocal sum, and resource constraints cap the result.
 */

#ifndef CT_CORE_ALGEBRA_H
#define CT_CORE_ALGEBRA_H

#include <optional>
#include <string>
#include <vector>

#include "core/expr.h"

namespace ct::core {

/**
 * An aggregate resource bound, e.g. "every node sends and receives at
 * once, so 2x the operation throughput must fit in the memory-system
 * bandwidth": demandFactor 2, limit |0C1|.
 */
struct ResourceConstraint
{
    std::string name;    ///< label used in reports
    double demandFactor; ///< how many times the operation loads it
    util::MBps limit;    ///< available aggregate bandwidth
};

/** Everything needed to evaluate an expression on one machine. */
struct EvalContext
{
    const ThroughputTable *table = nullptr;
    /** Congestion assumed for network legs without an override. */
    double congestion = 2.0;
    std::vector<ResourceConstraint> constraints;
};

/**
 * Estimate the throughput of a communication operation.
 *
 * Returns nullopt when some basic transfer in the expression is not
 * implemented on the machine (no table entry), which the planner uses
 * to discard illegal strategies.
 */
std::optional<util::MBps> evaluate(const ExprPtr &expr,
                                   const EvalContext &ctx);

/** Like evaluate() but fatal() when the expression cannot be rated. */
util::MBps evaluateOrDie(const ExprPtr &expr, const EvalContext &ctx);

/**
 * Render a human-readable evaluation trace: one line per node with its
 * individual and composite throughputs, plus applied constraints.
 */
std::string explain(const ExprPtr &expr, const EvalContext &ctx);

} // namespace ct::core

#endif // CT_CORE_ALGEBRA_H
