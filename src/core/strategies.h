/**
 * @file
 * Strategy view of a style's TransferProgram: the composed formula
 * plus the resource constraints that apply to it, for code that only
 * rates formulas. Programs themselves are built by the style registry
 * (style_registry.h); this header is a thin compatibility layer over
 * it.
 */

#ifndef CT_CORE_STRATEGIES_H
#define CT_CORE_STRATEGIES_H

#include <optional>
#include <string>
#include <vector>

#include "core/algebra.h"
#include "core/machine_params.h"
#include "core/style_registry.h"
#include "core/transfer_program.h"

namespace ct::core {

/**
 * A concrete implementation choice for xQy on one machine: the
 * composed formula plus the resource constraints that apply to it.
 * `program` carries the full IR the formula was derived from.
 */
struct Strategy
{
    Style style = Style::BufferPacking;
    ExprPtr expr;
    std::vector<ResourceConstraint> constraints;
    std::string description;
    TransferProgram program;
};

/**
 * Build the formula for implementing xQy with @p style on machine
 * @p id. Returns nullopt when the machine lacks the required hardware
 * (e.g. Chained with strided y needs a flexible deposit engine or a
 * receive co-processor; DmaDirect needs x = y = 1).
 *
 * The returned strategy carries the aggregate store-bandwidth
 * constraint for styles that store every word twice per node
 * (buffer packing and PVM), per §3.4/§5.1.3.
 */
std::optional<Strategy> makeStrategy(MachineId id, Style style,
                                     AccessPattern x, AccessPattern y);

/** Strategy view of an already-built program. */
Strategy toStrategy(TransferProgram program);

/** Convenience: evaluate a strategy under the machine's defaults. */
std::optional<util::MBps> rateStrategy(const Strategy &strategy,
                                       const ThroughputTable &table,
                                       double congestion);

} // namespace ct::core

#endif // CT_CORE_STRATEGIES_H
