/**
 * @file
 * Formula builders for the communication-operation implementations the
 * paper compares (§3.4, §5.1): buffer packing, chained transfers, the
 * PVM-style doubly-buffered variant, and direct DMA block transfer.
 */

#ifndef CT_CORE_STRATEGIES_H
#define CT_CORE_STRATEGIES_H

#include <optional>
#include <string>
#include <vector>

#include "core/algebra.h"
#include "core/machine_params.h"

namespace ct::core {

/** Implementation styles for a remote memory copy xQy. */
enum class Style {
    /** Gather into a buffer, block transfer, scatter (libsma/NX). */
    BufferPacking,
    /** Gather/transfer/scatter in one step via the deposit path. */
    Chained,
    /** Buffer packing plus extra system-buffer copies (PVM). */
    Pvm,
    /** Contiguous-only direct DMA block transfer, no copies. */
    DmaDirect,
};

/** Display name of a style. */
std::string styleName(Style style);

/**
 * A concrete implementation choice for xQy on one machine: the
 * composed formula plus the resource constraints that apply to it.
 */
struct Strategy
{
    Style style = Style::BufferPacking;
    ExprPtr expr;
    std::vector<ResourceConstraint> constraints;
    std::string description;
};

/**
 * Build the formula for implementing xQy with @p style on machine
 * @p id. Returns nullopt when the machine lacks the required hardware
 * (e.g. Chained with strided y needs a flexible deposit engine or a
 * receive co-processor; DmaDirect needs x = y = 1).
 *
 * The returned strategy carries the aggregate store-bandwidth
 * constraint for styles that store every word twice per node
 * (buffer packing and PVM), per §3.4/§5.1.3.
 */
std::optional<Strategy> makeStrategy(MachineId id, Style style,
                                     AccessPattern x, AccessPattern y);

/** Convenience: evaluate a strategy under the machine's defaults. */
std::optional<util::MBps> rateStrategy(const Strategy &strategy,
                                       const ThroughputTable &table,
                                       double congestion);

} // namespace ct::core

#endif // CT_CORE_STRATEGIES_H
