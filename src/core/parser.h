/**
 * @file
 * Text syntax for copy-transfer formulas.
 *
 * Grammar (whitespace separates tokens; `o` is the sequential
 * operator, `||` the parallel operator):
 *
 *     expr   := term ( "o" term )*
 *     term   := factor ( "||" factor )*
 *     factor := "(" expr ")" | leaf
 *     leaf   := "Nd" | "Nadp" [ "@" congestion ]
 *             | pattern OP pattern        e.g. 64C1, wS0, 0D64, 1F0
 *     pattern:= "0" | "1" | stride digits | "w"
 *
 * Examples accepted: "1C64", "wS0 || Nadp || 0Dw",
 * "1C1 o (1S0 || Nd@2 || 0D1) o 1C64".
 */

#ifndef CT_CORE_PARSER_H
#define CT_CORE_PARSER_H

#include <string>
#include <string_view>
#include <variant>

#include "core/expr.h"

namespace ct::core {

/** Error produced by parse(): message plus offending position. */
struct ParseError
{
    std::string message;
    std::size_t position = 0;
};

/** Result of parsing: either an expression or an error. */
using ParseResult = std::variant<ExprPtr, ParseError>;

/** Parse a formula; see the file comment for the grammar. */
ParseResult parse(std::string_view text);

/** Parse or fatal() with a decorated message; for trusted literals. */
ExprPtr parseOrDie(std::string_view text);

} // namespace ct::core

#endif // CT_CORE_PARSER_H
