#include "parser.h"

#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

#include "util/logging.h"

namespace ct::core {

namespace {

enum class TokKind { LParen, RParen, SeqOp, ParOp, Leaf, End };

struct Token
{
    TokKind kind;
    std::string text;
    std::size_t pos;
};

/** Lexer: parens, `o`, `||`, and leaf words like `64C1` or `Nd@2`. */
class Lexer
{
  public:
    explicit Lexer(std::string_view text) : src(text) {}

    std::optional<Token>
    next(ParseError &err)
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
        if (pos >= src.size())
            return Token{TokKind::End, "", pos};
        std::size_t start = pos;
        char c = src[pos];
        if (c == '(') {
            ++pos;
            return Token{TokKind::LParen, "(", start};
        }
        if (c == ')') {
            ++pos;
            return Token{TokKind::RParen, ")", start};
        }
        if (c == '|') {
            if (pos + 1 < src.size() && src[pos + 1] == '|') {
                pos += 2;
                return Token{TokKind::ParOp, "||", start};
            }
            err = {"single '|'; parallel operator is '||'", start};
            return std::nullopt;
        }
        if (std::isalnum(static_cast<unsigned char>(c))) {
            std::size_t end = pos;
            while (end < src.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(src[end])) ||
                    src[end] == '@' || src[end] == '.'))
                ++end;
            std::string word(src.substr(pos, end - pos));
            pos = end;
            if (word == "o")
                return Token{TokKind::SeqOp, word, start};
            return Token{TokKind::Leaf, word, start};
        }
        err = {std::string("unexpected character '") + c + "'", start};
        return std::nullopt;
    }

  private:
    std::string_view src;
    std::size_t pos = 0;
};

/** Build a BasicTransfer leaf expression from a leaf word. */
std::optional<ExprPtr>
makeLeaf(const std::string &word, std::size_t pos, ParseError &err)
{
    // Network transfers, with optional @congestion suffix.
    auto net = [&](std::string_view name,
                   BasicTransfer t) -> std::optional<ExprPtr> {
        std::string_view w = word;
        if (w.substr(0, name.size()) != name)
            return std::nullopt;
        std::string_view rest = w.substr(name.size());
        if (rest.empty())
            return TransferExpr::leaf(t);
        if (rest.front() != '@')
            return std::nullopt;
        rest.remove_prefix(1);
        double congestion = 0.0;
        auto [ptr, ec] = std::from_chars(
            rest.data(), rest.data() + rest.size(), congestion);
        if (ec != std::errc() || ptr != rest.data() + rest.size() ||
            congestion < 1.0) {
            err = {"bad congestion annotation in '" + word + "'", pos};
            return std::nullopt;
        }
        return TransferExpr::leaf(t, congestion);
    };

    // Try the longer name first so "Nadp" is not lexed as "Nd"+junk.
    if (word.size() >= 4 && word.substr(0, 4) == "Nadp") {
        if (auto e = net("Nadp", netAddrData()))
            return e;
        if (!err.message.empty())
            return std::nullopt;
    }
    if (word.size() >= 2 && word.substr(0, 2) == "Nd") {
        if (auto e = net("Nd", netData()))
            return e;
        if (!err.message.empty())
            return std::nullopt;
    }

    // Intra-node transfer: pattern OP pattern.
    std::size_t op_idx = std::string::npos;
    for (std::size_t i = 0; i < word.size(); ++i) {
        char c = word[i];
        if (c == 'C' || c == 'S' || c == 'F' || c == 'R' || c == 'D') {
            op_idx = i;
            break;
        }
    }
    if (op_idx == std::string::npos) {
        err = {"no transfer letter (C/S/F/R/D) in '" + word + "'", pos};
        return std::nullopt;
    }
    auto read = AccessPattern::parse(word.substr(0, op_idx));
    auto write = AccessPattern::parse(word.substr(op_idx + 1));
    if (!read || !write) {
        err = {"bad access pattern in '" + word + "'", pos};
        return std::nullopt;
    }

    char op = word[op_idx];
    auto check = [&](bool ok, const char *what) {
        if (!ok)
            err = {std::string(what) + " in '" + word + "'", pos};
        return ok;
    };
    switch (op) {
      case 'C':
        if (!check(!read->isFixed() && !write->isFixed(),
                   "xCy cannot use pattern 0"))
            return std::nullopt;
        return TransferExpr::leaf(localCopy(*read, *write));
      case 'S':
        if (!check(!read->isFixed() && write->isFixed(),
                   "load-send must be xS0"))
            return std::nullopt;
        return TransferExpr::leaf(loadSend(*read));
      case 'F':
        if (!check(!read->isFixed() && write->isFixed(),
                   "fetch-send must be xF0"))
            return std::nullopt;
        return TransferExpr::leaf(fetchSend(*read));
      case 'R':
        if (!check(read->isFixed() && !write->isFixed(),
                   "receive-store must be 0Ry"))
            return std::nullopt;
        return TransferExpr::leaf(receiveStore(*write));
      case 'D':
        if (!check(read->isFixed() && !write->isFixed(),
                   "receive-deposit must be 0Dy"))
            return std::nullopt;
        return TransferExpr::leaf(receiveDeposit(*write));
      default:
        break;
    }
    err = {"unknown transfer letter in '" + word + "'", pos};
    return std::nullopt;
}

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : lexer(text) {}

    ParseResult
    run()
    {
        if (!advance())
            return error;
        auto expr = parseExpr();
        if (!expr)
            return error;
        if (current.kind != TokKind::End) {
            return ParseError{"trailing input starting at '" +
                                  current.text + "'",
                              current.pos};
        }
        return *expr;
    }

  private:
    bool
    advance()
    {
        auto tok = lexer.next(error);
        if (!tok)
            return false;
        current = *tok;
        return true;
    }

    std::optional<ExprPtr>
    parseExpr()
    {
        auto first = parseTerm();
        if (!first)
            return std::nullopt;
        std::vector<ExprPtr> parts{*first};
        while (current.kind == TokKind::SeqOp) {
            if (!advance())
                return std::nullopt;
            auto next = parseTerm();
            if (!next)
                return std::nullopt;
            parts.push_back(*next);
        }
        if (parts.size() == 1)
            return parts.front();
        return TransferExpr::seq(std::move(parts));
    }

    std::optional<ExprPtr>
    parseTerm()
    {
        auto first = parseFactor();
        if (!first)
            return std::nullopt;
        std::vector<ExprPtr> parts{*first};
        while (current.kind == TokKind::ParOp) {
            if (!advance())
                return std::nullopt;
            auto next = parseFactor();
            if (!next)
                return std::nullopt;
            parts.push_back(*next);
        }
        if (parts.size() == 1)
            return parts.front();
        return TransferExpr::par(std::move(parts));
    }

    std::optional<ExprPtr>
    parseFactor()
    {
        if (current.kind == TokKind::LParen) {
            if (!advance())
                return std::nullopt;
            auto inner = parseExpr();
            if (!inner)
                return std::nullopt;
            if (current.kind != TokKind::RParen) {
                error = {"expected ')'", current.pos};
                return std::nullopt;
            }
            if (!advance())
                return std::nullopt;
            return inner;
        }
        if (current.kind == TokKind::Leaf) {
            auto leaf = makeLeaf(current.text, current.pos, error);
            if (!leaf)
                return std::nullopt;
            if (!advance())
                return std::nullopt;
            return leaf;
        }
        error = {"expected a basic transfer or '('", current.pos};
        return std::nullopt;
    }

    Lexer lexer;
    Token current{TokKind::End, "", 0};
    ParseError error;
};

} // namespace

ParseResult
parse(std::string_view text)
{
    return Parser(text).run();
}

ExprPtr
parseOrDie(std::string_view text)
{
    auto result = parse(text);
    if (auto *err = std::get_if<ParseError>(&result)) {
        util::fatal("parse error in '", std::string(text), "' at ",
                    err->position, ": ", err->message);
    }
    return std::get<ExprPtr>(result);
}

} // namespace ct::core
