/**
 * @file
 * The TransferProgram IR: the single source of truth for how an xQy
 * communication operation is implemented.
 *
 * A program is the paper's composition formula (§3.3) made explicit:
 * a data-flow-ordered list of basic-transfer *stages*, each bound to
 * the hardware resource that executes it (sender processor, sender
 * DMA engine, wire, receiver deposit engine, receiver processor /
 * co-processor) and to the buffers it reads and writes. The same
 * algebra view (`expr`, a seq/par tree of the stages) is kept for
 * rating and formula rendering.
 *
 * Two backends consume a program:
 *  - core::AnalyticBackend rates it with the copy-transfer model
 *    (steady-state algebra, the latency extension, and an
 *    execution-aware resource-grouped predictor);
 *  - rt::SimBackend lowers its stages onto the simulator's engines
 *    and event queue and actually moves the data.
 *
 * Programs are built by style builders registered in one place
 * (style_registry.h); nothing outside the registry switches on
 * core::Style.
 */

#ifndef CT_CORE_TRANSFER_PROGRAM_H
#define CT_CORE_TRANSFER_PROGRAM_H

#include <optional>
#include <string>
#include <vector>

#include "core/algebra.h"
#include "core/expr.h"
#include "core/machine_params.h"
#include "core/style.h"

namespace ct::core {

/** Hardware resource a program stage is bound to. */
enum class StageResource {
    SenderCpu,      ///< main processor on the sending node
    SenderEngine,   ///< autonomous DMA/fetch engine on the sender
    Wire,           ///< the interconnect
    ReceiverEngine, ///< deposit engine on the receiving node
    ReceiverCpu,    ///< main processor or co-processor on the receiver
};

/** Display name, e.g. "sender-cpu". */
std::string resourceName(StageResource resource);

/** Buffer/endpoint a stage reads from or writes into. */
enum class BufferBinding {
    SourceArray,          ///< user source array (pattern x)
    PackBuffer,           ///< sender-side contiguous packing buffer
    SenderSystemBuffer,   ///< extra sender system buffer (PVM)
    NetworkPort,          ///< network-interface FIFO
    ReceiverSystemBuffer, ///< extra receiver system buffer (PVM)
    ReceiveBuffer,        ///< receiver-side contiguous landing buffer
    DestArray,            ///< user destination array (pattern y)
};

/** Display name, e.g. "pack-buffer". */
std::string bufferName(BufferBinding buffer);

/** One stage: a basic transfer bound to a resource and two buffers. */
struct ProgramStage
{
    BasicTransfer transfer;
    StageResource resource = StageResource::SenderCpu;
    BufferBinding from = BufferBinding::SourceArray;
    BufferBinding to = BufferBinding::NetworkPort;
    /**
     * True for the sender-side remote-address stream of chained
     * transfers with an indexed destination (the sender loads the
     * index vector to generate address-data pairs). Not a throughput-
     * table row; the execution predictor rates it at the machine's
     * load-only bandwidth. The algebra view ignores it (the paper
     * folds address generation into xS0).
     */
    bool addressCompute = false;
};

/** Fixed per-message/per-step software costs of a style. */
struct SoftwareCosts
{
    /** Sender-side per-message cost (library call / flow setup). */
    util::Cycles senderStartup = 0;
    /** Receiver-side per-message cost. */
    util::Cycles receiverStartup = 0;
    /** End-of-step cost (barrier, cache invalidation). */
    util::Cycles stepSync = 0;

    /** Total per-message startup charge of the latency model. */
    util::Cycles startup() const
    {
        return senderStartup + receiverStartup;
    }
};

/**
 * A complete implementation program for xQy on one machine.
 *
 * `stages` is the execution view (resource/buffer bindings, in
 * data-flow order from source array to destination array); `expr` is
 * the algebra view used for rating and formula output. The two are
 * built together by the style builder and describe the same plan.
 */
struct TransferProgram
{
    Style style = Style::BufferPacking;
    /** Registry key and display/layer name, e.g. "chained". */
    std::string styleKey;
    MachineId machine = MachineId::T3d;
    AccessPattern x, y;

    std::vector<ProgramStage> stages;
    ExprPtr expr;
    std::vector<ResourceConstraint> constraints;
    SoftwareCosts costs;

    /**
     * Copies through staging buffers per endpoint: 0 for direct
     * styles (chained, DMA), 1 for buffer packing, 2 for PVM's
     * packing + system buffer. Determines the lowering shape.
     */
    int stagingBuffers = 0;

    /** Wrapped by the reliable transport (see withReliability()). */
    bool reliable = false;

    std::string description;

    /** Formula rendering of the algebra view, e.g.
     *  "1C1 o (1F0 || Nd || 0D1) o 1C64". */
    std::string format() const;

    /** Multi-line pretty-print: formula plus the stage table with
     *  resource and buffer bindings and the software costs. */
    std::string describe() const;

    /** Pattern-matching check of the algebra view (see
     *  TransferExpr::validate). */
    std::optional<std::string> validate() const;

    /** First stage bound to @p resource, or nullptr. */
    const ProgramStage *stageOn(StageResource resource) const;
};

/**
 * Fraction of a stage's memory-load stream that is contiguous and
 * cacheable (line fills): 1 for contiguous data loads, 0.5 for an
 * indexed gather (contiguous index stream + random data lines), 0
 * for strided loads (latency-bound, pipelined) and for port-fed
 * stages unless they load an index vector. On a shared-bus machine
 * this is the fraction of processor work that serializes with
 * engine bus bursts instead of overlapping them (paper §5.1.4).
 */
double stageLoadSigma(const ProgramStage &stage);

/**
 * Program transform: the same program behind the reliable transport
 * (per-packet sequencing/CRC/ack/retransmit, degradation to the
 * packing program on permanent engine failure). Consumed by
 * rt::SimBackend; the analytic view is unchanged (the transport is
 * software overhead, not a basic transfer).
 */
TransferProgram withReliability(TransferProgram program);

} // namespace ct::core

#endif // CT_CORE_TRANSFER_PROGRAM_H
