/**
 * @file
 * Derived datatypes: MPI-style descriptions of non-contiguous data
 * layouts. The paper's abstract notes that standard message-passing
 * libraries force buffer packing for such layouts; this module lets
 * a user describe a layout once (vector, indexed, nested), classify
 * it into the copy-transfer model's access patterns, and hand it to
 * the planner -- which is exactly what MPI datatypes later
 * standardized.
 *
 * All units are 64-bit words, the paper's basic unit of transfer.
 */

#ifndef CT_CORE_DATATYPE_H
#define CT_CORE_DATATYPE_H

#include <cstdint>
#include <vector>

#include "core/pattern.h"

namespace ct::core {

/**
 * A derived datatype: an ordered list of word offsets relative to a
 * base address. Constructors mirror the MPI type constructors.
 */
class Datatype
{
  public:
    /** count consecutive words (MPI_Type_contiguous). */
    static Datatype contiguous(std::uint64_t count);

    /**
     * count blocks of blocklen words, stride words apart
     * (MPI_Type_vector). A complex-number column of an n-column
     * matrix is vector(rows, 2, 2 * n).
     */
    static Datatype vector(std::uint64_t count, std::uint64_t blocklen,
                           std::uint64_t stride);

    /**
     * Blocks of equal length at arbitrary displacements
     * (MPI_Type_create_indexed_block).
     */
    static Datatype indexedBlock(std::uint64_t blocklen,
                                 const std::vector<std::uint64_t>
                                     &displacements);

    /**
     * Fully general blocks (MPI_Type_indexed): blocklens[i] words at
     * displacements[i].
     */
    static Datatype indexed(const std::vector<std::uint64_t> &blocklens,
                            const std::vector<std::uint64_t>
                                &displacements);

    /**
     * count copies of @p element laid end to end with the given
     * extent (MPI_Type_create_resized + contiguous): copy i adds
     * i * extent to every offset.
     */
    static Datatype replicate(const Datatype &element,
                              std::uint64_t count,
                              std::uint64_t extent);

    /** Number of words one instance of the type covers. */
    std::uint64_t size() const { return wordOffsets.size(); }

    /** One past the largest offset (the type's extent in words). */
    std::uint64_t extent() const;

    /** The flattened word offsets, in transmission order. */
    const std::vector<std::uint64_t> &offsets() const
    {
        return wordOffsets;
    }

    /**
     * The copy-transfer access pattern a loop over this layout
     * exhibits: contiguous, (block-)strided, or indexed.
     */
    AccessPattern pattern() const;

    /** True when offsets are strictly increasing. */
    bool isMonotone() const;

    /** True when some word offset appears more than once. */
    bool hasOverlap() const;

    bool operator==(const Datatype &other) const = default;

  private:
    std::vector<std::uint64_t> wordOffsets;
};

} // namespace ct::core

#endif // CT_CORE_DATATYPE_H
