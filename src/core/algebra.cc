#include "algebra.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace ct::core {

namespace {

std::optional<util::MBps>
evalNode(const TransferExpr &node, const EvalContext &ctx)
{
    switch (node.kind()) {
      case ExprKind::Leaf: {
        const BasicTransfer &t = node.transfer();
        if (isNetworkOp(t.op)) {
            double congestion =
                node.congestionOverride().value_or(ctx.congestion);
            return ctx.table->lookupNetwork(t.op, congestion);
        }
        return ctx.table->lookup(t);
      }
      case ExprKind::Seq: {
        double inv = 0.0;
        for (const auto &child : node.children()) {
            auto v = evalNode(*child, ctx);
            if (!v)
                return std::nullopt;
            inv += 1.0 / *v;
        }
        return 1.0 / inv;
      }
      case ExprKind::Par: {
        std::optional<util::MBps> best;
        for (const auto &child : node.children()) {
            auto v = evalNode(*child, ctx);
            if (!v)
                return std::nullopt;
            best = best ? std::min(*best, *v) : *v;
        }
        return best;
      }
    }
    util::panic("evalNode: bad kind");
}

util::MBps
applyConstraints(util::MBps value,
                 const std::vector<ResourceConstraint> &constraints)
{
    for (const auto &c : constraints) {
        if (c.demandFactor <= 0.0 || c.limit <= 0.0)
            util::fatal("applyConstraints: bad constraint '", c.name,
                        "'");
        value = std::min(value, c.limit / c.demandFactor);
    }
    return value;
}

} // namespace

std::optional<util::MBps>
evaluate(const ExprPtr &expr, const EvalContext &ctx)
{
    if (!expr)
        util::fatal("evaluate: null expression");
    if (!ctx.table)
        util::fatal("evaluate: null throughput table");
    if (auto err = expr->validate())
        util::fatal("evaluate: ill-formed expression: ", *err);
    auto v = evalNode(*expr, ctx);
    if (!v)
        return std::nullopt;
    return applyConstraints(*v, ctx.constraints);
}

util::MBps
evaluateOrDie(const ExprPtr &expr, const EvalContext &ctx)
{
    auto v = evaluate(expr, ctx);
    if (!v)
        util::fatal("evaluateOrDie: '", expr->format(),
                    "' uses a transfer not implemented on ",
                    ctx.table->machineName());
    return *v;
}

namespace {

void
explainNode(const TransferExpr &node, const EvalContext &ctx,
            int depth, std::ostringstream &os)
{
    auto indent = std::string(static_cast<std::size_t>(depth) * 2, ' ');
    auto v = evalNode(node, ctx);
    std::string rate =
        v ? util::detail::concat(std::fixed, std::setprecision(1), *v,
                                 " MB/s")
          : std::string("unsupported");
    switch (node.kind()) {
      case ExprKind::Leaf:
        os << indent << node.transfer().name();
        if (auto c = node.congestionOverride())
            os << "@" << *c;
        os << " = " << rate << "\n";
        break;
      case ExprKind::Seq:
        os << indent << "sequential (reciprocal sum) = " << rate << "\n";
        for (const auto &child : node.children())
            explainNode(*child, ctx, depth + 1, os);
        break;
      case ExprKind::Par:
        os << indent << "parallel (minimum) = " << rate << "\n";
        for (const auto &child : node.children())
            explainNode(*child, ctx, depth + 1, os);
        break;
    }
}

} // namespace

std::string
explain(const ExprPtr &expr, const EvalContext &ctx)
{
    if (!expr || !ctx.table)
        util::fatal("explain: null expression or table");
    std::ostringstream os;
    os << expr->format() << "  [" << ctx.table->machineName()
       << ", congestion " << ctx.congestion << "]\n";
    explainNode(*expr, ctx, 1, os);
    auto raw = evalNode(*expr, ctx);
    if (raw && !ctx.constraints.empty()) {
        double final_value = applyConstraints(*raw, ctx.constraints);
        for (const auto &c : ctx.constraints) {
            os << "  constraint '" << c.name << "': " << c.demandFactor
               << "x demand <= " << c.limit << " MB/s\n";
        }
        os << "  constrained result = " << std::fixed
           << std::setprecision(1) << final_value << " MB/s\n";
    }
    return os.str();
}

} // namespace ct::core
