/**
 * @file
 * Latency-extended cost model. The paper's copy-transfer model is
 * deliberately throughput-only (§3.1), and its §6.2 results show
 * where that breaks: the chained model predicts 68 MB/s for the SOR
 * exchange but the measured rate is 28, because 2 KB messages are
 * dominated by fixed per-message software costs, not bandwidth.
 *
 * This extension adds the missing first-order term:
 *
 *     T(n) = startup + n / asymptotic_throughput
 *
 * with the startup charge taken from the same software costs the
 * runtime layers model (partner switch / library call, end-of-step
 * synchronization). It predicts message-size-dependent throughput
 * (the curves of Figure 1) and the half-power point n_1/2.
 */

#ifndef CT_CORE_LATENCY_MODEL_H
#define CT_CORE_LATENCY_MODEL_H

#include "core/strategies.h"

namespace ct::core {

/** Throughput as a function of message size for one strategy. */
class MessageCostModel
{
  public:
    /**
     * @param asymptotic_mbps steady-state throughput (from the
     *        copy-transfer model)
     * @param startup_cycles fixed per-message software cost
     * @param sync_cycles per-step cost charged once per exchange
     * @param clock_hz node clock for converting cycles to time
     */
    MessageCostModel(util::MBps asymptotic_mbps,
                     util::Cycles startup_cycles,
                     util::Cycles sync_cycles, double clock_hz);

    /** Predicted transfer time for one message of @p bytes. */
    double secondsFor(util::Bytes bytes) const;

    /** Effective throughput at message size @p bytes. */
    util::MBps throughputAt(util::Bytes bytes) const;

    /**
     * The half-power point: the message size at which effective
     * throughput reaches half the asymptotic rate.
     */
    util::Bytes halfPowerPoint() const;

    util::MBps asymptotic() const { return peak; }

  private:
    util::MBps peak;
    double startupSeconds;
    double syncSeconds;
};

/**
 * Build the cost model for implementing xQy with @p style on machine
 * @p id, combining the copy-transfer throughput estimate with the
 * per-message and per-step software costs of that style (annex
 * partner switch and cache-invalidating synchronization for chained
 * transfers; library call overhead and a barrier for packing; both
 * plus system-buffer copies for PVM). Returns nullopt when the
 * machine cannot execute the style.
 */
std::optional<MessageCostModel>
makeMessageCostModel(MachineId id, Style style, AccessPattern x,
                     AccessPattern y);

} // namespace ct::core

#endif // CT_CORE_LATENCY_MODEL_H
