/**
 * @file
 * Basic transfers of the copy-transfer model (paper §3.2) and the
 * throughput table that assigns each one a measured MB/s figure.
 */

#ifndef CT_CORE_BASIC_TRANSFER_H
#define CT_CORE_BASIC_TRANSFER_H

#include <map>
#include <optional>
#include <string>

#include "core/pattern.h"
#include "util/units.h"

namespace ct::core {

/**
 * The seven basic transfer operations. Intra-node transfers move data
 * between memory and the network interface (or within memory); the two
 * network transfers move data between nodes.
 */
enum class TransferOp {
    LocalCopy,      ///< xCy: processor load/store loop within memory
    LoadSend,       ///< xS0: processor loads pattern x, stores to NI
    FetchSend,      ///< xF0: DMA/fetch engine feeds the NI in background
    ReceiveStore,   ///< 0Ry: processor drains NI, stores with pattern y
    ReceiveDeposit, ///< 0Dy: deposit engine stores in the background
    NetData,        ///< Nd:   network transfer, data words only
    NetAddrData,    ///< Nadp: network transfer, address-data pairs
};

/** True for Nd / Nadp. */
bool isNetworkOp(TransferOp op);

/** True for transfers executed by the main processor (C, S, R). */
bool isProcessorOp(TransferOp op);

/** Formula letter for an op: "C", "S", "F", "R", "D", "Nd", "Nadp". */
std::string opName(TransferOp op);

/**
 * One basic transfer: an operation plus its read (left subscript) and
 * write (right subscript) access patterns, e.g. 64C1 or wS0.
 */
struct BasicTransfer
{
    TransferOp op = TransferOp::LocalCopy;
    AccessPattern read;
    AccessPattern write;

    /** Formula notation, e.g. "64C1", "wS0", "Nd". */
    std::string name() const;

    bool operator==(const BasicTransfer &other) const = default;
};

/** Construct xCy. */
BasicTransfer localCopy(AccessPattern read, AccessPattern write);
/** Construct xS0. */
BasicTransfer loadSend(AccessPattern read);
/** Construct xF0. */
BasicTransfer fetchSend(AccessPattern read);
/** Construct 0Ry. */
BasicTransfer receiveStore(AccessPattern write);
/** Construct 0Dy. */
BasicTransfer receiveDeposit(AccessPattern write);
/** Construct Nd. */
BasicTransfer netData();
/** Construct Nadp. */
BasicTransfer netAddrData();

/**
 * Throughput figures for basic transfers on one machine.
 *
 * Entries are stored at sampled patterns (the strides a measurement
 * campaign actually ran). Lookups at unsampled strides interpolate
 * linearly in log2(stride) between neighbouring samples and clamp
 * beyond the largest sample, following the paper's simplification that
 * "the throughput for stride 64 applies to any larger stride".
 *
 * Network transfers are keyed by congestion factor instead of access
 * pattern; unsampled congestions interpolate geometrically.
 */
class ThroughputTable
{
  public:
    /** Record a throughput figure for an intra-node transfer. */
    void set(const BasicTransfer &t, util::MBps mbps);

    /** Record a network throughput at a given congestion factor. */
    void setNetwork(TransferOp op, int congestion, util::MBps mbps);

    /**
     * Look up (possibly interpolating) the throughput of an
     * intra-node transfer. Returns nullopt when the machine does not
     * implement the transfer at all (e.g. 1F0 on the T3D).
     *
     * When both sides of a LocalCopy are non-contiguous and no exact
     * sample exists, the cost is estimated by combining the load side
     * and the store side:  1/|xCy| = 1/|xC1| + 1/|1Cy| - 1/|1C1|.
     */
    std::optional<util::MBps> lookup(const BasicTransfer &t) const;

    /** Look up network throughput at a congestion factor >= 1. */
    std::optional<util::MBps> lookupNetwork(TransferOp op,
                                            double congestion) const;

    /** Human-readable machine name, e.g. "T3D". */
    const std::string &machineName() const { return name; }
    void setMachineName(std::string n) { name = std::move(n); }

    /** Number of recorded intra-node samples. */
    std::size_t sampleCount() const { return entries.size(); }

  private:
    struct Key
    {
        TransferOp op;
        AccessPattern read;
        AccessPattern write;

        bool operator<(const Key &other) const;
    };

    /**
     * Interpolate a strided lookup for a fixed op where only one side
     * varies. @p vary_read selects which subscript carries the stride.
     */
    std::optional<util::MBps> lookupStrided(TransferOp op,
                                            std::uint32_t stride,
                                            bool vary_read) const;

    std::optional<util::MBps> exact(const BasicTransfer &t) const;

    std::string name = "unnamed";
    std::map<Key, util::MBps> entries;
    std::map<std::pair<int, int>, util::MBps> network;
};

} // namespace ct::core

#endif // CT_CORE_BASIC_TRANSFER_H
