#include "strategies.h"

#include "util/logging.h"

namespace ct::core {

namespace {

using P = AccessPattern;
using E = TransferExpr;

/** The contiguous middle leg: sender feed || network || deposit. */
ExprPtr
contiguousLeg(const MachineCaps &caps)
{
    ExprPtr sender = caps.hasFetchSend
                         ? E::leaf(fetchSend(P::contiguous()))
                         : E::leaf(loadSend(P::contiguous()));
    return E::par(sender, E::leaf(netData()),
                  E::leaf(receiveDeposit(P::contiguous())));
}

std::vector<ResourceConstraint>
packingConstraints(const MachineCaps &caps)
{
    // Buffer packing stores every word twice on each node (pack at
    // the sender, unpack at the receiver); with all nodes sending and
    // receiving simultaneously the aggregate store traffic must fit
    // in the store-only memory bandwidth: 2 x |xQy| <= |0C1|.
    return {{"2x store traffic <= |0C1|", 2.0,
             caps.storeOnlyBandwidth}};
}

} // namespace

std::string
styleName(Style style)
{
    switch (style) {
      case Style::BufferPacking:
        return "buffer-packing";
      case Style::Chained:
        return "chained";
      case Style::Pvm:
        return "pvm";
      case Style::DmaDirect:
        return "dma-direct";
    }
    util::panic("styleName: bad style");
}

std::optional<Strategy>
makeStrategy(MachineId id, Style style, AccessPattern x,
             AccessPattern y)
{
    if (x.isFixed() || y.isFixed())
        util::fatal("makeStrategy: xQy patterns must touch memory");
    MachineCaps caps = paperCaps(id);

    Strategy s;
    s.style = style;
    switch (style) {
      case Style::BufferPacking: {
        // xQy = xC1 o (feed || Nd || 0D1) o 1Cy. The copies are kept
        // even for contiguous x and y: the library interface forces
        // them (§3.4).
        s.expr = E::seq(E::leaf(localCopy(x, P::contiguous())),
                        contiguousLeg(caps),
                        E::leaf(localCopy(P::contiguous(), y)));
        s.constraints = packingConstraints(caps);
        s.description = "gather copy, contiguous block transfer, "
                        "scatter copy";
        return s;
      }
      case Style::Pvm: {
        // Buffer packing plus one extra copy into a system buffer on
        // each side (§5.1.1); the per-message constant overhead is a
        // latency effect outside the throughput model.
        s.expr = E::seq({E::leaf(localCopy(x, P::contiguous())),
                         E::leaf(localCopy(P::contiguous(),
                                           P::contiguous())),
                         contiguousLeg(caps),
                         E::leaf(localCopy(P::contiguous(),
                                           P::contiguous())),
                         E::leaf(localCopy(P::contiguous(), y))});
        s.constraints = packingConstraints(caps);
        s.description = "buffer packing with additional system-buffer "
                        "copies";
        return s;
      }
      case Style::Chained: {
        bool contiguous = x.isContiguous() && y.isContiguous();
        if (contiguous) {
            // 1Q'1 = 1S0 || Nd || (0D1 or 0R1).
            ExprPtr recv =
                caps.depositContiguous
                    ? E::leaf(receiveDeposit(P::contiguous()))
                    : (caps.coProcReceive
                           ? E::leaf(receiveStore(P::contiguous()))
                           : nullptr);
            if (!recv)
                return std::nullopt;
            s.expr = E::par(E::leaf(loadSend(P::contiguous())),
                            E::leaf(netData()), recv);
            s.description = "direct contiguous chained transfer";
            return s;
        }
        // xQ'y = xS0 || Nadp || (0Dy or 0Ry).
        ExprPtr recv;
        if (caps.depositAnyPattern)
            recv = E::leaf(receiveDeposit(y));
        else if (caps.coProcReceive)
            recv = E::leaf(receiveStore(y));
        else if (y.isContiguous() && caps.depositContiguous)
            recv = E::leaf(receiveDeposit(y));
        if (!recv)
            return std::nullopt;
        s.expr = E::par(E::leaf(loadSend(x)), E::leaf(netAddrData()),
                        recv);
        s.description = "remote stores chained through the deposit "
                        "path (address-data pairs)";
        return s;
      }
      case Style::DmaDirect: {
        if (!(x.isContiguous() && y.isContiguous()))
            return std::nullopt;
        if (!(caps.hasFetchSend && caps.depositContiguous))
            return std::nullopt;
        s.expr = E::par(E::leaf(fetchSend(P::contiguous())),
                        E::leaf(netData()),
                        E::leaf(receiveDeposit(P::contiguous())));
        s.description = "DMA-fed contiguous block transfer";
        return s;
      }
    }
    util::panic("makeStrategy: bad style");
}

std::optional<util::MBps>
rateStrategy(const Strategy &strategy, const ThroughputTable &table,
             double congestion)
{
    EvalContext ctx;
    ctx.table = &table;
    ctx.congestion = congestion;
    ctx.constraints = strategy.constraints;
    return evaluate(strategy.expr, ctx);
}

} // namespace ct::core
