#include "strategies.h"

namespace ct::core {

Strategy
toStrategy(TransferProgram program)
{
    Strategy s;
    s.style = program.style;
    s.expr = program.expr;
    s.constraints = program.constraints;
    s.description = program.description;
    s.program = std::move(program);
    return s;
}

std::optional<Strategy>
makeStrategy(MachineId id, Style style, AccessPattern x,
             AccessPattern y)
{
    std::optional<TransferProgram> program =
        buildProgram(id, style, x, y);
    if (!program)
        return std::nullopt;
    return toStrategy(std::move(*program));
}

std::optional<util::MBps>
rateStrategy(const Strategy &strategy, const ThroughputTable &table,
             double congestion)
{
    EvalContext ctx;
    ctx.table = &table;
    ctx.congestion = congestion;
    ctx.constraints = strategy.constraints;
    return evaluate(strategy.expr, ctx);
}

} // namespace ct::core
