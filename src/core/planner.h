/**
 * @file
 * The compiler-facing planner (paper §5): enumerate every legal way to
 * implement a remote memory copy xQy on a machine, rate each with the
 * copy-transfer model, and rank them.
 */

#ifndef CT_CORE_PLANNER_H
#define CT_CORE_PLANNER_H

#include <string>
#include <vector>

#include "core/latency_model.h"
#include "core/strategies.h"

namespace ct::core {

/** One rated candidate implementation. */
struct PlannedStrategy
{
    Strategy strategy;
    util::MBps estimate = 0.0;
};

/** Inputs of a planning query. */
struct PlanQuery
{
    MachineId machine = MachineId::T3d;
    AccessPattern read;  ///< source access pattern x
    AccessPattern write; ///< destination access pattern y
    /** Congestion of the communication step; <= 0 uses the machine
     *  default (two for both studied machines, §4.3). */
    double congestion = 0.0;
};

/**
 * Enumerate, rate and sort (fastest first) all styles the machine can
 * execute for the queried xQy. Never returns an empty vector: buffer
 * packing is always available.
 */
std::vector<PlannedStrategy> plan(const PlanQuery &query);

/** Shortcut for the fastest plan. */
PlannedStrategy bestPlan(const PlanQuery &query);

/** Multi-line report of a planning decision, for tools and examples. */
std::string formatPlan(const PlanQuery &query,
                       const std::vector<PlannedStrategy> &plans);

/** One style's effective rate at a given message size. */
struct SizedPlan
{
    Style style = Style::BufferPacking;
    /** Registry key, e.g. "chained" (disambiguates Custom styles). */
    std::string key;
    /** Effective throughput at the queried message size. */
    util::MBps effective = 0.0;
    /** Steady-state rate the style approaches for large messages. */
    util::MBps asymptotic = 0.0;
    /** Message size reaching half the asymptotic rate. */
    util::Bytes halfPower = 0;
};

/**
 * Size-aware planning via the latency-extended model: rank the
 * styles by their *effective* throughput for messages of
 * @p message_bytes. For small messages the ranking can differ from
 * plan(): chained transfers pay a heavier synchronization charge, so
 * below a crossover size buffer packing wins even where the
 * steady-state model says otherwise (the §6.2 SOR situation).
 */
std::vector<SizedPlan> planForSize(MachineId machine, AccessPattern x,
                                   AccessPattern y,
                                   util::Bytes message_bytes);

/**
 * The message size at which @p a and @p b deliver equal effective
 * throughput, or 0 when one dominates at every size.
 */
util::Bytes styleCrossoverBytes(MachineId machine, AccessPattern x,
                                AccessPattern y, Style a, Style b);

/**
 * Canonical memoization key for a planning or simulation query.
 * Equivalent queries -- however their patterns, machine name or
 * fault/chaos specs were originally spelled -- must map to the same
 * key, so callers pass the *parsed* artifacts and this function
 * re-renders each through its canonical printer: the machine through
 * machineName(), the patterns through AccessPattern::label(), and
 * the fault/chaos specs through their summary() round-trip (the
 * caller renders those, since core does not depend on sim). The
 * deadline budget is part of the key because it shapes the answer: a
 * truncated response memoized under a budget-blind key would be
 * served to a client that asked for full fidelity. Fields are joined
 * in a fixed order with '|', e.g.
 *
 *   "sim|T3D|1Q64|words=4096|bytes=0|budget=0|faults=drop=0.02|chaos=none"
 *
 * The planning service CRC-stamps the cached payload separately; the
 * key itself carries no checksum.
 */
std::string canonicalQueryKey(const char *op, MachineId machine,
                              const AccessPattern &x,
                              const AccessPattern &y,
                              std::uint64_t words, util::Bytes bytes,
                              std::uint64_t budget,
                              const std::string &canonical_faults,
                              const std::string &canonical_chaos);

} // namespace ct::core

#endif // CT_CORE_PLANNER_H
