/**
 * @file
 * Published throughput figures and hardware capabilities of the two
 * machines studied in the paper (Tables 1-4 plus §3.5).
 *
 * Strides the paper does not tabulate (e.g. stride 16 in Table 5) are
 * filled in with curve samples consistent with Figure 4 and with the
 * stride-16 values implied by the paper's own Table 5 arithmetic; see
 * EXPERIMENTS.md for the derivation.
 */

#ifndef CT_CORE_MACHINE_PARAMS_H
#define CT_CORE_MACHINE_PARAMS_H

#include <string>

#include "core/basic_transfer.h"

namespace ct::core {

/** The two machines evaluated in the paper. */
enum class MachineId {
    T3d,
    Paragon,
};

/** Display name: "T3D" / "Paragon". */
std::string machineName(MachineId id);

/**
 * Hardware capabilities that determine which communication strategies
 * a machine can execute (paper §3.5).
 */
struct MachineCaps
{
    std::string name;

    /** DMA can feed the NI from contiguous memory (Paragon 1F0). */
    bool hasFetchSend = false;

    /**
     * Deposit engine handles any access pattern via address-data
     * pairs (the T3D annex). When false, only contiguous deposits
     * (0D1) are available, if depositContiguous is set.
     */
    bool depositAnyPattern = false;

    /** Contiguous background deposit (0D1) exists. */
    bool depositContiguous = false;

    /**
     * A processor is available to drain the NI with arbitrary store
     * patterns while the main processor sends (Paragon co-processor,
     * giving 0Ry).
     */
    bool coProcReceive = false;

    /** Congestion factor representative for dense patterns (§4.3). */
    double defaultCongestion = 2.0;

    /**
     * Aggregate store-only / load-only memory bandwidth, used by the
     * resource-constraint rule (2 x |xQy| <= |0C1|) when every node
     * sends and receives at once.
     */
    util::MBps storeOnlyBandwidth = 0.0;
    util::MBps loadOnlyBandwidth = 0.0;

    /** Node clock, used when converting simulated cycles. */
    double clockHz = 0.0;
};

/** The paper's measured basic-transfer throughputs for a machine. */
ThroughputTable paperTable(MachineId id);

/** The paper's description of a machine's hardware capabilities. */
MachineCaps paperCaps(MachineId id);

} // namespace ct::core

#endif // CT_CORE_MACHINE_PARAMS_H
