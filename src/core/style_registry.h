/**
 * @file
 * The style-builder registry: the ONE place that knows how each
 * implementation style turns into a TransferProgram. The planner,
 * the backends, the runtime, ctplan and the benches all consume
 * programs built here; adding a style means registering one builder
 * and touching nothing else.
 */

#ifndef CT_CORE_STYLE_REGISTRY_H
#define CT_CORE_STYLE_REGISTRY_H

#include <functional>
#include <optional>

#include "core/transfer_program.h"

namespace ct::core {

/**
 * Builds the program implementing xQy with one style on a machine,
 * or nullopt when the machine lacks the required hardware.
 */
using StyleBuilder = std::function<std::optional<TransferProgram>(
    MachineId, AccessPattern, AccessPattern)>;

/** One registered style. */
struct StyleInfo
{
    /** Enum tag; Style::Custom for externally registered styles. */
    Style style = Style::Custom;
    /** Unique key and display/layer name, e.g. "chained". */
    std::string key;
    /** Fixed software costs charged by the latency model. */
    SoftwareCosts costs;
    StyleBuilder build;
};

/**
 * Register a style (or replace the entry with the same key). The
 * registration order is the planner's enumeration order.
 * Thread-safe against other registerStyle() calls; registration must
 * still happen-before any concurrent reader (readers hand out
 * references into the registry), so register styles before launching
 * a sweep::Farm (DESIGN.md §14).
 */
void registerStyle(StyleInfo info);

/** All registered styles, in registration order. Built-ins
 *  (dma-direct, chained, buffer-packing, pvm) are registered on
 *  first use. Safe to read concurrently from sweep workers once
 *  registration is complete. */
const std::vector<StyleInfo> &styleRegistry();

/** Find a style by enum tag (first match) or key; nullptr if absent. */
const StyleInfo *findStyle(Style style);
const StyleInfo *findStyle(const std::string &key);

/** Build the program for xQy with @p style on machine @p id. */
std::optional<TransferProgram> buildProgram(MachineId id, Style style,
                                            AccessPattern x,
                                            AccessPattern y);

/** Same, addressing the style by registry key. */
std::optional<TransferProgram> buildProgram(MachineId id,
                                            const std::string &key,
                                            AccessPattern x,
                                            AccessPattern y);

} // namespace ct::core

#endif // CT_CORE_STYLE_REGISTRY_H
