/**
 * @file
 * Memory access patterns of the copy-transfer model (paper §2.2, §3.2).
 *
 * A pattern describes how one side of a basic transfer touches memory:
 *
 *  - `0`        a fixed location (head or tail of a network FIFO),
 *  - `1`        contiguous words,
 *  - `n >= 2`   constant stride of n words; the stride may move whole
 *               blocks of words ("2 words for complex numbers, 6 words
 *               for 3D tensors", §2.2), written `n.b`,
 *  - `w` (omega) indexed: an arbitrary sequence given by an index array.
 */

#ifndef CT_CORE_PATTERN_H
#define CT_CORE_PATTERN_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ct::core {

/** The four pattern classes distinguished by the model. */
enum class PatternKind {
    Fixed,      ///< pattern `0`: a FIFO port, not a memory walk
    Contiguous, ///< pattern `1`
    Strided,    ///< pattern `n`, constant stride n >= 2 (in words)
    Indexed,    ///< pattern `w`: arbitrary, driven by an index array
};

/**
 * Value type describing one side's access pattern.
 *
 * Strides are measured in 64-bit words, matching the paper's basic
 * unit of transfer. Strided patterns may move blocks of consecutive
 * words: block(i) starts at element i * stride and covers blockWords
 * words. The stride counts from block start to block start and must
 * be at least the block size.
 */
class AccessPattern
{
  public:
    /** Default-constructs the contiguous pattern. */
    AccessPattern() = default;

    /** The fixed pattern `0`. */
    static AccessPattern fixed();

    /** The contiguous pattern `1`. */
    static AccessPattern contiguous();

    /**
     * A constant-stride pattern moving blocks of @p block_words
     * consecutive words. A stride equal to the block size
     * degenerates to the contiguous pattern; strides must be
     * positive and at least the block size.
     */
    static AccessPattern strided(std::uint32_t stride_words,
                                 std::uint32_t block_words = 1);

    /** The indexed pattern `w`. */
    static AccessPattern indexed();

    /**
     * Parse a pattern label: "0", "1", "w" (or "omega"), a decimal
     * stride, or "stride.block" for block-strided patterns. Returns
     * nullopt on malformed input.
     */
    static std::optional<AccessPattern> parse(std::string_view text);

    PatternKind kind() const { return kindValue; }

    /** Stride in words; 1 for contiguous, 0 for fixed/indexed. */
    std::uint32_t stride() const { return strideWords; }

    /** Words per block; 1 unless block-strided. */
    std::uint32_t block() const { return blockWords; }

    bool isFixed() const { return kindValue == PatternKind::Fixed; }
    bool isContiguous() const
    {
        return kindValue == PatternKind::Contiguous;
    }
    bool isStrided() const { return kindValue == PatternKind::Strided; }
    bool isIndexed() const { return kindValue == PatternKind::Indexed; }

    /** True for patterns that walk memory (everything but `0`). */
    bool touchesMemory() const { return !isFixed(); }

    /** Short label as used in formulas: "0", "1", "16", "16.2", "w". */
    std::string label() const;

    bool operator==(const AccessPattern &other) const = default;

  private:
    AccessPattern(PatternKind kind, std::uint32_t stride,
                  std::uint32_t block)
        : kindValue(kind), strideWords(stride), blockWords(block)
    {}

    PatternKind kindValue = PatternKind::Contiguous;
    std::uint32_t strideWords = 1;
    std::uint32_t blockWords = 1;
};

/** Orders patterns for use as map keys: by kind, stride, block. */
struct PatternLess
{
    bool operator()(const AccessPattern &a, const AccessPattern &b) const;
};

} // namespace ct::core

#endif // CT_CORE_PATTERN_H
