#include "datatype.h"

#include <algorithm>

#include "core/distribution.h"
#include "util/logging.h"

namespace ct::core {

Datatype
Datatype::contiguous(std::uint64_t count)
{
    if (count == 0)
        util::fatal("Datatype::contiguous: zero count");
    Datatype t;
    t.wordOffsets.resize(count);
    for (std::uint64_t i = 0; i < count; ++i)
        t.wordOffsets[i] = i;
    return t;
}

Datatype
Datatype::vector(std::uint64_t count, std::uint64_t blocklen,
                 std::uint64_t stride)
{
    if (count == 0 || blocklen == 0)
        util::fatal("Datatype::vector: zero count or blocklen");
    if (stride < blocklen)
        util::fatal("Datatype::vector: stride smaller than blocklen");
    Datatype t;
    t.wordOffsets.reserve(count * blocklen);
    for (std::uint64_t i = 0; i < count; ++i)
        for (std::uint64_t j = 0; j < blocklen; ++j)
            t.wordOffsets.push_back(i * stride + j);
    return t;
}

Datatype
Datatype::indexedBlock(std::uint64_t blocklen,
                       const std::vector<std::uint64_t> &displacements)
{
    std::vector<std::uint64_t> lens(displacements.size(), blocklen);
    return indexed(lens, displacements);
}

Datatype
Datatype::indexed(const std::vector<std::uint64_t> &blocklens,
                  const std::vector<std::uint64_t> &displacements)
{
    if (blocklens.size() != displacements.size())
        util::fatal("Datatype::indexed: length mismatch");
    if (blocklens.empty())
        util::fatal("Datatype::indexed: empty type");
    Datatype t;
    for (std::size_t i = 0; i < blocklens.size(); ++i) {
        if (blocklens[i] == 0)
            util::fatal("Datatype::indexed: zero-length block");
        for (std::uint64_t j = 0; j < blocklens[i]; ++j)
            t.wordOffsets.push_back(displacements[i] + j);
    }
    return t;
}

Datatype
Datatype::replicate(const Datatype &element, std::uint64_t count,
                    std::uint64_t extent)
{
    if (count == 0)
        util::fatal("Datatype::replicate: zero count");
    if (extent == 0)
        util::fatal("Datatype::replicate: zero extent");
    Datatype t;
    t.wordOffsets.reserve(element.size() * count);
    for (std::uint64_t i = 0; i < count; ++i)
        for (std::uint64_t off : element.wordOffsets)
            t.wordOffsets.push_back(i * extent + off);
    return t;
}

std::uint64_t
Datatype::extent() const
{
    return *std::max_element(wordOffsets.begin(), wordOffsets.end()) +
           1;
}

AccessPattern
Datatype::pattern() const
{
    return classifyIndices(wordOffsets);
}

bool
Datatype::isMonotone() const
{
    for (std::size_t i = 1; i < wordOffsets.size(); ++i)
        if (wordOffsets[i] <= wordOffsets[i - 1])
            return false;
    return true;
}

bool
Datatype::hasOverlap() const
{
    std::vector<std::uint64_t> sorted = wordOffsets;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i)
        if (sorted[i] == sorted[i - 1])
            return true;
    return false;
}

} // namespace ct::core
