#include "planner.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace ct::core {

std::vector<PlannedStrategy>
plan(const PlanQuery &query)
{
    ThroughputTable table = paperTable(query.machine);
    MachineCaps caps = paperCaps(query.machine);
    double congestion = query.congestion > 0.0 ? query.congestion
                                               : caps.defaultCongestion;

    std::vector<PlannedStrategy> result;
    for (const StyleInfo &info : styleRegistry()) {
        auto program = buildProgram(query.machine, info.key,
                                    query.read, query.write);
        if (!program)
            continue;
        Strategy strategy = toStrategy(std::move(*program));
        auto rate = rateStrategy(strategy, table, congestion);
        if (!rate)
            continue;
        result.push_back({std::move(strategy), *rate});
    }
    if (result.empty())
        util::panic("plan: no legal strategy for ",
                    query.read.label(), "Q", query.write.label(),
                    " on ", caps.name);

    std::stable_sort(result.begin(), result.end(),
                     [](const PlannedStrategy &a,
                        const PlannedStrategy &b) {
                         return a.estimate > b.estimate;
                     });
    return result;
}

PlannedStrategy
bestPlan(const PlanQuery &query)
{
    return plan(query).front();
}

std::vector<SizedPlan>
planForSize(MachineId machine, AccessPattern x, AccessPattern y,
            util::Bytes message_bytes)
{
    ThroughputTable table = paperTable(machine);
    MachineCaps caps = paperCaps(machine);
    std::vector<SizedPlan> result;
    for (const StyleInfo &info : styleRegistry()) {
        auto program = buildProgram(machine, info.key, x, y);
        if (!program)
            continue;
        Strategy strategy = toStrategy(std::move(*program));
        auto rate =
            rateStrategy(strategy, table, caps.defaultCongestion);
        if (!rate)
            continue;
        MessageCostModel model(*rate, strategy.program.costs.startup(),
                               strategy.program.costs.stepSync,
                               caps.clockHz);
        SizedPlan plan;
        plan.style = strategy.style;
        plan.key = info.key;
        plan.effective = model.throughputAt(message_bytes);
        plan.asymptotic = model.asymptotic();
        plan.halfPower = model.halfPowerPoint();
        result.push_back(plan);
    }
    std::stable_sort(result.begin(), result.end(),
                     [](const SizedPlan &a, const SizedPlan &b) {
                         return a.effective > b.effective;
                     });
    return result;
}

util::Bytes
styleCrossoverBytes(MachineId machine, AccessPattern x,
                    AccessPattern y, Style a, Style b)
{
    auto ma = makeMessageCostModel(machine, a, x, y);
    auto mb = makeMessageCostModel(machine, b, x, y);
    if (!ma || !mb)
        util::fatal("styleCrossoverBytes: style unavailable");
    // Effective rates are monotone; they cross at most once. Solve
    // secondsFor equality by bisection over a generous range.
    auto diff = [&](double n) {
        return ma->throughputAt(static_cast<util::Bytes>(n)) -
               mb->throughputAt(static_cast<util::Bytes>(n));
    };
    double lo = 8.0, hi = 1e9;
    if (diff(lo) * diff(hi) > 0.0)
        return 0; // one style dominates everywhere
    for (int it = 0; it < 200; ++it) {
        double mid = (lo + hi) / 2.0;
        if (diff(lo) * diff(mid) <= 0.0)
            hi = mid;
        else
            lo = mid;
    }
    return static_cast<util::Bytes>((lo + hi) / 2.0);
}

std::string
canonicalQueryKey(const char *op, MachineId machine,
                  const AccessPattern &x, const AccessPattern &y,
                  std::uint64_t words, util::Bytes bytes,
                  std::uint64_t budget,
                  const std::string &canonical_faults,
                  const std::string &canonical_chaos)
{
    std::ostringstream os;
    os << op << '|' << machineName(machine) << '|' << x.label() << 'Q'
       << y.label() << "|words=" << words << "|bytes=" << bytes
       << "|budget=" << budget << "|faults="
       << (canonical_faults.empty() ? "none" : canonical_faults)
       << "|chaos="
       << (canonical_chaos.empty() ? "none" : canonical_chaos);
    return os.str();
}

std::string
formatPlan(const PlanQuery &query,
           const std::vector<PlannedStrategy> &plans)
{
    MachineCaps caps = paperCaps(query.machine);
    std::ostringstream os;
    os << query.read.label() << "Q" << query.write.label() << " on "
       << caps.name << ":\n";
    for (const auto &p : plans) {
        os << "  " << std::left << std::setw(15)
           << p.strategy.program.styleKey << std::right << std::fixed
           << std::setprecision(1) << std::setw(6) << p.estimate
           << " MB/s   " << p.strategy.expr->format() << "\n";
    }
    return os.str();
}

} // namespace ct::core
