/**
 * @file
 * Implementation styles for a remote memory copy xQy (paper §3.4,
 * §5.1). The enum only *names* the built-in styles; everything a
 * style *is* — its stages, formula, constraints and software costs —
 * lives in the style registry as a `Style -> TransferProgram`
 * builder (see style_registry.h).
 */

#ifndef CT_CORE_STYLE_H
#define CT_CORE_STYLE_H

#include <string>

namespace ct::core {

/** Implementation styles for a remote memory copy xQy. */
enum class Style {
    /** Gather into a buffer, block transfer, scatter (libsma/NX). */
    BufferPacking,
    /** Gather/transfer/scatter in one step via the deposit path. */
    Chained,
    /** Buffer packing plus extra system-buffer copies (PVM). */
    Pvm,
    /** Contiguous-only direct DMA block transfer, no copies. */
    DmaDirect,
    /** Externally registered style (identified by its registry key). */
    Custom,
};

/** Display name of a style (looked up in the style registry). */
std::string styleName(Style style);

} // namespace ct::core

#endif // CT_CORE_STYLE_H
