#include "style_registry.h"

#include <mutex>
#include <utility>

#include "util/logging.h"

namespace ct::core {

namespace {

using P = AccessPattern;
using E = TransferExpr;
using R = StageResource;
using B = BufferBinding;

/** The contiguous middle leg: sender feed || network || deposit. */
ExprPtr
contiguousLeg(const MachineCaps &caps)
{
    ExprPtr sender = caps.hasFetchSend
                         ? E::leaf(fetchSend(P::contiguous()))
                         : E::leaf(loadSend(P::contiguous()));
    return E::par(sender, E::leaf(netData()),
                  E::leaf(receiveDeposit(P::contiguous())));
}

/** Stage form of the contiguous leg, feeding from @p feedBuffer. */
void
appendContiguousLeg(const MachineCaps &caps, B feedBuffer, B landBuffer,
                    std::vector<ProgramStage> &stages)
{
    if (caps.hasFetchSend)
        stages.push_back({fetchSend(P::contiguous()), R::SenderEngine,
                          feedBuffer, B::NetworkPort});
    else
        stages.push_back({loadSend(P::contiguous()), R::SenderCpu,
                          feedBuffer, B::NetworkPort});
    stages.push_back(
        {netData(), R::Wire, B::NetworkPort, B::NetworkPort});
    stages.push_back({receiveDeposit(P::contiguous()),
                      R::ReceiverEngine, B::NetworkPort, landBuffer});
}

std::vector<ResourceConstraint>
packingConstraints(const MachineCaps &caps)
{
    // Buffer packing stores every word twice on each node (pack at
    // the sender, unpack at the receiver); with all nodes sending and
    // receiving simultaneously the aggregate store traffic must fit
    // in the store-only memory bandwidth: 2 x |xQy| <= |0C1|.
    return {{"2x store traffic <= |0C1|", 2.0,
             caps.storeOnlyBandwidth}};
}

TransferProgram
baseProgram(Style style, const std::string &key, MachineId id,
            AccessPattern x, AccessPattern y,
            const SoftwareCosts &costs)
{
    TransferProgram p;
    p.style = style;
    p.styleKey = key;
    p.machine = id;
    p.x = x;
    p.y = y;
    p.costs = costs;
    return p;
}

std::optional<TransferProgram>
buildBufferPacking(MachineId id, AccessPattern x, AccessPattern y,
                   const SoftwareCosts &costs)
{
    MachineCaps caps = paperCaps(id);
    TransferProgram p =
        baseProgram(Style::BufferPacking, "buffer-packing", id, x, y,
                    costs);
    // xQy = xC1 o (feed || Nd || 0D1) o 1Cy. The copies are kept
    // even for contiguous x and y: the library interface forces
    // them (§3.4).
    p.expr = E::seq(E::leaf(localCopy(x, P::contiguous())),
                    contiguousLeg(caps),
                    E::leaf(localCopy(P::contiguous(), y)));
    p.stages.push_back({localCopy(x, P::contiguous()), R::SenderCpu,
                        B::SourceArray, B::PackBuffer});
    appendContiguousLeg(caps, B::PackBuffer, B::ReceiveBuffer,
                        p.stages);
    p.stages.push_back({localCopy(P::contiguous(), y), R::ReceiverCpu,
                        B::ReceiveBuffer, B::DestArray});
    p.constraints = packingConstraints(caps);
    p.stagingBuffers = 1;
    p.description = "gather copy, contiguous block transfer, "
                    "scatter copy";
    return p;
}

std::optional<TransferProgram>
buildPvm(MachineId id, AccessPattern x, AccessPattern y,
         const SoftwareCosts &costs)
{
    MachineCaps caps = paperCaps(id);
    TransferProgram p =
        baseProgram(Style::Pvm, "pvm", id, x, y, costs);
    // Buffer packing plus one extra copy into a system buffer on
    // each side (§5.1.1); the per-message constant overhead is a
    // latency effect outside the throughput model.
    p.expr = E::seq({E::leaf(localCopy(x, P::contiguous())),
                     E::leaf(localCopy(P::contiguous(),
                                       P::contiguous())),
                     contiguousLeg(caps),
                     E::leaf(localCopy(P::contiguous(),
                                       P::contiguous())),
                     E::leaf(localCopy(P::contiguous(), y))});
    p.stages.push_back({localCopy(x, P::contiguous()), R::SenderCpu,
                        B::SourceArray, B::PackBuffer});
    p.stages.push_back({localCopy(P::contiguous(), P::contiguous()),
                        R::SenderCpu, B::PackBuffer,
                        B::SenderSystemBuffer});
    appendContiguousLeg(caps, B::SenderSystemBuffer,
                        B::ReceiverSystemBuffer, p.stages);
    p.stages.push_back({localCopy(P::contiguous(), P::contiguous()),
                        R::ReceiverCpu, B::ReceiverSystemBuffer,
                        B::ReceiveBuffer});
    p.stages.push_back({localCopy(P::contiguous(), y), R::ReceiverCpu,
                        B::ReceiveBuffer, B::DestArray});
    p.constraints = packingConstraints(caps);
    p.stagingBuffers = 2;
    p.description = "buffer packing with additional system-buffer "
                    "copies";
    return p;
}

std::optional<TransferProgram>
buildChained(MachineId id, AccessPattern x, AccessPattern y,
             const SoftwareCosts &costs)
{
    MachineCaps caps = paperCaps(id);
    TransferProgram p =
        baseProgram(Style::Chained, "chained", id, x, y, costs);
    bool contiguous = x.isContiguous() && y.isContiguous();
    if (contiguous) {
        // 1Q'1 = 1S0 || Nd || (0D1 or 0R1).
        if (caps.depositContiguous) {
            p.expr = E::par(E::leaf(loadSend(P::contiguous())),
                            E::leaf(netData()),
                            E::leaf(receiveDeposit(P::contiguous())));
            p.stages = {{loadSend(P::contiguous()), R::SenderCpu,
                         B::SourceArray, B::NetworkPort},
                        {netData(), R::Wire, B::NetworkPort,
                         B::NetworkPort},
                        {receiveDeposit(P::contiguous()),
                         R::ReceiverEngine, B::NetworkPort,
                         B::DestArray}};
        } else if (caps.coProcReceive) {
            p.expr = E::par(E::leaf(loadSend(P::contiguous())),
                            E::leaf(netData()),
                            E::leaf(receiveStore(P::contiguous())));
            p.stages = {{loadSend(P::contiguous()), R::SenderCpu,
                         B::SourceArray, B::NetworkPort},
                        {netData(), R::Wire, B::NetworkPort,
                         B::NetworkPort},
                        {receiveStore(P::contiguous()),
                         R::ReceiverCpu, B::NetworkPort,
                         B::DestArray}};
        } else {
            return std::nullopt;
        }
        p.description = "direct contiguous chained transfer";
        return p;
    }
    // xQ'y = xS0 || Nadp || (0Dy or 0Ry).
    bool engineRecv = false;
    if (caps.depositAnyPattern)
        engineRecv = true;
    else if (caps.coProcReceive)
        engineRecv = false;
    else if (y.isContiguous() && caps.depositContiguous)
        engineRecv = true;
    else
        return std::nullopt;
    ExprPtr recv = engineRecv ? E::leaf(receiveDeposit(y))
                              : E::leaf(receiveStore(y));
    p.expr =
        E::par(E::leaf(loadSend(x)), E::leaf(netAddrData()), recv);
    p.stages.push_back({loadSend(x), R::SenderCpu, B::SourceArray,
                        B::NetworkPort});
    if (y.isIndexed()) {
        // The sender walks the destination index vector to frame
        // address-data pairs: a contiguous index-load stream.
        ProgramStage addr{loadSend(P::contiguous()), R::SenderCpu,
                          B::SourceArray, B::NetworkPort};
        addr.addressCompute = true;
        p.stages.push_back(addr);
    }
    p.stages.push_back(
        {netAddrData(), R::Wire, B::NetworkPort, B::NetworkPort});
    if (engineRecv)
        p.stages.push_back({receiveDeposit(y), R::ReceiverEngine,
                            B::NetworkPort, B::DestArray});
    else
        p.stages.push_back({receiveStore(y), R::ReceiverCpu,
                            B::NetworkPort, B::DestArray});
    p.description = "remote stores chained through the deposit "
                    "path (address-data pairs)";
    return p;
}

std::optional<TransferProgram>
buildDmaDirect(MachineId id, AccessPattern x, AccessPattern y,
               const SoftwareCosts &costs)
{
    MachineCaps caps = paperCaps(id);
    if (!(x.isContiguous() && y.isContiguous()))
        return std::nullopt;
    if (!(caps.hasFetchSend && caps.depositContiguous))
        return std::nullopt;
    TransferProgram p =
        baseProgram(Style::DmaDirect, "dma-direct", id, x, y, costs);
    p.expr = E::par(E::leaf(fetchSend(P::contiguous())),
                    E::leaf(netData()),
                    E::leaf(receiveDeposit(P::contiguous())));
    p.stages = {{fetchSend(P::contiguous()), R::SenderEngine,
                 B::SourceArray, B::NetworkPort},
                {netData(), R::Wire, B::NetworkPort, B::NetworkPort},
                {receiveDeposit(P::contiguous()), R::ReceiverEngine,
                 B::NetworkPort, B::DestArray}};
    p.description = "DMA-fed contiguous block transfer";
    return p;
}

/** Builders in the planner's preference order (fastest-first when
 *  estimates tie; matches the legacy hardcoded list). */
std::vector<StyleInfo>
builtinStyles()
{
    std::vector<StyleInfo> reg;
    {
        StyleInfo info;
        info.style = Style::DmaDirect;
        info.key = "dma-direct";
        info.costs = {1000, 500, 3000};
        SoftwareCosts costs = info.costs;
        info.build = [costs](MachineId id, AccessPattern x,
                             AccessPattern y) {
            return buildDmaDirect(id, x, y, costs);
        };
        reg.push_back(std::move(info));
    }
    {
        StyleInfo info;
        info.style = Style::Chained;
        info.key = "chained";
        info.costs = {1500, 0, 8000};
        SoftwareCosts costs = info.costs;
        info.build = [costs](MachineId id, AccessPattern x,
                             AccessPattern y) {
            return buildChained(id, x, y, costs);
        };
        reg.push_back(std::move(info));
    }
    {
        StyleInfo info;
        info.style = Style::BufferPacking;
        info.key = "buffer-packing";
        info.costs = {1000, 500, 3000};
        SoftwareCosts costs = info.costs;
        info.build = [costs](MachineId id, AccessPattern x,
                             AccessPattern y) {
            return buildBufferPacking(id, x, y, costs);
        };
        reg.push_back(std::move(info));
    }
    {
        StyleInfo info;
        info.style = Style::Pvm;
        info.key = "pvm";
        info.costs = {4000, 2000, 3000};
        SoftwareCosts costs = info.costs;
        info.build = [costs](MachineId id, AccessPattern x,
                             AccessPattern y) {
            return buildPvm(id, x, y, costs);
        };
        reg.push_back(std::move(info));
    }
    return reg;
}

std::vector<StyleInfo> &
registryStorage()
{
    static std::vector<StyleInfo> reg = builtinStyles();
    return reg;
}

/**
 * Serializes concurrent registerStyle() calls. Readers are lock-free
 * on purpose: they hand out references into the vector, so the
 * registry contract (header) requires all registration to
 * happen-before any concurrent read -- in practice, before the first
 * sweep::Farm launch. The mutex closes the writer/writer race the
 * shared-static audit flagged (two farm-setup paths registering
 * styles at once); it cannot (and does not claim to) make
 * register-during-sweep safe.
 */
std::mutex &
registryMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

void
registerStyle(StyleInfo info)
{
    if (info.key.empty())
        util::fatal("registerStyle: style needs a key");
    if (!info.build)
        util::fatal("registerStyle: style needs a builder");
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<StyleInfo> &reg = registryStorage();
    for (StyleInfo &existing : reg) {
        if (existing.key == info.key) {
            existing = std::move(info);
            return;
        }
    }
    reg.push_back(std::move(info));
}

const std::vector<StyleInfo> &
styleRegistry()
{
    return registryStorage();
}

const StyleInfo *
findStyle(Style style)
{
    for (const StyleInfo &info : registryStorage())
        if (info.style == style)
            return &info;
    return nullptr;
}

const StyleInfo *
findStyle(const std::string &key)
{
    for (const StyleInfo &info : registryStorage())
        if (info.key == key)
            return &info;
    return nullptr;
}

namespace {

std::optional<TransferProgram>
runBuilder(const StyleInfo *info, MachineId id, AccessPattern x,
           AccessPattern y)
{
    if (!info)
        return std::nullopt;
    if (x.isFixed() || y.isFixed())
        util::fatal("buildProgram: xQy patterns must touch memory");
    return info->build(id, x, y);
}

} // namespace

std::optional<TransferProgram>
buildProgram(MachineId id, Style style, AccessPattern x,
             AccessPattern y)
{
    return runBuilder(findStyle(style), id, x, y);
}

std::optional<TransferProgram>
buildProgram(MachineId id, const std::string &key, AccessPattern x,
             AccessPattern y)
{
    return runBuilder(findStyle(key), id, x, y);
}

std::string
styleName(Style style)
{
    if (style == Style::Custom)
        return "custom";
    if (const StyleInfo *info = findStyle(style))
        return info->key;
    util::panic("styleName: style not registered");
}

} // namespace ct::core
