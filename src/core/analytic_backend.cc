#include "analytic_backend.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace ct::core {

namespace {

/** A processor-bound stage: throughput plus the fraction of its
 *  memory-load stream that is contiguous/cacheable (line fills). */
struct CpuStage
{
    double rate;
    double sigma;
};

/**
 * One endpoint of the pipeline: CPU stages (reciprocal-sum; they
 * share the processor) plus at most one autonomous interferer (DMA
 * fetch / deposit engine, or the NI port feed for a co-processor
 * receive). On a shared-bus machine, the fraction of CPU work doing
 * contiguous (cacheable, bandwidth-bound) loads serializes with
 * engine bus bursts (§5.1.4); strided/indexed loads are
 * latency-bound and leave slack the engine can hide in.
 */
double
endpointRate(const std::vector<CpuStage> &cpu, double engine,
             bool sharedBus)
{
    double invAll = 0.0, invContig = 0.0;
    for (const CpuStage &s : cpu) {
        invAll += 1.0 / s.rate;
        invContig += s.sigma / s.rate;
    }
    if (invAll == 0.0)
        return engine; // engine-only endpoint
    double r = 1.0 / invAll;
    if (engine > 0.0) {
        if (sharedBus) {
            double sigma = invContig / invAll;
            r = 1.0 / (invAll + sigma / engine);
        }
        r = std::min(r, engine);
    }
    return r;
}

} // namespace

AnalyticBackend::AnalyticBackend(ThroughputTable table,
                                 ExecutionProfile profile)
    : table_(std::move(table)), profile_(profile)
{
    if (profile_.clockHz <= 0.0)
        util::fatal("AnalyticBackend: profile needs a clock");
}

std::optional<util::MBps>
AnalyticBackend::rate(const TransferProgram &program,
                      double congestion) const
{
    if (!program.expr)
        return std::nullopt;
    EvalContext ctx;
    ctx.table = &table_;
    ctx.congestion = congestion;
    ctx.constraints = program.constraints;
    return evaluate(program.expr, ctx);
}

std::optional<MessageCostModel>
AnalyticBackend::costModel(const TransferProgram &program,
                           double congestion) const
{
    std::optional<util::MBps> r = rate(program, congestion);
    if (!r)
        return std::nullopt;
    return MessageCostModel(*r, program.costs.startup(),
                            program.costs.stepSync,
                            profile_.clockHz);
}

std::optional<util::MBps>
AnalyticBackend::predictRate(const TransferProgram &program,
                             double congestion) const
{
    std::vector<CpuStage> senderCpu, receiverCpu;
    double senderEngine = 0.0, receiverEngine = 0.0;
    double wire = 0.0;
    bool receiverPortFed = false;

    for (const ProgramStage &stage : program.stages) {
        // The addressCompute stream is not a throughput-table row:
        // it runs at the machine's load-only bandwidth.
        if (stage.addressCompute) {
            if (profile_.indexStreamMBps <= 0.0)
                return std::nullopt;
            senderCpu.push_back({profile_.indexStreamMBps,
                                 stageLoadSigma(stage)});
            continue;
        }
        if (stage.resource == StageResource::Wire) {
            std::optional<util::MBps> w = table_.lookupNetwork(
                stage.transfer.op, congestion);
            if (!w)
                return std::nullopt;
            wire = *w;
            continue;
        }
        std::optional<util::MBps> r = table_.lookup(stage.transfer);
        if (!r)
            return std::nullopt;
        switch (stage.resource) {
          case StageResource::SenderCpu:
            senderCpu.push_back({*r, stageLoadSigma(stage)});
            break;
          case StageResource::SenderEngine: {
            double rate = *r;
            if (stage.transfer.op == TransferOp::FetchSend &&
                profile_.dmaChunkSetupCycles > 0) {
                // The table measures one whole-block fetch; the
                // layers kick the engine per chunk, paying the setup
                // cost each time.
                double chunkBytes =
                    static_cast<double>(profile_.chunkWords) * 8.0;
                double setupSecPerMB =
                    (static_cast<double>(
                         profile_.dmaChunkSetupCycles) /
                     profile_.clockHz) /
                    (chunkBytes / 1e6);
                rate = 1.0 / (1.0 / rate + setupSecPerMB);
            }
            senderEngine = rate;
            break;
          }
          case StageResource::ReceiverEngine:
            // Deposit rates need no chunk adjustment: the table
            // already measures chunked deposits.
            receiverEngine = *r;
            break;
          case StageResource::ReceiverCpu:
            receiverCpu.push_back({*r, stageLoadSigma(stage)});
            if (stage.transfer.op == TransferOp::ReceiveStore)
                receiverPortFed = true;
            break;
          case StageResource::Wire:
            break; // handled above
        }
    }

    if (wire <= 0.0)
        return std::nullopt;

    // A port-fed co-processor receive has no engine of its own, but
    // the NI feed bursts on the bus just like one.
    double receiverInterferer =
        receiverEngine > 0.0 ? receiverEngine
                             : (receiverPortFed ? wire : 0.0);

    double sender =
        endpointRate(senderCpu, senderEngine, profile_.sharedBus);
    double receiver = endpointRate(receiverCpu, receiverInterferer,
                                   profile_.sharedBus);
    return std::min({sender, receiver, wire});
}

std::optional<util::MBps>
AnalyticBackend::predictThroughputAt(const TransferProgram &program,
                                     util::Bytes bytes,
                                     double congestion) const
{
    std::optional<util::MBps> r = predictRate(program, congestion);
    if (!r)
        return std::nullopt;
    MessageCostModel model(*r, program.costs.startup(),
                           program.costs.stepSync, profile_.clockHz);
    return model.throughputAt(bytes);
}

std::optional<util::MBps>
AnalyticBackend::faultedRate(const TransferProgram &program,
                             const FaultEnvironment &env) const
{
    std::optional<util::MBps> base =
        predictRate(program, env.congestion);
    if (!base)
        return std::nullopt;
    // Past ~0.95 per-packet loss the retransmission series diverges
    // and any comparison is academic; clamp so the query stays total.
    double p = std::clamp(env.packetLoss, 0.0, 0.95);
    if (p <= 0.0)
        return base;

    std::optional<util::MBps> wire;
    for (const ProgramStage &stage : program.stages)
        if (stage.resource == StageResource::Wire && !wire)
            wire = table_.lookupNetwork(stage.transfer.op,
                                        env.congestion);
    if (!wire || *wire <= 0.0)
        return std::nullopt;

    // Expected transmissions per delivered packet: 1/(1-p). The
    // p/(1-p) extra copies serialize on the wire stage at the
    // program's own framing rate.
    double lossesPerPacket = p / (1.0 - p);
    double secPerMB = 1.0 / *base + lossesPerPacket / *wire;

    // Each lost transmission is detected by a timer, stalling the
    // channel for about one retransmit timeout. Charged per packet of
    // env.packetWords payload words; identical for every style, so it
    // shifts the whole surface without moving the break-even point.
    if (env.retransmitTimeout > 0 && env.packetWords > 0) {
        double packetMB =
            static_cast<double>(env.packetWords) * 8.0 / 1e6;
        double stallSec = static_cast<double>(env.retransmitTimeout) /
                          profile_.clockHz;
        secPerMB += lossesPerPacket * stallSec / packetMB;
    }
    return 1.0 / secPerMB;
}

namespace {

/**
 * Bisect f over [lo, hi] for a sign change of f(hi)-f(lo) polarity;
 * nullopt when both ends agree in sign (no crossing) or either end
 * is unratable.
 */
template <typename F>
std::optional<double>
bisectCrossing(F f, double lo, double hi)
{
    std::optional<double> flo = f(lo), fhi = f(hi);
    if (!flo || !fhi)
        return std::nullopt;
    if ((*flo > 0.0) == (*fhi > 0.0))
        return std::nullopt;
    for (int iter = 0; iter < 64; ++iter) {
        double mid = 0.5 * (lo + hi);
        std::optional<double> fmid = f(mid);
        if (!fmid)
            return std::nullopt;
        if ((*fmid > 0.0) == (*flo > 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

} // namespace

std::optional<double>
AnalyticBackend::breakEvenLoss(const TransferProgram &a,
                               const TransferProgram &b,
                               const FaultEnvironment &env) const
{
    auto diff = [&](double p) -> std::optional<double> {
        FaultEnvironment at = env;
        at.packetLoss = p;
        std::optional<util::MBps> ra = faultedRate(a, at);
        std::optional<util::MBps> rb = faultedRate(b, at);
        if (!ra || !rb)
            return std::nullopt;
        return *ra - *rb;
    };
    return bisectCrossing(diff, 0.0, 0.95);
}

std::optional<double>
AnalyticBackend::breakEvenCongestion(const TransferProgram &a,
                                     const TransferProgram &b,
                                     const FaultEnvironment &env,
                                     double maxCongestion) const
{
    if (maxCongestion <= 1.0)
        return std::nullopt;
    auto diff = [&](double c) -> std::optional<double> {
        FaultEnvironment at = env;
        at.congestion = c;
        std::optional<util::MBps> ra = faultedRate(a, at);
        std::optional<util::MBps> rb = faultedRate(b, at);
        if (!ra || !rb)
            return std::nullopt;
        return *ra - *rb;
    };
    return bisectCrossing(diff, 1.0, maxCongestion);
}

} // namespace ct::core
