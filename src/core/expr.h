/**
 * @file
 * Composition AST for communication operations (paper §3.3).
 *
 * A communication operation is written as a tree of basic transfers
 * combined with the two concatenation operators:
 *
 *  - sequential `o` (shared resource; pipelined, throughputs combine
 *    as a reciprocal sum), and
 *  - parallel `||` (disjoint resources; throughput is the minimum).
 *
 * Example (buffer packing on the T3D):
 *
 *     xQy = xC1 o (1S0 || Nd || 0D1) o 1Cy
 */

#ifndef CT_CORE_EXPR_H
#define CT_CORE_EXPR_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/basic_transfer.h"

namespace ct::core {

class TransferExpr;

/** Shared immutable expression node. */
using ExprPtr = std::shared_ptr<const TransferExpr>;

/** Node type of a TransferExpr. */
enum class ExprKind {
    Leaf, ///< one basic transfer
    Seq,  ///< sequential composition `o`
    Par,  ///< parallel composition `||`
};

/**
 * Immutable expression tree node.
 *
 * For Seq/Par nodes, children are ordered in data-flow order from the
 * sender's memory towards the receiver's memory. The composite read
 * pattern of a node is the read pattern of its first child that
 * touches memory; the composite write pattern comes from the last
 * such child. A leaf network transfer may carry a congestion override
 * (otherwise the evaluation context supplies one).
 */
class TransferExpr
{
  public:
    /** Build a leaf node. */
    static ExprPtr leaf(BasicTransfer t);

    /** Build a leaf network node with an explicit congestion factor. */
    static ExprPtr leaf(BasicTransfer t, double congestion);

    /** Sequential composition of two or more parts. */
    static ExprPtr seq(std::vector<ExprPtr> parts);
    static ExprPtr seq(ExprPtr a, ExprPtr b);
    static ExprPtr seq(ExprPtr a, ExprPtr b, ExprPtr c);

    /** Parallel composition of two or more parts. */
    static ExprPtr par(std::vector<ExprPtr> parts);
    static ExprPtr par(ExprPtr a, ExprPtr b);
    static ExprPtr par(ExprPtr a, ExprPtr b, ExprPtr c);

    ExprKind kind() const { return kindValue; }

    /** Basic transfer of a Leaf node; fatal on inner nodes. */
    const BasicTransfer &transfer() const;

    /** Explicit congestion override of a Leaf, if any. */
    std::optional<double> congestionOverride() const
    {
        return congestion;
    }

    /** Children of a Seq/Par node; empty for leaves. */
    const std::vector<ExprPtr> &children() const { return parts; }

    /**
     * End-to-end read pattern: how the composite reads the source
     * memory. Nullopt if no component reads memory.
     */
    std::optional<AccessPattern> readPattern() const;

    /** End-to-end write pattern into the destination memory. */
    std::optional<AccessPattern> writePattern() const;

    /**
     * Check the pattern-matching rule for sequential composition: the
     * write pattern of each stage must match the read pattern of the
     * next stage that touches memory. Buffer handoffs through pattern
     * `1` blocks are the canonical legal case. Returns an error
     * message, or nullopt when the expression is well formed.
     */
    std::optional<std::string> validate() const;

    /** Formula rendering, e.g. "1C64 o (1S0 || Nd || 0D1)". */
    std::string format() const;

  private:
    TransferExpr() = default;

    std::string formatInner(bool parenthesize) const;

    ExprKind kindValue = ExprKind::Leaf;
    BasicTransfer leafTransfer;
    std::optional<double> congestion;
    std::vector<ExprPtr> parts;
};

} // namespace ct::core

#endif // CT_CORE_EXPR_H
