#include "expr.h"

#include <sstream>

#include "util/logging.h"

namespace ct::core {

ExprPtr
TransferExpr::leaf(BasicTransfer t)
{
    auto node = std::shared_ptr<TransferExpr>(new TransferExpr());
    node->kindValue = ExprKind::Leaf;
    node->leafTransfer = t;
    return node;
}

ExprPtr
TransferExpr::leaf(BasicTransfer t, double congestion)
{
    if (!isNetworkOp(t.op))
        util::fatal("TransferExpr::leaf: congestion override on ",
                    t.name());
    if (congestion < 1.0)
        util::fatal("TransferExpr::leaf: congestion < 1");
    auto node = std::shared_ptr<TransferExpr>(new TransferExpr());
    node->kindValue = ExprKind::Leaf;
    node->leafTransfer = t;
    node->congestion = congestion;
    return node;
}

ExprPtr
TransferExpr::seq(std::vector<ExprPtr> parts)
{
    if (parts.size() < 2)
        util::fatal("TransferExpr::seq: needs >= 2 parts");
    for (const auto &p : parts)
        if (!p)
            util::fatal("TransferExpr::seq: null child");
    auto node = std::shared_ptr<TransferExpr>(new TransferExpr());
    node->kindValue = ExprKind::Seq;
    node->parts = std::move(parts);
    return node;
}

ExprPtr
TransferExpr::seq(ExprPtr a, ExprPtr b)
{
    return seq(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr
TransferExpr::seq(ExprPtr a, ExprPtr b, ExprPtr c)
{
    return seq(std::vector<ExprPtr>{std::move(a), std::move(b),
                                    std::move(c)});
}

ExprPtr
TransferExpr::par(std::vector<ExprPtr> parts)
{
    if (parts.size() < 2)
        util::fatal("TransferExpr::par: needs >= 2 parts");
    for (const auto &p : parts)
        if (!p)
            util::fatal("TransferExpr::par: null child");
    auto node = std::shared_ptr<TransferExpr>(new TransferExpr());
    node->kindValue = ExprKind::Par;
    node->parts = std::move(parts);
    return node;
}

ExprPtr
TransferExpr::par(ExprPtr a, ExprPtr b)
{
    return par(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr
TransferExpr::par(ExprPtr a, ExprPtr b, ExprPtr c)
{
    return par(std::vector<ExprPtr>{std::move(a), std::move(b),
                                    std::move(c)});
}

const BasicTransfer &
TransferExpr::transfer() const
{
    if (kindValue != ExprKind::Leaf)
        util::fatal("TransferExpr::transfer: not a leaf");
    return leafTransfer;
}

std::optional<AccessPattern>
TransferExpr::readPattern() const
{
    if (kindValue == ExprKind::Leaf) {
        if (leafTransfer.read.touchesMemory())
            return leafTransfer.read;
        return std::nullopt;
    }
    for (const auto &child : parts)
        if (auto p = child->readPattern())
            return p;
    return std::nullopt;
}

std::optional<AccessPattern>
TransferExpr::writePattern() const
{
    if (kindValue == ExprKind::Leaf) {
        if (leafTransfer.write.touchesMemory())
            return leafTransfer.write;
        return std::nullopt;
    }
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
        if (auto p = (*it)->writePattern())
            return p;
    return std::nullopt;
}

std::optional<std::string>
TransferExpr::validate() const
{
    if (kindValue == ExprKind::Leaf)
        return std::nullopt;

    for (const auto &child : parts)
        if (auto err = child->validate())
            return err;

    if (kindValue == ExprKind::Seq) {
        // Enforce the handoff rule between consecutive stages that
        // both touch memory: stage i's write pattern must equal stage
        // i+1's read pattern.
        for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
            auto w = parts[i]->writePattern();
            auto r = parts[i + 1]->readPattern();
            if (w && r && !(*w == *r)) {
                return "pattern mismatch between '" +
                       parts[i]->format() + "' (writes " + w->label() +
                       ") and '" + parts[i + 1]->format() +
                       "' (reads " + r->label() + ")";
            }
        }
    }
    return std::nullopt;
}

std::string
TransferExpr::formatInner(bool parenthesize) const
{
    if (kindValue == ExprKind::Leaf) {
        std::string s = leafTransfer.name();
        if (congestion) {
            std::ostringstream os;
            os << s << "@" << *congestion;
            return os.str();
        }
        return s;
    }
    const char *sep = kindValue == ExprKind::Seq ? " o " : " || ";
    std::string body;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            body += sep;
        body += parts[i]->formatInner(true);
    }
    if (parenthesize)
        return "(" + body + ")";
    return body;
}

std::string
TransferExpr::format() const
{
    return formatInner(false);
}

} // namespace ct::core
