/**
 * @file
 * Structured tracing keyed off the simulator's virtual clock. A
 * Tracer records typed events -- complete spans (stage executions,
 * resource occupancy with explicit begin time and duration) and
 * instants (packet drop, retransmission, checkpoint, repair) -- into
 * a fixed-capacity ring buffer, so tracing a long run costs bounded
 * memory and the newest events always survive.
 *
 * Events carry static-string names/categories (no allocation on the
 * hot path) and up to two named integer arguments. Timestamps are
 * simulated cycles; the exporters convert to microseconds with the
 * machine's clock so a trace opens directly in chrome://tracing or
 * Perfetto (Chrome trace_event JSON) or streams as JSON-lines for
 * scripted analysis.
 *
 * Tracks: the `tid` field identifies a timeline. The simulator maps
 * each hardware unit of each node to its own track (see
 * sim::Machine::setTracer), so spans on one track never overlap.
 *
 * Event taxonomy (docs/OBSERVABILITY.md):
 *   cat "stage"     span  gather / pack / unpack / recv-scatter ...
 *   cat "resource"  span  deposit / fetch-dma engine occupancy
 *   cat "op"        span  one whole communication operation
 *   cat "net"       inst  drop / corrupt / dup / delay / reroute ...
 *   cat "transport" inst  retransmit / nack / abandon / degrade ...
 *   cat "ckpt"      inst  checkpoint / repair / interrupted
 */

#ifndef CT_OBS_TRACE_H
#define CT_OBS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace ct::obs {

/** Virtual-clock timestamp (simulated cycles). */
using TraceClock = std::uint64_t;

/** One recorded event. */
struct TraceEvent
{
    enum class Kind : std::uint8_t { Span, Instant };

    TraceClock ts = 0;  ///< begin time (cycles)
    TraceClock dur = 0; ///< span duration; 0 for instants
    Kind kind = Kind::Instant;
    std::int32_t tid = 0;        ///< track id
    const char *cat = "";        ///< static category string
    const char *name = "";       ///< static event name
    const char *key1 = nullptr;  ///< optional arg names (static)
    const char *key2 = nullptr;
    std::uint64_t val1 = 0;
    std::uint64_t val2 = 0;
};

/** Output flavor of Tracer::write(). */
enum class TraceFormat { Chrome, JsonLines };

/** Parse "chrome" / "jsonl"; false on anything else. */
bool parseTraceFormat(const std::string &text, TraceFormat &format);

/** Ring-buffer event recorder. */
class Tracer
{
  public:
    /** @p capacity events are kept; older ones are overwritten. */
    explicit Tracer(std::size_t capacity = 1 << 16);

    /** Record a complete span [ts, ts + dur). */
    void span(const char *cat, const char *name, std::int32_t tid,
              TraceClock ts, TraceClock dur,
              const char *key1 = nullptr, std::uint64_t val1 = 0,
              const char *key2 = nullptr, std::uint64_t val2 = 0);

    /** Record a point event at @p ts. */
    void instant(const char *cat, const char *name, std::int32_t tid,
                 TraceClock ts, const char *key1 = nullptr,
                 std::uint64_t val1 = 0, const char *key2 = nullptr,
                 std::uint64_t val2 = 0);

    /** Label a track (exported as Chrome thread-name metadata). */
    void setTrackName(std::int32_t tid, std::string name);

    std::size_t capacity() const { return ring.size(); }

    /** Events currently held (<= capacity). */
    std::size_t size() const;

    /** Events recorded over the tracer's lifetime. */
    std::uint64_t recorded() const { return total; }

    /** Events overwritten because the ring wrapped. */
    std::uint64_t dropped() const;

    /** @p i-th held event, oldest first (0 <= i < size()). */
    const TraceEvent &event(std::size_t i) const;

    /** Drop all events (capacity and track names are kept). */
    void clear();

    /**
     * Export every held event. @p cyclesPerUsec converts the virtual
     * clock to trace microseconds (clockHz / 1e6); pass 1.0 to keep
     * raw cycles as the time unit.
     */
    void write(std::ostream &os, TraceFormat format,
               double cyclesPerUsec = 1.0) const;

    void writeChrome(std::ostream &os,
                     double cyclesPerUsec = 1.0) const;
    void writeJsonLines(std::ostream &os,
                        double cyclesPerUsec = 1.0) const;

  private:
    void record(const TraceEvent &event);

    std::vector<TraceEvent> ring;
    std::uint64_t total = 0;
    std::map<std::int32_t, std::string> trackNames;
};

} // namespace ct::obs

#endif // CT_OBS_TRACE_H
