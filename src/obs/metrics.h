/**
 * @file
 * Central metrics registry: named counters, gauges and histograms
 * with cheap handles. Components register their metrics once (the
 * registry get-or-creates by name, so a re-run reuses the same cell)
 * and bump them through handles on the hot path; reports, the
 * `--metrics-out` dump and the bench summary all read the same cells,
 * so there is exactly one source of truth per number.
 *
 * Handles are thread-safe by construction: every cell is an atomic
 * updated with relaxed ordering, and registration is serialized by a
 * mutex. Cells live in a deque, so handles stay valid for the
 * registry's lifetime regardless of later registrations. A
 * default-constructed handle is a null sink: updates are dropped,
 * which lets components run without a registry attached.
 *
 * Naming convention: dotted lowercase paths grouped by subsystem,
 * e.g. "sim.net.packets", "sim.fault.drops", "rt.reliable.retransmits".
 */

#ifndef CT_OBS_METRICS_H
#define CT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ct::obs {

/** What a registered name refers to. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Power-of-two bucket histogram state (value -> bucket log2). */
struct HistogramCell
{
    static constexpr int kBuckets = 64;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{UINT64_MAX};
    std::atomic<std::uint64_t> max{0};
    std::atomic<std::uint64_t> buckets[kBuckets]{};
};

/** Plain-value snapshot of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; ///< 0 when count == 0
    std::uint64_t max = 0;
    std::vector<std::uint64_t> buckets; ///< kBuckets entries

    double mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/** Monotonic counter handle. */
class Counter
{
  public:
    Counter() = default;

    void add(std::uint64_t n)
    {
        if (cell)
            cell->fetch_add(n, std::memory_order_relaxed);
    }
    void inc() { add(1); }

    std::uint64_t value() const
    {
        return cell ? cell->load(std::memory_order_relaxed) : 0;
    }

    /** Zero this counter (run-scoped metrics reset between runs). */
    void reset()
    {
        if (cell)
            cell->store(0, std::memory_order_relaxed);
    }

    explicit operator bool() const { return cell != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Counter(std::atomic<std::uint64_t> *cell) : cell(cell) {}
    std::atomic<std::uint64_t> *cell = nullptr;
};

/** Last-value gauge handle (signed). */
class Gauge
{
  public:
    Gauge() = default;

    void set(std::int64_t v)
    {
        if (cell)
            cell->store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t v)
    {
        if (cell)
            cell->fetch_add(v, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return cell ? cell->load(std::memory_order_relaxed) : 0;
    }

    void reset() { set(0); }

    explicit operator bool() const { return cell != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<std::int64_t> *cell) : cell(cell) {}
    std::atomic<std::int64_t> *cell = nullptr;
};

/** Histogram handle. */
class Histogram
{
  public:
    Histogram() = default;

    void record(std::uint64_t v);

    HistogramSnapshot snapshot() const;

    void reset();

    explicit operator bool() const { return cell != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(HistogramCell *cell) : cell(cell) {}
    HistogramCell *cell = nullptr;
};

/**
 * The registry. counter()/gauge()/histogram() get-or-create by name;
 * registering an existing name with a different kind is a fatal
 * configuration error (names are unique across kinds).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name);

    /** True if @p name is registered (any kind). */
    bool has(const std::string &name) const;

    /** Kind of a registered name; fatal when absent. */
    MetricKind kindOf(const std::string &name) const;

    /** Value lookups by name; 0 when the name is absent. */
    std::uint64_t counterValue(const std::string &name) const;
    std::int64_t gaugeValue(const std::string &name) const;

    /** Number of registered metrics. */
    std::size_t size() const;

    /** Registered names, sorted (stable dump order). */
    std::vector<std::string> names() const;

    /** Zero every value; registrations and handles stay valid. */
    void reset();

    /**
     * JSON object dump:
     *   {"counters": {...}, "gauges": {...},
     *    "histograms": {"name": {"count":..,"sum":..,...}}}
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

  private:
    struct Cell
    {
        std::string name;
        MetricKind kind;
        std::atomic<std::uint64_t> counter{0};
        std::atomic<std::int64_t> gauge{0};
        HistogramCell hist;
    };

    Cell &getOrCreate(const std::string &name, MetricKind kind);

    mutable std::mutex mu;
    std::deque<Cell> cells;               ///< stable addresses
    std::map<std::string, Cell *> index;
};

} // namespace ct::obs

#endif // CT_OBS_METRICS_H
