#include "trace.h"

#include <ostream>

#include "util/logging.h"

namespace ct::obs {

namespace {

/** Fixed-point microsecond rendering without float formatting
 *  surprises: three decimal places, exact for integer cycles. */
void
emitTs(std::ostream &os, TraceClock cycles, double cyclesPerUsec)
{
    if (cyclesPerUsec == 1.0) {
        os << cycles;
        return;
    }
    double us = static_cast<double>(cycles) / cyclesPerUsec;
    std::uint64_t milli_us =
        static_cast<std::uint64_t>(us * 1000.0 + 0.5);
    os << milli_us / 1000 << '.';
    std::uint64_t frac = milli_us % 1000;
    os << static_cast<char>('0' + frac / 100)
       << static_cast<char>('0' + frac / 10 % 10)
       << static_cast<char>('0' + frac % 10);
}

void
emitArgs(std::ostream &os, const TraceEvent &e)
{
    os << "\"args\": {";
    if (e.key1) {
        os << "\"" << e.key1 << "\": " << e.val1;
        if (e.key2)
            os << ", \"" << e.key2 << "\": " << e.val2;
    }
    os << "}";
}

} // namespace

bool
parseTraceFormat(const std::string &text, TraceFormat &format)
{
    if (text == "chrome") {
        format = TraceFormat::Chrome;
        return true;
    }
    if (text == "jsonl") {
        format = TraceFormat::JsonLines;
        return true;
    }
    return false;
}

Tracer::Tracer(std::size_t capacity)
{
    if (capacity == 0)
        util::fatal("Tracer: capacity must be positive");
    ring.resize(capacity);
}

void
Tracer::record(const TraceEvent &event)
{
    ring[static_cast<std::size_t>(total % ring.size())] = event;
    ++total;
}

void
Tracer::span(const char *cat, const char *name, std::int32_t tid,
             TraceClock ts, TraceClock dur, const char *key1,
             std::uint64_t val1, const char *key2, std::uint64_t val2)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Span;
    e.ts = ts;
    e.dur = dur;
    e.tid = tid;
    e.cat = cat;
    e.name = name;
    e.key1 = key1;
    e.val1 = val1;
    e.key2 = key2;
    e.val2 = val2;
    record(e);
}

void
Tracer::instant(const char *cat, const char *name, std::int32_t tid,
                TraceClock ts, const char *key1, std::uint64_t val1,
                const char *key2, std::uint64_t val2)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Instant;
    e.ts = ts;
    e.tid = tid;
    e.cat = cat;
    e.name = name;
    e.key1 = key1;
    e.val1 = val1;
    e.key2 = key2;
    e.val2 = val2;
    record(e);
}

void
Tracer::setTrackName(std::int32_t tid, std::string name)
{
    trackNames[tid] = std::move(name);
}

std::size_t
Tracer::size() const
{
    return total < ring.size() ? static_cast<std::size_t>(total)
                               : ring.size();
}

std::uint64_t
Tracer::dropped() const
{
    return total < ring.size() ? 0 : total - ring.size();
}

const TraceEvent &
Tracer::event(std::size_t i) const
{
    if (i >= size())
        util::fatal("Tracer::event: index ", i, " out of range (",
                    size(), " events held)");
    std::size_t oldest = total < ring.size()
                             ? 0
                             : static_cast<std::size_t>(
                                   total % ring.size());
    return ring[(oldest + i) % ring.size()];
}

void
Tracer::clear()
{
    total = 0;
}

void
Tracer::write(std::ostream &os, TraceFormat format,
              double cyclesPerUsec) const
{
    if (format == TraceFormat::Chrome)
        writeChrome(os, cyclesPerUsec);
    else
        writeJsonLines(os, cyclesPerUsec);
}

void
Tracer::writeChrome(std::ostream &os, double cyclesPerUsec) const
{
    os << "{\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    // Track-name metadata first, so viewers label every timeline.
    for (const auto &[tid, name] : trackNames) {
        sep();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 0, \"tid\": "
           << tid << ", \"args\": {\"name\": \"" << name << "\"}}";
        os << ",\n{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
              "\"pid\": 0, \"tid\": "
           << tid << ", \"args\": {\"sort_index\": " << tid << "}}";
    }
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceEvent &e = event(i);
        sep();
        os << "{\"name\": \"" << e.name << "\", \"cat\": \"" << e.cat
           << "\", \"ph\": \""
           << (e.kind == TraceEvent::Kind::Span ? "X" : "i")
           << "\", \"pid\": 0, \"tid\": " << e.tid << ", \"ts\": ";
        emitTs(os, e.ts, cyclesPerUsec);
        if (e.kind == TraceEvent::Kind::Span) {
            os << ", \"dur\": ";
            emitTs(os, e.dur, cyclesPerUsec);
        } else {
            os << ", \"s\": \"t\"";
        }
        os << ", ";
        emitArgs(os, e);
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void
Tracer::writeJsonLines(std::ostream &os, double cyclesPerUsec) const
{
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceEvent &e = event(i);
        os << "{\"ts\": ";
        emitTs(os, e.ts, cyclesPerUsec);
        os << ", \"cycles\": " << e.ts << ", \"kind\": \""
           << (e.kind == TraceEvent::Kind::Span ? "span" : "instant")
           << "\", \"cat\": \"" << e.cat << "\", \"name\": \""
           << e.name << "\", \"tid\": " << e.tid;
        auto track = trackNames.find(e.tid);
        if (track != trackNames.end())
            os << ", \"track\": \"" << track->second << "\"";
        if (e.kind == TraceEvent::Kind::Span)
            os << ", \"dur_cycles\": " << e.dur;
        os << ", ";
        emitArgs(os, e);
        os << "}\n";
    }
}

} // namespace ct::obs
