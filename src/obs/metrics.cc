#include "metrics.h"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace ct::obs {

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

/** Bucket index: log2 of the value (value 0 -> bucket 0). */
int
bucketOf(std::uint64_t v)
{
    return v == 0 ? 0 : 64 - std::countl_zero(v) - 1;
}

} // namespace

void
Histogram::record(std::uint64_t v)
{
    if (!cell)
        return;
    cell->count.fetch_add(1, std::memory_order_relaxed);
    cell->sum.fetch_add(v, std::memory_order_relaxed);
    cell->buckets[bucketOf(v)].fetch_add(1,
                                         std::memory_order_relaxed);
    // min/max via CAS loops; contention is negligible at sim rates.
    std::uint64_t cur = cell->min.load(std::memory_order_relaxed);
    while (v < cur &&
           !cell->min.compare_exchange_weak(
               cur, v, std::memory_order_relaxed))
        ;
    cur = cell->max.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell->max.compare_exchange_weak(
               cur, v, std::memory_order_relaxed))
        ;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.buckets.assign(HistogramCell::kBuckets, 0);
    if (!cell)
        return s;
    s.count = cell->count.load(std::memory_order_relaxed);
    s.sum = cell->sum.load(std::memory_order_relaxed);
    std::uint64_t mn = cell->min.load(std::memory_order_relaxed);
    s.min = s.count == 0 ? 0 : mn;
    s.max = cell->max.load(std::memory_order_relaxed);
    for (int i = 0; i < HistogramCell::kBuckets; ++i)
        s.buckets[static_cast<std::size_t>(i)] =
            cell->buckets[i].load(std::memory_order_relaxed);
    return s;
}

void
Histogram::reset()
{
    if (!cell)
        return;
    cell->count.store(0, std::memory_order_relaxed);
    cell->sum.store(0, std::memory_order_relaxed);
    cell->min.store(UINT64_MAX, std::memory_order_relaxed);
    cell->max.store(0, std::memory_order_relaxed);
    for (auto &b : cell->buckets)
        b.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Cell &
MetricsRegistry::getOrCreate(const std::string &name, MetricKind kind)
{
    if (name.empty())
        util::fatal("MetricsRegistry: empty metric name");
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(name);
    if (it != index.end()) {
        if (it->second->kind != kind)
            util::fatal("MetricsRegistry: '", name,
                        "' already registered as ",
                        kindName(it->second->kind),
                        ", requested as ", kindName(kind));
        return *it->second;
    }
    cells.emplace_back();
    Cell &cell = cells.back();
    cell.name = name;
    cell.kind = kind;
    index.emplace(name, &cell);
    return cell;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    return Counter(&getOrCreate(name, MetricKind::Counter).counter);
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    return Gauge(&getOrCreate(name, MetricKind::Gauge).gauge);
}

Histogram
MetricsRegistry::histogram(const std::string &name)
{
    return Histogram(&getOrCreate(name, MetricKind::Histogram).hist);
}

bool
MetricsRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    return index.find(name) != index.end();
}

MetricKind
MetricsRegistry::kindOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(name);
    if (it == index.end())
        util::fatal("MetricsRegistry: unknown metric '", name, "'");
    return it->second->kind;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(name);
    if (it == index.end() || it->second->kind != MetricKind::Counter)
        return 0;
    return it->second->counter.load(std::memory_order_relaxed);
}

std::int64_t
MetricsRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(name);
    if (it == index.end() || it->second->kind != MetricKind::Gauge)
        return 0;
    return it->second->gauge.load(std::memory_order_relaxed);
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cells.size();
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> out;
    out.reserve(cells.size());
    for (const auto &[name, cell] : index)
        out.push_back(name);
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (Cell &cell : cells) {
        cell.counter.store(0, std::memory_order_relaxed);
        cell.gauge.store(0, std::memory_order_relaxed);
        Histogram(&cell.hist).reset();
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto emitGroup = [&](MetricKind kind, const char *label,
                         bool first_group) {
        if (!first_group)
            os << ",\n";
        os << "  \"" << label << "\": {";
        bool first = true;
        for (const auto &[name, cell] : index) {
            if (cell->kind != kind)
                continue;
            os << (first ? "\n" : ",\n") << "    \"" << name
               << "\": ";
            first = false;
            if (kind == MetricKind::Counter) {
                os << cell->counter.load(std::memory_order_relaxed);
            } else if (kind == MetricKind::Gauge) {
                os << cell->gauge.load(std::memory_order_relaxed);
            } else {
                HistogramSnapshot s =
                    Histogram(&cell->hist).snapshot();
                os << "{\"count\": " << s.count
                   << ", \"sum\": " << s.sum << ", \"min\": " << s.min
                   << ", \"max\": " << s.max << "}";
            }
        }
        os << (first ? "}" : "\n  }");
    };
    os << "{\n";
    emitGroup(MetricKind::Counter, "counters", true);
    emitGroup(MetricKind::Gauge, "gauges", false);
    emitGroup(MetricKind::Histogram, "histograms", false);
    os << "\n}\n";
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace ct::obs
