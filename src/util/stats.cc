#include "stats.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace ct::util {

void
Accumulator::add(double value)
{
    if (n == 0) {
        minAcc = value;
        maxAcc = value;
    } else {
        minAcc = std::min(minAcc, value);
        maxAcc = std::max(maxAcc, value);
    }
    ++n;
    double delta = value - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2 += delta * (value - meanAcc);
}

double
Accumulator::mean() const
{
    return n == 0 ? 0.0 : meanAcc;
}

double
Accumulator::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::min() const
{
    return n == 0 ? 0.0 : minAcc;
}

double
Accumulator::max() const
{
    return n == 0 ? 0.0 : maxAcc;
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("harmonicMean: non-positive value");
        sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / sum;
}

double
relativeError(double measured, double expected)
{
    if (expected == 0.0)
        fatal("relativeError: zero expected value");
    return std::abs(measured - expected) / std::abs(expected);
}

double
percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    if (pct < 0.0 || pct > 100.0)
        fatal("percentile: pct out of [0,100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= values.size())
        return values.back();
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

} // namespace ct::util
