#include "logging.h"

namespace ct::util {

namespace {

LogLevel globalLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
fatalExit(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) <= static_cast<int>(globalLevel))
        std::cerr << tag << ": " << msg << std::endl;
}

} // namespace detail

} // namespace ct::util
