#include "rng.h"

#include <numeric>

#include "logging.h"

namespace ct::util {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64, used to expand the seed into generator state. */
std::uint64_t
splitmix(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : state)
        s = splitmix(x);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        fatal("Rng::nextBelow: zero bound");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        fatal("Rng::nextInRange: empty range");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint64_t>
Rng::permutation(std::uint64_t n)
{
    std::vector<std::uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    shuffle(perm);
    return perm;
}

} // namespace ct::util
