/**
 * @file
 * Software CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected form
 * 0x82F63B78) over byte streams, table-driven, with the table
 * generated at compile time. Used as the packet payload checksum of
 * the reliable transport: unlike a word sum, a CRC detects reordered
 * words and offsetting-pair corruptions, and CRC32C specifically
 * guarantees detection of any single burst error up to 32 bits.
 */

#ifndef CT_UTIL_CRC32C_H
#define CT_UTIL_CRC32C_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace ct::util {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
        t[i] = crc;
    }
    return t;
}

inline constexpr std::array<std::uint32_t, 256> crc32cTable =
    makeCrc32cTable();

} // namespace detail

/** Fold @p byte_count bytes of @p data into a running CRC state. */
inline std::uint32_t
crc32cUpdate(std::uint32_t state, const void *data,
             std::size_t byte_count)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < byte_count; ++i)
        state = (state >> 8) ^
                detail::crc32cTable[(state ^ bytes[i]) & 0xFFu];
    return state;
}

/** CRC32C of one buffer (init and final xor handled internally). */
inline std::uint32_t
crc32c(const void *data, std::size_t byte_count)
{
    return crc32cUpdate(0xFFFFFFFFu, data, byte_count) ^ 0xFFFFFFFFu;
}

} // namespace ct::util

#endif // CT_UTIL_CRC32C_H
