/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * rows in the same layout as the paper's tables.
 */

#ifndef CT_UTIL_TABLE_H
#define CT_UTIL_TABLE_H

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ct::util {

/**
 * Column-aligned text table. Cells are strings; numeric helpers format
 * with a fixed precision. Example output:
 *
 *   |         | 1C1  | 1C64 |
 *   |---------|------|------|
 *   | T3D     | 93.0 | 67.9 |
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row of preformatted cells; must match column count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 1);

    /** Render the table including a header separator line. */
    std::string render() const;

    /** Stream the rendered table. */
    friend std::ostream &operator<<(std::ostream &os, const TextTable &t);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace ct::util

#endif // CT_UTIL_TABLE_H
