#include "string_util.h"

#include <cctype>

namespace ct::util {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.substr(0, prefix.size()) == prefix;
}

bool
isAllDigits(std::string_view s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

} // namespace ct::util
