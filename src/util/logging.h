/**
 * @file
 * Status-message and error helpers, modeled on the gem5 logging split:
 * fatal() for user errors that stop the program, panic() for internal
 * invariant violations, warn()/inform() for non-fatal diagnostics.
 */

#ifndef CT_UTIL_LOGGING_H
#define CT_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ct::util {

/** Verbosity levels for runtime diagnostics. */
enum class LogLevel {
    Quiet = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Process-wide verbosity; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the process-wide verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

/** Concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void fatalExit(const std::string &msg);
[[noreturn]] void panicAbort(const std::string &msg);
void emit(LogLevel level, const char *tag, const std::string &msg);

} // namespace detail

/**
 * Terminate with exit(1). Use for conditions that are the caller's
 * fault (bad configuration, invalid arguments), not library bugs.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate with abort(). Use for conditions that should never happen
 * regardless of input, i.e. internal bugs.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicAbort(detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning about dubious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Info, "info",
                 detail::concat(std::forward<Args>(args)...));
}

/** Verbose debugging message. */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::concat(std::forward<Args>(args)...));
}

} // namespace ct::util

#endif // CT_UTIL_LOGGING_H
