/**
 * @file
 * Units used throughout the library.
 *
 * Throughputs follow the paper's convention: megabytes per second where
 * a megabyte is 1e6 bytes, and throughput counts only *payload* array
 * elements (headers, addresses and index loads consume raw bandwidth
 * but never count toward the reported figure).
 */

#ifndef CT_UTIL_UNITS_H
#define CT_UTIL_UNITS_H

#include <cstdint>

namespace ct::util {

/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Bytes of payload or storage. */
using Bytes = std::uint64_t;

/** Throughput in MB/s (1 MB = 1e6 bytes, payload only). */
using MBps = double;

/** The paper's basic unit of transfer: one 64-bit word. */
inline constexpr Bytes wordBytes = 8;

/** Convert a byte count moved in a cycle count at a clock to MB/s. */
MBps toMBps(Bytes bytes, Cycles cycles, double clock_hz);

/** Cycles needed to move @p bytes at @p mbps under clock @p clock_hz. */
Cycles cyclesFor(Bytes bytes, MBps mbps, double clock_hz);

/** Seconds represented by @p cycles at @p clock_hz. */
double toSeconds(Cycles cycles, double clock_hz);

} // namespace ct::util

#endif // CT_UTIL_UNITS_H
