#include "table.h"

#include <iomanip>
#include <sstream>

#include "logging.h"

namespace ct::util {

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    if (header.empty())
        fatal("TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        fatal("TextTable::addRow: expected ", header.size(),
              " cells, got ", cells.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " |";
        os << "\n";
        return os.str();
    };

    std::ostringstream os;
    os << render_row(header);
    os << "|";
    for (std::size_t c = 0; c < header.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows)
        os << render_row(row);
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const TextTable &t)
{
    return os << t.render();
}

} // namespace ct::util
