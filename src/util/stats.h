/**
 * @file
 * Small statistics helpers: running accumulator and summary measures
 * used when reporting repeated simulator measurements.
 */

#ifndef CT_UTIL_STATS_H
#define CT_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace ct::util {

/** Online accumulator for mean / variance / extrema (Welford). */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Number of samples added. */
    std::size_t count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

  private:
    std::size_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minAcc = 0.0;
    double maxAcc = 0.0;
};

/** Harmonic mean of strictly positive values; 0 for an empty input. */
double harmonicMean(const std::vector<double> &values);

/**
 * Relative error |measured - expected| / |expected|.
 * Used by integration tests to compare model against simulation.
 */
double relativeError(double measured, double expected);

/**
 * Linear-interpolated percentile in [0, 100] of a sample set.
 * The input is copied and sorted; empty input yields 0.
 */
double percentile(std::vector<double> values, double pct);

} // namespace ct::util

#endif // CT_UTIL_STATS_H
