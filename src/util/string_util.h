/**
 * @file
 * Minimal string helpers shared by the expression parser and the
 * benchmark harnesses.
 */

#ifndef CT_UTIL_STRING_UTIL_H
#define CT_UTIL_STRING_UTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace ct::util {

/** Strip ASCII whitespace from both ends. */
std::string_view trim(std::string_view s);

/** Split on a single character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** True if @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if every character is an ASCII decimal digit (and non-empty). */
bool isAllDigits(std::string_view s);

} // namespace ct::util

#endif // CT_UTIL_STRING_UTIL_H
