/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Workload generators must be reproducible across runs and platforms;
 * std::mt19937 distributions are not guaranteed to be portable, so we
 * provide our own distribution helpers on top of a fixed algorithm.
 */

#ifndef CT_UTIL_RNG_H
#define CT_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace ct::util {

/** Deterministic xoshiro256** generator with helper distributions. */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fisher-Yates shuffle of @p values. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Random permutation of 0..n-1. */
    std::vector<std::uint64_t> permutation(std::uint64_t n);

  private:
    std::uint64_t state[4];
};

} // namespace ct::util

#endif // CT_UTIL_RNG_H
