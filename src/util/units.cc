#include "units.h"

#include <cmath>

#include "logging.h"

namespace ct::util {

MBps
toMBps(Bytes bytes, Cycles cycles, double clock_hz)
{
    if (cycles == 0)
        fatal("toMBps: zero cycle count");
    double seconds = static_cast<double>(cycles) / clock_hz;
    return static_cast<double>(bytes) / 1e6 / seconds;
}

Cycles
cyclesFor(Bytes bytes, MBps mbps, double clock_hz)
{
    if (mbps <= 0.0)
        fatal("cyclesFor: non-positive throughput");
    double seconds = static_cast<double>(bytes) / (mbps * 1e6);
    return static_cast<Cycles>(std::llround(seconds * clock_hz));
}

double
toSeconds(Cycles cycles, double clock_hz)
{
    return static_cast<double>(cycles) / clock_hz;
}

} // namespace ct::util
