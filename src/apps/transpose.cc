#include "transpose.h"

#include "util/logging.h"

namespace ct::apps {

TransposeWorkload
TransposeWorkload::create(Machine &machine,
                          const TransposeConfig &config)
{
    auto nodes = static_cast<std::uint64_t>(machine.nodeCount());
    if (config.n % nodes != 0)
        util::fatal("TransposeWorkload: n (", config.n,
                    ") must be divisible by the node count (", nodes,
                    ")");

    TransposeWorkload w;
    w.dim = config.n;
    w.rowsPer = config.n / nodes;
    const std::uint64_t n = w.dim;
    const std::uint64_t rows = w.rowsPer;

    for (std::uint64_t p = 0; p < nodes; ++p) {
        sim::NodeRam &ram = machine.node(static_cast<NodeId>(p)).ram();
        w.aBase.push_back(ram.alloc(rows * n * 8));
        w.bBase.push_back(ram.alloc(rows * n * 8));
    }

    w.commOp.name = config.variant == TransposeVariant::StridedStores
                        ? "transpose (strided stores)"
                        : "transpose (strided loads)";

    // Local element addresses: node p holds global rows
    // [p*rows, (p+1)*rows), row-major.
    auto a_addr = [&](std::uint64_t p, std::uint64_t row,
                      std::uint64_t col) {
        return w.aBase[p] + ((row - p * rows) * n + col) * 8;
    };
    auto b_addr = [&](std::uint64_t q, std::uint64_t row,
                      std::uint64_t col) {
        return w.bBase[q] + ((row - q * rows) * n + col) * 8;
    };

    for (std::uint64_t p = 0; p < nodes; ++p) {
        // Rotation schedule: node p serves partners p+1, p+2, ... so
        // that no receiver is hit by every sender at once (the
        // all-to-all staggering of the paper's reference [8]).
        for (std::uint64_t step = 0; step < nodes; ++step) {
            std::uint64_t q = (p + step) % nodes;
            if (p == q && !config.includeLocalFlows)
                continue;
            if (config.variant == TransposeVariant::StridedStores) {
                // One flow per source row j of the patch: the
                // contiguous run a[j][q*rows .. q*rows+rows) scatters
                // into column j of B with stride n (1Qn).
                for (std::uint64_t j = p * rows; j < (p + 1) * rows;
                     ++j) {
                    rt::Flow flow;
                    flow.src = static_cast<NodeId>(p);
                    flow.dst = static_cast<NodeId>(q);
                    flow.words = rows;
                    flow.srcWalk = sim::contiguousWalk(
                        a_addr(p, j, q * rows));
                    flow.dstWalk = sim::stridedWalk(
                        b_addr(q, q * rows, j),
                        static_cast<std::uint32_t>(n));
                    flow.dstWalkOnSender = flow.dstWalk;
                    w.commOp.flows.push_back(flow);
                }
            } else {
                // One flow per destination row i: column i of A is
                // gathered with stride n into the contiguous run
                // b[i][p*rows ..) (nQ1).
                for (std::uint64_t i = q * rows; i < (q + 1) * rows;
                     ++i) {
                    rt::Flow flow;
                    flow.src = static_cast<NodeId>(p);
                    flow.dst = static_cast<NodeId>(q);
                    flow.words = rows;
                    flow.srcWalk = sim::stridedWalk(
                        a_addr(p, p * rows, i),
                        static_cast<std::uint32_t>(n));
                    flow.dstWalk = sim::contiguousWalk(
                        b_addr(q, i, p * rows));
                    flow.dstWalkOnSender = flow.dstWalk;
                    w.commOp.flows.push_back(flow);
                }
            }
        }
    }
    return w;
}

Addr
TransposeWorkload::aAddr(std::uint64_t row, std::uint64_t col) const
{
    std::uint64_t p = row / rowsPer;
    return aBase[p] + ((row - p * rowsPer) * dim + col) * 8;
}

Addr
TransposeWorkload::bAddr(std::uint64_t row, std::uint64_t col) const
{
    std::uint64_t p = row / rowsPer;
    return bBase[p] + ((row - p * rowsPer) * dim + col) * 8;
}

NodeId
TransposeWorkload::ownerOf(std::uint64_t row) const
{
    return static_cast<NodeId>(row / rowsPer);
}

void
TransposeWorkload::fillInput(Machine &machine) const
{
    auto nodes = static_cast<std::uint64_t>(machine.nodeCount());
    for (std::uint64_t p = 0; p < nodes; ++p) {
        sim::NodeRam &ram = machine.node(static_cast<NodeId>(p)).ram();
        for (std::uint64_t r = 0; r < rowsPer; ++r) {
            std::uint64_t row = p * rowsPer + r;
            for (std::uint64_t col = 0; col < dim; ++col)
                ram.writeWord(aBase[p] + (r * dim + col) * 8,
                              row * dim + col + 1);
        }
    }
}

std::uint64_t
TransposeWorkload::verify(Machine &machine) const
{
    std::uint64_t mismatches = 0;
    auto nodes = static_cast<std::uint64_t>(machine.nodeCount());
    for (std::uint64_t q = 0; q < nodes; ++q) {
        sim::NodeRam &ram = machine.node(static_cast<NodeId>(q)).ram();
        for (std::uint64_t r = 0; r < rowsPer; ++r) {
            std::uint64_t i = q * rowsPer + r;
            for (std::uint64_t j = 0; j < dim; ++j) {
                std::uint64_t p = j / rowsPer;
                if (p == q)
                    continue; // diagonal block only moves locally
                std::uint64_t got =
                    ram.readWord(bBase[q] + (r * dim + j) * 8);
                std::uint64_t want = j * dim + i + 1; // a[j][i]
                mismatches += got != want;
            }
        }
    }
    return mismatches;
}

} // namespace ct::apps
