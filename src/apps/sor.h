/**
 * @file
 * Successive over-relaxation boundary exchange (paper §6.1.3). An
 * n x n grid is distributed as contiguous row blocks with one
 * overlap (ghost) row on each side; after every relaxation step the
 * boundary rows are shifted to the neighbouring nodes as contiguous
 * blocks (1Q1 flows).
 */

#ifndef CT_APPS_SOR_H
#define CT_APPS_SOR_H

#include "rt/comm_op.h"

namespace ct::apps {

using rt::CommOp;
using sim::Addr;
using sim::Machine;
using sim::NodeId;

/** Parameters of the SOR workload. */
struct SorConfig
{
    std::uint64_t n = 256; ///< grid dimension (words per row)
    /** Treat the node chain as a ring (wrap the shift around). */
    bool periodic = false;
};

/**
 * The distributed SOR grid plus the overlap-exchange operation.
 * Each node stores (rows + 2) x n doubles: one ghost row above and
 * below its block.
 */
class SorWorkload
{
  public:
    static SorWorkload create(Machine &machine, const SorConfig &cfg);

    /** Fill the interior with f(row, col) = row * n + col + 1. */
    void fillInterior(Machine &machine) const;

    /** Check every ghost row equals the neighbour's boundary row. */
    std::uint64_t verify(Machine &machine) const;

    /**
     * Run one Jacobi-style relaxation sweep on the local data plane
     * (pure data transformation; used by the example application).
     * Ghost rows must have been exchanged first.
     */
    void relaxInterior(Machine &machine, double omega) const;

    const CommOp &op() const { return commOp; }
    std::uint64_t n() const { return dim; }
    std::uint64_t rowsPerNode() const { return rowsPer; }

    /** Address of local row @p r (0 = top ghost) on node @p p. */
    Addr rowAddr(int p, std::uint64_t r) const;

  private:
    std::uint64_t dim = 0;
    std::uint64_t rowsPer = 0;
    bool periodic = false;
    std::vector<Addr> base;
    CommOp commOp;
};

} // namespace ct::apps

#endif // CT_APPS_SOR_H
