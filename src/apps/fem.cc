#include "fem.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/logging.h"

namespace ct::apps {

FemMesh
FemMesh::generate(const FemConfig &config)
{
    if (config.nx < 2 || config.ny < 2 || config.nz < 2)
        util::fatal("FemMesh: lattice too small");

    FemMesh mesh;
    // Basin profile: deep sediment in the middle of the valley,
    // shallow at the rim; vertices below the profile are hard rock
    // and do not belong to the simulated volume.
    auto depth_at = [&](int x, int y) {
        double fx = (static_cast<double>(x) / (config.nx - 1)) * 2 - 1;
        double fy = (static_cast<double>(y) / (config.ny - 1)) * 2 - 1;
        double r2 = fx * fx + fy * fy;
        double profile = config.basinDepth * (1.0 - r2) +
                         config.rimDepth * r2;
        return std::max(1, static_cast<int>(profile * config.nz));
    };

    // Dense id map for the kept lattice points.
    std::vector<int> id(
        static_cast<std::size_t>(config.nx) * config.ny * config.nz,
        -1);
    auto flat = [&](int x, int y, int z) {
        return (static_cast<std::size_t>(z) * config.ny + y) *
                   config.nx +
               x;
    };
    for (int z = 0; z < config.nz; ++z) {
        for (int y = 0; y < config.ny; ++y) {
            for (int x = 0; x < config.nx; ++x) {
                if (z >= depth_at(x, y))
                    continue;
                id[flat(x, y, z)] =
                    static_cast<int>(mesh.coordinates.size());
                mesh.coordinates.push_back({x, y, z});
            }
        }
    }

    // 6-neighbourhood edges within the kept volume.
    const int dirs[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    for (std::size_t v = 0; v < mesh.coordinates.size(); ++v) {
        auto [x, y, z] = mesh.coordinates[v];
        for (const auto &d : dirs) {
            int nx = x + d[0], ny = y + d[1], nz = z + d[2];
            if (nx >= config.nx || ny >= config.ny || nz >= config.nz)
                continue;
            int u = id[flat(nx, ny, nz)];
            if (u >= 0)
                mesh.edgeList.emplace_back(static_cast<int>(v), u);
        }
    }
    return mesh;
}

std::vector<int>
partitionMesh(const FemMesh &mesh, int parts)
{
    if (parts <= 0 || (parts & (parts - 1)) != 0)
        util::fatal("partitionMesh: parts must be a power of two");

    std::vector<int> owner(
        static_cast<std::size_t>(mesh.vertexCount()), 0);
    std::vector<int> vertices(
        static_cast<std::size_t>(mesh.vertexCount()));
    for (std::size_t i = 0; i < vertices.size(); ++i)
        vertices[i] = static_cast<int>(i);

    // Recursive coordinate bisection along the widest axis.
    struct Job
    {
        std::vector<int> verts;
        int firstPart;
        int numParts;
    };
    std::vector<Job> stack{{std::move(vertices), 0, parts}};
    while (!stack.empty()) {
        Job job = std::move(stack.back());
        stack.pop_back();
        if (job.numParts == 1) {
            for (int v : job.verts)
                owner[static_cast<std::size_t>(v)] = job.firstPart;
            continue;
        }
        int best_axis = 0;
        int best_span = -1;
        for (int axis = 0; axis < 3; ++axis) {
            int lo = INT32_MAX, hi = INT32_MIN;
            for (int v : job.verts) {
                int c = mesh.coords()[static_cast<std::size_t>(v)]
                                     [static_cast<std::size_t>(axis)];
                lo = std::min(lo, c);
                hi = std::max(hi, c);
            }
            if (hi - lo > best_span) {
                best_span = hi - lo;
                best_axis = axis;
            }
        }
        auto mid = job.verts.begin() +
                   static_cast<std::ptrdiff_t>(job.verts.size() / 2);
        std::nth_element(
            job.verts.begin(), mid, job.verts.end(),
            [&](int a, int b) {
                const auto &ca =
                    mesh.coords()[static_cast<std::size_t>(a)];
                const auto &cb =
                    mesh.coords()[static_cast<std::size_t>(b)];
                auto axis = static_cast<std::size_t>(best_axis);
                if (ca[axis] != cb[axis])
                    return ca[axis] < cb[axis];
                return a < b;
            });
        Job low{std::vector<int>(job.verts.begin(), mid),
                job.firstPart, job.numParts / 2};
        Job high{std::vector<int>(mid, job.verts.end()),
                 job.firstPart + job.numParts / 2, job.numParts / 2};
        stack.push_back(std::move(low));
        stack.push_back(std::move(high));
    }
    return owner;
}

FemWorkload
FemWorkload::create(Machine &machine, const FemConfig &cfg)
{
    FemWorkload w;
    w.femMesh = FemMesh::generate(cfg);
    int parts = machine.nodeCount();
    w.owner = partitionMesh(w.femMesh, parts);

    int n = w.femMesh.vertexCount();
    w.localIdx.assign(static_cast<std::size_t>(n), 0);
    w.counts.assign(static_cast<std::size_t>(parts), 0);
    for (int v = 0; v < n; ++v) {
        auto p = static_cast<std::size_t>(w.owner[v]);
        w.localIdx[static_cast<std::size_t>(v)] =
            static_cast<std::uint32_t>(w.counts[p]++);
    }

    // Boundary sets: for each directed pair (p, q), the vertices
    // owned by p that q's computation references.
    std::map<std::pair<int, int>, std::set<int>> boundary;
    for (const auto &[a, b] : w.femMesh.edges()) {
        int pa = w.owner[static_cast<std::size_t>(a)];
        int pb = w.owner[static_cast<std::size_t>(b)];
        if (pa == pb)
            continue;
        boundary[{pa, pb}].insert(a);
        boundary[{pb, pa}].insert(b);
    }

    // Ghost arrays: every node stores the halo values it receives,
    // ordered by global vertex id (interleaving the owners, which
    // scatters the stores).
    std::vector<std::set<int>> ghosts(
        static_cast<std::size_t>(parts));
    for (const auto &[pair, verts] : boundary)
        ghosts[static_cast<std::size_t>(pair.second)].insert(
            verts.begin(), verts.end());
    std::vector<std::map<int, std::uint32_t>> ghost_slot(
        static_cast<std::size_t>(parts));
    for (int p = 0; p < parts; ++p) {
        std::uint32_t slot = 0;
        for (int v : ghosts[static_cast<std::size_t>(p)])
            ghost_slot[static_cast<std::size_t>(p)][v] = slot++;
    }

    for (int p = 0; p < parts; ++p) {
        sim::NodeRam &ram = machine.node(p).ram();
        w.valueBases.push_back(
            ram.alloc(std::max<std::uint64_t>(
                          1, w.counts[static_cast<std::size_t>(p)]) *
                      8));
        w.ghostBases.push_back(ram.alloc(
            std::max<std::size_t>(
                1, ghosts[static_cast<std::size_t>(p)].size()) *
            8));
    }

    w.commOp.name = "FEM halo exchange";
    for (const auto &[pair, verts] : boundary) {
        auto [p, q] = pair;
        rt::Flow flow;
        flow.src = p;
        flow.dst = q;
        flow.words = verts.size();

        // Source: indexed gather from p's value array.
        sim::NodeRam &src_ram = machine.node(p).ram();
        Addr src_idx = src_ram.alloc(flow.words * 8);
        // Destination: indexed scatter into q's ghost array; the
        // sender keeps a replica of the index array to generate
        // remote store addresses.
        sim::NodeRam &dst_ram = machine.node(q).ram();
        Addr dst_idx = dst_ram.alloc(flow.words * 8);
        Addr dst_idx_on_sender = src_ram.alloc(flow.words * 8);

        std::uint64_t i = 0;
        for (int v : verts) {
            src_ram.writeWord(
                src_idx + i * 8,
                w.localIdx[static_cast<std::size_t>(v)]);
            std::uint32_t slot =
                ghost_slot[static_cast<std::size_t>(q)].at(v);
            dst_ram.writeWord(dst_idx + i * 8, slot);
            src_ram.writeWord(dst_idx_on_sender + i * 8, slot);
            ++i;
        }

        flow.srcWalk =
            sim::indexedWalk(w.valueBases[static_cast<std::size_t>(p)],
                             src_idx);
        flow.dstWalk =
            sim::indexedWalk(w.ghostBases[static_cast<std::size_t>(q)],
                             dst_idx);
        flow.dstWalkOnSender = sim::indexedWalk(
            w.ghostBases[static_cast<std::size_t>(q)],
            dst_idx_on_sender);
        w.commOp.flows.push_back(flow);
    }
    return w;
}

std::uint64_t
FemWorkload::haloWords() const
{
    std::uint64_t total = 0;
    for (const auto &flow : commOp.flows)
        total += flow.words;
    return total;
}

double
FemWorkload::boundaryFraction() const
{
    std::set<int> boundary_vertices;
    for (const auto &[a, b] : femMesh.edges()) {
        if (owner[static_cast<std::size_t>(a)] !=
            owner[static_cast<std::size_t>(b)]) {
            boundary_vertices.insert(a);
            boundary_vertices.insert(b);
        }
    }
    return static_cast<double>(boundary_vertices.size()) /
           static_cast<double>(femMesh.vertexCount());
}

Addr
FemWorkload::valueBase(NodeId node) const
{
    return valueBases[static_cast<std::size_t>(node)];
}

Addr
FemWorkload::ghostBase(NodeId node) const
{
    return ghostBases[static_cast<std::size_t>(node)];
}

std::uint32_t
FemWorkload::localIndex(int v) const
{
    return localIdx[static_cast<std::size_t>(v)];
}

std::uint64_t
FemWorkload::localCount(NodeId node) const
{
    return counts[static_cast<std::size_t>(node)];
}

} // namespace ct::apps
