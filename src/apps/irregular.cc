#include "irregular.h"

#include <map>

#include "rt/workload.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ct::apps {

namespace {

/**
 * A permutation of 0..n-1 in which roughly @p locality of the
 * entries keep X[i] within i's own block: shuffle within blocks
 * first, then swap a (1 - locality) fraction of entries between
 * random blocks.
 */
std::vector<std::uint64_t>
localityPermutation(std::uint64_t n, const core::Distribution &dist,
                    double locality, util::Rng &rng)
{
    std::vector<std::uint64_t> x(n);
    // Within-block shuffles keep every index local.
    for (int node = 0; node < dist.nodes(); ++node) {
        std::vector<std::uint64_t> members;
        for (std::uint64_t li = 0; li < dist.localCount(node); ++li)
            members.push_back(dist.globalIndexOf(node, li));
        auto shuffled = members;
        rng.shuffle(shuffled);
        for (std::size_t i = 0; i < members.size(); ++i)
            x[members[i]] = shuffled[i];
    }
    // Cross-block swaps create the remote fraction.
    auto swaps = static_cast<std::uint64_t>(
        static_cast<double>(n) * (1.0 - locality) / 2.0);
    for (std::uint64_t s = 0; s < swaps; ++s) {
        std::uint64_t i = rng.nextBelow(n);
        std::uint64_t j = rng.nextBelow(n);
        std::swap(x[i], x[j]);
    }
    return x;
}

} // namespace

IrregularGatherWorkload
IrregularGatherWorkload::create(Machine &machine,
                                const IrregularConfig &cfg)
{
    if (cfg.locality < 0.0 || cfg.locality > 1.0)
        util::fatal("IrregularGatherWorkload: locality out of [0,1]");

    IrregularGatherWorkload w;
    w.n = cfg.n;
    int p = machine.nodeCount();
    w.dist = core::Distribution::block(cfg.n, p);
    util::Rng rng(cfg.seed);
    w.xIndex = localityPermutation(cfg.n, w.dist, cfg.locality, rng);
    w.commOp.name = "A = B[X] gather";

    for (int node = 0; node < p; ++node) {
        sim::NodeRam &ram = machine.node(node).ram();
        std::uint64_t count =
            std::max<std::uint64_t>(1, w.dist.localCount(node));
        w.aBase.push_back(ram.alloc(count * 8));
        w.bBase.push_back(ram.alloc(count * 8));
        // B[g] = g + 1 so results are recognizable.
        for (std::uint64_t li = 0; li < w.dist.localCount(node); ++li)
            ram.writeWord(w.bBase.back() + li * 8,
                          w.dist.globalIndexOf(node, li) + 1);
    }

    // Inspector: resolve every index to its home; local references
    // are satisfied immediately (no communication), remote ones are
    // grouped into per-(home, requester) flows -- exactly Figure 2's
    // intermediate index array T.
    std::map<std::pair<int, int>, std::pair<std::vector<std::uint64_t>,
                                            std::vector<std::uint64_t>>>
        pair_lists; // (src=home, dst=requester) -> (b locals, a locals)
    for (std::uint64_t i = 0; i < cfg.n; ++i) {
        int requester = w.dist.ownerOf(i);
        std::uint64_t g = w.xIndex[i];
        int home = w.dist.ownerOf(g);
        if (home == requester) {
            ++w.localCount;
            sim::NodeRam &ram = machine.node(home).ram();
            auto idx = static_cast<std::size_t>(home);
            ram.writeWord(w.aBase[idx] + w.dist.localIndexOf(i) * 8,
                          ram.readWord(w.bBase[idx] +
                                       w.dist.localIndexOf(g) * 8));
            continue;
        }
        auto &[b_locals, a_locals] = pair_lists[{home, requester}];
        b_locals.push_back(w.dist.localIndexOf(g));
        a_locals.push_back(w.dist.localIndexOf(i));
    }

    for (auto &[pair, lists] : pair_lists) {
        auto [home, requester] = pair;
        auto &[b_locals, a_locals] = lists;
        rt::Flow flow;
        flow.src = home;
        flow.dst = requester;
        flow.words = b_locals.size();
        flow.srcWalk = rt::walkForIndices(
            b_locals, w.bBase[static_cast<std::size_t>(home)],
            machine.node(home));
        flow.dstWalk = rt::walkForIndices(
            a_locals, w.aBase[static_cast<std::size_t>(requester)],
            machine.node(requester));
        flow.dstWalkOnSender =
            flow.dstWalk.pattern.isIndexed()
                ? rt::walkForIndices(
                      a_locals,
                      w.aBase[static_cast<std::size_t>(requester)],
                      machine.node(home))
                : flow.dstWalk;
        w.commOp.flows.push_back(flow);
    }
    return w;
}

std::uint64_t
IrregularGatherWorkload::verify(Machine &machine) const
{
    std::uint64_t mismatches = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        int node = dist.ownerOf(i);
        std::uint64_t got = machine.node(node).ram().readWord(
            aBase[static_cast<std::size_t>(node)] +
            dist.localIndexOf(i) * 8);
        mismatches += got != xIndex[i] + 1;
    }
    return mismatches;
}

std::uint64_t
IrregularGatherWorkload::remoteWords() const
{
    std::uint64_t total = 0;
    for (const auto &flow : commOp.flows)
        total += flow.words;
    return total;
}

double
IrregularGatherWorkload::measuredLocality() const
{
    return static_cast<double>(localCount) / static_cast<double>(n);
}

} // namespace ct::apps
