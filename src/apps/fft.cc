#include "fft.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace ct::apps {

namespace {

void
fftInPlace(std::vector<std::complex<double>> &data, bool inverse)
{
    std::size_t n = data.size();
    if (n == 0 || (n & (n - 1)) != 0)
        util::fatal("fft: size must be a non-zero power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * std::numbers::pi /
                       static_cast<double>(len) * (inverse ? 1 : -1);
        std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                std::complex<double> u = data[i + k];
                std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        for (auto &x : data)
            x /= static_cast<double>(n);
    }
}

} // namespace

void
fft(std::vector<std::complex<double>> &data)
{
    fftInPlace(data, false);
}

void
ifft(std::vector<std::complex<double>> &data)
{
    fftInPlace(data, true);
}

void
fftRows(std::vector<std::complex<double>> &matrix, std::size_t n)
{
    if (n == 0 || matrix.size() % n != 0)
        util::fatal("fftRows: matrix size not a multiple of n");
    std::vector<std::complex<double>> row(n);
    for (std::size_t r = 0; r < matrix.size() / n; ++r) {
        std::copy_n(matrix.begin() +
                        static_cast<std::ptrdiff_t>(r * n),
                    n, row.begin());
        fft(row);
        std::copy_n(row.begin(), n,
                    matrix.begin() +
                        static_cast<std::ptrdiff_t>(r * n));
    }
}

} // namespace ct::apps
