/**
 * @file
 * Finite-element halo exchange (paper §6.1.2). The paper's kernel
 * comes from a sparse solver on a partitioned unstructured grid of an
 * alluvial valley (Quake project [14]); we generate a synthetic
 * equivalent -- an irregular 3-D lattice bounded by a basin-shaped
 * depth profile -- partition it with recursive coordinate bisection,
 * and exchange boundary vertex values between neighbouring
 * partitions. Both sides use indexed access (wQw flows).
 */

#ifndef CT_APPS_FEM_H
#define CT_APPS_FEM_H

#include <array>
#include <vector>

#include "rt/comm_op.h"

namespace ct::apps {

using rt::CommOp;
using sim::Addr;
using sim::Machine;
using sim::NodeId;

/** Parameters of the synthetic valley mesh. */
struct FemConfig
{
    int nx = 24;
    int ny = 24;
    int nz = 10;
    /** Valley floor depth as a fraction of nz at the basin centre. */
    double basinDepth = 0.9;
    /** Depth at the rim (shallow soil layer). */
    double rimDepth = 0.25;
};

/** An irregular 3-D mesh: vertices with coordinates plus edges. */
class FemMesh
{
  public:
    /** Carve the valley out of an nx x ny x nz lattice. */
    static FemMesh generate(const FemConfig &config);

    int vertexCount() const
    {
        return static_cast<int>(coordinates.size());
    }
    std::size_t edgeCount() const { return edgeList.size(); }

    const std::vector<std::array<int, 3>> &coords() const
    {
        return coordinates;
    }
    const std::vector<std::pair<int, int>> &edges() const
    {
        return edgeList;
    }

  private:
    std::vector<std::array<int, 3>> coordinates;
    std::vector<std::pair<int, int>> edgeList;
};

/**
 * Recursive coordinate bisection: split the vertex set into @p parts
 * (a power of two) by repeatedly halving along the longest axis.
 * Returns the owner part of each vertex.
 */
std::vector<int> partitionMesh(const FemMesh &mesh, int parts);

/** The distributed solver state plus the halo-exchange operation. */
class FemWorkload
{
  public:
    static FemWorkload create(Machine &machine, const FemConfig &cfg);

    const CommOp &op() const { return commOp; }
    const FemMesh &mesh() const { return femMesh; }
    const std::vector<int> &owners() const { return owner; }

    /** Total boundary words exchanged per step. */
    std::uint64_t haloWords() const;

    /** Fraction of all vertices that are on partition boundaries. */
    double boundaryFraction() const;

    /** Per-node base address of the local vertex value array. */
    Addr valueBase(NodeId node) const;
    /** Per-node base of the ghost (halo) value array. */
    Addr ghostBase(NodeId node) const;
    /** Local index of global vertex @p v on its owner. */
    std::uint32_t localIndex(int v) const;
    /** Number of vertices owned by @p node. */
    std::uint64_t localCount(NodeId node) const;

  private:
    FemMesh femMesh;
    std::vector<int> owner;
    std::vector<std::uint32_t> localIdx;
    std::vector<std::uint64_t> counts;
    std::vector<Addr> valueBases;
    std::vector<Addr> ghostBases;
    CommOp commOp;
};

} // namespace ct::apps

#endif // CT_APPS_FEM_H
