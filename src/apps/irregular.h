/**
 * @file
 * The paper's irregular access example (§2.1, Figure 2):
 *
 *     A[1:n] = B[X[1:n]]
 *
 * where A, B and the index array X are block-distributed and X holds
 * a permutation of 1..n. An inspector pass (the compiler's job)
 * resolves each index to its home node and builds per-pair indexed
 * flow lists; the executor runs the resulting wQw communication with
 * any message layer. The locality knob controls which fraction of
 * the permutation stays node-local, i.e. how much of the gather is
 * communication at all.
 */

#ifndef CT_APPS_IRREGULAR_H
#define CT_APPS_IRREGULAR_H

#include "core/distribution.h"
#include "rt/comm_op.h"

namespace ct::apps {

using rt::CommOp;
using sim::Addr;
using sim::Machine;
using sim::NodeId;

/** Parameters of the irregular gather. */
struct IrregularConfig
{
    std::uint64_t n = 1 << 12;
    /** Fraction of X entries resolving to the local block. */
    double locality = 0.5;
    std::uint64_t seed = 1;
};

/** The distributed gather A = B[X] plus its communication step. */
class IrregularGatherWorkload
{
  public:
    /**
     * Allocate A and B (BLOCK-distributed), generate the permutation
     * X with the requested locality, run the inspector, and copy the
     * node-local elements (they never touch the network).
     */
    static IrregularGatherWorkload create(Machine &machine,
                                          const IrregularConfig &cfg);

    /** Check A[i] == B[X[i]] for every i; returns mismatches. */
    std::uint64_t verify(Machine &machine) const;

    const CommOp &op() const { return commOp; }

    /** Elements that crossed node boundaries. */
    std::uint64_t remoteWords() const;

    /** Fraction of elements that stayed local. */
    double measuredLocality() const;

    const std::vector<std::uint64_t> &permutation() const
    {
        return xIndex;
    }

  private:
    std::uint64_t n = 0;
    std::vector<std::uint64_t> xIndex;
    std::vector<Addr> aBase;
    std::vector<Addr> bBase;
    std::uint64_t localCount = 0;
    core::Distribution dist = core::Distribution::block(1, 1);
    CommOp commOp;
};

} // namespace ct::apps

#endif // CT_APPS_IRREGULAR_H
