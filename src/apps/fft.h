/**
 * @file
 * Radix-2 complex FFT used by the 2-D FFT example (paper §6.1.1).
 * The 2-D FFT performs row FFTs locally, transposes the matrix with
 * the communication layer, then performs the column FFTs locally;
 * only the transpose touches the network.
 */

#ifndef CT_APPS_FFT_H
#define CT_APPS_FFT_H

#include <complex>
#include <vector>

namespace ct::apps {

/** In-place radix-2 decimation-in-time FFT; n must be a power of 2. */
void fft(std::vector<std::complex<double>> &data);

/** In-place inverse FFT (normalized by 1/n). */
void ifft(std::vector<std::complex<double>> &data);

/** Forward FFT of every length-n row of a flat row-major matrix. */
void fftRows(std::vector<std::complex<double>> &matrix, std::size_t n);

} // namespace ct::apps

#endif // CT_APPS_FFT_H
