/**
 * @file
 * Distributed array transpose, the communication kernel of the 2-D
 * FFT (paper §6.1.1 and Figure 9). An n x n word matrix is
 * distributed by row blocks; the transpose moves square patches
 * between every pair of nodes. The compiler's loop-order choice
 * turns the transfer into either
 *
 *  - strided stores (1Qn): contiguous source rows scattered into
 *    remote columns, or
 *  - strided loads (nQ1): source columns gathered into contiguous
 *    remote rows.
 */

#ifndef CT_APPS_TRANSPOSE_H
#define CT_APPS_TRANSPOSE_H

#include "rt/comm_op.h"

namespace ct::apps {

using rt::CommOp;
using sim::Addr;
using sim::Machine;
using sim::NodeId;

/** Loop-order variants of the transpose (Figure 9 a / b). */
enum class TransposeVariant {
    StridedStores, ///< 1Qn: read rows contiguously, store columns
    StridedLoads,  ///< nQ1: read columns strided, store rows
};

/** Parameters of the transpose workload. */
struct TransposeConfig
{
    std::uint64_t n = 512; ///< matrix dimension (words)
    TransposeVariant variant = TransposeVariant::StridedStores;
    /** Also create the (local) diagonal-block flows. */
    bool includeLocalFlows = false;
};

/**
 * A distributed matrix pair (A and its transpose target B) plus the
 * communication operation that performs B = A^T.
 */
class TransposeWorkload
{
  public:
    /** Allocate A and B on every node and build the flow set. */
    static TransposeWorkload create(Machine &machine,
                                    const TransposeConfig &config);

    /** Fill A with a[j][i] = j * n + i + 1. */
    void fillInput(Machine &machine) const;

    /** Check b[i][j] == a[j][i] for every element. */
    std::uint64_t verify(Machine &machine) const;

    const CommOp &op() const { return commOp; }
    std::uint64_t n() const { return dim; }
    std::uint64_t rowsPerNode() const { return rowsPer; }

    /** Address of a[row][col] (the node owning @p row is implied). */
    Addr aAddr(std::uint64_t row, std::uint64_t col) const;
    /** Address of b[row][col]. */
    Addr bAddr(std::uint64_t row, std::uint64_t col) const;
    /** Node owning global row @p row. */
    NodeId ownerOf(std::uint64_t row) const;

  private:
    std::uint64_t dim = 0;
    std::uint64_t rowsPer = 0;
    std::vector<Addr> aBase;
    std::vector<Addr> bBase;
    CommOp commOp;
};

} // namespace ct::apps

#endif // CT_APPS_TRANSPOSE_H
