#include "sor.h"

#include "util/logging.h"

namespace ct::apps {

SorWorkload
SorWorkload::create(Machine &machine, const SorConfig &cfg)
{
    auto nodes = static_cast<std::uint64_t>(machine.nodeCount());
    if (cfg.n % nodes != 0)
        util::fatal("SorWorkload: n must be divisible by node count");

    SorWorkload w;
    w.dim = cfg.n;
    w.rowsPer = cfg.n / nodes;
    w.periodic = cfg.periodic;
    w.commOp.name = "SOR overlap exchange";

    for (std::uint64_t p = 0; p < nodes; ++p) {
        sim::NodeRam &ram = machine.node(static_cast<NodeId>(p)).ram();
        w.base.push_back(ram.alloc((w.rowsPer + 2) * cfg.n * 8));
    }

    auto add_shift = [&](std::uint64_t from, std::uint64_t to,
                         std::uint64_t src_row,
                         std::uint64_t dst_row) {
        rt::Flow flow;
        flow.src = static_cast<NodeId>(from);
        flow.dst = static_cast<NodeId>(to);
        flow.words = cfg.n;
        flow.srcWalk = sim::contiguousWalk(
            w.rowAddr(static_cast<int>(from), src_row));
        flow.dstWalk = sim::contiguousWalk(
            w.rowAddr(static_cast<int>(to), dst_row));
        flow.dstWalkOnSender = flow.dstWalk;
        w.commOp.flows.push_back(flow);
    };

    for (std::uint64_t p = 0; p < nodes; ++p) {
        bool has_south = p + 1 < nodes || cfg.periodic;
        bool has_north = p > 0 || cfg.periodic;
        std::uint64_t south = (p + 1) % nodes;
        std::uint64_t north = (p + nodes - 1) % nodes;
        // Last interior row -> south neighbour's top ghost row.
        if (has_south)
            add_shift(p, south, w.rowsPer, 0);
        // First interior row -> north neighbour's bottom ghost row.
        if (has_north)
            add_shift(p, north, 1, w.rowsPer + 1);
    }
    return w;
}

Addr
SorWorkload::rowAddr(int p, std::uint64_t r) const
{
    return base[static_cast<std::size_t>(p)] + r * dim * 8;
}

void
SorWorkload::fillInterior(Machine &machine) const
{
    auto nodes = static_cast<std::uint64_t>(machine.nodeCount());
    for (std::uint64_t p = 0; p < nodes; ++p) {
        sim::NodeRam &ram = machine.node(static_cast<NodeId>(p)).ram();
        for (std::uint64_t r = 1; r <= rowsPer; ++r) {
            std::uint64_t row = p * rowsPer + (r - 1);
            for (std::uint64_t col = 0; col < dim; ++col)
                ram.writeDouble(rowAddr(static_cast<int>(p), r) +
                                    col * 8,
                                static_cast<double>(row * dim + col +
                                                    1));
        }
    }
}

std::uint64_t
SorWorkload::verify(Machine &machine) const
{
    std::uint64_t mismatches = 0;
    for (const auto &flow : commOp.flows) {
        sim::NodeRam &src = machine.node(flow.src).ram();
        sim::NodeRam &dst = machine.node(flow.dst).ram();
        for (std::uint64_t i = 0; i < flow.words; ++i) {
            std::uint64_t sent =
                src.readWord(flow.srcWalk.elementAddr(src, i));
            std::uint64_t got =
                dst.readWord(flow.dstWalk.elementAddr(dst, i));
            mismatches += sent != got;
        }
    }
    return mismatches;
}

void
SorWorkload::relaxInterior(Machine &machine, double omega) const
{
    auto nodes = static_cast<std::uint64_t>(machine.nodeCount());
    for (std::uint64_t p = 0; p < nodes; ++p) {
        sim::NodeRam &ram = machine.node(static_cast<NodeId>(p)).ram();
        auto at = [&](std::uint64_t r, std::uint64_t c) {
            return rowAddr(static_cast<int>(p), r) + c * 8;
        };
        for (std::uint64_t r = 1; r <= rowsPer; ++r) {
            for (std::uint64_t c = 1; c + 1 < dim; ++c) {
                double center = ram.readDouble(at(r, c));
                double neighbours =
                    ram.readDouble(at(r - 1, c)) +
                    ram.readDouble(at(r + 1, c)) +
                    ram.readDouble(at(r, c - 1)) +
                    ram.readDouble(at(r, c + 1));
                double relaxed = (1.0 - omega) * center +
                                 omega * 0.25 * neighbours;
                ram.writeDouble(at(r, c), relaxed);
            }
        }
    }
}

} // namespace ct::apps
