/**
 * @file
 * Pattern walkers: map the copy-transfer model's access patterns
 * (contiguous / strided / indexed) onto concrete word addresses in a
 * node's memory. For indexed walks, the index array itself lives in
 * node memory and reading it costs time but no payload bandwidth,
 * matching the paper's accounting (§2.2).
 */

#ifndef CT_SIM_WALK_H
#define CT_SIM_WALK_H

#include "core/pattern.h"
#include "sim/node_ram.h"

namespace ct::sim {

/** Description of one side of a transfer in node memory. */
struct PatternWalk
{
    Addr base = 0;
    core::AccessPattern pattern;
    /** Word array of element indices; used by indexed patterns. */
    Addr indexBase = 0;

    /** Word address of element @p i (reads the index array if
     *  needed). */
    Addr elementAddr(const NodeRam &ram, std::uint64_t i) const;

    /** Address of the i-th index entry (for timing the index load). */
    Addr indexAddr(std::uint64_t i) const;

    /** True when each element requires an index-array load. */
    bool needsIndexLoad() const { return pattern.isIndexed(); }
};

/** Convenience constructors. */
PatternWalk contiguousWalk(Addr base);
PatternWalk stridedWalk(Addr base, std::uint32_t stride_words,
                        std::uint32_t block_words = 1);
PatternWalk indexedWalk(Addr base, Addr index_base);

/**
 * Streaming address generator over a walk: O(1) state, no divisions
 * in steady state, and no materialized address arrays. Produces the
 * exact sequence `walk.elementAddr(ram, first)`,
 * `walk.elementAddr(ram, first + 1)`, ... so kernels iterating a walk
 * element-by-element can stream instead of recomputing (or caching)
 * per-element addresses.
 *
 * For indexed walks each elementAddr() call reads the index array,
 * mirroring the one architectural index load per element.
 */
class WalkCursor
{
  public:
    WalkCursor(const PatternWalk &walk, std::uint64_t first);

    /** Word address of the current element. */
    Addr elementAddr(const NodeRam &ram) const;

    /** Address of the current element's index entry. */
    Addr indexAddr() const { return walkRef->indexAddr(current); }

    /** Element number the cursor stands on. */
    std::uint64_t index() const { return current; }

    /** Step to the next element. */
    void advance();

  private:
    const PatternWalk *walkRef;
    std::uint64_t current;
    /** Precomputed address (contiguous / strided walks). */
    Addr addr = 0;
    /** Elements left in the current strided block (incl. current). */
    std::uint64_t blockLeft = 0;
};

} // namespace ct::sim

#endif // CT_SIM_WALK_H
