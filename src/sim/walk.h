/**
 * @file
 * Pattern walkers: map the copy-transfer model's access patterns
 * (contiguous / strided / indexed) onto concrete word addresses in a
 * node's memory. For indexed walks, the index array itself lives in
 * node memory and reading it costs time but no payload bandwidth,
 * matching the paper's accounting (§2.2).
 */

#ifndef CT_SIM_WALK_H
#define CT_SIM_WALK_H

#include "core/pattern.h"
#include "sim/node_ram.h"

namespace ct::sim {

/** Description of one side of a transfer in node memory. */
struct PatternWalk
{
    Addr base = 0;
    core::AccessPattern pattern;
    /** Word array of element indices; used by indexed patterns. */
    Addr indexBase = 0;

    /** Word address of element @p i (reads the index array if
     *  needed). */
    Addr elementAddr(const NodeRam &ram, std::uint64_t i) const;

    /** Address of the i-th index entry (for timing the index load). */
    Addr indexAddr(std::uint64_t i) const;

    /** True when each element requires an index-array load. */
    bool needsIndexLoad() const { return pattern.isIndexed(); }
};

/** Convenience constructors. */
PatternWalk contiguousWalk(Addr base);
PatternWalk stridedWalk(Addr base, std::uint32_t stride_words,
                        std::uint32_t block_words = 1);
PatternWalk indexedWalk(Addr base, Addr index_base);

} // namespace ct::sim

#endif // CT_SIM_WALK_H
