#include "topology.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace ct::sim {

Topology::Topology(const TopologyConfig &config) : cfg(config)
{
    if (cfg.dims.empty())
        util::fatal("Topology: no dimensions");
    numNodes = 1;
    for (int d : cfg.dims) {
        if (d <= 0)
            util::fatal("Topology: non-positive dimension");
        numNodes *= d;
    }
    if (cfg.nodesPerPort <= 0 || numNodes % cfg.nodesPerPort != 0)
        util::fatal("Topology: bad nodesPerPort");
    networkLinksCount =
        numNodes * static_cast<int>(cfg.dims.size()) * 2;
    injectionPorts = numNodes / cfg.nodesPerPort;
    numLinks = networkLinksCount + 2 * injectionPorts;
    linkDownAt.assign(static_cast<std::size_t>(numLinks), kNeverDown);
    nodeDownAt.assign(static_cast<std::size_t>(numNodes), kNeverDown);
}

std::vector<int>
Topology::coords(NodeId node) const
{
    if (node < 0 || node >= numNodes)
        util::fatal("Topology::coords: bad node ", node);
    std::vector<int> c(cfg.dims.size());
    int rest = node;
    for (std::size_t d = 0; d < cfg.dims.size(); ++d) {
        c[d] = rest % cfg.dims[d];
        rest /= cfg.dims[d];
    }
    return c;
}

NodeId
Topology::nodeAt(const std::vector<int> &coords) const
{
    if (coords.size() != cfg.dims.size())
        util::fatal("Topology::nodeAt: wrong coordinate count");
    int node = 0;
    for (std::size_t d = cfg.dims.size(); d-- > 0;) {
        if (coords[d] < 0 || coords[d] >= cfg.dims[d])
            util::fatal("Topology::nodeAt: coordinate out of range");
        node = node * cfg.dims[d] + coords[d];
    }
    return node;
}

LinkId
Topology::networkLink(NodeId node, std::size_t dim, bool positive) const
{
    return static_cast<LinkId>(
        (node * cfg.dims.size() + dim) * 2 + (positive ? 0 : 1));
}

LinkId
Topology::injectionLink(NodeId node) const
{
    return networkLinksCount + node / cfg.nodesPerPort;
}

LinkId
Topology::ejectionLink(NodeId node) const
{
    return networkLinksCount + injectionPorts +
           node / cfg.nodesPerPort;
}

LinkId
Topology::stepLink(std::vector<int> &coords, std::size_t dim,
                   bool positive) const
{
    int radix = cfg.dims[dim];
    LinkId link = networkLink(nodeAt(coords), dim, positive);
    coords[dim] = (coords[dim] + (positive ? 1 : radix - 1)) % radix;
    return link;
}

std::vector<LinkId>
Topology::route(NodeId src, NodeId dst) const
{
    std::vector<LinkId> links;
    route(src, dst, links);
    return links;
}

void
Topology::route(NodeId src, NodeId dst,
                std::vector<LinkId> &links) const
{
    links.clear();
    if (src < 0 || src >= numNodes || dst < 0 || dst >= numNodes)
        util::fatal("Topology::route: bad endpoint");
    if (src == dst)
        return;

    links.push_back(injectionLink(src));

    auto cur = coords(src);
    auto goal = coords(dst);
    for (std::size_t d = 0; d < cfg.dims.size(); ++d) {
        int radix = cfg.dims[d];
        while (cur[d] != goal[d]) {
            int forward = (goal[d] - cur[d] + radix) % radix;
            int backward = radix - forward;
            bool positive;
            if (cfg.torus)
                positive = forward <= backward;
            else
                positive = goal[d] > cur[d];
            links.push_back(stepLink(cur, d, positive));
        }
    }
    links.push_back(ejectionLink(dst));
}

int
Topology::hopCount(NodeId src, NodeId dst) const
{
    if (src == dst)
        return 0;
    // Route includes injection and ejection; hops are the rest.
    return static_cast<int>(route(src, dst).size()) - 2;
}

void
Topology::downLink(LinkId link, Cycles at)
{
    if (link < 0 || link >= numLinks)
        util::fatal("Topology::downLink: bad link ", link,
                    " (have ", numLinks, ")");
    auto idx = static_cast<std::size_t>(link);
    linkDownAt[idx] = std::min(linkDownAt[idx], at);
    outagesRegistered = true;
}

void
Topology::downNode(NodeId node, Cycles at)
{
    if (node < 0 || node >= numNodes)
        util::fatal("Topology::downNode: bad node ", node);
    auto idx = static_cast<std::size_t>(node);
    nodeDownAt[idx] = std::min(nodeDownAt[idx], at);
    outagesRegistered = true;
}

namespace {

/** True when @p now falls in a down window of @p flap. */
bool
inFlapWindow(const FlapSpec &flap, Cycles now)
{
    if (now < flap.at)
        return false;
    return (now - flap.at) % flap.period < flap.down;
}

void
validateFlap(const char *what, const FlapSpec &flap)
{
    if (flap.period == 0 || flap.down == 0)
        util::fatal("Topology::", what,
                    ": flap needs a positive period and down time");
    if (flap.down >= flap.period)
        util::fatal("Topology::", what, ": flap down time ",
                    flap.down, " must be shorter than the period ",
                    flap.period, " (use a permanent outage instead)");
}

} // namespace

void
Topology::flapLink(LinkId link, const FlapSpec &flap)
{
    if (link < 0 || link >= numLinks)
        util::fatal("Topology::flapLink: bad link ", link, " (have ",
                    numLinks, ")");
    validateFlap("flapLink", flap);
    linkFlaps[link] = flap;
    outagesRegistered = true;
}

void
Topology::flapNode(NodeId node, const FlapSpec &flap)
{
    if (node < 0 || node >= numNodes)
        util::fatal("Topology::flapNode: bad node ", node);
    validateFlap("flapNode", flap);
    nodeFlaps[node] = flap;
    outagesRegistered = true;
}

bool
Topology::linkAlive(LinkId link, Cycles now) const
{
    if (now >= linkDownAt[static_cast<std::size_t>(link)])
        return false;
    if (!linkFlaps.empty()) {
        auto it = linkFlaps.find(link);
        if (it != linkFlaps.end() && inFlapWindow(it->second, now))
            return false;
    }
    return true;
}

bool
Topology::nodeAlive(NodeId node, Cycles now) const
{
    if (now >= nodeDownAt[static_cast<std::size_t>(node)])
        return false;
    if (!nodeFlaps.empty()) {
        auto it = nodeFlaps.find(node);
        if (it != nodeFlaps.end() && inFlapWindow(it->second, now))
            return false;
    }
    return true;
}

bool
Topology::nodeRecovers(NodeId node, Cycles now) const
{
    if (now >= nodeDownAt[static_cast<std::size_t>(node)])
        return false; // permanently dead
    auto it = nodeFlaps.find(node);
    return it != nodeFlaps.end() && inFlapWindow(it->second, now);
}

int
Topology::downedLinks(Cycles now) const
{
    int count = 0;
    for (Cycles at : linkDownAt)
        count += at <= now;
    for (const auto &[link, flap] : linkFlaps)
        if (now < linkDownAt[static_cast<std::size_t>(link)] &&
            inFlapWindow(flap, now))
            ++count;
    return count;
}

int
Topology::downedNodes(Cycles now) const
{
    int count = 0;
    for (Cycles at : nodeDownAt)
        count += at <= now;
    for (const auto &[node, flap] : nodeFlaps)
        if (now < nodeDownAt[static_cast<std::size_t>(node)] &&
            inFlapWindow(flap, now))
            ++count;
    return count;
}

std::vector<LinkId>
Topology::bfsRoute(NodeId src, NodeId dst, Cycles now) const
{
    // Breadth-first search over live network links, so the detour is
    // a shortest live path. Parent links reconstruct the route.
    std::vector<LinkId> parentLink(static_cast<std::size_t>(numNodes),
                                   -1);
    std::vector<NodeId> parentNode(static_cast<std::size_t>(numNodes),
                                   -1);
    std::vector<bool> seen(static_cast<std::size_t>(numNodes), false);
    std::deque<NodeId> frontier{src};
    seen[static_cast<std::size_t>(src)] = true;

    while (!frontier.empty()) {
        NodeId here = frontier.front();
        frontier.pop_front();
        if (here == dst)
            break;
        auto c = coords(here);
        for (std::size_t d = 0; d < cfg.dims.size(); ++d) {
            for (bool positive : {true, false}) {
                // A mesh has no wrap links; skip moves off the edge.
                if (!cfg.torus &&
                    ((positive && c[d] + 1 >= cfg.dims[d]) ||
                     (!positive && c[d] == 0)))
                    continue;
                if (cfg.dims[d] == 1)
                    continue;
                auto next = c;
                LinkId link = stepLink(next, d, positive);
                NodeId there = nodeAt(next);
                if (seen[static_cast<std::size_t>(there)] ||
                    !linkAlive(link, now))
                    continue;
                seen[static_cast<std::size_t>(there)] = true;
                parentLink[static_cast<std::size_t>(there)] = link;
                parentNode[static_cast<std::size_t>(there)] = here;
                frontier.push_back(there);
            }
        }
    }
    if (!seen[static_cast<std::size_t>(dst)])
        return {};

    std::vector<LinkId> links;
    for (NodeId n = dst; n != src;
         n = parentNode[static_cast<std::size_t>(n)])
        links.push_back(parentLink[static_cast<std::size_t>(n)]);
    std::reverse(links.begin(), links.end());
    return links;
}

RouteInfo
Topology::healthyRoute(NodeId src, NodeId dst, Cycles now) const
{
    RouteInfo info;
    healthyRoute(src, dst, now, info);
    return info;
}

void
Topology::healthyRoute(NodeId src, NodeId dst, Cycles now,
                       RouteInfo &info) const
{
    info.links.clear();
    info.avoided.clear();
    info.ok = true;
    info.rerouted = false;
    if (src < 0 || src >= numNodes || dst < 0 || dst >= numNodes)
        util::fatal("Topology::healthyRoute: bad endpoint");
    if (src == dst)
        return;

    if (!linkAlive(injectionLink(src), now) ||
        !linkAlive(ejectionLink(dst), now)) {
        if (!linkAlive(injectionLink(src), now))
            info.avoided.push_back(injectionLink(src));
        else
            info.avoided.push_back(ejectionLink(dst));
        info.ok = false;
        return;
    }
    info.links.push_back(injectionLink(src));

    auto cur = coords(src);
    auto goal = coords(dst);
    std::vector<LinkId> segment; // reused across dimensions/attempts
    for (std::size_t d = 0; d < cfg.dims.size(); ++d) {
        int radix = cfg.dims[d];
        if (cur[d] == goal[d])
            continue;
        int forward = (goal[d] - cur[d] + radix) % radix;
        int backward = radix - forward;
        bool preferPositive =
            cfg.torus ? forward <= backward : goal[d] > cur[d];

        // Try the preferred direction, then (torus only) the long way
        // around the ring; commit whichever path is fully alive.
        bool resolved = false;
        for (int attempt = 0; attempt < (cfg.torus ? 2 : 1);
             ++attempt) {
            bool positive = attempt == 0 ? preferPositive
                                         : !preferPositive;
            auto probe = cur;
            segment.clear();
            bool alive = true;
            while (probe[d] != goal[d]) {
                LinkId link = stepLink(probe, d, positive);
                if (!linkAlive(link, now)) {
                    info.avoided.push_back(link);
                    alive = false;
                    break;
                }
                segment.push_back(link);
            }
            if (alive) {
                if (attempt > 0)
                    info.rerouted = true;
                info.links.insert(info.links.end(), segment.begin(),
                                  segment.end());
                cur[d] = goal[d];
                resolved = true;
                break;
            }
        }
        if (!resolved) {
            // No single-dimension detour: breadth-first search from
            // the current position over all live links.
            auto rest = bfsRoute(nodeAt(cur), dst, now);
            if (rest.empty()) {
                info.ok = false;
                info.links.clear();
                return;
            }
            info.rerouted = true;
            info.links.insert(info.links.end(), rest.begin(),
                              rest.end());
            info.links.push_back(ejectionLink(dst));
            return;
        }
    }
    info.links.push_back(ejectionLink(dst));
}

CongestionReport
Topology::analyzeCongestion(const std::vector<TrafficDemand> &demands,
                            Cycles now,
                            CongestionScratch &scratch) const
{
    // Per-link loads accumulate into a hash map keyed by the links the
    // routed demands actually touch, so the footprint is proportional
    // to the traffic pattern, never to linkCount(). Each link's load
    // is the sum of the same demand bytes in the same demand order as
    // the old dense vector produced, and the peak is a max (order
    // independent), so the factor is bit-identical to the dense
    // analysis.
    auto &load = scratch.load;
    load.clear();
    double total = 0.0;
    CongestionReport report;
    for (const auto &demand : demands) {
        if (demand.bytes == 0 || demand.src == demand.dst)
            continue;
        const std::vector<LinkId> *links = nullptr;
        if (outagesRegistered) {
            healthyRoute(demand.src, demand.dst, now, scratch.healthy);
            if (!scratch.healthy.ok) {
                ++report.unroutable; // carries no load
                continue;
            }
            links = &scratch.healthy.links;
        } else {
            route(demand.src, demand.dst, scratch.route);
            links = &scratch.route;
        }
        ++report.routed;
        total += static_cast<double>(demand.bytes);
        for (LinkId link : *links)
            load[link] += static_cast<double>(demand.bytes);
    }
    report.touchedLinks = static_cast<int>(load.size());
    if (report.routed == 0)
        return report; // factor stays at the 1.0 floor
    double mean = total / static_cast<double>(report.routed);
    double peak = 0.0;
    for (const auto &[link, bytes] : load)
        peak = std::max(peak, bytes);
    report.factor = std::max(1.0, peak / mean);
    return report;
}

CongestionReport
Topology::analyzeCongestion(const std::vector<TrafficDemand> &demands,
                            Cycles now) const
{
    CongestionScratch scratch;
    return analyzeCongestion(demands, now, scratch);
}

double
Topology::congestionOf(const std::vector<TrafficDemand> &demands,
                       Cycles now) const
{
    return analyzeCongestion(demands, now).factor;
}

} // namespace ct::sim
