#include "topology.h"

#include <algorithm>

#include "util/logging.h"

namespace ct::sim {

Topology::Topology(const TopologyConfig &config) : cfg(config)
{
    if (cfg.dims.empty())
        util::fatal("Topology: no dimensions");
    numNodes = 1;
    for (int d : cfg.dims) {
        if (d <= 0)
            util::fatal("Topology: non-positive dimension");
        numNodes *= d;
    }
    if (cfg.nodesPerPort <= 0 || numNodes % cfg.nodesPerPort != 0)
        util::fatal("Topology: bad nodesPerPort");
    networkLinksCount =
        numNodes * static_cast<int>(cfg.dims.size()) * 2;
    injectionPorts = numNodes / cfg.nodesPerPort;
    numLinks = networkLinksCount + 2 * injectionPorts;
}

std::vector<int>
Topology::coords(NodeId node) const
{
    if (node < 0 || node >= numNodes)
        util::fatal("Topology::coords: bad node ", node);
    std::vector<int> c(cfg.dims.size());
    int rest = node;
    for (std::size_t d = 0; d < cfg.dims.size(); ++d) {
        c[d] = rest % cfg.dims[d];
        rest /= cfg.dims[d];
    }
    return c;
}

NodeId
Topology::nodeAt(const std::vector<int> &coords) const
{
    if (coords.size() != cfg.dims.size())
        util::fatal("Topology::nodeAt: wrong coordinate count");
    int node = 0;
    for (std::size_t d = cfg.dims.size(); d-- > 0;) {
        if (coords[d] < 0 || coords[d] >= cfg.dims[d])
            util::fatal("Topology::nodeAt: coordinate out of range");
        node = node * cfg.dims[d] + coords[d];
    }
    return node;
}

LinkId
Topology::networkLink(NodeId node, std::size_t dim, bool positive) const
{
    return static_cast<LinkId>(
        (node * cfg.dims.size() + dim) * 2 + (positive ? 0 : 1));
}

LinkId
Topology::injectionLink(NodeId node) const
{
    return networkLinksCount + node / cfg.nodesPerPort;
}

LinkId
Topology::ejectionLink(NodeId node) const
{
    return networkLinksCount + injectionPorts +
           node / cfg.nodesPerPort;
}

std::vector<LinkId>
Topology::route(NodeId src, NodeId dst) const
{
    if (src < 0 || src >= numNodes || dst < 0 || dst >= numNodes)
        util::fatal("Topology::route: bad endpoint");
    if (src == dst)
        return {};

    std::vector<LinkId> links;
    links.push_back(injectionLink(src));

    auto cur = coords(src);
    auto goal = coords(dst);
    for (std::size_t d = 0; d < cfg.dims.size(); ++d) {
        int radix = cfg.dims[d];
        while (cur[d] != goal[d]) {
            int forward = (goal[d] - cur[d] + radix) % radix;
            int backward = radix - forward;
            bool positive;
            if (cfg.torus)
                positive = forward <= backward;
            else
                positive = goal[d] > cur[d];
            links.push_back(networkLink(nodeAt(cur), d, positive));
            cur[d] = (cur[d] + (positive ? 1 : radix - 1)) % radix;
        }
    }
    links.push_back(ejectionLink(dst));
    return links;
}

int
Topology::hopCount(NodeId src, NodeId dst) const
{
    if (src == dst)
        return 0;
    // Route includes injection and ejection; hops are the rest.
    return static_cast<int>(route(src, dst).size()) - 2;
}

double
Topology::congestionOf(const std::vector<TrafficDemand> &demands) const
{
    std::vector<double> load(static_cast<std::size_t>(numLinks), 0.0);
    double total = 0.0;
    std::size_t active = 0;
    for (const auto &demand : demands) {
        if (demand.bytes == 0 || demand.src == demand.dst)
            continue;
        ++active;
        total += static_cast<double>(demand.bytes);
        for (LinkId link : route(demand.src, demand.dst))
            load[static_cast<std::size_t>(link)] +=
                static_cast<double>(demand.bytes);
    }
    if (active == 0)
        return 1.0;
    double mean = total / static_cast<double>(active);
    double peak = *std::max_element(load.begin(), load.end());
    return std::max(1.0, peak / mean);
}

} // namespace ct::sim
