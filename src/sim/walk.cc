#include "walk.h"

#include "util/logging.h"

namespace ct::sim {

Addr
PatternWalk::elementAddr(const NodeRam &ram, std::uint64_t i) const
{
    using core::PatternKind;
    switch (pattern.kind()) {
      case PatternKind::Contiguous:
        return base + i * util::wordBytes;
      case PatternKind::Strided: {
        std::uint64_t b = pattern.block();
        return base + (i / b) * pattern.stride() * util::wordBytes +
               (i % b) * util::wordBytes;
      }
      case PatternKind::Indexed: {
        std::uint64_t idx = ram.readWord(indexAddr(i));
        return base + idx * util::wordBytes;
      }
      case PatternKind::Fixed:
        break;
    }
    util::fatal("PatternWalk: fixed pattern has no element address");
}

Addr
PatternWalk::indexAddr(std::uint64_t i) const
{
    return indexBase + i * util::wordBytes;
}

PatternWalk
contiguousWalk(Addr base)
{
    return {base, core::AccessPattern::contiguous(), 0};
}

PatternWalk
stridedWalk(Addr base, std::uint32_t stride_words,
            std::uint32_t block_words)
{
    return {base,
            core::AccessPattern::strided(stride_words, block_words),
            0};
}

PatternWalk
indexedWalk(Addr base, Addr index_base)
{
    return {base, core::AccessPattern::indexed(), index_base};
}

} // namespace ct::sim
