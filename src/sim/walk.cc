#include "walk.h"

#include "util/logging.h"

namespace ct::sim {

Addr
PatternWalk::elementAddr(const NodeRam &ram, std::uint64_t i) const
{
    using core::PatternKind;
    switch (pattern.kind()) {
      case PatternKind::Contiguous:
        return base + i * util::wordBytes;
      case PatternKind::Strided: {
        std::uint64_t b = pattern.block();
        return base + (i / b) * pattern.stride() * util::wordBytes +
               (i % b) * util::wordBytes;
      }
      case PatternKind::Indexed: {
        std::uint64_t idx = ram.readWord(indexAddr(i));
        return base + idx * util::wordBytes;
      }
      case PatternKind::Fixed:
        break;
    }
    util::fatal("PatternWalk: fixed pattern has no element address");
}

Addr
PatternWalk::indexAddr(std::uint64_t i) const
{
    return indexBase + i * util::wordBytes;
}

WalkCursor::WalkCursor(const PatternWalk &walk, std::uint64_t first)
    : walkRef(&walk), current(first)
{
    using core::PatternKind;
    switch (walk.pattern.kind()) {
      case PatternKind::Contiguous:
        addr = walk.base + first * util::wordBytes;
        break;
      case PatternKind::Strided: {
        // One div/mod to seed the cursor; advance() is add-only.
        std::uint64_t b = walk.pattern.block();
        addr = walk.base +
               (first / b) * walk.pattern.stride() * util::wordBytes +
               (first % b) * util::wordBytes;
        blockLeft = b - first % b;
        break;
      }
      case PatternKind::Indexed:
        break;
      case PatternKind::Fixed:
        util::fatal("WalkCursor: fixed pattern has no elements");
    }
}

Addr
WalkCursor::elementAddr(const NodeRam &ram) const
{
    if (walkRef->pattern.isIndexed())
        return walkRef->base +
               ram.readWord(walkRef->indexAddr(current)) *
                   util::wordBytes;
    return addr;
}

void
WalkCursor::advance()
{
    using core::PatternKind;
    ++current;
    switch (walkRef->pattern.kind()) {
      case PatternKind::Contiguous:
        addr += util::wordBytes;
        break;
      case PatternKind::Strided:
        if (--blockLeft == 0) {
            // Jump from the last element of a block to the first of
            // the next: stride words forward from the block start,
            // i.e. back over the block-1 words already walked. Two
            // 64-bit steps so an overlapping stride < block cannot
            // underflow in 32 bits.
            addr -= static_cast<Addr>(walkRef->pattern.block() - 1) *
                    util::wordBytes;
            addr += static_cast<Addr>(walkRef->pattern.stride()) *
                    util::wordBytes;
            blockLeft = walkRef->pattern.block();
        } else {
            addr += util::wordBytes;
        }
        break;
      case PatternKind::Indexed:
      case PatternKind::Fixed:
        break;
    }
}

PatternWalk
contiguousWalk(Addr base)
{
    return {base, core::AccessPattern::contiguous(), 0};
}

PatternWalk
stridedWalk(Addr base, std::uint32_t stride_words,
            std::uint32_t block_words)
{
    return {base,
            core::AccessPattern::strided(stride_words, block_words),
            0};
}

PatternWalk
indexedWalk(Addr base, Addr index_base)
{
    return {base, core::AccessPattern::indexed(), index_base};
}

} // namespace ct::sim
