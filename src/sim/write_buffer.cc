#include "write_buffer.h"

#include "util/logging.h"

namespace ct::sim {

WriteBuffer::WriteBuffer(const WriteBufferConfig &config, Dram &dram)
    : cfg(config), dram(dram)
{
    if (!isPowerOfTwo(cfg.lineBytes))
        util::fatal("WriteBuffer: line size must be a power of two");
}

void
WriteBuffer::retire(Cycles now)
{
    while (!queue.empty() && queue.front().issued &&
           queue.front().completesAt <= now)
        queue.pop_front();
}

void
WriteBuffer::issueBatch(Cycles now)
{
    for (auto &entry : queue) {
        if (entry.issued)
            continue;
        entry.completesAt =
            dram.accessBackground(entry.addr, entry.bytes, true, now)
                .complete;
        entry.issued = true;
    }
}

Cycles
WriteBuffer::store(Addr addr, Bytes bytes, Cycles now)
{
    ++counters.stores;
    retire(now);

    Addr line = alignDown(addr, cfg.lineBytes);

    if (cfg.entries == 0) {
        // No queue: the store stalls for the full DRAM write.
        Cycles complete =
            dram.accessBackground(addr, bytes, true, now).complete;
        Cycles cost = complete - now;
        counters.stallCycles += cost;
        return cost;
    }

    // Coalesce into the youngest entry when it targets the same line
    // and it has not been sent to memory yet: the merged word rides
    // along in the same burst.
    if (cfg.coalesce && !queue.empty() && !queue.back().issued &&
        queue.back().line == line) {
        ++counters.coalesced;
        queue.back().bytes += bytes;
        return 0;
    }

    Cycles stall = 0;
    if (queue.size() >= cfg.entries) {
        ++counters.fullStalls;
        issueBatch(now);
        stall = queue.front().completesAt > now
                    ? queue.front().completesAt - now
                    : 0;
        counters.stallCycles += stall;
        now += stall;
        queue.pop_front();
        retire(now);
    }

    queue.push_back({line, addr, bytes, false, 0});

    unsigned unissued = 0;
    for (const auto &e : queue)
        unissued += !e.issued;
    if (unissued >= std::max(1u, cfg.drainBatch))
        issueBatch(now);
    return stall;
}

Cycles
WriteBuffer::drainTime(Cycles now)
{
    issueBatch(now);
    if (queue.empty() || queue.back().completesAt <= now)
        return 0;
    return queue.back().completesAt - now;
}

std::size_t
WriteBuffer::occupancy(Cycles now) const
{
    std::size_t count = 0;
    for (const auto &e : queue)
        count += !e.issued || e.completesAt > now;
    return count;
}

} // namespace ct::sim
