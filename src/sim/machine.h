/**
 * @file
 * A whole parallel machine: nodes, topology, interconnect and the
 * shared event queue, plus the calibrated configurations of the two
 * machines studied in the paper.
 *
 * Calibration targets are the basic-transfer throughputs the paper
 * measured (Tables 1-4); EXPERIMENTS.md reports the achieved values
 * side by side with the paper's.
 */

#ifndef CT_SIM_MACHINE_H
#define CT_SIM_MACHINE_H

#include <memory>
#include <string>
#include <vector>

#include "core/machine_params.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/parallel.h"
#include "sim/trace_tracks.h"

namespace ct::sim {

/** Full machine description. */
struct MachineConfig
{
    std::string name = "machine";
    core::MachineId id = core::MachineId::T3d;
    double clockHz = 150e6;
    TopologyConfig topology;
    NetworkConfig network;
    NodeConfig node;
    /** Fault-injection spec; the default injects nothing. */
    FaultSpec faults;
    /** Chaos campaign layered on top; the default schedules nothing.
     *  Rate phases add to the spec's static rates; cascades and
     *  flaps become topology outages at machine construction. */
    ChaosSchedule chaos;
    /**
     * Worker threads for conservative parallel execution of this
     * machine's event timeline (sim::ParallelEngine). 0 or 1 keeps
     * today's serial engine with zero overhead; results are
     * byte-identical at every value. Machines with faults or chaos
     * always run serially: fault rolls consume a shared deterministic
     * RNG stream whose draw order *is* the event order.
     */
    int threads = 0;
};

/**
 * Sanity-check a machine configuration, with clear error messages
 * instead of silent NaNs or divide-by-zero downstream. fatal()s on
 * the first violation. Called by the Machine constructor; exposed for
 * tools that want to validate user input before building a machine.
 */
void validateMachineConfig(const MachineConfig &config);

/** Nodes + network, ready to run communication operations. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    int nodeCount() const { return topo.nodeCount(); }
    Node &node(NodeId id);

    EventQueue &events() { return queue; }
    Network &network() { return net; }
    Topology &topology() { return topo; }
    const Topology &topology() const { return topo; }
    const MachineConfig &config() const { return cfg; }

    /** Fault injector, or nullptr when the machine is fault-free. */
    FaultInjector *faults() { return injector.get(); }
    const FaultInjector *faults() const { return injector.get(); }

    /** Registry hosting every component's metrics. */
    obs::MetricsRegistry &metrics() { return metricsReg; }
    const obs::MetricsRegistry &metrics() const { return metricsReg; }

    /**
     * Attach (or with nullptr detach) a tracer. Labels every track
     * and forwards the tracer to the network; the runtime layers pick
     * it up through tracer(). Tracing off means a null pointer check
     * per emission site and nothing else.
     */
    void setTracer(obs::Tracer *t);
    obs::Tracer *tracer() const { return tracerPtr; }

    /** Machine-scope track (whole-operation spans). */
    std::int32_t opTrack() const
    {
        return machineTraceTrack(nodeCount());
    }

    /** Payload throughput of @p bytes moved in @p cycles. */
    util::MBps toMBps(Bytes bytes, Cycles cycles) const;

    /**
     * Gate the parallel engine on or off for subsequent runs (no-op
     * when the machine has none). Layers that are not parallel-safe
     * (rt::ReliableLayer's cancellable timers) disable it before
     * driving the queue; tracing disables it implicitly because
     * trace emission is keyed to callback execution order.
     */
    void setParallelEnabled(bool enabled);

    /**
     * Tighten the engine's window span to a layer's declared minimum
     * cross-partition delay, clamped to [1, network lookahead].
     */
    void setParallelLookahead(Cycles hint);

    /** The engine, or nullptr when cfg.threads <= 1 / faults. */
    const ParallelEngine *parallelEngine() const
    {
        return engine.get();
    }

    /** Conservative lookahead floor from the wire model: no packet
     *  crosses nodes faster than header serialization + one hop. */
    Cycles networkLookahead() const { return netLookahead; }

  private:
    void wireRunner();

    MachineConfig cfg;
    Topology topo;
    /** Declared before the queue: window-spawned event nodes live in
     *  engine-owned slabs, so the queue's heap must die first. */
    std::unique_ptr<ParallelEngine> engine;
    EventQueue queue;
    /** Declared before the components that register metrics in it. */
    obs::MetricsRegistry metricsReg;
    obs::Tracer *tracerPtr = nullptr;
    std::unique_ptr<FaultInjector> injector;
    Network net;
    std::vector<std::unique_ptr<Node>> nodes;
    Cycles netLookahead = 1;
    bool parallelAllowed = true;
};

/** Node configuration calibrated to the Cray T3D (§3.5.1). */
NodeConfig t3dNodeConfig();

/** Node configuration calibrated to the Intel Paragon (§3.5.2). */
NodeConfig paragonNodeConfig();

/**
 * A T3D partition: 3-D torus, two PEs per network port, 150 MHz
 * Alpha EV4 nodes. @p dims must multiply to the node count.
 */
MachineConfig t3dConfig(std::vector<int> dims = {2, 2, 2});

/** A Paragon partition: 2-D mesh, 50 MHz dual-i860XP nodes. */
MachineConfig paragonConfig(std::vector<int> dims = {4, 2});

/** Build the configuration for a machine id with default dims. */
MachineConfig configFor(core::MachineId id);

/**
 * True when @p nodes is a machine size the scaled configurations
 * support: a power of two in [8, 8192].
 */
bool validScaleNodes(int nodes);

/**
 * Near-balanced power-of-two dims for a @p nodes-node partition of
 * machine @p id: three dimensions for the T3D's torus (largest radix
 * first), two for the Paragon's mesh. fatal()s unless
 * validScaleNodes(nodes).
 */
std::vector<int> dimsForNodes(core::MachineId id, int nodes);

/** configFor() with the topology scaled to @p nodes nodes. */
MachineConfig configFor(core::MachineId id, int nodes);

} // namespace ct::sim

#endif // CT_SIM_MACHINE_H
