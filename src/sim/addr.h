/**
 * @file
 * Address and sizing primitives of the node simulator.
 */

#ifndef CT_SIM_ADDR_H
#define CT_SIM_ADDR_H

#include <cstdint>

#include "util/units.h"

namespace ct::sim {

/** Byte address within one node's local memory. */
using Addr = std::uint64_t;

using util::Bytes;
using util::Cycles;

/** Round @p addr down to a multiple of @p unit (a power of two). */
constexpr Addr
alignDown(Addr addr, Bytes unit)
{
    return addr & ~(static_cast<Addr>(unit) - 1);
}

/** True if @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace ct::sim

#endif // CT_SIM_ADDR_H
