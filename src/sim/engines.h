/**
 * @file
 * Background communication engines:
 *
 *  - DepositEngine: takes packets from the network and stores their
 *    words into local memory without processor involvement. The T3D
 *    annex handles any access pattern via address-data pairs; the
 *    Paragon DMA (line-transfer unit) deposits contiguous, aligned
 *    blocks only.
 *
 *  - FetchEngine: the sending-side DMA (Paragon 1F0): feeds the NI
 *    from contiguous memory at bus speed, with a processor "kick"
 *    penalty at every DRAM page boundary (§5.1.3).
 */

#ifndef CT_SIM_ENGINES_H
#define CT_SIM_ENGINES_H

#include "sim/fault.h"
#include "sim/memory.h"
#include "sim/node_ram.h"
#include "sim/packet.h"

namespace ct::sim {

/** Capabilities and speed of the deposit engine. */
struct DepositEngineConfig
{
    bool enabled = false;
    /** Accepts address-data pairs for any pattern (T3D annex). */
    bool anyPattern = false;
    /** Engine occupancy per data-only payload word. */
    double dataWordCycles = 8.0;
    /** Engine occupancy per address-data pair. */
    double adpWordCycles = 20.0;
    /** Fixed cost per packet. */
    Cycles perPacketCycles = 10;
};

/** Counters. */
struct DepositEngineStats
{
    std::uint64_t packets = 0;
    std::uint64_t words = 0;
    Cycles busyCycles = 0;
    /** Injected transient stalls (fault model). */
    std::uint64_t faultStalls = 0;
    Cycles faultStallCycles = 0;
    /** Packets refused after the ADP datapath failed. */
    std::uint64_t refusedPackets = 0;
};

/**
 * Receiving engine. Packets are served FIFO; each word is written to
 * node memory through the engine port (which also invalidates stale
 * cache lines). Per-word engine processing and the DRAM write are
 * pipelined, so the occupancy per word is the maximum of the two.
 */
class DepositEngine
{
  public:
    DepositEngine(const DepositEngineConfig &config, MemorySystem &mem,
                  NodeRam &ram);

    bool enabled() const { return cfg.enabled; }

    /** Attach the machine's fault injector (nullptr = fault-free). */
    void setFaults(FaultInjector *injector) { faults = injector; }

    /** True if the engine can deposit @p packet at all. */
    bool accepts(const Packet &packet) const;

    /**
     * Admission check performed once per arriving packet. For
     * address-data-pair packets this is where a permanent ADP-
     * datapath failure can trigger (fault model); after a failure
     * the engine refuses adp packets while the simpler contiguous
     * datapath keeps working. Returns accepts(packet).
     */
    bool admit(const Packet &packet);

    /** True once the ADP datapath has failed permanently. */
    bool adpFailed() const { return adpDead; }

    /**
     * Deposit @p packet arriving at @p arrival.
     * @return completion time (engine is busy until then).
     */
    Cycles deposit(const Packet &packet, Cycles arrival);

    Cycles busyUntil() const { return freeAt; }
    const DepositEngineStats &stats() const { return counters; }
    const DepositEngineConfig &config() const { return cfg; }

  private:
    DepositEngineConfig cfg;
    MemorySystem &mem;
    NodeRam &ram;
    FaultInjector *faults = nullptr;
    DepositEngineStats counters;
    Cycles freeAt = 0;
    bool adpDead = false;
};

/** Sending-side DMA parameters. */
struct FetchEngineConfig
{
    bool enabled = false;
    /** Bytes fetched and injected per cycle in steady state. */
    double bytesPerCycle = 3.2;
    /** Processor setup cost per transfer. */
    Cycles setupCycles = 50;
    /** DRAM page size at which the engine stalls for a kick. */
    Bytes pageBytes = 4096;
    /** Stall per page boundary crossing. */
    Cycles pageKickCycles = 30;
};

/** Counters. */
struct FetchEngineStats
{
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    std::uint64_t pageKicks = 0;
    /** Injected transient stalls (fault model). */
    std::uint64_t faultStalls = 0;
    Cycles faultStallCycles = 0;
};

/**
 * Sending engine (1F0). fetch() returns the cycles to read a
 * contiguous block and inject it into the NI.
 */
class FetchEngine
{
  public:
    explicit FetchEngine(const FetchEngineConfig &config);

    bool enabled() const { return cfg.enabled; }

    /** Attach the machine's fault injector (nullptr = fault-free). */
    void setFaults(FaultInjector *injector) { faults = injector; }

    /** Cycles to fetch-and-inject [addr, addr+bytes). */
    Cycles fetch(Addr addr, Bytes bytes);

    const FetchEngineStats &stats() const { return counters; }
    const FetchEngineConfig &config() const { return cfg; }

  private:
    FetchEngineConfig cfg;
    FaultInjector *faults = nullptr;
    FetchEngineStats counters;
};

} // namespace ct::sim

#endif // CT_SIM_ENGINES_H
