#include "cache.h"

#include "util/logging.h"

namespace ct::sim {

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    if (!isPowerOfTwo(cfg.sizeBytes) || !isPowerOfTwo(cfg.lineBytes))
        util::fatal("Cache: size and line must be powers of two");
    if (cfg.associativity == 0)
        util::fatal("Cache: zero associativity");
    Bytes line_count = cfg.sizeBytes / cfg.lineBytes;
    if (line_count % cfg.associativity != 0)
        util::fatal("Cache: line count not divisible by associativity");
    numSets = line_count / cfg.associativity;
    if (!isPowerOfTwo(numSets))
        util::fatal("Cache: set count must be a power of two");
    lines.resize(line_count);
}

Addr
Cache::lineAddr(Addr addr) const
{
    return alignDown(addr, cfg.lineBytes);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>((line_addr / cfg.lineBytes) &
                                    (numSets - 1));
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    std::size_t set = setIndex(line_addr);
    for (unsigned way = 0; way < cfg.associativity; ++way) {
        Line &line = lines[set * cfg.associativity + way];
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

Cache::Line &
Cache::victim(Addr line_addr)
{
    std::size_t set = setIndex(line_addr);
    Line *lru = &lines[set * cfg.associativity];
    for (unsigned way = 1; way < cfg.associativity; ++way) {
        Line &line = lines[set * cfg.associativity + way];
        if (!line.valid)
            return line;
        if (line.lastUse < lru->lastUse)
            lru = &line;
    }
    return *lru;
}

CacheLoadResult
Cache::load(Addr addr)
{
    ++useClock;
    Addr la = lineAddr(addr);
    if (Line *line = findLine(la)) {
        ++counters.loadHits;
        line->lastUse = useClock;
        return {true, false, false, 0};
    }
    ++counters.loadMisses;
    CacheLoadResult result{false, true, false, 0};
    Line &slot = victim(la);
    if (slot.valid && slot.dirty) {
        ++counters.writeBacks;
        result.writeBack = true;
        result.writeBackLine = slot.tag;
    }
    slot.tag = la;
    slot.valid = true;
    slot.dirty = false;
    slot.lastUse = useClock;
    return result;
}

CacheStoreResult
Cache::store(Addr addr)
{
    ++useClock;
    Addr la = lineAddr(addr);
    Line *line = findLine(la);
    CacheStoreResult result;
    switch (cfg.writePolicy) {
      case WritePolicy::WriteAround:
        // The store bypasses the cache; a resident copy goes stale
        // and is invalidated to keep loads coherent.
        result.hit = line != nullptr;
        result.toMemory = true;
        if (line) {
            ++counters.storeHits;
            line->valid = false;
            ++counters.invalidations;
        } else {
            ++counters.storeMisses;
        }
        return result;
      case WritePolicy::WriteThrough:
        result.toMemory = true;
        if (line) {
            ++counters.storeHits;
            result.hit = true;
            line->lastUse = useClock;
        } else {
            ++counters.storeMisses;
        }
        return result;
      case WritePolicy::WriteBack:
        if (line) {
            ++counters.storeHits;
            result.hit = true;
            line->dirty = true;
            line->lastUse = useClock;
            return result;
        }
        ++counters.storeMisses;
        if (!cfg.allocateOnWriteMiss) {
            result.toMemory = true;
            return result;
        }
        result.fill = true;
        {
            Line &slot = victim(la);
            if (slot.valid && slot.dirty) {
                ++counters.writeBacks;
                result.writeBack = true;
                result.writeBackLine = slot.tag;
            }
            slot.tag = la;
            slot.valid = true;
            slot.dirty = true;
            slot.lastUse = useClock;
        }
        return result;
    }
    util::panic("Cache::store: bad policy");
}

void
Cache::invalidateLine(Addr addr)
{
    if (Line *line = findLine(lineAddr(addr))) {
        line->valid = false;
        line->dirty = false;
        ++counters.invalidations;
    }
}

void
Cache::invalidateAll()
{
    for (Line &line : lines) {
        if (line.valid)
            ++counters.invalidations;
        line.valid = false;
        line.dirty = false;
    }
}

bool
Cache::contains(Addr addr) const
{
    return findLine(lineAddr(addr)) != nullptr;
}

} // namespace ct::sim
