/**
 * @file
 * Write-back queue (WBQ) model. On the T3D, stores bypass the cache
 * (write-around) and enter a small coalescing queue drained to DRAM in
 * the background; the processor only stalls when the queue is full.
 * This is the mechanism that makes strided *stores* much faster than
 * strided *loads* on that machine (paper §3.5.1, Figure 4).
 */

#ifndef CT_SIM_WRITE_BUFFER_H
#define CT_SIM_WRITE_BUFFER_H

#include <deque>

#include "sim/dram.h"

namespace ct::sim {

/** Sizing of the write queue. */
struct WriteBufferConfig
{
    /** Number of outstanding entries; 0 disables the queue entirely
     *  (every store stalls for its DRAM write). */
    unsigned entries = 6;
    /** Merge stores to the same line into one DRAM burst. */
    bool coalesce = true;
    Bytes lineBytes = 32;
    /**
     * Entries drained per DRAM turn. Draining in batches keeps row
     * locality among the buffered stores instead of ping-ponging the
     * open row between the read stream and single drained words.
     */
    unsigned drainBatch = 4;
};

/** Counters for tests and reports. */
struct WriteBufferStats
{
    std::uint64_t stores = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t fullStalls = 0;
    Cycles stallCycles = 0;
};

/**
 * Occupancy-based write queue. Entries carry a completion time
 * assigned on enqueue (drains are serialized on the DRAM write port);
 * store() returns the stall the issuing processor observes.
 */
class WriteBuffer
{
  public:
    WriteBuffer(const WriteBufferConfig &config, Dram &dram);

    /**
     * Issue a word store at time @p now.
     * @return processor-visible stall cycles (0 in the common case).
     */
    Cycles store(Addr addr, Bytes bytes, Cycles now);

    /** Cycles from @p now until the queue fully drains (fence);
     *  forces any buffered entries out to memory. */
    Cycles drainTime(Cycles now);

    /** Pending (not yet drained) entries at time @p now. */
    std::size_t occupancy(Cycles now) const;

    const WriteBufferStats &stats() const { return counters; }

  private:
    struct Entry
    {
        Addr line;
        Addr addr;
        Bytes bytes;
        bool issued;
        Cycles completesAt;
    };

    void retire(Cycles now);
    /** Send all unissued entries to DRAM back to back. */
    void issueBatch(Cycles now);

    WriteBufferConfig cfg;
    Dram &dram;
    WriteBufferStats counters;
    std::deque<Entry> queue;
};

} // namespace ct::sim

#endif // CT_SIM_WRITE_BUFFER_H
