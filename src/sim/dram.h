/**
 * @file
 * Page-mode DRAM model. Both machines of the paper use simple
 * DRAM-based main memories whose throughput depends heavily on row
 * (page) locality: accesses within an open row are fast, a row change
 * pays the full RAS cycle.
 *
 * Structure: each bank owns an open-row register and an activation
 * window; the data beats of all banks serialize on one shared data
 * bus. Two request lanes exist:
 *
 *  - the demand lane (processor fills, prefetches, engine traffic),
 *  - the background lane (write-queue drains), which shares row and
 *    bank state but never delays demand requests head-of-line; real
 *    memory controllers give buffered writes the lowest priority.
 */

#ifndef CT_SIM_DRAM_H
#define CT_SIM_DRAM_H

#include <vector>

#include "sim/addr.h"

namespace ct::sim {

/** Timing and geometry parameters of the DRAM array. */
struct DramConfig
{
    Bytes rowBytes = 2048;    ///< page size of one DRAM row
    int banks = 4;            ///< independently open rows
    /** Bank interleave granularity; rows of one span share a bank. */
    Bytes bankSpanBytes = 2048;
    Cycles rowHitCycles = 10; ///< read within the open row
    Cycles rowMissCycles = 20; ///< read after a row change
    /** Writes often use a cheaper CAS-only path than line reads. */
    Cycles writeHitCycles = 10;
    Cycles writeMissCycles = 20;
    Bytes beatBytes = 8;      ///< bytes moved per data beat
    Cycles burstBeatCycles = 1; ///< each beat after the first
};

/** Counters exposed for tests and reports. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    Cycles busyCycles = 0;
};

/** Result of one DRAM request. */
struct DramAccess
{
    Cycles start = 0;    ///< when the request began being served
    Cycles complete = 0; ///< when the data transfer finished
    bool rowHit = false; ///< first row touched was already open
};

/**
 * Banked page-mode DRAM. Activations overlap across banks; data
 * beats serialize on the shared bus, so independent streams (or
 * pipelined random loads) overlap their row misses while same-bank
 * streams serialize fully.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &config);

    /**
     * Serve a demand read or write of @p bytes at @p addr, no earlier
     * than @p now. Requests crossing row boundaries pay each row.
     */
    DramAccess access(Addr addr, Bytes bytes, bool is_write,
                      Cycles now);

    /**
     * Serve a background (write-drain) request. Shares row/bank
     * state and its own serialization, but does not push the demand
     * lane's availability.
     */
    DramAccess accessBackground(Addr addr, Bytes bytes, bool is_write,
                                Cycles now);

    /** Forget all open rows (refresh / synchronization). */
    void closeRows();

    const DramStats &stats() const { return counters; }
    const DramConfig &config() const { return cfg; }

  private:
    std::size_t bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;

    /** Activation cycles for one row-local run; updates the
     *  open-row register. */
    Cycles serveWithinRow(Addr addr, bool is_write);

    DramAccess serve(Addr addr, Bytes bytes, bool is_write, Cycles now,
                     Cycles &lane_busy);

    DramConfig cfg;
    DramStats counters;
    std::vector<Addr> openRow;
    std::vector<bool> rowOpen;
    std::vector<Cycles> bankBusyUntil;
    Cycles demandBusyUntil = 0;
    Cycles backgroundBusyUntil = 0;
};

} // namespace ct::sim

#endif // CT_SIM_DRAM_H
