#include "dram.h"

#include "util/logging.h"

namespace ct::sim {

Dram::Dram(const DramConfig &config) : cfg(config)
{
    if (!isPowerOfTwo(cfg.rowBytes) || !isPowerOfTwo(cfg.beatBytes) ||
        !isPowerOfTwo(cfg.bankSpanBytes))
        util::fatal("Dram: sizes must be powers of two");
    if (cfg.beatBytes > cfg.rowBytes)
        util::fatal("Dram: beat larger than row");
    if (cfg.bankSpanBytes < cfg.rowBytes)
        util::fatal("Dram: bank span smaller than a row");
    if (cfg.banks <= 0)
        util::fatal("Dram: need at least one bank");
    openRow.assign(static_cast<std::size_t>(cfg.banks), 0);
    rowOpen.assign(static_cast<std::size_t>(cfg.banks), false);
    bankBusyUntil.assign(static_cast<std::size_t>(cfg.banks), 0);
}

std::size_t
Dram::bankOf(Addr addr) const
{
    return static_cast<std::size_t>(
        (addr / cfg.bankSpanBytes) % static_cast<Addr>(cfg.banks));
}

Addr
Dram::rowOf(Addr addr) const
{
    return alignDown(addr, cfg.rowBytes);
}

Cycles
Dram::serveWithinRow(Addr addr, bool is_write)
{
    std::size_t bank = bankOf(addr);
    Addr row = rowOf(addr);
    Cycles cost;
    if (rowOpen[bank] && openRow[bank] == row) {
        ++counters.rowHits;
        cost = is_write ? cfg.writeHitCycles : cfg.rowHitCycles;
    } else {
        ++counters.rowMisses;
        cost = is_write ? cfg.writeMissCycles : cfg.rowMissCycles;
        openRow[bank] = row;
        rowOpen[bank] = true;
    }
    return cost;
}

DramAccess
Dram::serve(Addr addr, Bytes bytes, bool is_write, Cycles now,
            Cycles &lane_busy)
{
    if (bytes == 0)
        util::fatal("Dram::access: zero-byte request");
    if (is_write)
        ++counters.writes;
    else
        ++counters.reads;

    std::size_t bank = bankOf(addr);
    DramAccess result;
    result.rowHit = rowOpen[bank] && openRow[bank] == rowOf(addr);

    // Row activation occupies the bank; the data beats serialize on
    // the lane's shared data path. Activations in different banks
    // overlap, which lets pipelined streams hide row misses.
    Cycles start = std::max(now, bankBusyUntil[bank]);

    Cycles activation = 0;
    Cycles data = 0;
    Addr cursor = addr;
    Bytes remaining = bytes;
    while (remaining > 0) {
        Addr row_end = rowOf(cursor) + cfg.rowBytes;
        Bytes chunk = std::min<Bytes>(remaining, row_end - cursor);
        activation += serveWithinRow(cursor, is_write);
        Bytes beats = (chunk + cfg.beatBytes - 1) / cfg.beatBytes;
        data += beats * cfg.burstBeatCycles;
        cursor += chunk;
        remaining -= chunk;
    }

    Cycles complete = std::max(start + activation, lane_busy) + data;
    bankBusyUntil[bank] = complete;
    lane_busy = complete;

    result.start = start;
    result.complete = complete;
    counters.busyCycles += activation + data;
    return result;
}

DramAccess
Dram::access(Addr addr, Bytes bytes, bool is_write, Cycles now)
{
    return serve(addr, bytes, is_write, now, demandBusyUntil);
}

DramAccess
Dram::accessBackground(Addr addr, Bytes bytes, bool is_write,
                       Cycles now)
{
    return serve(addr, bytes, is_write, now, backgroundBusyUntil);
}

void
Dram::closeRows()
{
    std::fill(rowOpen.begin(), rowOpen.end(), false);
}

} // namespace ct::sim
