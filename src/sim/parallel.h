/**
 * @file
 * Conservative parallel engine for one simulation: executes the
 * event timeline of a single EventQueue on sweep::Farm workers while
 * committing every observable effect in exact serial (time, seq)
 * order, so reports, metrics, and baselines are byte-identical to
 * the serial engine at any thread count.
 *
 * Protocol (window loop, driven from the main thread):
 *
 *  1. COLLECT -- with T = the earliest pending time and H = T +
 *     lookahead, pop every pending event with time < H in (time,
 *     seq) order. Keep, per partition, only the events at that
 *     partition's *minimum* timestamp in the window; push the rest
 *     back untouched. One partition therefore executes at exactly
 *     one timestamp per window, which makes every same-partition
 *     spawn trivially safe (it lands at or after the only time the
 *     partition ran), while lookahead > 1 still lets different
 *     partitions run at different times concurrently.
 *
 *  2. EXECUTE -- dispatch the kept events to farm workers, grouped
 *     by partition (a partition's events always run on one worker,
 *     in (time, seq) order). Workers do not touch the queue: every
 *     schedule() becomes a buffered spawn node and every
 *     deferToCommit() a buffered call, recorded in program order in
 *     a per-worker effect log. forEach() blocking is the window
 *     barrier.
 *
 *  3. COMMIT -- merge the executed events into a reorder buffer and
 *     commit, on the main thread, every buffered event that precedes
 *     all still-unexecuted heap events in (time, seq) order:
 *     advance the clock, adopt spawned nodes into the heap (stamping
 *     seq exactly where the serial engine would), run deferred calls
 *     (order-sensitive shared state such as link reservations
 *     mutates here, serially), and retire each event with the same
 *     release() re-stamp the serial engine performs. An executed
 *     event whose commit slot is preceded by a *newly spawned*
 *     earlier event (a same-partition respawn of another partition,
 *     say) simply waits in the buffer -- its partition saw only its
 *     own state, which nothing earlier can touch -- and commits
 *     after the next window executes the interloper. The committed
 *     effect stream is therefore the serial stream, byte for byte,
 *     at any lookahead. Cross-partition spawns are validated against
 *     each partition's last executed time -- a layer whose declared
 *     lookahead exceeds its true cross-partition delay is caught
 *     loudly instead of corrupting the timeline.
 *
 * Windows whose events are untagged or all in one partition run
 * serially in place (when nothing is waiting in the reorder
 * buffer); threads <= 1 disables the engine entirely.
 */

#ifndef CT_SIM_PARALLEL_H
#define CT_SIM_PARALLEL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event.h"
#include "sweep/farm.h"

namespace ct::sim {

struct ParallelOptions
{
    /** Worker threads (sweep::parseThreadCount policy); <= 1 makes
     *  the engine inactive and run() stays fully serial. */
    int threads = 0;
    /** Window span in cycles; clamped to >= 1. Derived from the
     *  network's minimum cross-node latency by sim::Machine. */
    Cycles lookahead = 1;
    /** Windows with fewer distinct partitions than this execute
     *  serially in place (dispatch would cost more than it buys). */
    int minPartitions = 2;
};

/** Deterministic engine counters (all schedule-independent: window
 *  shapes depend only on the event timeline, never on thread
 *  interleaving, so these are safe to bake into bench baselines). */
struct ParallelStats
{
    std::uint64_t windows = 0;         ///< horizon windows formed
    std::uint64_t parallelWindows = 0; ///< dispatched to the farm
    std::uint64_t serialWindows = 0;   ///< executed in place
    std::uint64_t parallelEvents = 0;  ///< events run on workers
    std::uint64_t serialEvents = 0;    ///< events run in place
    std::uint64_t crossSpawns = 0;     ///< committed cross-partition spawns
    std::uint64_t deferredCalls = 0;   ///< deferToCommit() replays
    Cycles maxWindowSpan = 0;          ///< max in-window time spread
};

class ParallelEngine
{
  public:
    /** The queue must outlive the engine's *use*, but the engine
     *  must outlive the queue's *destruction* whenever adopted
     *  window nodes may still be pending (declare the engine before
     *  the queue, as sim::Machine does, or drain the queue first). */
    ParallelEngine(EventQueue &queue, ParallelOptions options);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** True when the engine will actually dispatch to workers. */
    bool active() const { return opts.threads > 1; }

    /** Drain the queue; returns events executed (== serial run()). */
    std::uint64_t runAll();

    /** Clamp the window span: max(1, min(hint, ceiling)). Layers
     *  pass their true minimum cross-partition delay as the hint;
     *  the ceiling is the network's own minimum link latency. */
    void setLookahead(Cycles hint, Cycles ceiling);

    Cycles lookahead() const { return opts.lookahead; }
    int threads() const { return opts.threads; }
    const ParallelStats &stats() const { return st; }

    /** Lookahead-contract backstop, called for every cross-partition
     *  commit: fatal when @p when precedes the last executed time of
     *  @p part. */
    void checkCommitTime(Cycles when, std::int32_t part) const;

  private:
    struct Seed
    {
        EventQueue::EventNode *node = nullptr;
        int worker = -1;
        std::uint32_t effBegin = 0;
        std::uint32_t effEnd = 0;
        /** Effects moved out of the worker log when the seed's
         *  commit is deferred past its window (see commitWindow). */
        std::vector<EventQueue::Effect> held;
    };

    std::uint64_t runWindow();
    std::uint64_t commitWindow();
    void commitSeed(Seed &seed);
    bool seedPrecedesHeap(const Seed &seed) const;
    void prepareReserve();

    EventQueue &q;
    ParallelOptions opts;
    sweep::Farm farm;
    /** One per farm worker; owns worker slabs (see WindowCtx). */
    std::vector<std::unique_ptr<EventQueue::WindowCtx>> contexts;

    // Per-window scratch, reused across windows.
    std::vector<Seed> seeds;
    std::vector<EventQueue::EventNode *> rejects;
    /** Partition -> kept timestamp, epoch-validated so reset is
     *  O(partitions touched), not O(partitions). */
    std::vector<Cycles> partTime;
    std::vector<std::uint64_t> partEpoch;
    std::vector<std::int32_t> windowParts;
    /** Partition -> dispatch task index for the open window. */
    std::vector<std::int32_t> partTask;
    std::vector<std::vector<std::uint32_t>> tasks;
    std::size_t taskCount = 0;
    std::uint64_t epoch = 0;
    /** Max kept timestamp of the open window (scratch). */
    Cycles windowMax = 0;

    /** Reorder buffer: executed seeds awaiting their global commit
     *  slot, (time, seq)-sorted. Non-empty exactly when an executed
     *  event's slot is preceded by a spawned-but-unexecuted one. */
    std::vector<Seed> rob;
    std::vector<Seed> robMerge;
    /** Partition -> last executed event time (monotonic; commit
     *  floor for cross-partition spawns). */
    std::vector<Cycles> lastExec;
    /** Partitions with seeds still in the reorder buffer: they must
     *  not execute further events until those commit (an uncommitted
     *  seed may yet spawn a same-partition event at an earlier time
     *  than anything now pending). */
    std::vector<char> partHeld;
    std::vector<std::int32_t> heldParts;
    /** Max executed event time (commit floor for untagged spawns). */
    Cycles maxExec = 0;

    /** Recycled nodes prefilled for workers (see windowAcquire). */
    std::vector<EventQueue::EventNode *> reserve;
    std::atomic<std::size_t> reserveNext{0};

    ParallelStats st;
};

} // namespace ct::sim

#endif // CT_SIM_PARALLEL_H
