/**
 * @file
 * Machine statistics report: aggregates the hardware counters of a
 * simulated run (cache hit rates, DRAM row locality, write-queue
 * behaviour, bus contention, network utilization) into a structured
 * summary. Benchmarks and examples print it to show *why* a
 * communication style performed as it did.
 */

#ifndef CT_SIM_REPORT_H
#define CT_SIM_REPORT_H

#include <string>

#include "sim/machine.h"

namespace ct::sim {

/** Aggregated counters of one machine run. */
struct MachineReport
{
    int nodes = 0;

    // Cache.
    std::uint64_t loadHits = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t cacheInvalidations = 0;

    // DRAM.
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;

    // Write queue.
    std::uint64_t wbqStores = 0;
    std::uint64_t wbqCoalesced = 0;
    Cycles wbqStallCycles = 0;

    // Bus.
    std::uint64_t busTransactions = 0;
    std::uint64_t busOwnerSwitches = 0;
    Cycles busWaitCycles = 0;

    // Deposit engines.
    std::uint64_t depositPackets = 0;
    std::uint64_t depositWords = 0;
    Cycles depositBusyCycles = 0;

    // Network.
    std::uint64_t networkPackets = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t wireBytes = 0;

    // Injected faults (all zero on a fault-free machine).
    std::uint64_t faultDrops = 0;
    std::uint64_t faultCorruptions = 0;
    std::uint64_t faultDuplicates = 0;
    std::uint64_t faultDelays = 0;
    std::uint64_t engineStalls = 0;
    std::uint64_t engineFailures = 0;
    std::uint64_t engineRefusals = 0;

    // Event core.
    /** Peak simultaneously pending events over the run. */
    std::uint64_t peakPendingEvents = 0;
    /**
     * True when any EventQueue::run stopped at its max_events guard
     * with events still pending: the run never converged and every
     * other counter in this report is a lower bound, not a result.
     */
    bool truncatedRun = false;

    // Topology outages (all zero on a healthy fabric).
    std::uint64_t reroutedPackets = 0;
    std::uint64_t reroutedLinks = 0;
    std::uint64_t unroutablePackets = 0;
    std::uint64_t deadNodePackets = 0;
    std::uint64_t linkFailures = 0;
    int downedLinks = 0;
    int downedNodes = 0;

    /** Load hit fraction; 0 when no loads happened. */
    double loadHitRate() const;

    /** DRAM open-row hit fraction. */
    double rowHitRate() const;

    /** Wire bytes per payload byte (framing overhead factor). */
    double wireOverhead() const;
};

/** Collect the counters of every node and the network. */
MachineReport collectReport(Machine &machine);

/** Multi-line human-readable rendering. */
std::string formatReport(const MachineReport &report);

/** One-line CSV (matching csvHeader()). */
std::string toCsv(const MachineReport &report);
std::string csvHeader();

} // namespace ct::sim

#endif // CT_SIM_REPORT_H
