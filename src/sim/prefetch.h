/**
 * @file
 * Latency-hiding units for loads:
 *
 *  - ReadAhead: the T3D's external read-ahead circuitry (RDAL), a
 *    one-line stream buffer that prefetches the next sequential line.
 *    The paper reports ~60% faster contiguous load streams with it.
 *
 *  - LoadPipeline: the i860XP pipelined-load mechanism (PFQ). Up to
 *    `depth` loads are outstanding, so a stream of strided or indexed
 *    loads runs at DRAM *occupancy* speed instead of paying the full
 *    access latency per element.
 */

#ifndef CT_SIM_PREFETCH_H
#define CT_SIM_PREFETCH_H

#include <deque>

#include "sim/dram.h"

namespace ct::sim {

/** Configuration of the sequential read-ahead unit. */
struct ReadAheadConfig
{
    bool enabled = false;
    Bytes lineBytes = 32;
    /** Cycles to move a ready line out of the stream buffer. */
    Cycles bufferHitCycles = 3;
};

/** Counters. */
struct ReadAheadStats
{
    std::uint64_t streamHits = 0;
    std::uint64_t streamMisses = 0;
    std::uint64_t prefetchesIssued = 0;
};

/**
 * One-stream sequential prefetcher with two-miss stream detection
 * (a lone miss does not trigger prefetching, so strided loads do not
 * waste DRAM bandwidth on useless prefetches).
 *
 * fill() is consulted on a cache line miss and returns the processor-
 * visible cycles for obtaining the line.
 */
class ReadAhead
{
  public:
    ReadAhead(const ReadAheadConfig &config, Dram &dram);

    /** Obtain the line at @p line_addr at time @p now. */
    Cycles fill(Addr line_addr, Cycles now);

    /** Drop the current stream (synchronization, context change). */
    void reset();

    const ReadAheadStats &stats() const { return counters; }

  private:
    void issuePrefetch(Addr line_addr, Cycles when);

    ReadAheadConfig cfg;
    Dram &dram;
    ReadAheadStats counters;
    Addr nextLine = 0;
    bool streaming = false;
    Addr lastDemandLine = 0;
    bool haveLastDemand = false;
    Cycles prefetchReadyAt = 0;
};

/** Configuration of the pipelined-load unit. */
struct LoadPipelineConfig
{
    bool enabled = false;
    unsigned depth = 3;
    /** Fixed pipe latency added to every load's completion. */
    Cycles pipeLatency = 2;
};

/**
 * Pipelined load issue. Memory devices serialize the loads; the
 * processor only stalls when `depth` loads are already outstanding.
 * Without the unit, every load stalls until its completion time.
 */
class LoadPipeline
{
  public:
    explicit LoadPipeline(const LoadPipelineConfig &config);

    /**
     * Track a load whose memory completion time is @p completes_at.
     * @return processor-visible stall cycles.
     */
    Cycles load(Cycles completes_at, Cycles now);

    /** Wait for all outstanding loads (fence). */
    Cycles drainTime(Cycles now) const;

    void reset();

  private:
    LoadPipelineConfig cfg;
    std::deque<Cycles> outstanding; // completion times
};

} // namespace ct::sim

#endif // CT_SIM_PREFETCH_H
