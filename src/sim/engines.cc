#include "engines.h"

#include <cmath>

#include "util/logging.h"

namespace ct::sim {

DepositEngine::DepositEngine(const DepositEngineConfig &config,
                             MemorySystem &mem, NodeRam &ram)
    : cfg(config), mem(mem), ram(ram)
{
    if (cfg.enabled && cfg.dataWordCycles <= 0.0)
        util::fatal("DepositEngine: dataWordCycles must be positive, "
                    "got ",
                    cfg.dataWordCycles);
    if (cfg.enabled && cfg.anyPattern && cfg.adpWordCycles <= 0.0)
        util::fatal("DepositEngine: adpWordCycles must be positive "
                    "for an any-pattern engine, got ",
                    cfg.adpWordCycles);
}

bool
DepositEngine::accepts(const Packet &packet) const
{
    if (!cfg.enabled)
        return false;
    if (packet.framing == Framing::AddrDataPair)
        return cfg.anyPattern && !adpDead;
    return true;
}

bool
DepositEngine::admit(const Packet &packet)
{
    if (packet.framing == Framing::AddrDataPair && cfg.anyPattern &&
        !adpDead && faults && faults->rollEngineFailure()) {
        adpDead = true;
        util::warn("DepositEngine: permanent ADP-datapath failure "
                   "injected; falling back to contiguous deposits "
                   "only");
    }
    bool ok = accepts(packet);
    if (!ok)
        ++counters.refusedPackets;
    return ok;
}

Cycles
DepositEngine::deposit(const Packet &packet, Cycles arrival)
{
    if (!accepts(packet))
        util::fatal("DepositEngine: cannot deposit this packet");
    ++counters.packets;
    counters.words += packet.words.size();

    Cycles start = std::max(arrival, freeAt);
    if (faults) {
        // Transient stall: the engine pauses before serving.
        Cycles stall = faults->rollEngineStall();
        if (stall > 0) {
            ++counters.faultStalls;
            counters.faultStallCycles += stall;
            start += stall;
        }
    }
    Cycles now = start + cfg.perPacketCycles;

    if (packet.framing == Framing::DataOnly) {
        // Contiguous block: one streaming write, engine processing
        // pipelined with the DRAM burst.
        Bytes bytes = packet.payloadBytes();
        for (std::size_t i = 0; i < packet.words.size(); ++i)
            ram.writeWord(packet.destBase + i * 8, packet.words[i]);
        Cycles dram = bytes > 0
                          ? mem.engineWrite(packet.destBase, bytes, now,
                                            BusMaster::NetworkInterface)
                          : 0;
        auto engine = static_cast<Cycles>(std::llround(
            cfg.dataWordCycles *
            static_cast<double>(packet.words.size())));
        now += std::max(dram, engine);
    } else {
        // Address-data pairs: per-word stores; engine processing
        // pipelined with each DRAM write.
        double engine_carry = 0.0;
        for (std::size_t i = 0; i < packet.words.size(); ++i) {
            ram.writeWord(packet.addrs[i], packet.words[i]);
            Cycles dram =
                mem.engineWrite(packet.addrs[i], 8, now,
                                BusMaster::NetworkInterface);
            engine_carry += cfg.adpWordCycles;
            auto engine = static_cast<Cycles>(engine_carry);
            engine_carry -= static_cast<double>(engine);
            now += std::max(dram, engine);
        }
    }

    counters.busyCycles += now - start;
    freeAt = now;
    return now;
}

FetchEngine::FetchEngine(const FetchEngineConfig &config) : cfg(config)
{
    if (cfg.enabled && cfg.bytesPerCycle <= 0.0)
        util::fatal("FetchEngine: non-positive bandwidth");
    if (cfg.enabled && cfg.pageBytes == 0)
        util::fatal("FetchEngine: pageBytes must be positive (page-"
                    "kick accounting divides by it)");
}

Cycles
FetchEngine::fetch(Addr addr, Bytes bytes)
{
    if (!cfg.enabled)
        util::fatal("FetchEngine: not present on this node");
    if (bytes == 0)
        return 0;
    ++counters.transfers;
    counters.bytes += bytes;

    Cycles stall = 0;
    if (faults) {
        stall = faults->rollEngineStall();
        if (stall > 0) {
            ++counters.faultStalls;
            counters.faultStallCycles += stall;
        }
    }

    auto stream = static_cast<Cycles>(std::llround(
        std::ceil(static_cast<double>(bytes) / cfg.bytesPerCycle)));

    // Page-boundary kicks: the engine stalls until a processor
    // restarts it whenever the transfer crosses a DRAM page.
    Addr first_page = addr / cfg.pageBytes;
    Addr last_page = (addr + bytes - 1) / cfg.pageBytes;
    auto kicks = static_cast<std::uint64_t>(last_page - first_page);
    counters.pageKicks += kicks;

    return cfg.setupCycles + stall + stream + kicks * cfg.pageKickCycles;
}

} // namespace ct::sim
