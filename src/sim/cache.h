/**
 * @file
 * Set-associative first-level data cache model with the write policies
 * found on the studied nodes: write-around (T3D default configuration)
 * and write-through (Paragon under SUNMOS); write-back is provided for
 * completeness and ablations.
 *
 * The cache tracks only tags, not data; the surrounding MemorySystem
 * translates hit/miss outcomes into cycle costs.
 */

#ifndef CT_SIM_CACHE_H
#define CT_SIM_CACHE_H

#include <cstdint>
#include <vector>

#include "sim/addr.h"

namespace ct::sim {

/** What the cache does with stores. */
enum class WritePolicy {
    WriteAround, ///< stores bypass the cache entirely (T3D)
    WriteThrough, ///< stores update cache on hit, always go to memory
    WriteBack,   ///< stores dirty the line; memory updated on eviction
};

/** Geometry and policy of the cache. */
struct CacheConfig
{
    Bytes sizeBytes = 8192;
    Bytes lineBytes = 32;
    unsigned associativity = 1;
    WritePolicy writePolicy = WritePolicy::WriteAround;
    /** Allocate a line on a store miss (only for write-back). */
    bool allocateOnWriteMiss = false;
};

/** Hit/miss counters. */
struct CacheStats
{
    std::uint64_t loadHits = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t writeBacks = 0;
    std::uint64_t invalidations = 0;
};

/** Outcome of a load access. */
struct CacheLoadResult
{
    bool hit = false;
    /** A line fill from memory is required (always true on a miss). */
    bool fill = false;
    /** A dirty line was evicted and must be written back first. */
    bool writeBack = false;
    Addr writeBackLine = 0;
};

/** Outcome of a store access. */
struct CacheStoreResult
{
    bool hit = false;
    /** The store must be sent to memory now (through/around). */
    bool toMemory = false;
    /** A line fill is required (write-allocate miss). */
    bool fill = false;
    bool writeBack = false;
    Addr writeBackLine = 0;
};

/** LRU set-associative tag store. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Access for a load of one word at @p addr. */
    CacheLoadResult load(Addr addr);

    /** Access for a store of one word at @p addr. */
    CacheStoreResult store(Addr addr);

    /** Invalidate the line containing @p addr (deposit-engine
     *  coherence on the T3D: incoming remote stores invalidate line
     *  by line). Dirty data is dropped: callers that need the write
     *  back must use load/store results instead. */
    void invalidateLine(Addr addr);

    /** Invalidate everything (synchronization-point flush). */
    void invalidateAll();

    /** True if the line containing @p addr is resident. */
    bool contains(Addr addr) const;

    const CacheStats &stats() const { return counters; }
    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr addr) const;
    std::size_t setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    /** Pick the LRU victim in the set of @p line_addr. */
    Line &victim(Addr line_addr);

    CacheConfig cfg;
    CacheStats counters;
    std::size_t numSets;
    std::vector<Line> lines; // numSets x associativity
    std::uint64_t useClock = 0;
};

} // namespace ct::sim

#endif // CT_SIM_CACHE_H
