/**
 * @file
 * One processing node: local RAM, the memory-system timing model, a
 * main processor, an optional communication co-processor (Paragon),
 * and the background engines (deposit engine / sending DMA).
 */

#ifndef CT_SIM_NODE_H
#define CT_SIM_NODE_H

#include <memory>
#include <optional>
#include <string>

#include "sim/engines.h"
#include "sim/processor.h"

namespace ct::sim {

/** Everything needed to build a node. */
struct NodeConfig
{
    Bytes ramBytes = 64ull << 20;
    /** Padding between allocations (bank-aliasing avoidance). */
    Bytes ramAllocSkew = 0;
    MemoryConfig memory;
    ProcessorConfig processor;
    /** Second processor usable as a receive engine (Paragon). */
    bool hasCoProcessor = false;
    ProcessorConfig coProcessor;
    DepositEngineConfig deposit;
    FetchEngineConfig fetch;
};

/** A complete node. */
class Node
{
  public:
    explicit Node(const NodeConfig &config);

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    NodeRam &ram() { return ramStore; }
    MemorySystem &memory() { return mem; }
    Processor &processor() { return proc; }

    bool hasCoProcessor() const { return coproc.has_value(); }
    Processor &coProcessor();

    DepositEngine &depositEngine() { return deposit; }
    FetchEngine &fetchEngine() { return fetch; }

    const NodeConfig &config() const { return cfg; }

  private:
    NodeConfig cfg;
    NodeRam ramStore;
    MemorySystem mem;
    Processor proc;
    std::optional<Processor> coproc;
    DepositEngine deposit;
    FetchEngine fetch;
};

} // namespace ct::sim

#endif // CT_SIM_NODE_H
