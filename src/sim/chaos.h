/**
 * @file
 * Deterministic chaos campaigns: a ChaosSchedule is a seed-derived,
 * fully replayable fault *timeline* layered on top of the static
 * FaultSpec rates. Where a FaultSpec says "drop 0.1% of packets
 * forever", a schedule says "ramp the drop rate from 0 to 5% over
 * the first million cycles, kill three links in a cascade starting
 * at cycle 2M, and flap one node every 400k cycles" -- and replays
 * that timeline bit-identically from the same spec string.
 *
 * Spec grammar (semicolon-separated items, colon-separated fields):
 *
 *     seed:N                        victim-selection RNG seed
 *     step:CLASS:R:T                CLASS rate R from cycle T onward
 *     ramp:CLASS:R0:R1:T0:T1        rate rises linearly R0->R1 over
 *                                   [T0,T1], holds R1 after
 *     cascade:link:N:T:GAP          N seed-drawn network links die
 *                                   permanently, first at T, then
 *                                   every GAP cycles
 *     cascade:node:N:T:GAP          same for nodes
 *     flap:link:N:T:PERIOD:DOWN     N seed-drawn links flap from T:
 *                                   down for DOWN cycles out of each
 *                                   PERIOD
 *     flap:node:N:T:PERIOD:DOWN     same for nodes
 *
 * with CLASS one of drop, corrupt, dup. Schedule rates *add* to the
 * FaultSpec's static rate for the class (clamped to 1). Unknown
 * verbs, classes, wrong field counts, or trailing garbage are
 * rejected loudly with the offending token.
 *
 * Determinism contract: victim selection draws from a private stream
 * derived from the seed (never from the per-class injection
 * streams), and the injector consumes exactly one draw per packet
 * for every class the schedule mentions -- whether or not the
 * current rate is zero -- so the fault schedule of a replay never
 * shifts against the original.
 */

#ifndef CT_SIM_CHAOS_H
#define CT_SIM_CHAOS_H

#include <optional>
#include <string>
#include <vector>

#include "sim/topology.h"

namespace ct::sim {

/** A replayable fault timeline (see file comment for the grammar). */
struct ChaosSchedule
{
    /** Wire fault classes a schedule can modulate over time. */
    enum class RateClass { Drop, Corrupt, Dup };

    /** One step/ramp of a class's rate. A step is a ramp with
     *  r0 == r1 and t0 == t1. */
    struct RatePhase
    {
        RateClass cls = RateClass::Drop;
        double r0 = 0.0;
        double r1 = 0.0;
        Cycles t0 = 0;
        Cycles t1 = 0;
    };

    /** A cascading permanent outage: count victims, spaced gap. */
    struct Cascade
    {
        bool nodes = false; ///< victims are nodes (else links)
        int count = 0;
        Cycles at = 0;
        Cycles gap = 0;
    };

    /** A set of flapping components sharing one schedule. */
    struct Flap
    {
        bool nodes = false;
        int count = 0;
        FlapSpec spec;
    };

    std::vector<RatePhase> phases;
    std::vector<Cascade> cascades;
    std::vector<Flap> flaps;
    std::uint64_t seed = 1;

    /** True when the schedule perturbs anything. */
    bool any() const;

    /** True when any phase modulates @p cls (even at rate 0 now). */
    bool hasRate(RateClass cls) const;

    /** Rate added to @p cls's static rate at time @p now. */
    double rateAt(RateClass cls, Cycles now) const;

    /** Parse a spec string; fatal on any malformed token. */
    static ChaosSchedule parse(const std::string &spec);

    /**
     * Non-fatal parse for front ends that own the exit path: nullopt
     * on error with a diagnostic naming the offending token in
     * @p error (when non-null).
     */
    static std::optional<ChaosSchedule>
    tryParse(const std::string &spec, std::string *error);

    /** Canonical one-line rendering of the schedule. */
    std::string summary() const;

    /**
     * Register the outage timeline (cascades and flaps) on @p topo.
     * Victims are drawn without replacement per item from a stream
     * derived from the seed: links from the network links (injection
     * and ejection ports are never chaos victims), nodes from all
     * nodes. Fatal when an item wants more victims than exist.
     */
    void applyOutages(Topology &topo) const;
};

} // namespace ct::sim

#endif // CT_SIM_CHAOS_H
