/**
 * @file
 * Network packets. A packet carries one chunk of a communication
 * operation: payload words plus, for address-data-pair framing, the
 * remote store address of every word.
 */

#ifndef CT_SIM_PACKET_H
#define CT_SIM_PACKET_H

#include <cstdint>
#include <vector>

#include "sim/addr.h"

namespace ct::sim {

/** Node index within a machine. */
using NodeId = int;

/** Wire framing of a packet (paper §3.2: Nd vs Nadp). */
enum class Framing {
    DataOnly,     ///< contiguous block; only a base address travels
    AddrDataPair, ///< every word carries its remote store address
};

/** One chunk in flight. */
struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;
    Framing framing = Framing::DataOnly;
    /** Base destination address (DataOnly framing). */
    Addr destBase = 0;
    /** Payload. */
    std::vector<std::uint64_t> words;
    /** Per-word destination addresses (AddrDataPair framing). */
    std::vector<Addr> addrs;
    /** Flow tag used by the timeline to route completions. */
    std::uint32_t flow = 0;
    /** Chunk sequence number within the flow. */
    std::uint32_t seq = 0;

    Bytes payloadBytes() const { return words.size() * 8; }
};

} // namespace ct::sim

#endif // CT_SIM_PACKET_H
