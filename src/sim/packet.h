/**
 * @file
 * Network packets. A packet carries one chunk of a communication
 * operation: payload words plus, for address-data-pair framing, the
 * remote store address of every word.
 */

#ifndef CT_SIM_PACKET_H
#define CT_SIM_PACKET_H

#include <cstdint>
#include <vector>

#include "sim/addr.h"
#include "util/crc32c.h"

namespace ct::sim {

/** Node index within a machine. */
using NodeId = int;

/** Wire framing of a packet (paper §3.2: Nd vs Nadp). */
enum class Framing {
    DataOnly,     ///< contiguous block; only a base address travels
    AddrDataPair, ///< every word carries its remote store address
};

/** Transport-level role of a packet. */
enum class PacketKind : std::uint8_t {
    Data, ///< carries payload for a message layer
    Ack,  ///< reliable transport: cumulative acknowledgment
    Nack, ///< reliable transport: checksum failure report
};

/** One chunk in flight. */
struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;
    Framing framing = Framing::DataOnly;
    /** Base destination address (DataOnly framing). */
    Addr destBase = 0;
    /** Payload. */
    std::vector<std::uint64_t> words;
    /** Per-word destination addresses (AddrDataPair framing). */
    std::vector<Addr> addrs;
    /** Flow tag used by the timeline to route completions. */
    std::uint32_t flow = 0;
    /** Chunk sequence number within the flow. */
    std::uint32_t seq = 0;

    // Reliable-transport header (ignored by the raw layers).

    PacketKind kind = PacketKind::Data;
    /** Per-(src,dst)-channel transport sequence number. */
    std::uint32_t rseq = 0;
    /** Control argument: the rseq an Ack/Nack refers to. */
    std::uint32_t ctrl = 0;
    /** CRC32C payload checksum (see sealChecksum). */
    std::uint64_t checksum = 0;

    Bytes payloadBytes() const { return words.size() * 8; }
};

/**
 * CRC32C over the payload (addresses included for adp framing). A
 * word sum would miss reordered words and offsetting-pair
 * corruptions; the CRC catches both, plus any burst up to 32 bits.
 */
inline std::uint64_t
payloadSum(const Packet &packet)
{
    std::uint32_t state = 0xFFFFFFFFu;
    if (!packet.words.empty())
        state = util::crc32cUpdate(state, packet.words.data(),
                                   packet.words.size() * 8);
    if (!packet.addrs.empty())
        state = util::crc32cUpdate(state, packet.addrs.data(),
                                   packet.addrs.size() * sizeof(Addr));
    return state ^ 0xFFFFFFFFu;
}

/** Stamp the packet's checksum field from its current payload. */
inline void
sealChecksum(Packet &packet)
{
    packet.checksum = payloadSum(packet);
}

/** True if the payload still matches the sealed checksum. */
inline bool
checksumOk(const Packet &packet)
{
    return packet.checksum == payloadSum(packet);
}

} // namespace ct::sim

#endif // CT_SIM_PACKET_H
