#include "prefetch.h"

#include "util/logging.h"

namespace ct::sim {

ReadAhead::ReadAhead(const ReadAheadConfig &config, Dram &dram)
    : cfg(config), dram(dram)
{
    if (!isPowerOfTwo(cfg.lineBytes))
        util::fatal("ReadAhead: line size must be a power of two");
}

void
ReadAhead::issuePrefetch(Addr line_addr, Cycles when)
{
    ++counters.prefetchesIssued;
    nextLine = line_addr;
    prefetchReadyAt =
        dram.access(line_addr, cfg.lineBytes, false, when).complete;
}

Cycles
ReadAhead::fill(Addr line_addr, Cycles now)
{
    if (!cfg.enabled) {
        return dram.access(line_addr, cfg.lineBytes, false, now)
                   .complete -
               now;
    }

    if (streaming && line_addr == nextLine) {
        ++counters.streamHits;
        // Wait for the prefetch if it has not finished, then move the
        // line out of the buffer and prefetch the next one.
        Cycles visible = cfg.bufferHitCycles;
        if (prefetchReadyAt > now)
            visible = std::max(visible, prefetchReadyAt - now);
        issuePrefetch(line_addr + cfg.lineBytes, now + visible);
        lastDemandLine = line_addr;
        haveLastDemand = true;
        return visible;
    }

    // Demand fetch. Start streaming only after two sequential line
    // misses so strided walks do not trigger useless prefetches.
    ++counters.streamMisses;
    Cycles visible =
        dram.access(line_addr, cfg.lineBytes, false, now).complete -
        now;
    bool sequential =
        haveLastDemand && line_addr == lastDemandLine + cfg.lineBytes;
    lastDemandLine = line_addr;
    haveLastDemand = true;
    if (sequential) {
        streaming = true;
        issuePrefetch(line_addr + cfg.lineBytes, now + visible);
    } else {
        streaming = false;
    }
    return visible;
}

void
ReadAhead::reset()
{
    streaming = false;
    haveLastDemand = false;
    prefetchReadyAt = 0;
}

LoadPipeline::LoadPipeline(const LoadPipelineConfig &config)
    : cfg(config)
{
    if (cfg.enabled && cfg.depth == 0)
        util::fatal("LoadPipeline: zero depth");
}

Cycles
LoadPipeline::load(Cycles completes_at, Cycles now)
{
    completes_at += cfg.pipeLatency;
    if (!cfg.enabled) {
        return completes_at > now ? completes_at - now : 0;
    }

    Cycles stall = 0;
    while (!outstanding.empty() && outstanding.front() <= now)
        outstanding.pop_front();
    if (outstanding.size() >= cfg.depth) {
        stall = outstanding.front() - now;
        outstanding.pop_front();
    }
    outstanding.push_back(completes_at);
    return stall;
}

Cycles
LoadPipeline::drainTime(Cycles now) const
{
    if (outstanding.empty() || outstanding.back() <= now)
        return 0;
    return outstanding.back() - now;
}

void
LoadPipeline::reset()
{
    outstanding.clear();
}

} // namespace ct::sim
