#include "machine.h"

#include <cmath>

#include "sweep/farm.h"
#include "util/logging.h"

namespace ct::sim {

void
validateMachineConfig(const MachineConfig &config)
{
    if (config.clockHz <= 0.0 || !std::isfinite(config.clockHz))
        util::fatal("MachineConfig '", config.name,
                    "': clockHz must be a positive finite number, "
                    "got ",
                    config.clockHz);
    if (config.topology.dims.empty())
        util::fatal("MachineConfig '", config.name,
                    "': topology needs at least one dimension");
    for (int d : config.topology.dims)
        if (d < 1)
            util::fatal("MachineConfig '", config.name,
                        "': topology dimension must be >= 1, got ",
                        d);
    if (config.topology.nodesPerPort < 1)
        util::fatal("MachineConfig '", config.name,
                    "': nodesPerPort must be >= 1, got ",
                    config.topology.nodesPerPort);
    if (config.network.wireBytesPerCycle <= 0.0 ||
        !std::isfinite(config.network.wireBytesPerCycle))
        util::fatal("MachineConfig '", config.name,
                    "': network wireBytesPerCycle must be a positive "
                    "finite number, got ",
                    config.network.wireBytesPerCycle);
    if (config.network.adpBytesPerWord < 8)
        util::fatal("MachineConfig '", config.name,
                    "': network adpBytesPerWord must cover the 8 "
                    "data bytes of a word, got ",
                    config.network.adpBytesPerWord);
    if (config.node.ramBytes == 0)
        util::fatal("MachineConfig '", config.name,
                    "': node ramBytes must be positive");
    if (config.node.processor.loopCyclesPerElem < 0.0 ||
        !std::isfinite(config.node.processor.loopCyclesPerElem))
        util::fatal("MachineConfig '", config.name,
                    "': processor loopCyclesPerElem must be "
                    "non-negative and finite, got ",
                    config.node.processor.loopCyclesPerElem);
    if (config.threads < 0 || config.threads > sweep::kMaxThreads)
        util::fatal("MachineConfig '", config.name,
                    "': threads must be in [0, ", sweep::kMaxThreads,
                    "], got ", config.threads);
}

Machine::Machine(const MachineConfig &config)
    : cfg((validateMachineConfig(config), config)),
      topo(cfg.topology),
      injector(cfg.faults.any() || !cfg.chaos.phases.empty()
                   ? std::make_unique<FaultInjector>(cfg.faults,
                                                     &metricsReg)
                   : nullptr),
      net(cfg.network, topo, queue, &metricsReg)
{
    net.setFaults(injector.get());
    if (injector && !cfg.chaos.phases.empty())
        injector->setChaos(&cfg.chaos, &queue);
    // Apply scheduled topology outages from the fault spec. IDs are
    // validated by downLink/downNode against this machine's geometry.
    for (const FaultSpec::Outage &o : cfg.faults.linkDown)
        topo.downLink(o.id, o.at);
    for (const FaultSpec::Outage &o : cfg.faults.nodeDown)
        topo.downNode(o.id, o.at);
    // Chaos outage timelines (cascades, flaps) draw their victims
    // from the schedule's seed stream.
    cfg.chaos.applyOutages(topo);
    nodes.reserve(static_cast<std::size_t>(topo.nodeCount()));
    for (int i = 0; i < topo.nodeCount(); ++i) {
        nodes.push_back(std::make_unique<Node>(cfg.node));
        nodes.back()->depositEngine().setFaults(injector.get());
        nodes.back()->fetchEngine().setFaults(injector.get());
    }
    // Conservative lookahead floor from the wire model: even a
    // zero-payload packet serializes its header and crosses at least
    // one router hop, so no cross-node interaction is faster than
    // this. Layers may pass a larger true delay via
    // setParallelLookahead(); it is clamped to this ceiling.
    netLookahead = static_cast<Cycles>(std::ceil(
                       static_cast<double>(cfg.network.headerBytes) /
                       cfg.network.wireBytesPerCycle)) +
                   cfg.network.hopLatencyCycles;
    if (netLookahead < 1)
        netLookahead = 1;
    // Faulted/chaos machines stay serial: fault rolls consume a
    // shared RNG stream in event order, which a parallel window
    // cannot reproduce without serializing anyway.
    if (cfg.threads > 1 && !injector && topo.nodeCount() > 1) {
        ParallelOptions popts;
        popts.threads = cfg.threads;
        popts.lookahead = 1;
        engine = std::make_unique<ParallelEngine>(queue, popts);
    }
    wireRunner();
}

void
Machine::wireRunner()
{
    bool enabled = engine && parallelAllowed && !tracerPtr;
    queue.setRunner(enabled ? engine.get() : nullptr);
}

void
Machine::setParallelEnabled(bool enabled)
{
    parallelAllowed = enabled;
    wireRunner();
}

void
Machine::setParallelLookahead(Cycles hint)
{
    if (engine)
        engine->setLookahead(hint, netLookahead);
}

void
Machine::setTracer(obs::Tracer *t)
{
    tracerPtr = t;
    // Trace emission is keyed to callback execution order, which a
    // window executes out of order; tracing forces the serial path
    // (and detaching the tracer restores the engine).
    wireRunner();
    net.setTracer(t);
    if (!t)
        return;
    static const char *const unit_names[kTraceTracksPerNode] = {
        "cpu", "coproc", "deposit", "fetch", "net"};
    for (int n = 0; n < nodeCount(); ++n)
        for (std::int32_t u = 0; u < kTraceTracksPerNode; ++u)
            t->setTrackName(
                traceTrack(n, static_cast<TraceTrack>(u)),
                "node" + std::to_string(n) + " " + unit_names[u]);
    t->setTrackName(opTrack(), "machine");
}

Node &
Machine::node(NodeId id)
{
    if (id < 0 || id >= nodeCount())
        util::fatal("Machine::node: bad id ", id);
    return *nodes[static_cast<std::size_t>(id)];
}

util::MBps
Machine::toMBps(Bytes bytes, Cycles cycles) const
{
    return util::toMBps(bytes, cycles, cfg.clockHz);
}

NodeConfig
t3dNodeConfig()
{
    NodeConfig node;
    node.ramBytes = 64ull << 20;
    node.ramAllocSkew = 1056; // avoid direct-mapped set aliasing

    // 8 KB direct-mapped on-chip cache, 32-byte lines, write-around.
    node.memory.cache = {8192, 32, 1, WritePolicy::WriteAround, false};
    node.memory.dram = {2048, 1, 2048, 14, 24, 7, 16, 8, 1};
    node.memory.writeBuffer = {6, true, 32, 4};
    node.memory.readAhead = {true, 32, 3};
    node.memory.loadPipeline = {false, 0, 0};
    node.memory.bus = {0, 0}; // private path, not a shared bus
    node.memory.cacheHitCycles = 1;
    node.memory.missOverheadCycles = 5;
    node.memory.storeIssueCycles = 3;

    node.processor = {2.0, 5, 4};
    node.hasCoProcessor = false;

    // The annex handles every pattern via address-data pairs.
    node.deposit = {true, true, 8.4, 22.0, 10};
    node.fetch = {false, 0.0, 0, 4096, 0};
    return node;
}

NodeConfig
paragonNodeConfig()
{
    NodeConfig node;
    node.ramBytes = 64ull << 20;
    node.ramAllocSkew = 9760; // stagger arrays across DRAM banks

    // 16 KB 4-way on-chip cache, 32-byte lines; SUNMOS runs the
    // caches write-through.
    node.memory.cache = {16384, 32, 4, WritePolicy::WriteThrough,
                         false};
    node.memory.dram = {256, 8, 8192, 2, 10, 8, 12, 8, 1};
    node.memory.writeBuffer = {3, true, 32, 2};
    node.memory.readAhead = {false, 32, 3};
    // Pipelined loads (pfld) bypassing the cache.
    node.memory.loadPipeline = {true, 3, 2};
    node.memory.bus = {8, 4}; // 400 MB/s at 50 MHz, arb penalty 4
    node.memory.cacheHitCycles = 1;
    node.memory.missOverheadCycles = 2;
    node.memory.storeIssueCycles = 1;

    node.processor = {1.0, 6, 2};
    node.hasCoProcessor = true;
    node.coProcessor = {1.0, 6, 2};

    // The DMA deposits contiguous blocks only.
    node.deposit = {true, false, 2.5, 0.0, 20};
    node.fetch = {true, 3.2, 50, 4096, 30};
    return node;
}

MachineConfig
t3dConfig(std::vector<int> dims)
{
    MachineConfig cfg;
    cfg.name = "T3D";
    cfg.id = core::MachineId::T3d;
    cfg.clockHz = 150e6;
    cfg.topology.dims = std::move(dims);
    cfg.topology.torus = true;
    cfg.topology.nodesPerPort = 2; // two PEs share a network port
    cfg.network = {1.0, 16, 15, 2};
    cfg.node = t3dNodeConfig();
    return cfg;
}

MachineConfig
paragonConfig(std::vector<int> dims)
{
    MachineConfig cfg;
    cfg.name = "Paragon";
    cfg.id = core::MachineId::Paragon;
    cfg.clockHz = 50e6;
    cfg.topology.dims = std::move(dims);
    cfg.topology.torus = false;
    cfg.topology.nodesPerPort = 1;
    cfg.network = {3.6, 16, 16, 2};
    cfg.node = paragonNodeConfig();
    return cfg;
}

MachineConfig
configFor(core::MachineId id)
{
    switch (id) {
      case core::MachineId::T3d:
        return t3dConfig();
      case core::MachineId::Paragon:
        return paragonConfig();
    }
    util::panic("configFor: bad machine id");
}

bool
validScaleNodes(int nodes)
{
    return nodes >= 8 && nodes <= 8192 &&
           (nodes & (nodes - 1)) == 0;
}

std::vector<int>
dimsForNodes(core::MachineId id, int nodes)
{
    if (!validScaleNodes(nodes))
        util::fatal("dimsForNodes: node count ", nodes,
                    " must be a power of two in [8, 8192]");
    int log2 = 0;
    while ((1 << (log2 + 1)) <= nodes)
        ++log2;
    // Split the exponent as evenly as possible across the machine's
    // dimensionality, larger radices first, so the partition stays
    // near-cubic (T3D) / near-square (Paragon) as it grows.
    int rank = id == core::MachineId::T3d ? 3 : 2;
    std::vector<int> dims;
    for (int remaining = rank; remaining > 0; --remaining) {
        int exp = (log2 + remaining - 1) / remaining;
        dims.push_back(1 << exp);
        log2 -= exp;
    }
    return dims;
}

MachineConfig
configFor(core::MachineId id, int nodes)
{
    MachineConfig cfg = configFor(id);
    cfg.topology.dims = dimsForNodes(id, nodes);
    return cfg;
}

} // namespace ct::sim
