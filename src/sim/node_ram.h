/**
 * @file
 * Backing storage for one node's local memory. The timing models
 * (MemorySystem) are tag/occupancy-only; NodeRam holds the actual
 * bytes so that communication runs move real data and tests can check
 * end-to-end correctness bit-exactly.
 *
 * Storage is sparse and page-granular: a page materializes on first
 * write, reads of never-written pages return zero (the old calloc
 * semantics), and host memory tracks the bytes actually touched, not
 * the configured capacity. Measurement walks additionally bound their
 * residency with a fixed-capacity page window (streaming mode), so a
 * stride sweep's address footprint never turns into host memory.
 */

#ifndef CT_SIM_NODE_RAM_H
#define CT_SIM_NODE_RAM_H

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/addr.h"

namespace ct::sim {

/** Flat byte-addressable memory with a bump allocator. */
class NodeRam
{
  public:
    /**
     * @param size_bytes capacity (address-space bound; untouched
     *        pages cost nothing)
     * @param alloc_skew_bytes padding inserted between allocations to
     *        stagger arrays across DRAM banks (compilers pad large
     *        arrays the same way to avoid bank/cache aliasing)
     */
    explicit NodeRam(Bytes size_bytes, Bytes alloc_skew_bytes = 0);

    Bytes size() const { return capacity; }

    /** Allocate @p bytes aligned to @p align; fatal on exhaustion. */
    Addr alloc(Bytes bytes, Bytes align = 64);

    /** Release everything allocated so far (and drop all pages). */
    void reset();

    // Word accessors. The bodies below inline the hot path -- a
    // bounds check plus one direct-mapped translation-cache probe --
    // because every element a kernel moves goes through here.
    std::uint64_t readWord(Addr addr) const;
    void writeWord(Addr addr, std::uint64_t value);

    double readDouble(Addr addr) const;
    void writeDouble(Addr addr, double value);

    // Streaming (bounded-residency) mode -- used by measurement
    // walks whose address footprint exceeds what should ever be
    // host-resident. With a limit set, materialized pages are
    // recycled FIFO once more than @p max_pages are live; a recycled
    // page that is touched again reads as zero. Callers must
    // therefore follow single-touch discipline (write an element,
    // consume it, never revisit) or pin the ranges they re-read.

    /** Cap live pages; 0 restores exact (unbounded) retention. */
    void setResidencyLimit(std::size_t max_pages);

    /** Exclude [addr, addr+bytes) from recycling (index arrays and
     *  other ranges that are legitimately re-read). */
    void pinRange(Addr addr, Bytes bytes);

    /** Pages currently materialized. */
    std::size_t residentPages() const { return pages.size(); }

    /** High-water mark of residentPages() since construction. */
    std::size_t peakResidentPages() const { return peakResident; }

    /** Pages recycled by the residency window so far. */
    std::uint64_t recycledPages() const { return recycled; }

    /** Page granularity of the sparse store. */
    static constexpr Bytes pageBytes() { return kPageBytes; }

  private:
    static constexpr Bytes kPageBytes = 4096;
    /** Direct-mapped page-translation cache entries (power of two). */
    static constexpr std::size_t kTransEntries = 256;

    struct Page
    {
        std::unique_ptr<std::uint8_t[]> data;
        bool pinned = false;
    };

    /** Cached page-index -> data translation (+1 so 0 = empty). */
    struct TransEntry
    {
        Addr pageIndexPlusOne = 0;
        std::uint8_t *data = nullptr;
    };

    void
    checkRange(Addr addr, Bytes bytes) const
    {
        if (addr + bytes > capacity)
            outOfRange(addr, bytes);
    }

    [[noreturn]] void outOfRange(Addr addr, Bytes bytes) const;
    bool isPinned(Addr page_index) const;

    /** Translation-cache probe; nullptr on miss. */
    std::uint8_t *
    cachedPage(Addr page_index) const
    {
        const TransEntry &entry =
            translations[page_index & (kTransEntries - 1)];
        return entry.pageIndexPlusOne == page_index + 1 ? entry.data
                                                        : nullptr;
    }

    /** Out-of-line tails for translation misses / page-crossing. */
    std::uint64_t readWordSlow(Addr addr) const;
    void writeWordSlow(Addr addr, std::uint64_t value);

    /** Page data for @p page_index, or nullptr if not materialized. */
    const std::uint8_t *peekPage(Addr page_index) const;

    /** Page data for @p page_index, materializing (and possibly
     *  recycling an old page) as needed. */
    std::uint8_t *touchPage(Addr page_index);

    void evictToLimit();
    void dropTranslation(Addr page_index);

    void readBytes(Addr addr, void *out, Bytes bytes) const;
    void writeBytes(Addr addr, const void *in, Bytes bytes);

    std::unordered_map<Addr, Page> pages;
    /** Materialization order of unpinned pages (recycling FIFO). */
    std::deque<Addr> recycleQueue;
    std::vector<std::pair<Addr, Addr>> pinnedRanges;
    mutable TransEntry translations[kTransEntries];
    Bytes capacity = 0;
    Bytes allocSkew = 0;
    Addr next = 0;
    std::size_t residencyLimit = 0;
    std::size_t peakResident = 0;
    std::uint64_t recycled = 0;
};

inline std::uint64_t
NodeRam::readWord(Addr addr) const
{
    checkRange(addr, 8);
    if (addr % kPageBytes <= kPageBytes - 8) {
        if (const std::uint8_t *page = cachedPage(addr / kPageBytes)) {
            std::uint64_t value;
            std::memcpy(&value, page + addr % kPageBytes, 8);
            return value;
        }
    }
    return readWordSlow(addr);
}

inline void
NodeRam::writeWord(Addr addr, std::uint64_t value)
{
    checkRange(addr, 8);
    if (addr % kPageBytes <= kPageBytes - 8) {
        // The cache only holds materialized pages, so a hit may be
        // written in place.
        if (std::uint8_t *page = cachedPage(addr / kPageBytes)) {
            std::memcpy(page + addr % kPageBytes, &value, 8);
            return;
        }
    }
    writeWordSlow(addr, value);
}

inline double
NodeRam::readDouble(Addr addr) const
{
    std::uint64_t bits = readWord(addr);
    double value;
    std::memcpy(&value, &bits, 8);
    return value;
}

inline void
NodeRam::writeDouble(Addr addr, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, 8);
    writeWord(addr, bits);
}

} // namespace ct::sim

#endif // CT_SIM_NODE_RAM_H
