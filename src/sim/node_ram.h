/**
 * @file
 * Backing storage for one node's local memory. The timing models
 * (MemorySystem) are tag/occupancy-only; NodeRam holds the actual
 * bytes so that communication runs move real data and tests can check
 * end-to-end correctness bit-exactly.
 */

#ifndef CT_SIM_NODE_RAM_H
#define CT_SIM_NODE_RAM_H

#include <cstdlib>
#include <cstring>
#include <memory>

#include "sim/addr.h"

namespace ct::sim {

/** Flat byte-addressable memory with a bump allocator. */
class NodeRam
{
  public:
    /**
     * @param size_bytes capacity
     * @param alloc_skew_bytes padding inserted between allocations to
     *        stagger arrays across DRAM banks (compilers pad large
     *        arrays the same way to avoid bank/cache aliasing)
     */
    explicit NodeRam(Bytes size_bytes, Bytes alloc_skew_bytes = 0);

    Bytes size() const { return capacity; }

    /** Allocate @p bytes aligned to @p align; fatal on exhaustion. */
    Addr alloc(Bytes bytes, Bytes align = 64);

    /** Release everything allocated so far. */
    void reset();

    std::uint64_t readWord(Addr addr) const;
    void writeWord(Addr addr, std::uint64_t value);

    double readDouble(Addr addr) const;
    void writeDouble(Addr addr, double value);

  private:
    void checkRange(Addr addr, Bytes bytes) const;

    struct FreeDeleter
    {
        void operator()(std::uint8_t *p) const { std::free(p); }
    };

    /**
     * calloc-backed storage: the OS provides zero pages lazily, so a
     * large simulated memory costs only the pages actually touched.
     */
    std::unique_ptr<std::uint8_t[], FreeDeleter> storage;
    Bytes capacity = 0;
    Bytes allocSkew = 0;
    Addr next = 0;
};

} // namespace ct::sim

#endif // CT_SIM_NODE_RAM_H
