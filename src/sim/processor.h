/**
 * @file
 * Processor kernel model. The processor executes the optimized
 * (unrolled, scheduled) load/store loops that realize the basic
 * transfers xCy, xS0 and 0Ry; each kernel both moves real data in
 * node memory and accounts processor-visible cycles against the
 * node's MemorySystem.
 */

#ifndef CT_SIM_PROCESSOR_H
#define CT_SIM_PROCESSOR_H

#include <vector>

#include "sim/memory.h"
#include "sim/walk.h"

namespace ct::sim {

/** Per-element instruction costs of the copy loops. */
struct ProcessorConfig
{
    /** Loop/address-generation overhead per element (unrolled). */
    double loopCyclesPerElem = 1.0;
    /** Store one word to the memory-mapped NI send port. */
    Cycles portStoreCycles = 3;
    /** Load one word from the NI receive FIFO. */
    Cycles portLoadCycles = 3;
};

/**
 * One processor (or communication co-processor). Kernels are chunked:
 * callers pass the element range so the communication timeline can
 * pipeline chunks through the machine.
 */
class Processor
{
  public:
    Processor(const ProcessorConfig &config, MemorySystem &memory,
              NodeRam &ram,
              BusMaster bus_master = BusMaster::Processor);

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /**
     * Local memory-to-memory copy (xCy): dst[i] = src[i] for
     * i in [first, first+count). Returns elapsed cycles.
     */
    Cycles copy(const PatternWalk &src, const PatternWalk &dst,
                std::uint64_t first, std::uint64_t count, Cycles start);

    /**
     * Copy with independent element offsets:
     * dst[dst_first + i] = src[src_first + i] for i in [0, count).
     * Used when staging through packing buffers.
     */
    Cycles copy2(const PatternWalk &src, std::uint64_t src_first,
                 const PatternWalk &dst, std::uint64_t dst_first,
                 std::uint64_t count, Cycles start);

    /**
     * Load-send kernel (xS0): read elements with pattern x and store
     * them to the NI port; the words are appended to @p words.
     */
    Cycles gatherToPort(const PatternWalk &src, std::uint64_t first,
                        std::uint64_t count, Cycles start,
                        std::vector<std::uint64_t> &words);

    /**
     * Compute the destination addresses for a chained remote store
     * (the sender generates addresses for the receiver, §2.1). Index
     * loads for an indexed destination pattern cost sender time.
     */
    Cycles computeRemoteAddrs(const PatternWalk &dst,
                              std::uint64_t first, std::uint64_t count,
                              Cycles start, std::vector<Addr> &addrs);

    /**
     * Receive-store kernel (0Ry): drain @p count words from the NI
     * FIFO and store them with pattern y.
     */
    Cycles scatterFromPort(const PatternWalk &dst, std::uint64_t first,
                           std::uint64_t count, Cycles start,
                           const std::uint64_t *words);

    /** Wait for write queue / load pipeline to drain. */
    Cycles fence(Cycles now) { return mem.fence(now); }

    MemorySystem &memory() { return mem; }
    NodeRam &ram() { return nodeRam; }
    const ProcessorConfig &config() const { return cfg; }

  private:
    /** Visible cycles to read the element under @p cur (plus its
     *  index load, if the walk is indexed). */
    Cycles loadElement(const PatternWalk &walk, const WalkCursor &cur,
                       Cycles now, std::uint64_t &value);

    ProcessorConfig cfg;
    MemorySystem &mem;
    NodeRam &nodeRam;
    BusMaster master;
    double loopCarry = 0.0;
};

} // namespace ct::sim

#endif // CT_SIM_PROCESSOR_H
