#include "node.h"

#include "util/logging.h"

namespace ct::sim {

Node::Node(const NodeConfig &config)
    : cfg(config), ramStore(cfg.ramBytes, cfg.ramAllocSkew), mem(cfg.memory),
      proc(cfg.processor, mem, ramStore, BusMaster::Processor),
      deposit(cfg.deposit, mem, ramStore), fetch(cfg.fetch)
{
    if (cfg.hasCoProcessor)
        coproc.emplace(cfg.coProcessor, mem, ramStore,
                       BusMaster::CoProcessor);
}

Processor &
Node::coProcessor()
{
    if (!coproc)
        util::fatal("Node: no co-processor on this node");
    return *coproc;
}

} // namespace ct::sim
