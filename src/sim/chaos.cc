#include "chaos.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ct::sim {

namespace {

/**
 * Victim-selection stream seed. Same splitmix64-style mixing as the
 * injector's per-class streams (fault.cc), on a stream id far above
 * the injector's 1..6 so the two families never collide.
 */
std::uint64_t
victimStreamSeed(std::uint64_t seed)
{
    std::uint64_t z = seed + 101 * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
parseRateField(const std::string &token, double &out,
               std::string *error)
{
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
        if (error)
            *error = "bad rate '" + token + "'";
        return false;
    }
    if (out < 0.0 || out > 1.0) {
        if (error)
            *error = "rate '" + token + "' outside [0, 1]";
        return false;
    }
    return true;
}

bool
parseCountField(const std::string &token, std::uint64_t &out,
                std::string *error)
{
    // strtoull silently wraps negatives; reject anything that is not
    // a plain digit string up front.
    bool digits = !token.empty() &&
                  std::all_of(token.begin(), token.end(), [](char c) {
                      return c >= '0' && c <= '9';
                  });
    char *end = nullptr;
    out = digits ? std::strtoull(token.c_str(), &end, 10) : 0;
    if (!digits || *end != '\0') {
        if (error)
            *error = "bad count '" + token + "'";
        return false;
    }
    return true;
}

std::optional<ChaosSchedule::RateClass>
parseClass(const std::string &token)
{
    using RC = ChaosSchedule::RateClass;
    if (token == "drop")
        return RC::Drop;
    if (token == "corrupt")
        return RC::Corrupt;
    if (token == "dup")
        return RC::Dup;
    return std::nullopt;
}

const char *
className(ChaosSchedule::RateClass cls)
{
    using RC = ChaosSchedule::RateClass;
    switch (cls) {
      case RC::Drop:
        return "drop";
      case RC::Corrupt:
        return "corrupt";
      case RC::Dup:
        return "dup";
    }
    return "?";
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Parse one semicolon-separated item into @p out. */
bool
parseItem(const std::string &item, ChaosSchedule &out,
          std::string *error)
{
    std::vector<std::string> f;
    for (const std::string &field : util::split(item, ':'))
        f.emplace_back(util::trim(field));
    const std::string &verb = f[0];

    if (verb == "seed") {
        if (f.size() != 2)
            return fail(error, "seed takes one field, got '" + item +
                                   "'");
        return parseCountField(f[1], out.seed, error);
    }

    if (verb == "step" || verb == "ramp") {
        bool step = verb == "step";
        std::size_t want = step ? 4 : 6;
        if (f.size() != want)
            return fail(error, verb + " takes " +
                                   (step ? std::string("CLASS:R:T")
                                         : std::string(
                                               "CLASS:R0:R1:T0:T1")) +
                                   ", got '" + item + "'");
        auto cls = parseClass(f[1]);
        if (!cls)
            return fail(error, "unknown fault class '" + f[1] +
                                   "' (expected drop, corrupt, dup)");
        ChaosSchedule::RatePhase phase;
        phase.cls = *cls;
        std::uint64_t t0 = 0, t1 = 0;
        if (step) {
            if (!parseRateField(f[2], phase.r1, error) ||
                !parseCountField(f[3], t0, error))
                return false;
            phase.r0 = phase.r1;
            phase.t0 = phase.t1 = t0;
        } else {
            if (!parseRateField(f[2], phase.r0, error) ||
                !parseRateField(f[3], phase.r1, error) ||
                !parseCountField(f[4], t0, error) ||
                !parseCountField(f[5], t1, error))
                return false;
            if (t1 <= t0)
                return fail(error, "ramp needs T1 > T0 in '" + item +
                                       "'");
            phase.t0 = t0;
            phase.t1 = t1;
        }
        out.phases.push_back(phase);
        return true;
    }

    if (verb == "cascade" || verb == "flap") {
        bool cascade = verb == "cascade";
        std::size_t want = cascade ? 5 : 6;
        if (f.size() != want)
            return fail(error,
                        verb + " takes " +
                            (cascade
                                 ? std::string("link|node:N:T:GAP")
                                 : std::string(
                                       "link|node:N:T:PERIOD:DOWN")) +
                            ", got '" + item + "'");
        bool nodes;
        if (f[1] == "link")
            nodes = false;
        else if (f[1] == "node")
            nodes = true;
        else
            return fail(error, "unknown target '" + f[1] +
                                   "' (expected link or node)");
        std::uint64_t count = 0;
        if (!parseCountField(f[2], count, error))
            return false;
        if (count == 0)
            return fail(error, verb + " needs at least one victim "
                                      "in '" +
                                   item + "'");
        if (cascade) {
            ChaosSchedule::Cascade c;
            c.nodes = nodes;
            c.count = static_cast<int>(count);
            std::uint64_t at = 0, gap = 0;
            if (!parseCountField(f[3], at, error) ||
                !parseCountField(f[4], gap, error))
                return false;
            c.at = at;
            c.gap = gap;
            out.cascades.push_back(c);
        } else {
            ChaosSchedule::Flap fl;
            fl.nodes = nodes;
            fl.count = static_cast<int>(count);
            std::uint64_t at = 0, period = 0, down = 0;
            if (!parseCountField(f[3], at, error) ||
                !parseCountField(f[4], period, error) ||
                !parseCountField(f[5], down, error))
                return false;
            if (period == 0 || down == 0 || down >= period)
                return fail(error,
                            "flap needs 0 < DOWN < PERIOD in '" +
                                item + "'");
            fl.spec = {at, period, down};
            out.flaps.push_back(fl);
        }
        return true;
    }

    return fail(error, "unknown verb '" + verb +
                           "' (expected seed, step, ramp, cascade, "
                           "flap)");
}

} // namespace

bool
ChaosSchedule::any() const
{
    return !phases.empty() || !cascades.empty() || !flaps.empty();
}

bool
ChaosSchedule::hasRate(RateClass cls) const
{
    for (const RatePhase &phase : phases)
        if (phase.cls == cls)
            return true;
    return false;
}

double
ChaosSchedule::rateAt(RateClass cls, Cycles now) const
{
    double rate = 0.0;
    for (const RatePhase &phase : phases) {
        if (phase.cls != cls || now < phase.t0)
            continue;
        if (now >= phase.t1)
            rate += phase.r1;
        else
            rate += phase.r0 + (phase.r1 - phase.r0) *
                                   static_cast<double>(now - phase.t0) /
                                   static_cast<double>(phase.t1 -
                                                       phase.t0);
    }
    return std::min(rate, 1.0);
}

std::optional<ChaosSchedule>
ChaosSchedule::tryParse(const std::string &spec, std::string *error)
{
    ChaosSchedule out;
    for (const std::string &item : util::split(spec, ';')) {
        std::string trimmed(util::trim(item));
        if (trimmed.empty())
            continue;
        if (!parseItem(trimmed, out, error))
            return std::nullopt;
    }
    return out;
}

ChaosSchedule
ChaosSchedule::parse(const std::string &spec)
{
    std::string error;
    std::optional<ChaosSchedule> out = tryParse(spec, &error);
    if (!out)
        util::fatal("ChaosSchedule: ", error);
    return *out;
}

std::string
ChaosSchedule::summary() const
{
    if (!any())
        return "none";
    std::ostringstream os;
    const char *sep = "";
    for (const RatePhase &phase : phases) {
        os << sep;
        if (phase.t0 == phase.t1)
            os << "step:" << className(phase.cls) << ':' << phase.r1
               << ':' << phase.t0;
        else
            os << "ramp:" << className(phase.cls) << ':' << phase.r0
               << ':' << phase.r1 << ':' << phase.t0 << ':'
               << phase.t1;
        sep = ";";
    }
    for (const Cascade &c : cascades) {
        os << sep << "cascade:" << (c.nodes ? "node" : "link") << ':'
           << c.count << ':' << c.at << ':' << c.gap;
        sep = ";";
    }
    for (const Flap &fl : flaps) {
        os << sep << "flap:" << (fl.nodes ? "node" : "link") << ':'
           << fl.count << ':' << fl.spec.at << ':' << fl.spec.period
           << ':' << fl.spec.down;
        sep = ";";
    }
    os << sep << "seed:" << seed;
    return os.str();
}

void
ChaosSchedule::applyOutages(Topology &topo) const
{
    if (cascades.empty() && flaps.empty())
        return;
    util::Rng rng(victimStreamSeed(seed));

    // Draw @p count distinct victims from [0, space).
    auto draw = [&rng](int count, int space, const char *what) {
        if (count > space)
            util::fatal("ChaosSchedule: ", what, " wants ", count,
                        " victims but the machine only has ", space);
        std::vector<int> victims;
        while (static_cast<int>(victims.size()) < count) {
            int v = static_cast<int>(
                rng.nextBelow(static_cast<std::uint64_t>(space)));
            if (std::find(victims.begin(), victims.end(), v) ==
                victims.end())
                victims.push_back(v);
        }
        return victims;
    };

    for (const Cascade &c : cascades) {
        auto victims =
            draw(c.count,
                 c.nodes ? topo.nodeCount() : topo.networkLinkCount(),
                 c.nodes ? "node cascade" : "link cascade");
        for (std::size_t i = 0; i < victims.size(); ++i) {
            Cycles at = c.at + static_cast<Cycles>(i) * c.gap;
            if (c.nodes)
                topo.downNode(victims[i], at);
            else
                topo.downLink(victims[i], at);
        }
    }
    for (const Flap &fl : flaps) {
        auto victims = draw(fl.count,
                            fl.nodes ? topo.nodeCount()
                                     : topo.networkLinkCount(),
                            fl.nodes ? "node flap" : "link flap");
        for (int v : victims) {
            if (fl.nodes)
                topo.flapNode(v, fl.spec);
            else
                topo.flapLink(v, fl.spec);
        }
    }
}

} // namespace ct::sim
