#include "fault.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace ct::sim {

namespace {

/** Derive an independent stream seed for one fault class. */
std::uint64_t
streamSeed(std::uint64_t seed, std::uint64_t stream)
{
    // splitmix64-style mixing keeps the per-class streams decorrelated
    // even for small consecutive seeds.
    std::uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
parseRate(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double rate = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        util::fatal("FaultSpec: bad value '", value, "' for ", key);
    if (rate < 0.0 || rate > 1.0)
        util::fatal("FaultSpec: ", key, "=", value,
                    " outside [0, 1]");
    return rate;
}

std::uint64_t
parseCount(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        util::fatal("FaultSpec: bad value '", value, "' for ", key);
    return n;
}

/** Parse "ID@CYCLE" (the "@CYCLE" part optional, default 0). */
FaultSpec::Outage
parseOutage(const std::string &key, const std::string &value)
{
    FaultSpec::Outage outage;
    auto at = value.find('@');
    std::string id = value.substr(0, at);
    outage.id = static_cast<std::int32_t>(parseCount(key, id));
    if (at != std::string::npos)
        outage.at = parseCount(key, value.substr(at + 1));
    return outage;
}

} // namespace

bool
FaultSpec::any() const
{
    return drop > 0.0 || corrupt > 0.0 || dup > 0.0 ||
           (delayMax > 0 && delayRate > 0.0) || engineStall > 0.0 ||
           engineFail > 0.0 || !linkDown.empty() ||
           !nodeDown.empty() || linkFailRate > 0.0;
}

FaultSpec
FaultSpec::parse(const std::string &spec)
{
    FaultSpec out;
    bool delay_rate_given = false;
    for (const std::string &field : util::split(spec, ',')) {
        std::string_view item = util::trim(field);
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string_view::npos)
            util::fatal("FaultSpec: expected key=value, got '", item,
                        "'");
        std::string key(util::trim(item.substr(0, eq)));
        std::string value(util::trim(item.substr(eq + 1)));
        if (key == "drop")
            out.drop = parseRate(key, value);
        else if (key == "corrupt")
            out.corrupt = parseRate(key, value);
        else if (key == "dup")
            out.dup = parseRate(key, value);
        else if (key == "delay")
            out.delayMax = parseCount(key, value);
        else if (key == "delay_rate") {
            out.delayRate = parseRate(key, value);
            delay_rate_given = true;
        } else if (key == "engine_stall")
            out.engineStall = parseRate(key, value);
        else if (key == "engine_stall_cycles")
            out.engineStallCycles = parseCount(key, value);
        else if (key == "engine_fail")
            out.engineFail = parseRate(key, value);
        else if (key == "link_down")
            out.linkDown.push_back(parseOutage(key, value));
        else if (key == "node_down")
            out.nodeDown.push_back(parseOutage(key, value));
        else if (key == "link_fail_rate")
            out.linkFailRate = parseRate(key, value);
        else if (key == "seed")
            out.seed = parseCount(key, value);
        else
            util::fatal("FaultSpec: unknown key '", key,
                        "' (expected drop, corrupt, dup, delay, "
                        "delay_rate, engine_stall, "
                        "engine_stall_cycles, engine_fail, "
                        "link_down, node_down, link_fail_rate, "
                        "seed)");
    }
    if (out.delayMax > 0 && !delay_rate_given)
        out.delayRate = 0.01;
    return out;
}

std::string
FaultSpec::summary() const
{
    std::ostringstream os;
    const char *sep = "";
    auto field = [&](const char *name, double v) {
        if (v > 0.0) {
            os << sep << name << '=' << v;
            sep = ",";
        }
    };
    field("drop", drop);
    field("corrupt", corrupt);
    field("dup", dup);
    if (delayMax > 0 && delayRate > 0.0) {
        os << sep << "delay=" << delayMax
           << ",delay_rate=" << delayRate;
        sep = ",";
    }
    field("engine_stall", engineStall);
    field("engine_fail", engineFail);
    for (const Outage &o : linkDown) {
        os << sep << "link_down=" << o.id << '@' << o.at;
        sep = ",";
    }
    for (const Outage &o : nodeDown) {
        os << sep << "node_down=" << o.id << '@' << o.at;
        sep = ",";
    }
    field("link_fail_rate", linkFailRate);
    if (sep[0] == '\0')
        return "none";
    os << sep << "seed=" << seed;
    return os.str();
}

FaultInjector::FaultInjector(const FaultSpec &spec,
                             obs::MetricsRegistry *registry)
    : cfg(spec), dropRng(streamSeed(spec.seed, 1)),
      corruptRng(streamSeed(spec.seed, 2)),
      dupRng(streamSeed(spec.seed, 3)),
      delayRng(streamSeed(spec.seed, 4)),
      engineRng(streamSeed(spec.seed, 5)),
      linkRng(streamSeed(spec.seed, 6))
{
    if (!registry) {
        ownedRegistry = std::make_unique<obs::MetricsRegistry>();
        registry = ownedRegistry.get();
    }
    m.drops = registry->counter("sim.fault.drops");
    m.corruptions = registry->counter("sim.fault.corruptions");
    m.duplicates = registry->counter("sim.fault.duplicates");
    m.delays = registry->counter("sim.fault.delays");
    m.delayCycles = registry->counter("sim.fault.delay_cycles");
    m.engineStalls = registry->counter("sim.fault.engine_stalls");
    m.engineStallCycles =
        registry->counter("sim.fault.engine_stall_cycles");
    m.engineFailures = registry->counter("sim.fault.engine_failures");
    m.linkFailures = registry->counter("sim.fault.link_failures");
}

const FaultStats &
FaultInjector::stats() const
{
    view.drops = m.drops.value();
    view.corruptions = m.corruptions.value();
    view.duplicates = m.duplicates.value();
    view.delays = m.delays.value();
    view.delayCycles = m.delayCycles.value();
    view.engineStalls = m.engineStalls.value();
    view.engineStallCycles = m.engineStallCycles.value();
    view.engineFailures = m.engineFailures.value();
    view.linkFailures = m.linkFailures.value();
    return view;
}

bool
FaultInjector::rollDrop()
{
    if (cfg.drop <= 0.0)
        return false;
    bool hit = dropRng.nextDouble() < cfg.drop;
    if (hit)
        m.drops.inc();
    return hit;
}

bool
FaultInjector::rollCorrupt()
{
    if (cfg.corrupt <= 0.0)
        return false;
    bool hit = corruptRng.nextDouble() < cfg.corrupt;
    if (hit)
        m.corruptions.inc();
    return hit;
}

bool
FaultInjector::rollDuplicate()
{
    if (cfg.dup <= 0.0)
        return false;
    bool hit = dupRng.nextDouble() < cfg.dup;
    if (hit)
        m.duplicates.inc();
    return hit;
}

Cycles
FaultInjector::rollDelay()
{
    if (cfg.delayMax == 0 || cfg.delayRate <= 0.0)
        return 0;
    if (delayRng.nextDouble() >= cfg.delayRate)
        return 0;
    Cycles extra = 1 + delayRng.nextBelow(cfg.delayMax);
    m.delays.inc();
    m.delayCycles.add(extra);
    return extra;
}

void
FaultInjector::corruptPayload(Packet &packet)
{
    if (packet.words.empty())
        return;
    std::uint64_t word = corruptRng.nextBelow(packet.words.size());
    std::uint64_t bit = corruptRng.nextBelow(64);
    packet.words[word] ^= 1ULL << bit;
}

Cycles
FaultInjector::rollEngineStall()
{
    if (cfg.engineStall <= 0.0 || cfg.engineStallCycles == 0)
        return 0;
    if (engineRng.nextDouble() >= cfg.engineStall)
        return 0;
    m.engineStalls.inc();
    m.engineStallCycles.add(cfg.engineStallCycles);
    return cfg.engineStallCycles;
}

bool
FaultInjector::rollEngineFailure()
{
    if (cfg.engineFail <= 0.0)
        return false;
    bool hit = engineRng.nextDouble() < cfg.engineFail;
    if (hit)
        m.engineFailures.inc();
    return hit;
}

bool
FaultInjector::rollLinkFailure()
{
    if (cfg.linkFailRate <= 0.0)
        return false;
    bool hit = linkRng.nextDouble() < cfg.linkFailRate;
    if (hit)
        m.linkFailures.inc();
    return hit;
}

std::uint64_t
FaultInjector::pickFailingLink(std::uint64_t route_links)
{
    return linkRng.nextBelow(route_links);
}

} // namespace ct::sim
