#include "fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "sim/chaos.h"
#include "sim/event.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ct::sim {

namespace {

/** Derive an independent stream seed for one fault class. */
std::uint64_t
streamSeed(std::uint64_t seed, std::uint64_t stream)
{
    // splitmix64-style mixing keeps the per-class streams decorrelated
    // even for small consecutive seeds.
    std::uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Non-fatal field parsers: false with a diagnostic in @p error. */

bool
parseRate(const std::string &key, const std::string &value,
          double &out, std::string *error)
{
    char *end = nullptr;
    out = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
        if (error)
            *error = "bad value '" + value + "' for " + key;
        return false;
    }
    if (out < 0.0 || out > 1.0) {
        if (error)
            *error = key + "=" + value + " outside [0, 1]";
        return false;
    }
    return true;
}

bool
parseCount(const std::string &key, const std::string &value,
           std::uint64_t &out, std::string *error)
{
    // strtoull silently wraps negatives ("-1" becomes a huge count);
    // accept plain digit strings only.
    bool digits = !value.empty() &&
                  std::all_of(value.begin(), value.end(), [](char c) {
                      return c >= '0' && c <= '9';
                  });
    char *end = nullptr;
    out = digits ? std::strtoull(value.c_str(), &end, 10) : 0;
    if (!digits || *end != '\0') {
        if (error)
            *error = "bad value '" + value + "' for " + key;
        return false;
    }
    return true;
}

/** Parse "ID@CYCLE" (the "@CYCLE" part optional, default 0). */
bool
parseOutage(const std::string &key, const std::string &value,
            FaultSpec::Outage &out, std::string *error)
{
    auto at = value.find('@');
    std::uint64_t id = 0;
    if (!parseCount(key, value.substr(0, at), id, error))
        return false;
    out.id = static_cast<std::int32_t>(id);
    std::uint64_t cycle = 0;
    if (at != std::string::npos) {
        if (!parseCount(key, value.substr(at + 1), cycle, error))
            return false;
    }
    out.at = cycle;
    return true;
}

} // namespace

bool
FaultSpec::any() const
{
    return drop > 0.0 || corrupt > 0.0 || dup > 0.0 ||
           (delayMax > 0 && delayRate > 0.0) || engineStall > 0.0 ||
           engineFail > 0.0 || !linkDown.empty() ||
           !nodeDown.empty() || linkFailRate > 0.0;
}

std::optional<FaultSpec>
FaultSpec::tryParse(const std::string &spec, std::string *error)
{
    FaultSpec out;
    bool delay_rate_given = false;
    std::vector<std::string> seen;
    for (const std::string &field : util::split(spec, ',')) {
        std::string_view item = util::trim(field);
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string_view::npos) {
            if (error)
                *error = "expected key=value, got '" +
                         std::string(item) + "'";
            return std::nullopt;
        }
        std::string key(util::trim(item.substr(0, eq)));
        std::string value(util::trim(item.substr(eq + 1)));
        // Outage keys are repeatable; everything else set twice is a
        // typo that would silently discard the first setting.
        if (key != "link_down" && key != "node_down") {
            if (std::find(seen.begin(), seen.end(), key) !=
                seen.end()) {
                if (error)
                    *error = "duplicate key '" + key + "'";
                return std::nullopt;
            }
            seen.push_back(key);
        }
        bool ok;
        std::uint64_t count = 0;
        if (key == "drop")
            ok = parseRate(key, value, out.drop, error);
        else if (key == "corrupt")
            ok = parseRate(key, value, out.corrupt, error);
        else if (key == "dup")
            ok = parseRate(key, value, out.dup, error);
        else if (key == "delay") {
            if ((ok = parseCount(key, value, count, error)))
                out.delayMax = count;
        } else if (key == "delay_rate") {
            ok = parseRate(key, value, out.delayRate, error);
            delay_rate_given = true;
        } else if (key == "engine_stall")
            ok = parseRate(key, value, out.engineStall, error);
        else if (key == "engine_stall_cycles") {
            if ((ok = parseCount(key, value, count, error)))
                out.engineStallCycles = count;
        } else if (key == "engine_fail")
            ok = parseRate(key, value, out.engineFail, error);
        else if (key == "link_down") {
            Outage outage;
            if ((ok = parseOutage(key, value, outage, error)))
                out.linkDown.push_back(outage);
        } else if (key == "node_down") {
            Outage outage;
            if ((ok = parseOutage(key, value, outage, error)))
                out.nodeDown.push_back(outage);
        } else if (key == "link_fail_rate")
            ok = parseRate(key, value, out.linkFailRate, error);
        else if (key == "seed")
            ok = parseCount(key, value, out.seed, error);
        else {
            if (error)
                *error = "unknown key '" + key +
                         "' (expected drop, corrupt, dup, delay, "
                         "delay_rate, engine_stall, "
                         "engine_stall_cycles, engine_fail, "
                         "link_down, node_down, link_fail_rate, "
                         "seed)";
            return std::nullopt;
        }
        if (!ok)
            return std::nullopt;
    }
    if (out.delayMax > 0 && !delay_rate_given)
        out.delayRate = 0.01;
    return out;
}

FaultSpec
FaultSpec::parse(const std::string &spec)
{
    std::string error;
    std::optional<FaultSpec> out = tryParse(spec, &error);
    if (!out)
        util::fatal("FaultSpec: ", error);
    return *out;
}

std::string
FaultSpec::summary() const
{
    std::ostringstream os;
    const char *sep = "";
    auto field = [&](const char *name, double v) {
        if (v > 0.0) {
            os << sep << name << '=' << v;
            sep = ",";
        }
    };
    field("drop", drop);
    field("corrupt", corrupt);
    field("dup", dup);
    if (delayMax > 0 && delayRate > 0.0) {
        os << sep << "delay=" << delayMax
           << ",delay_rate=" << delayRate;
        sep = ",";
    }
    field("engine_stall", engineStall);
    field("engine_fail", engineFail);
    for (const Outage &o : linkDown) {
        os << sep << "link_down=" << o.id << '@' << o.at;
        sep = ",";
    }
    for (const Outage &o : nodeDown) {
        os << sep << "node_down=" << o.id << '@' << o.at;
        sep = ",";
    }
    field("link_fail_rate", linkFailRate);
    if (sep[0] == '\0')
        return "none";
    os << sep << "seed=" << seed;
    return os.str();
}

FaultInjector::FaultInjector(const FaultSpec &spec,
                             obs::MetricsRegistry *registry)
    : cfg(spec), dropRng(streamSeed(spec.seed, 1)),
      corruptRng(streamSeed(spec.seed, 2)),
      dupRng(streamSeed(spec.seed, 3)),
      delayRng(streamSeed(spec.seed, 4)),
      engineRng(streamSeed(spec.seed, 5)),
      linkRng(streamSeed(spec.seed, 6))
{
    if (!registry) {
        ownedRegistry = std::make_unique<obs::MetricsRegistry>();
        registry = ownedRegistry.get();
    }
    m.drops = registry->counter("sim.fault.drops");
    m.corruptions = registry->counter("sim.fault.corruptions");
    m.duplicates = registry->counter("sim.fault.duplicates");
    m.delays = registry->counter("sim.fault.delays");
    m.delayCycles = registry->counter("sim.fault.delay_cycles");
    m.engineStalls = registry->counter("sim.fault.engine_stalls");
    m.engineStallCycles =
        registry->counter("sim.fault.engine_stall_cycles");
    m.engineFailures = registry->counter("sim.fault.engine_failures");
    m.linkFailures = registry->counter("sim.fault.link_failures");
}

void
FaultInjector::setChaos(const ChaosSchedule *schedule,
                        const EventQueue *clock)
{
    if (schedule && !clock)
        util::fatal("FaultInjector::setChaos: a schedule needs a "
                    "clock");
    chaos = schedule;
    chaosClock = clock;
}

double
FaultInjector::chaosRate(int cls) const
{
    if (!chaos)
        return 0.0;
    return chaos->rateAt(static_cast<ChaosSchedule::RateClass>(cls),
                         chaosClock->now());
}

const FaultStats &
FaultInjector::stats() const
{
    view.drops = m.drops.value();
    view.corruptions = m.corruptions.value();
    view.duplicates = m.duplicates.value();
    view.delays = m.delays.value();
    view.delayCycles = m.delayCycles.value();
    view.engineStalls = m.engineStalls.value();
    view.engineStallCycles = m.engineStallCycles.value();
    view.engineFailures = m.engineFailures.value();
    view.linkFailures = m.linkFailures.value();
    return view;
}

bool
FaultInjector::rollDrop()
{
    using RC = ChaosSchedule::RateClass;
    bool scheduled = chaos && chaos->hasRate(RC::Drop);
    if (cfg.drop <= 0.0 && !scheduled)
        return false;
    // The draw happens whenever the class is *active* (static rate
    // or schedule), not whenever the current rate is non-zero: a
    // ramp still at zero must consume the same draws it consumes on
    // replay.
    double rate = cfg.drop;
    if (scheduled)
        rate = std::min(
            1.0, rate + chaosRate(static_cast<int>(RC::Drop)));
    bool hit = dropRng.nextDouble() < rate;
    if (hit)
        m.drops.inc();
    return hit;
}

bool
FaultInjector::rollCorrupt()
{
    using RC = ChaosSchedule::RateClass;
    bool scheduled = chaos && chaos->hasRate(RC::Corrupt);
    if (cfg.corrupt <= 0.0 && !scheduled)
        return false;
    double rate = cfg.corrupt;
    if (scheduled)
        rate = std::min(
            1.0, rate + chaosRate(static_cast<int>(RC::Corrupt)));
    bool hit = corruptRng.nextDouble() < rate;
    if (hit)
        m.corruptions.inc();
    return hit;
}

bool
FaultInjector::rollDuplicate()
{
    using RC = ChaosSchedule::RateClass;
    bool scheduled = chaos && chaos->hasRate(RC::Dup);
    if (cfg.dup <= 0.0 && !scheduled)
        return false;
    double rate = cfg.dup;
    if (scheduled)
        rate = std::min(
            1.0, rate + chaosRate(static_cast<int>(RC::Dup)));
    bool hit = dupRng.nextDouble() < rate;
    if (hit)
        m.duplicates.inc();
    return hit;
}

Cycles
FaultInjector::rollDelay()
{
    if (cfg.delayMax == 0 || cfg.delayRate <= 0.0)
        return 0;
    if (delayRng.nextDouble() >= cfg.delayRate)
        return 0;
    Cycles extra = 1 + delayRng.nextBelow(cfg.delayMax);
    m.delays.inc();
    m.delayCycles.add(extra);
    return extra;
}

void
FaultInjector::corruptPayload(Packet &packet)
{
    if (packet.words.empty())
        return;
    std::uint64_t word = corruptRng.nextBelow(packet.words.size());
    std::uint64_t bit = corruptRng.nextBelow(64);
    packet.words[word] ^= 1ULL << bit;
}

Cycles
FaultInjector::rollEngineStall()
{
    if (cfg.engineStall <= 0.0 || cfg.engineStallCycles == 0)
        return 0;
    if (engineRng.nextDouble() >= cfg.engineStall)
        return 0;
    m.engineStalls.inc();
    m.engineStallCycles.add(cfg.engineStallCycles);
    return cfg.engineStallCycles;
}

bool
FaultInjector::rollEngineFailure()
{
    if (cfg.engineFail <= 0.0)
        return false;
    bool hit = engineRng.nextDouble() < cfg.engineFail;
    if (hit)
        m.engineFailures.inc();
    return hit;
}

bool
FaultInjector::rollLinkFailure()
{
    if (cfg.linkFailRate <= 0.0)
        return false;
    bool hit = linkRng.nextDouble() < cfg.linkFailRate;
    if (hit)
        m.linkFailures.inc();
    return hit;
}

std::uint64_t
FaultInjector::pickFailingLink(std::uint64_t route_links)
{
    return linkRng.nextBelow(route_links);
}

} // namespace ct::sim
