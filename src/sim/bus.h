/**
 * @file
 * Shared split-transaction memory bus. On the Paragon, both i860
 * processors, the DMA engines and the network interface share one
 * bus; the paper reports that fine-grain interleaving of single-word
 * accesses from two masters costs up to 50% (§5.1.4). The model
 * charges an arbitration penalty whenever ownership changes.
 */

#ifndef CT_SIM_BUS_H
#define CT_SIM_BUS_H

#include <cstdint>

#include "sim/addr.h"

namespace ct::sim {

/** Identifies a bus master for arbitration accounting. */
enum class BusMaster : std::uint8_t {
    Processor = 0,
    CoProcessor = 1,
    Dma = 2,
    NetworkInterface = 3,
};

/** Bus timing parameters. */
struct BusConfig
{
    /** Bytes transferred per bus cycle (0 = bus not modeled). */
    Bytes bytesPerCycle = 0;
    /** Extra cycles when ownership switches between masters. */
    Cycles arbitrationCycles = 0;
};

/** Counters. */
struct BusStats
{
    std::uint64_t transactions = 0;
    std::uint64_t ownerSwitches = 0;
    Cycles busyCycles = 0;
    Cycles waitCycles = 0;
};

/**
 * Occupancy-based bus model. A transaction waits for the bus to be
 * free, pays an arbitration penalty if the previous owner differs,
 * then occupies the bus for its transfer time.
 */
class Bus
{
  public:
    explicit Bus(const BusConfig &config);

    /** True when a bus is configured (bytesPerCycle > 0). */
    bool modeled() const { return cfg.bytesPerCycle > 0; }

    /**
     * Perform a transaction of @p bytes by @p master at time @p now.
     * @return total cycles until the transaction completes (wait +
     *         arbitration + transfer); 0 when the bus is unmodeled.
     */
    Cycles transact(BusMaster master, Bytes bytes, Cycles now);

    const BusStats &stats() const { return counters; }

  private:
    BusConfig cfg;
    BusStats counters;
    Cycles busyUntil = 0;
    BusMaster lastOwner = BusMaster::Processor;
    bool everOwned = false;
};

} // namespace ct::sim

#endif // CT_SIM_BUS_H
