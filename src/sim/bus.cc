#include "bus.h"

#include "util/logging.h"

namespace ct::sim {

Bus::Bus(const BusConfig &config) : cfg(config) {}

Cycles
Bus::transact(BusMaster master, Bytes bytes, Cycles now)
{
    if (!modeled())
        return 0;
    if (bytes == 0)
        util::fatal("Bus::transact: zero-byte transaction");
    ++counters.transactions;

    Cycles wait = busyUntil > now ? busyUntil - now : 0;
    counters.waitCycles += wait;
    Cycles start = now + wait;

    Cycles arb = 0;
    if (everOwned && master != lastOwner) {
        arb = cfg.arbitrationCycles;
        ++counters.ownerSwitches;
    }
    lastOwner = master;
    everOwned = true;

    Cycles transfer =
        (bytes + cfg.bytesPerCycle - 1) / cfg.bytesPerCycle;
    counters.busyCycles += arb + transfer;
    busyUntil = start + arb + transfer;
    return busyUntil - now;
}

} // namespace ct::sim
