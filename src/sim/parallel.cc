#include "sim/parallel.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace ct::sim {

ParallelEngine::ParallelEngine(EventQueue &queue, ParallelOptions options)
    : q(queue), opts(options),
      farm(sweep::FarmOptions{options.threads > 1 ? options.threads : 0,
                              1})
{
    if (opts.lookahead < 1)
        opts.lookahead = 1;
    if (opts.minPartitions < 2)
        opts.minPartitions = 2;
    int nctx = std::max(opts.threads, 1);
    for (int i = 0; i < nctx; ++i) {
        auto ctx = std::make_unique<EventQueue::WindowCtx>();
        ctx->queue = &q;
        ctx->reserve = &reserve;
        ctx->reserveNext = &reserveNext;
        contexts.push_back(std::move(ctx));
    }
}

// The reserve may still hold nodes drained from the queue's free
// list, but the queue may already be gone (sim::Machine destroys it
// first so adopted slab nodes outlive the heap) -- so the destructor
// must not hand anything back; the storage belongs to whichever slab
// allocated it and dies with that slab.
ParallelEngine::~ParallelEngine() = default;

void
ParallelEngine::setLookahead(Cycles hint, Cycles ceiling)
{
    Cycles la = std::min(hint, ceiling);
    opts.lookahead = la < 1 ? 1 : la;
}

void
ParallelEngine::checkCommitTime(Cycles when, std::int32_t part) const
{
    Cycles floor = 0;
    if (part < 0)
        floor = maxExec;
    else if (static_cast<std::size_t>(part) < lastExec.size())
        floor = lastExec[static_cast<std::size_t>(part)];
    if (when < floor)
        util::fatal(
            "ParallelEngine: lookahead contract violated: an event "
            "for partition ", part, " was committed at time ", when,
            ", behind that partition's already-committed time ",
            floor, " (window lookahead ", opts.lookahead,
            " cycles); a layer is declaring a larger "
            "parallelLookahead() than its true minimum "
            "cross-partition delay");
}

void
ParallelEngine::prepareReserve()
{
    // Nodes claimed by workers last window were adopted into the
    // heap (or recycled); drop them from the reserve, then refill it
    // from the queue's free list so steady-state windows allocate
    // nothing new.
    std::size_t claimed = std::min(
        reserveNext.load(std::memory_order_relaxed), reserve.size());
    if (claimed > 0)
        reserve.erase(reserve.begin(),
                      reserve.begin() +
                          static_cast<std::ptrdiff_t>(claimed));
    q.drainFreeList(reserve);
    reserveNext.store(0, std::memory_order_relaxed);
}

std::uint64_t
ParallelEngine::runAll()
{
    std::uint64_t executed = 0;
    while (q.root)
        executed += runWindow();
    // A drained heap forces the commit loop to flush everything.
    if (!rob.empty())
        util::panic("ParallelEngine: reorder buffer holds ",
                    rob.size(), " seed(s) after the heap drained");
    return executed;
}

std::uint64_t
ParallelEngine::runWindow()
{
    constexpr Cycles maxCycles = std::numeric_limits<Cycles>::max();
    ++st.windows;
    Cycles windowFloor = q.root->when;
    // Inclusive horizon; saturate instead of overflowing near the
    // end of representable time.
    Cycles limit = windowFloor > maxCycles - opts.lookahead
                       ? maxCycles
                       : windowFloor + opts.lookahead - 1;

    // COLLECT: pop the window's events in global (time, seq) order,
    // keeping per partition only the events at that partition's
    // minimum timestamp; everything else goes straight back.
    ++epoch;
    seeds.clear();
    rejects.clear();
    windowParts.clear();
    bool untagged = false;
    while (q.root && q.root->when <= limit) {
        EventQueue::EventNode *node = q.popMin();
        std::int32_t part = node->part;
        if (part < 0) {
            untagged = true;
            seeds.push_back(Seed{node, -1, 0, 0});
            continue;
        }
        auto idx = static_cast<std::size_t>(part);
        if (idx >= partTime.size()) {
            partTime.resize(idx + 1, 0);
            partEpoch.resize(idx + 1, 0);
            partTask.resize(idx + 1, -1);
        }
        if (idx < partHeld.size() && partHeld[idx]) {
            // The partition still has executed-but-uncommitted
            // events in the reorder buffer, which may spawn
            // same-partition work at earlier times than this node;
            // it may not run further until those commit.
            rejects.push_back(node);
            continue;
        }
        if (partEpoch[idx] != epoch) {
            partEpoch[idx] = epoch;
            partTime[idx] = node->when;
            windowParts.push_back(part);
            seeds.push_back(Seed{node, -1, 0, 0, {}});
        } else if (node->when == partTime[idx]) {
            seeds.push_back(Seed{node, -1, 0, 0, {}});
        } else {
            rejects.push_back(node);
        }
    }

    // With the reorder buffer non-empty some partitions have already
    // executed past this window's events, so the serial in-place
    // fallback (which commits as it goes) would interleave out of
    // order; such windows must take the buffered path even when a
    // dispatch would not otherwise pay off.
    bool parallel =
        active() && !untagged &&
        (static_cast<int>(windowParts.size()) >= opts.minPartitions ||
         !rob.empty());
    if (untagged && !rob.empty())
        util::fatal(
            "ParallelEngine: an untagged event (no partition) "
            "reached a window while ", rob.size(),
            " executed event(s) await commit; a parallel-safe layer "
            "must partition-tag every event it schedules mid-run");
    if (!parallel) {
        // Single-partition or untagged window: run it in place, on
        // the serial path, including anything it cascades into the
        // window. Byte-identical by construction.
        for (Seed &s : seeds)
            q.push(s.node);
        for (EventQueue::EventNode *node : rejects)
            q.push(node);
        ++st.serialWindows;
        std::uint64_t n = q.runSerialBatch(limit);
        st.serialEvents += n;
        return n;
    }

    // The kept events will execute this window: record each
    // partition's executed time (commit floors for the lookahead
    // backstop; monotonic since a partition's pending times only
    // grow).
    for (std::int32_t part : windowParts) {
        auto idx = static_cast<std::size_t>(part);
        if (idx >= lastExec.size())
            lastExec.resize(idx + 1, 0);
        lastExec[idx] = partTime[idx];
    }

    // Restore the kept events' pending counts: each is decremented
    // again at its own commit slot, so pending/peak accounting is
    // indistinguishable from the serial engine's.
    for (EventQueue::EventNode *node : rejects)
        q.push(node);
    q.pendingCount += seeds.size();

    windowMax = seeds.back().node->when;
    if (windowMax - windowFloor > st.maxWindowSpan)
        st.maxWindowSpan = windowMax - windowFloor;
    if (windowMax > maxExec)
        maxExec = windowMax;

    // EXECUTE: group the kept events by partition -- one dispatch
    // task per partition keeps a partition's events on one worker,
    // in (time, seq) order.
    taskCount = 0;
    for (std::int32_t part : windowParts)
        partTask[static_cast<std::size_t>(part)] = -1;
    for (auto &task : tasks)
        task.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(seeds.size()); ++i) {
        auto idx = static_cast<std::size_t>(seeds[i].node->part);
        if (partTask[idx] < 0) {
            partTask[idx] = static_cast<std::int32_t>(taskCount);
            if (tasks.size() <= taskCount)
                tasks.emplace_back();
            ++taskCount;
        }
        tasks[static_cast<std::size_t>(partTask[idx])].push_back(i);
    }

    prepareReserve();
    for (auto &ctx : contexts)
        ctx->effects.clear();

    q.windowOpen = true;
    farm.runBatch(taskCount, [this](std::size_t task, int worker) {
        EventQueue::WindowCtx *win =
            contexts[static_cast<std::size_t>(worker)].get();
        EventQueue::tlWindow = win;
        for (std::uint32_t idx : tasks[task]) {
            Seed &s = seeds[idx];
            EventQueue::EventNode *node = s.node;
            s.worker = worker;
            s.effBegin =
                static_cast<std::uint32_t>(win->effects.size());
            if (!node->cancelled) {
                win->time = node->when;
                win->scopePart = node->part;
                node->invoke(*node);
            }
            s.effEnd = static_cast<std::uint32_t>(win->effects.size());
        }
        EventQueue::tlWindow = nullptr;
    });
    q.windowOpen = false;

    ++st.parallelWindows;
    return commitWindow();
}

bool
ParallelEngine::seedPrecedesHeap(const Seed &seed) const
{
    if (!q.root)
        return true;
    if (seed.node->when != q.root->when)
        return seed.node->when < q.root->when;
    return seed.node->seq < q.root->seq;
}

std::uint64_t
ParallelEngine::commitWindow()
{
    // Merge this window's executed seeds into the reorder buffer.
    // Both sequences are (time, seq)-sorted; carried-over seeds can
    // interleave with this window's (the window executed exactly the
    // events that were blocking them).
    auto seed_before = [](const Seed &a, const Seed &b) {
        if (a.node->when != b.node->when)
            return a.node->when < b.node->when;
        return a.node->seq < b.node->seq;
    };
    if (rob.empty()) {
        rob.swap(seeds);
    } else {
        robMerge.clear();
        robMerge.reserve(rob.size() + seeds.size());
        std::merge(std::make_move_iterator(rob.begin()),
                   std::make_move_iterator(rob.end()),
                   std::make_move_iterator(seeds.begin()),
                   std::make_move_iterator(seeds.end()),
                   std::back_inserter(robMerge), seed_before);
        rob.swap(robMerge);
    }
    seeds.clear();

    // Commit every buffered event that precedes all still-unexecuted
    // heap events: each commit may spawn new heap events, so the
    // front is re-checked every slot. Whatever remains waits for the
    // next window to execute the events blocking it.
    std::uint64_t before = q.executedTotal;
    q.replayEngine = this;
    std::size_t head = 0;
    while (head < rob.size() && seedPrecedesHeap(rob[head])) {
        commitSeed(rob[head]);
        ++head;
    }
    q.replayEngine = nullptr;
    std::uint64_t executed = q.executedTotal - before;
    rob.erase(rob.begin(),
              rob.begin() + static_cast<std::ptrdiff_t>(head));

    // Seeds staying behind must not reference the per-worker effect
    // logs (the next window clears them); move their effect spans
    // into per-seed storage. Mark their partitions held so collect
    // keeps them off workers until these seeds commit.
    for (std::int32_t part : heldParts)
        partHeld[static_cast<std::size_t>(part)] = 0;
    heldParts.clear();
    for (Seed &s : rob) {
        if (s.effEnd > s.effBegin) {
            auto &log =
                contexts[static_cast<std::size_t>(s.worker)]->effects;
            s.held.assign(
                log.begin() + static_cast<std::ptrdiff_t>(s.effBegin),
                log.begin() + static_cast<std::ptrdiff_t>(s.effEnd));
            s.effBegin = s.effEnd = 0;
        }
        auto idx = static_cast<std::size_t>(s.node->part);
        if (idx >= partHeld.size())
            partHeld.resize(idx + 1, 0);
        if (!partHeld[idx]) {
            partHeld[idx] = 1;
            heldParts.push_back(s.node->part);
        }
    }
    return executed;
}

void
ParallelEngine::commitSeed(Seed &s)
{
    EventQueue::EventNode *node = s.node;
    --q.pendingCount;
    if (node->cancelled) {
        // Tombstone: discarded at its slot, clock untouched and
        // executed counts unchanged -- exactly the serial engine's
        // treatment, including the release() seq re-stamp.
        q.release(node);
        return;
    }
    q.currentTime = node->when;
    std::int32_t owner = node->part;
    std::int32_t prevScope = q.activePartition;
    const EventQueue::Effect *effects = nullptr;
    std::size_t count = 0;
    if (!s.held.empty()) {
        effects = s.held.data();
        count = s.held.size();
    } else if (s.effEnd > s.effBegin) {
        auto &log =
            contexts[static_cast<std::size_t>(s.worker)]->effects;
        effects = log.data() + s.effBegin;
        count = s.effEnd - s.effBegin;
    }
    for (std::size_t i = 0; i < count; ++i) {
        EventQueue::EventNode *en = effects[i].node;
        if (!effects[i].defer) {
            // Spawn: adopt the worker-built node into the heap,
            // stamping seq exactly where the serial engine's
            // schedule() call would have.
            if (en->part != owner) {
                checkCommitTime(en->when, en->part);
                ++st.crossSpawns;
            }
            en->seq = q.nextSeq++;
            q.push(en);
        } else {
            // Deferred call: runs serially at the event's own
            // (time, seq) slot, so order-sensitive shared state
            // (link reservations, fault rolls) mutates in exact
            // serial order. Its scratch node never existed in a
            // serial run, so recycle it without a seq stamp.
            q.activePartition = en->part;
            en->invoke(*en);
            if (en->destroy)
                en->destroy(*en);
            q.recycleRaw(en);
            q.activePartition = prevScope;
            ++st.deferredCalls;
        }
    }
    q.release(node);
    ++q.executedTotal;
    ++st.parallelEvents;
}

} // namespace ct::sim
