/**
 * @file
 * Minimal discrete-event core used by the end-to-end communication
 * timeline. Events are callbacks ordered by (time, insertion order);
 * ties execute in insertion order to keep runs deterministic.
 *
 * Allocation discipline (this is the simulator's hot path): event
 * nodes live in slab-allocated pools and are linked intrusively --
 * a pairing heap for the pending set, a singly linked free list for
 * recycling -- and callbacks are stored inline in the node whenever
 * they fit. A steady-state run therefore performs no per-event heap
 * allocation: memory is bounded by the *peak* number of pending
 * events, never by how many events fire over the whole run.
 *
 * Partitioned execution: every event carries a partition tag (the
 * destination node of the state it touches, or kNoPartition). The
 * tag is inherited from the event that scheduled it unless a
 * PartitionScope overrides it, so a correctly scoped layer labels
 * its whole event stream with no per-call-site changes. The serial
 * engine ignores the tags; sim::ParallelEngine uses them to execute
 * conservative lookahead windows on sweep::Farm workers while
 * committing results in exact serial (time, seq) order -- see
 * sim/parallel.h for the contract.
 */

#ifndef CT_SIM_EVENT_H
#define CT_SIM_EVENT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/addr.h"

namespace ct::sim {

class ParallelEngine;

/** Deterministic event queue driving the simulation clock. */
class EventQueue
{
  public:
    /** Legacy callback alias; any `void()` callable is accepted. */
    using Callback = std::function<void()>;

    /** Tag for events not confined to any single partition. */
    static constexpr std::int32_t kNoPartition = -1;

    EventQueue() = default;
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time (the executing event's timestamp when
     *  called from inside a parallel window). */
    Cycles now() const
    {
        if (windowOpen)
            return windowNow();
        return currentTime;
    }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    template <typename F>
    void
    schedule(Cycles when, F &&fn)
    {
        checkSchedule(when);
        // Callable types with a boolean state (std::function, plain
        // function pointers) can be empty; catch that before the
        // event fires into nothing.
        if constexpr (std::is_constructible_v<bool, const decayed<F> &>) {
            if (!static_cast<bool>(fn))
                nullCallback();
        }
        if (windowOpen) {
            if (WindowCtx *win = windowCtx()) {
                // Worker context: buffer the spawn in program order;
                // the engine adopts the node into the heap (stamping
                // its seq) when the window commits.
                EventNode *node = windowAcquire(*win, when);
                emplaceCallback(*node, std::forward<F>(fn));
                win->effects.push_back({node, false});
                return;
            }
        }
        EventNode *node = acquire(when);
        emplaceCallback(*node, std::forward<F>(fn));
        push(node);
    }

    /** Schedule @p fn to run @p delay cycles from now. */
    template <typename F>
    void
    scheduleAfter(Cycles delay, F &&fn)
    {
        schedule(now() + delay, std::forward<F>(fn));
    }

    /**
     * Handle to one scheduled event, returned by the *Cancellable
     * variants. cancel() turns the pending event into a tombstone:
     * when its slot comes up it is discarded without running and
     * without advancing the clock, so a cancelled timer can never
     * stretch the tail of an otherwise finished run (a retransmit
     * timer whose packet was acknowledged must not cost a timeout of
     * simulated idle time). Cancelling after the event fired is a
     * safe no-op -- the sequence stamp disambiguates recycled nodes
     * -- but a handle must not outlive its queue.
     */
  private:
    struct EventNode;

  public:
    class Timer
    {
      public:
        Timer() = default;

        /** True while the event is pending and not cancelled. */
        bool armed() const;

        /** Cancel the event if it is still pending. */
        void cancel();

      private:
        friend class EventQueue;
        Timer(EventNode *node, std::uint64_t seq)
            : node(node), seq(seq)
        {}
        EventNode *node = nullptr;
        std::uint64_t seq = 0;
    };

    /** schedule() returning a cancellable handle. */
    template <typename F>
    Timer
    scheduleCancellable(Cycles when, F &&fn)
    {
        if (windowOpen && windowCtx())
            cancellableInWindow();
        checkSchedule(when);
        if constexpr (std::is_constructible_v<bool, const decayed<F> &>) {
            if (!static_cast<bool>(fn))
                nullCallback();
        }
        EventNode *node = acquire(when);
        emplaceCallback(*node, std::forward<F>(fn));
        push(node);
        return Timer(node, node->seq);
    }

    /** scheduleAfter() returning a cancellable handle. */
    template <typename F>
    Timer
    scheduleAfterCancellable(Cycles delay, F &&fn)
    {
        return scheduleCancellable(now() + delay,
                                   std::forward<F>(fn));
    }

    /**
     * Sets the partition tag inherited by events scheduled while the
     * scope is alive. Layers use it at the call sites where an event
     * belongs to a *different* node than the one whose event is
     * executing (cross-node credit returns, packet arrivals); inside
     * an event callback the tag otherwise defaults to the executing
     * event's own partition.
     */
    class PartitionScope
    {
      public:
        PartitionScope(EventQueue &queue, std::int32_t part)
            : q(queue), saved(queue.scopePartition())
        {
            q.setScopePartition(part);
        }
        ~PartitionScope() { q.setScopePartition(saved); }
        PartitionScope(const PartitionScope &) = delete;
        PartitionScope &operator=(const PartitionScope &) = delete;

      private:
        EventQueue &q;
        std::int32_t saved;
    };

    /**
     * True when the calling thread is executing an event inside a
     * parallel window of *this* queue. Code with order-sensitive
     * shared state (the network's link reservations) checks this and
     * defers the mutation to commit time via deferToCommit().
     */
    bool inWindow() const { return windowOpen && windowCtx() != nullptr; }

    /**
     * Buffer @p fn to run serially, at the executing event's
     * timestamp, when the current window commits -- in the exact
     * (time, seq) slot the executing event occupies, interleaved in
     * program order with the event's schedule() calls. Outside a
     * window @p fn runs immediately.
     */
    template <typename F>
    void
    deferToCommit(F &&fn)
    {
        if (windowOpen) {
            if (WindowCtx *win = windowCtx()) {
                EventNode *node = windowAcquire(*win, win->time);
                emplaceCallback(*node, std::forward<F>(fn));
                win->effects.push_back({node, true});
                return;
            }
        }
        fn();
    }

    /** Number of pending events. */
    std::size_t pending() const { return pendingCount; }

    /** High-water mark of pending() over the queue's lifetime. */
    std::size_t peakPending() const { return peakPendingCount; }

    /**
     * Run until no events remain (or @p max_events fired, as a
     * runaway guard). Returns the number of events executed.
     *
     * Hitting the guard with events still pending marks the queue
     * truncated() -- a truncated run never converged and its results
     * must not be reported as if it had (see sim::MachineReport).
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * True once any run() stopped at the event cap with events still
     * pending. Sticky: a later (complete) run does not clear it, so
     * end-of-run reporting always sees the truncation.
     */
    bool truncated() const { return truncatedRuns > 0; }

    /**
     * Cooperative cancellation budget: cap the *total* number of
     * events executed across every run() call on this queue. Once
     * @p total_events have fired, every subsequent run() returns
     * immediately, so a caller that drives the queue in slices (the
     * runtime layers, the adaptive round loop) stops at the first
     * checkpoint past the budget no matter which slice it lands in.
     * Hitting the budget with events pending marks the queue
     * truncated() exactly like the max_events guard, but quietly:
     * a deadline-induced cut is the planning service's degradation
     * ladder working as designed, not a runaway simulation.
     * 0 restores the default (unlimited).
     */
    void setEventBudget(std::uint64_t total_events)
    {
        eventBudget = total_events == 0 ? UINT64_MAX : total_events;
    }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t eventsExecuted() const { return executedTotal; }

    /** True once a run() stopped because setEventBudget() ran out. */
    bool budgetExhausted() const
    {
        return executedTotal >= eventBudget;
    }

    /**
     * Attach (or detach, with null) a conservative parallel runner.
     * While attached, run() calls with no event cap and no event
     * budget delegate to the runner; capped or budgeted runs always
     * take the serial path so truncated-fidelity slicing keeps its
     * exact semantics. The runner must outlive every event it ever
     * committed into the queue (sim::Machine declares the engine
     * before the queue for exactly this reason).
     */
    void setRunner(ParallelEngine *engine) { runner = engine; }

    /** The attached parallel runner, if any. */
    ParallelEngine *parallelRunner() const { return runner; }

    // Pool introspection (tests and memory-regression gates).
    //
    // Under the parallel engine these counts include nodes loaned to
    // the engine's recycling reserve, so they can differ from a
    // serial run's; nothing report- or baseline-visible derives from
    // them.

    /** Slabs allocated so far; stays flat once the peak is reached. */
    std::size_t poolSlabs() const { return slabs.size(); }

    /** Recycled nodes currently on the free list. */
    std::size_t poolFree() const { return freeCount; }

    /** Events each slab holds. */
    static constexpr std::size_t slabEvents() { return kSlabEvents; }

    /** Callback bytes stored inline (larger callables go boxed). */
    static constexpr std::size_t inlineCallbackBytes()
    {
        return kInlineCallbackBytes;
    }

  private:
    friend class ParallelEngine;

    template <typename F>
    using decayed = std::decay_t<F>;

    static constexpr std::size_t kInlineCallbackBytes = 128;
    static constexpr std::size_t kSlabEvents = 256;

    /**
     * One pooled event. `child`/`sibling` are the intrusive pairing-
     * heap links; `sibling` doubles as the free-list link between
     * uses. The callback lives in `storage` (inline when it fits,
     * otherwise a single boxed pointer).
     */
    struct EventNode
    {
        Cycles when = 0;
        std::uint64_t seq = 0;
        EventNode *child = nullptr;
        EventNode *sibling = nullptr;
        /** Tombstone: discarded at its slot without running and
         *  without advancing the clock (see Timer). */
        bool cancelled = false;
        /** Partition confinement tag (kNoPartition = unconfined). */
        std::int32_t part = -1;
        void (*invoke)(EventNode &) = nullptr;
        /** Null for trivially destructible callbacks. */
        void (*destroy)(EventNode &) = nullptr;
        alignas(std::max_align_t)
            unsigned char storage[kInlineCallbackBytes];
    };

    /** One buffered side effect of a window-executed event. */
    struct Effect
    {
        EventNode *node;
        /** False: spawn (adopt @c node into the heap at commit).
         *  True: deferred call (invoke serially at commit, then
         *  recycle @c node without a seq stamp -- the serial engine
         *  never allocated it). */
        bool defer;
    };

    /**
     * Per-worker execution context for one parallel window. Spawned
     * nodes are drawn first from the engine's shared reserve of
     * recycled nodes (claimed by a lock-free index bump), then from
     * worker-private slabs; adopted nodes later recycle through the
     * queue's own free list, so steady-state memory stays bounded.
     * Owned by the engine: its slabs must outlive the queue's heap.
     */
    struct WindowCtx
    {
        EventQueue *queue = nullptr;
        /** Executing event's timestamp (the worker-visible now()). */
        Cycles time = 0;
        /** Tag for spawns; PartitionScope swaps it in-window. */
        std::int32_t scopePart = -1;
        /** Program-order effect log, spans recorded per seed. */
        std::vector<Effect> effects;
        std::vector<EventNode *> *reserve = nullptr;
        std::atomic<std::size_t> *reserveNext = nullptr;
        std::vector<std::unique_ptr<EventNode[]>> slabs;
        std::size_t slabUsed = kSlabEvents;
    };

    template <typename D>
    static constexpr bool
    storesInline()
    {
        return sizeof(D) <= kInlineCallbackBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    /** Move @p fn into @p node's storage and set its vtable slots. */
    template <typename F>
    static void
    emplaceCallback(EventNode &node, F &&fn)
    {
        using D = decayed<F>;
        if constexpr (storesInline<D>()) {
            ::new (static_cast<void *>(node.storage))
                D(std::forward<F>(fn));
            node.invoke = [](EventNode &n) {
                (*std::launder(reinterpret_cast<D *>(n.storage)))();
            };
            if constexpr (std::is_trivially_destructible_v<D>)
                node.destroy = nullptr;
            else
                node.destroy = [](EventNode &n) {
                    std::launder(reinterpret_cast<D *>(n.storage))
                        ->~D();
                };
        } else {
            // Oversized callback: box it. The node still recycles
            // through the slab pool; only the callable itself is a
            // heap object.
            ::new (static_cast<void *>(node.storage))
                D *(new D(std::forward<F>(fn)));
            node.invoke = [](EventNode &n) {
                (**std::launder(reinterpret_cast<D **>(n.storage)))();
            };
            node.destroy = [](EventNode &n) {
                delete *std::launder(
                    reinterpret_cast<D **>(n.storage));
            };
        }
    }

    static bool
    before(const EventNode &a, const EventNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    static EventNode *meld(EventNode *a, EventNode *b);
    static EventNode *mergePairs(EventNode *first);

    /** fatal() helpers kept out of the header's template bodies. */
    void checkSchedule(Cycles when) const;
    [[noreturn]] static void nullCallback();
    [[noreturn]] static void cancellableInWindow();

    /** Take a node from the free list / slab, stamped (when, seq). */
    EventNode *acquire(Cycles when);
    /** Link an initialized node into the pending heap. */
    void push(EventNode *node);
    /** Unlink and return the earliest pending node. */
    EventNode *popMin();
    /** Destroy the node's callback and recycle it. */
    void release(EventNode *node);
    /** Recycle a node with *no* seq re-stamp (deferred-call nodes
     *  the serial engine never allocated must not advance nextSeq). */
    void recycleRaw(EventNode *node);
    /** Move every free-list node into @p out (engine recycling). */
    void drainFreeList(std::vector<EventNode *> &out);

    /** This thread's window context when it belongs to this queue. */
    WindowCtx *windowCtx() const
    {
        WindowCtx *win = tlWindow;
        return (win && win->queue == this) ? win : nullptr;
    }
    Cycles windowNow() const;
    EventNode *windowAcquire(WindowCtx &win, Cycles when);

    std::int32_t scopePartition() const;
    void setScopePartition(std::int32_t part);

    /** Serial in-place execution of everything at time <= horizon
     *  (inclusive), including events those events schedule. */
    std::uint64_t runSerialBatch(Cycles horizon);
    /** Out-of-line runner trampoline (defined in parallel.cc). */
    std::uint64_t runParallel();

    /** Set on the executing worker thread for window dispatch. */
    static thread_local WindowCtx *tlWindow;

    EventNode *root = nullptr;
    EventNode *freeList = nullptr;
    std::vector<std::unique_ptr<EventNode[]>> slabs;
    /** Nodes handed out of the newest slab so far. */
    std::size_t slabUsed = kSlabEvents;
    std::size_t freeCount = 0;
    std::size_t pendingCount = 0;
    std::size_t peakPendingCount = 0;
    std::uint64_t truncatedRuns = 0;
    std::uint64_t eventBudget = UINT64_MAX;
    std::uint64_t executedTotal = 0;
    Cycles currentTime = 0;
    std::uint64_t nextSeq = 0;
    /** Tag stamped onto acquired events (serial path / replay). */
    std::int32_t activePartition = kNoPartition;
    /** True while farm workers are executing a window. */
    bool windowOpen = false;
    /** Non-null while a window commit is replaying: checkSchedule
     *  additionally validates times against the window's committed
     *  per-partition floors (the lookahead contract's backstop). */
    const ParallelEngine *replayEngine = nullptr;
    ParallelEngine *runner = nullptr;
};

inline bool
EventQueue::Timer::armed() const
{
    return node && node->seq == seq && !node->cancelled;
}

inline void
EventQueue::Timer::cancel()
{
    if (node && node->seq == seq)
        node->cancelled = true;
}

} // namespace ct::sim

#endif // CT_SIM_EVENT_H
