/**
 * @file
 * Minimal discrete-event core used by the end-to-end communication
 * timeline. Events are callbacks ordered by (time, insertion order);
 * ties execute in insertion order to keep runs deterministic.
 */

#ifndef CT_SIM_EVENT_H
#define CT_SIM_EVENT_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/addr.h"

namespace ct::sim {

/** Deterministic event queue driving the simulation clock. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Cycles now() const { return currentTime; }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void schedule(Cycles when, Callback cb);

    /** Schedule @p cb to run @p delay cycles from now. */
    void scheduleAfter(Cycles delay, Callback cb);

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /**
     * Run until no events remain (or @p max_events fired, as a
     * runaway guard). Returns the number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  private:
    struct Event
    {
        Cycles when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Cycles currentTime = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace ct::sim

#endif // CT_SIM_EVENT_H
