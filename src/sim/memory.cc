#include "memory.h"

#include "util/logging.h"

namespace ct::sim {

MemorySystem::MemorySystem(const MemoryConfig &config)
    : cfg(config), dramModel(cfg.dram), cacheModel(cfg.cache),
      wbq(cfg.writeBuffer, dramModel), rdal(cfg.readAhead, dramModel),
      pipeline(cfg.loadPipeline), busModel(cfg.bus)
{
    if (cfg.readAhead.enabled &&
        cfg.readAhead.lineBytes != cfg.cache.lineBytes)
        util::fatal("MemorySystem: read-ahead line size must match "
                    "the cache line size");
}

Cycles
MemorySystem::load(Addr addr, Cycles now, BusMaster master,
                   bool streaming)
{
    // Pipelined loads bypass the cache entirely (i860 pfld).
    if (cfg.loadPipeline.enabled && streaming) {
        Cycles bus_extra =
            busModel.transact(master, util::wordBytes, now);
        Cycles completes =
            dramModel
                .access(addr, util::wordBytes, false, now + bus_extra)
                .complete;
        return bus_extra + pipeline.load(completes, now + bus_extra);
    }

    auto result = cacheModel.load(addr);
    if (result.hit)
        return cfg.cacheHitCycles;

    Addr line = alignDown(addr, cfg.cache.lineBytes);
    Cycles fill = rdal.fill(line, now);
    Cycles bus_extra =
        busModel.transact(master, cfg.cache.lineBytes, now + fill);
    Cycles total = cfg.missOverheadCycles + fill + bus_extra;
    if (result.writeBack) {
        Cycles wb = dramModel
                        .access(result.writeBackLine,
                                cfg.cache.lineBytes, true, now + total)
                        .complete -
                    (now + total);
        total += wb;
    }
    return total;
}

Cycles
MemorySystem::store(Addr addr, Cycles now, BusMaster master)
{
    auto result = cacheModel.store(addr);
    Cycles total = cfg.storeIssueCycles;
    if (result.toMemory) {
        total += wbq.store(addr, util::wordBytes, now);
        total += busModel.transact(master, util::wordBytes, now);
    }
    if (result.fill) {
        // Write-allocate: fetch the line before dirtying it.
        Cycles fill =
            dramModel
                .access(alignDown(addr, cfg.cache.lineBytes),
                        cfg.cache.lineBytes, false, now + total)
                .complete -
            (now + total);
        total += fill;
    }
    if (result.writeBack) {
        Cycles wb = dramModel
                        .access(result.writeBackLine,
                                cfg.cache.lineBytes, true, now + total)
                        .complete -
                    (now + total);
        total += wb;
    }
    return total;
}

Cycles
MemorySystem::engineRead(Addr addr, Bytes bytes, Cycles now,
                         BusMaster master)
{
    Cycles bus_extra = busModel.transact(master, bytes, now);
    Cycles completes =
        dramModel.access(addr, bytes, false, now + bus_extra).complete;
    return completes - now;
}

Cycles
MemorySystem::engineWrite(Addr addr, Bytes bytes, Cycles now,
                          BusMaster master)
{
    // Keep the processor cache coherent with background deposits.
    for (Addr line = alignDown(addr, cfg.cache.lineBytes);
         line < addr + bytes; line += cfg.cache.lineBytes)
        cacheModel.invalidateLine(line);
    Cycles bus_extra = busModel.transact(master, bytes, now);
    Cycles completes =
        dramModel.access(addr, bytes, true, now + bus_extra).complete;
    return completes - now;
}

Cycles
MemorySystem::fence(Cycles now)
{
    Cycles wait = wbq.drainTime(now);
    wait = std::max(wait, pipeline.drainTime(now));
    return wait;
}

void
MemorySystem::synchronize()
{
    rdal.reset();
    pipeline.reset();
}

} // namespace ct::sim
