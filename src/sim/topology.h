/**
 * @file
 * Direct-network topology: k-ary n-dimensional mesh or torus with
 * dimension-order routing, as used by the T3D (3-D torus) and the
 * Paragon (2-D mesh). Provides routes for the link-level network
 * model and static link-load analysis from which the congestion
 * factor of a traffic pattern is derived (paper §4.3).
 *
 * The topology also carries an outage model: any directed link or
 * any node can be marked down from a given cycle onward. Routing
 * queries are health-aware -- healthyRoute() misroutes around dead
 * links (the other way around the ring of the affected dimension,
 * falling back to a breadth-first search when no per-dimension
 * detour exists) -- and the static link-load analysis recomputes
 * congestion over the detoured routes, so the §4.3 numbers degrade
 * honestly when the fabric does.
 *
 * A downed *node* stops injecting and draining traffic; its router
 * keeps forwarding (on the T3D the switch is physically separate
 * from the PE and survives processor death). Killing the routing
 * through a position is expressed by downing its links instead.
 */

#ifndef CT_SIM_TOPOLOGY_H
#define CT_SIM_TOPOLOGY_H

#include <cstdint>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/packet.h"

namespace ct::sim {

/** Identifies one directed inter-router channel. */
using LinkId = std::int32_t;

/** "Never": the down-cycle of a healthy link or node. */
inline constexpr Cycles kNeverDown =
    std::numeric_limits<Cycles>::max();

/** Geometry of the direct network. */
struct TopologyConfig
{
    std::vector<int> dims; ///< radix per dimension, e.g. {4,4,4}
    bool torus = true;     ///< wrap-around links (T3D); false = mesh
    /**
     * Nodes per router injection port. The T3D attaches two
     * processing elements to each network port, which makes the
     * minimal congestion two (§4.3).
     */
    int nodesPerPort = 1;
};

/**
 * A periodic down/up schedule for a link or node ("flapping"): from
 * cycle @p at onward, the component is down for the first @p down
 * cycles of every @p period cycles and up for the rest. Unlike a
 * permanent outage the component keeps coming back, so a transport
 * should keep retrying instead of writing the channel off.
 */
struct FlapSpec
{
    Cycles at = 0;     ///< first down cycle
    Cycles period = 0; ///< cycle length of the down/up pattern
    Cycles down = 0;   ///< down time at the start of each period
};

/** One (src, dst, bytes) demand of a traffic pattern. */
struct TrafficDemand
{
    NodeId src;
    NodeId dst;
    Bytes bytes;
};

/** A health-aware route plus how it was obtained. */
struct RouteInfo
{
    std::vector<LinkId> links;
    /** False when no live path exists (partition or dead port). */
    bool ok = true;
    /** True when the route deviates from plain dimension order. */
    bool rerouted = false;
    /** Dead links encountered while probing (the detour's cause). */
    std::vector<LinkId> avoided;
};

/**
 * Result of a static link-load analysis. Besides the §4.3 congestion
 * factor it reports how many demands actually found a live route, so
 * callers can tell "perfectly balanced" (factor 1.0, demands routed)
 * from "nothing is routable at all" (factor 1.0, routed == 0) --
 * previously indistinguishable.
 */
struct CongestionReport
{
    /** Max link load over mean per-demand bytes, clamped >= 1. */
    double factor = 1.0;
    /** Demands that carried load (non-zero bytes, live route). */
    int routed = 0;
    /** Demands skipped because no live route exists. */
    int unroutable = 0;
    /** Distinct links touched by the routed demands. */
    int touchedLinks = 0;

    /** True when there was traffic to route but none got through. */
    bool allUnroutable() const { return routed == 0 && unroutable > 0; }
};

/**
 * Reusable buffers for analyzeCongestion(). Footprint is
 * O(links touched by the pattern), not O(total links); reusing one
 * scratch across calls avoids re-allocating the load map and route
 * buffers per analysis. Not thread-safe: one scratch per caller.
 */
struct CongestionScratch
{
    std::unordered_map<LinkId, double> load;
    std::vector<LinkId> route;
    RouteInfo healthy;
};

/** Dimension-order-routed topology with link enumeration. */
class Topology
{
  public:
    explicit Topology(const TopologyConfig &config);

    int nodeCount() const { return numNodes; }

    /** Total number of directed links (network + injection/ejection). */
    int linkCount() const { return numLinks; }

    /** Directed network links only (excludes injection/ejection). */
    int networkLinkCount() const { return networkLinksCount; }

    /** Coordinates of @p node. */
    std::vector<int> coords(NodeId node) const;

    /** Node at the given coordinates. */
    NodeId nodeAt(const std::vector<int> &coords) const;

    /**
     * Dimension-order route from @p src to @p dst: the injection
     * link, every traversed network link, and the ejection link, in
     * order. A self-send returns an empty route. Ignores outages;
     * use healthyRoute() for the fault-tolerant path.
     */
    std::vector<LinkId> route(NodeId src, NodeId dst) const;

    /**
     * route() into a caller-owned buffer: @p links is cleared (its
     * capacity kept) and refilled, so hot loops routing many demands
     * reuse one allocation instead of churning a vector per call.
     */
    void route(NodeId src, NodeId dst,
               std::vector<LinkId> &links) const;

    /** Number of network hops between two nodes. */
    int hopCount(NodeId src, NodeId dst) const;

    // Outage model.

    /** Mark a directed link down from cycle @p at onward. */
    void downLink(LinkId link, Cycles at);

    /** Mark a node down (no inject/drain) from cycle @p at onward. */
    void downNode(NodeId node, Cycles at);

    /** Give a directed link a periodic down/up schedule. */
    void flapLink(LinkId link, const FlapSpec &flap);

    /** Give a node a periodic down/up schedule. */
    void flapNode(NodeId node, const FlapSpec &flap);

    /** True once any outage has been registered (even a future one). */
    bool anyOutages() const { return outagesRegistered; }

    /** True when any link or node has a flap schedule. */
    bool anyFlaps() const
    {
        return !linkFlaps.empty() || !nodeFlaps.empty();
    }

    bool linkAlive(LinkId link, Cycles now) const;
    bool nodeAlive(NodeId node, Cycles now) const;

    /**
     * True when @p node is down at @p now but only transiently: it is
     * inside a flap window and not permanently dead, so traffic to it
     * is worth retrying.
     */
    bool nodeRecovers(NodeId node, Cycles now) const;

    /** Number of links / nodes down at @p now. */
    int downedLinks(Cycles now = kNeverDown - 1) const;
    int downedNodes(Cycles now = kNeverDown - 1) const;

    /**
     * Fault-tolerant route at time @p now. Starts from dimension
     * order; when the preferred direction of a dimension crosses a
     * dead link, tries the other way around that dimension's ring
     * (torus only), and falls back to a breadth-first search over
     * live links when no per-dimension detour exists. Injection and
     * ejection ports must be alive for the route to exist. Endpoint
     * liveness is *not* checked here -- the network gates that.
     */
    RouteInfo healthyRoute(NodeId src, NodeId dst, Cycles now) const;

    /**
     * healthyRoute() into a caller-owned RouteInfo: @p info's vectors
     * are cleared (capacity kept) and its flags reset, so hot loops
     * reuse the route buffers instead of churning them per demand.
     */
    void healthyRoute(NodeId src, NodeId dst, Cycles now,
                      RouteInfo &info) const;

    /**
     * Static congestion analysis of a traffic pattern: route every
     * demand, accumulate per-link byte loads, and return the maximum
     * link load divided by the mean per-demand bytes -- i.e. how many
     * times the busiest link is traversed relative to a single
     * demand. This matches the paper's notion that "a network link is
     * traversed by twice as much data as it can support" (§4.3).
     *
     * Routes are health-aware at time @p now (default: all
     * registered outages applied), so the congestion factor reflects
     * detoured traffic; unroutable demands are excluded from the
     * load (and counted in the report).
     *
     * Link loads accumulate sparsely over the links the routed
     * demands touch -- footprint O(touched links), not O(total
     * links) -- so the analysis stays cheap at thousands of nodes.
     */
    CongestionReport
    analyzeCongestion(const std::vector<TrafficDemand> &demands,
                      Cycles now, CongestionScratch &scratch) const;

    /** analyzeCongestion() with a local single-use scratch. */
    CongestionReport
    analyzeCongestion(const std::vector<TrafficDemand> &demands,
                      Cycles now = kNeverDown - 1) const;

    /**
     * The congestion factor alone. Returns 1.0 when no demand is
     * routable -- use analyzeCongestion() to tell that apart from a
     * balanced network.
     */
    double congestionOf(const std::vector<TrafficDemand> &demands,
                        Cycles now = kNeverDown - 1) const;

    const TopologyConfig &config() const { return cfg; }

  private:
    /** Directed network link leaving @p node along @p dim. */
    LinkId networkLink(NodeId node, std::size_t dim, bool positive) const;
    LinkId injectionLink(NodeId node) const;
    LinkId ejectionLink(NodeId node) const;

    /** Step from @p coords one hop along @p dim; returns the link. */
    LinkId stepLink(std::vector<int> &coords, std::size_t dim,
                    bool positive) const;

    /** BFS over live network links; empty when unreachable. */
    std::vector<LinkId> bfsRoute(NodeId src, NodeId dst,
                                 Cycles now) const;

    TopologyConfig cfg;
    int numNodes = 0;
    int numLinks = 0;
    int networkLinksCount = 0;
    int injectionPorts = 0;
    bool outagesRegistered = false;
    /** Cycle each link/node goes down (kNeverDown = healthy). */
    std::vector<Cycles> linkDownAt;
    std::vector<Cycles> nodeDownAt;
    /** Sparse periodic down/up schedules (flapping components). */
    std::map<LinkId, FlapSpec> linkFlaps;
    std::map<NodeId, FlapSpec> nodeFlaps;
};

} // namespace ct::sim

#endif // CT_SIM_TOPOLOGY_H
