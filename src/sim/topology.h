/**
 * @file
 * Direct-network topology: k-ary n-dimensional mesh or torus with
 * dimension-order routing, as used by the T3D (3-D torus) and the
 * Paragon (2-D mesh). Provides routes for the link-level network
 * model and static link-load analysis from which the congestion
 * factor of a traffic pattern is derived (paper §4.3).
 */

#ifndef CT_SIM_TOPOLOGY_H
#define CT_SIM_TOPOLOGY_H

#include <cstdint>
#include <vector>

#include "sim/packet.h"

namespace ct::sim {

/** Identifies one directed inter-router channel. */
using LinkId = std::int32_t;

/** Geometry of the direct network. */
struct TopologyConfig
{
    std::vector<int> dims; ///< radix per dimension, e.g. {4,4,4}
    bool torus = true;     ///< wrap-around links (T3D); false = mesh
    /**
     * Nodes per router injection port. The T3D attaches two
     * processing elements to each network port, which makes the
     * minimal congestion two (§4.3).
     */
    int nodesPerPort = 1;
};

/** One (src, dst, bytes) demand of a traffic pattern. */
struct TrafficDemand
{
    NodeId src;
    NodeId dst;
    Bytes bytes;
};

/** Dimension-order-routed topology with link enumeration. */
class Topology
{
  public:
    explicit Topology(const TopologyConfig &config);

    int nodeCount() const { return numNodes; }

    /** Total number of directed links (network + injection/ejection). */
    int linkCount() const { return numLinks; }

    /** Coordinates of @p node. */
    std::vector<int> coords(NodeId node) const;

    /** Node at the given coordinates. */
    NodeId nodeAt(const std::vector<int> &coords) const;

    /**
     * Dimension-order route from @p src to @p dst: the injection
     * link, every traversed network link, and the ejection link, in
     * order. A self-send returns an empty route.
     */
    std::vector<LinkId> route(NodeId src, NodeId dst) const;

    /** Number of network hops between two nodes. */
    int hopCount(NodeId src, NodeId dst) const;

    /**
     * Static congestion analysis of a traffic pattern: route every
     * demand, accumulate per-link byte loads, and return the maximum
     * link load divided by the mean per-demand bytes -- i.e. how many
     * times the busiest link is traversed relative to a single
     * demand. This matches the paper's notion that "a network link is
     * traversed by twice as much data as it can support" (§4.3).
     */
    double congestionOf(const std::vector<TrafficDemand> &demands) const;

    const TopologyConfig &config() const { return cfg; }

  private:
    /** Directed network link leaving @p node along @p dim. */
    LinkId networkLink(NodeId node, std::size_t dim, bool positive) const;
    LinkId injectionLink(NodeId node) const;
    LinkId ejectionLink(NodeId node) const;

    TopologyConfig cfg;
    int numNodes = 0;
    int numLinks = 0;
    int networkLinksCount = 0;
    int injectionPorts = 0;
};

} // namespace ct::sim

#endif // CT_SIM_TOPOLOGY_H
