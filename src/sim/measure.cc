#include "measure.h"

#include <algorithm>
#include <array>
#include <initializer_list>

#include "util/logging.h"
#include "util/rng.h"

namespace ct::sim {

namespace {

using core::AccessPattern;

constexpr std::uint64_t chunkWords = 64;

/** Address-space bytes a walk of @p words elements spans. */
Bytes
walkSpanBytes(const AccessPattern &p, std::uint64_t words)
{
    switch (p.kind()) {
      case core::PatternKind::Contiguous:
        return words * 8;
      case core::PatternKind::Strided: {
        std::uint64_t blocks = (words + p.block() - 1) / p.block();
        return blocks * p.stride() * 8;
      }
      case core::PatternKind::Indexed:
        return words * 8 * 2; // data + index array
      case core::PatternKind::Fixed:
        break;
    }
    return 0;
}

/**
 * Node config whose RAM is wide enough for the given walk spans.
 * The widening is address-space only: the bump allocator hands out
 * the same addresses whatever the capacity, so DRAM bank and cache
 * mappings -- and therefore timing -- are unchanged; sparse paging
 * plus the measurement residency window keep host memory O(1) in the
 * spans. This is what lets a stride sweep walk a footprint larger
 * than a node's physical RAM (fig4) without either kind of OOM.
 */
NodeConfig
arenaConfig(const NodeConfig &cfg, std::initializer_list<Bytes> spans)
{
    Bytes need = 4096;
    for (Bytes s : spans)
        need += s + 2 * (cfg.ramAllocSkew + 64);
    NodeConfig arena = cfg;
    arena.ramBytes = std::max(arena.ramBytes, need);
    return arena;
}

/** Allocate a walk of @p words elements with pattern @p p. */
PatternWalk
makeWalk(Node &node, AccessPattern p, std::uint64_t words,
         util::Rng &rng)
{
    NodeRam &ram = node.ram();
    switch (p.kind()) {
      case core::PatternKind::Contiguous: {
        Addr base = ram.alloc(words * 8);
        return contiguousWalk(base);
      }
      case core::PatternKind::Strided: {
        std::uint64_t blocks = (words + p.block() - 1) / p.block();
        Addr base = ram.alloc(blocks * p.stride() * 8);
        return stridedWalk(base, p.stride(), p.block());
      }
      case core::PatternKind::Indexed: {
        Addr base = ram.alloc(words * 8);
        Addr idx = ram.alloc(words * 8);
        auto perm = rng.permutation(words);
        for (std::uint64_t i = 0; i < words; ++i)
            ram.writeWord(idx + i * 8, perm[i]);
        // The index array is re-read throughout the walk; keep it
        // out of the residency window's recycling.
        ram.pinRange(idx, words * 8);
        return indexedWalk(base, idx);
    }
      case core::PatternKind::Fixed:
        break;
    }
    util::fatal("makeWalk: pattern must touch memory");
}

/**
 * Fill one chunk of a walk with recognizable values. Measurements
 * fill each chunk right before the kernel consumes it (instead of
 * pre-filling the whole walk) so that, under the residency window,
 * every page is written, read, and recyclable -- host memory never
 * holds more than the window even for footprints beyond RAM. The
 * fill is data-plane only; it costs no simulated time.
 */
void
fillChunk(NodeRam &ram, const PatternWalk &walk, std::uint64_t first,
          std::uint64_t count)
{
    WalkCursor cur(walk, first);
    for (std::uint64_t i = 0; i < count; ++i, cur.advance())
        ram.writeWord(cur.elementAddr(ram), 0x1000 + first + i);
}

void
recordStats(const NodeRam &ram, MeasureStats *stats)
{
    if (!stats)
        return;
    stats->peakResidentPages = ram.peakResidentPages();
    stats->recycledPages = ram.recycledPages();
}

} // namespace

util::MBps
measureLocalCopy(const MachineConfig &cfg, core::AccessPattern x,
                 core::AccessPattern y, std::uint64_t words,
                 MeasureStats *stats)
{
    Node node(arenaConfig(cfg.node, {walkSpanBytes(x, words),
                                     walkSpanBytes(y, words)}));
    node.ram().setResidencyLimit(measureResidentPages);
    util::Rng rng(12345);
    PatternWalk src = makeWalk(node, x, words, rng);
    PatternWalk dst = makeWalk(node, y, words, rng);
    Cycles elapsed = 0;
    for (std::uint64_t first = 0; first < words; first += chunkWords) {
        std::uint64_t count = std::min(chunkWords, words - first);
        fillChunk(node.ram(), src, first, count);
        elapsed += node.processor().copy(src, dst, first, count,
                                         elapsed);
    }
    elapsed += node.processor().fence(elapsed);
    recordStats(node.ram(), stats);
    return util::toMBps(words * 8, elapsed, cfg.clockHz);
}

util::MBps
measureLoadSend(const MachineConfig &cfg, core::AccessPattern x,
                std::uint64_t words)
{
    Node node(arenaConfig(cfg.node, {walkSpanBytes(x, words)}));
    node.ram().setResidencyLimit(measureResidentPages);
    util::Rng rng(12345);
    PatternWalk src = makeWalk(node, x, words, rng);
    std::vector<std::uint64_t> sink;
    sink.reserve(chunkWords);
    Cycles elapsed = 0;
    for (std::uint64_t first = 0; first < words; first += chunkWords) {
        std::uint64_t count = std::min(chunkWords, words - first);
        fillChunk(node.ram(), src, first, count);
        elapsed += node.processor().gatherToPort(src, first, count,
                                                 elapsed, sink);
        sink.clear();
    }
    return util::toMBps(words * 8, elapsed, cfg.clockHz);
}

std::optional<util::MBps>
measureFetchSend(const MachineConfig &cfg, std::uint64_t words)
{
    Node node(arenaConfig(cfg.node, {words * 8}));
    if (!node.fetchEngine().enabled())
        return std::nullopt;
    Addr base = node.ram().alloc(words * 8);
    Cycles elapsed = node.fetchEngine().fetch(base, words * 8);
    return util::toMBps(words * 8, elapsed, cfg.clockHz);
}

std::optional<util::MBps>
measureReceiveStore(const MachineConfig &cfg, core::AccessPattern y,
                    std::uint64_t words)
{
    Node node(arenaConfig(cfg.node, {walkSpanBytes(y, words)}));
    if (!node.hasCoProcessor())
        return std::nullopt;
    node.ram().setResidencyLimit(measureResidentPages);
    util::Rng rng(12345);
    PatternWalk dst = makeWalk(node, y, words, rng);
    std::array<std::uint64_t, chunkWords> payload;
    Cycles elapsed = 0;
    for (std::uint64_t first = 0; first < words; first += chunkWords) {
        std::uint64_t count = std::min(chunkWords, words - first);
        for (std::uint64_t i = 0; i < count; ++i)
            payload[i] = 0x2000 + first + i;
        elapsed += node.coProcessor().scatterFromPort(
            dst, first, count, elapsed, payload.data());
    }
    elapsed += node.coProcessor().fence(elapsed);
    return util::toMBps(words * 8, elapsed, cfg.clockHz);
}

std::optional<util::MBps>
measureReceiveDeposit(const MachineConfig &cfg, core::AccessPattern y,
                      std::uint64_t words)
{
    Node node(arenaConfig(cfg.node, {walkSpanBytes(y, words)}));
    DepositEngine &engine = node.depositEngine();
    if (!engine.enabled())
        return std::nullopt;
    node.ram().setResidencyLimit(measureResidentPages);
    util::Rng rng(12345);
    PatternWalk dst = makeWalk(node, y, words, rng);

    bool contiguous = y.isContiguous();
    Cycles done = 0;
    for (std::uint64_t first = 0; first < words; first += chunkWords) {
        std::uint64_t count = std::min(chunkWords, words - first);
        Packet pkt;
        pkt.src = 0;
        pkt.dst = 0;
        pkt.framing =
            contiguous ? Framing::DataOnly : Framing::AddrDataPair;
        WalkCursor cur(dst, first);
        for (std::uint64_t i = 0; i < count; ++i, cur.advance()) {
            pkt.words.push_back(0x3000 + first + i);
            if (!contiguous)
                pkt.addrs.push_back(cur.elementAddr(node.ram()));
        }
        if (contiguous)
            pkt.destBase = dst.base + first * 8;
        if (!engine.accepts(pkt))
            return std::nullopt;
        done = engine.deposit(pkt, 0);
    }
    return util::toMBps(words * 8, done, cfg.clockHz);
}

util::MBps
measureNetwork(const MachineConfig &cfg, Framing framing,
               int congestion, std::uint64_t words_per_flow)
{
    if (congestion < 1 || congestion > 4)
        util::fatal("measureNetwork: congestion must be 1, 2 or 4");

    // A 16-node ring (or line for a mesh) partition: senders 0, 2,
    // 4, 6 target nodes 8, 10, 12, 14; with k active senders the
    // middle link carries k flows while injection and ejection ports
    // stay distinct.
    MachineConfig ring = cfg;
    ring.topology.dims = {16};
    Machine machine(ring);

    std::uint64_t flows = static_cast<std::uint64_t>(congestion);
    std::uint64_t remaining = flows * ((words_per_flow + chunkWords - 1) /
                                       chunkWords);
    Cycles last_delivery = 0;
    machine.network().setDeliver(
        [&](Packet &&, Cycles time) {
            last_delivery = std::max(last_delivery, time);
            --remaining;
        });

    for (std::uint64_t f = 0; f < flows; ++f) {
        NodeId src = static_cast<NodeId>(2 * f);
        NodeId dst = static_cast<NodeId>(8 + 2 * f);
        for (std::uint64_t first = 0; first < words_per_flow;
             first += chunkWords) {
            std::uint64_t count =
                std::min(chunkWords, words_per_flow - first);
            Packet pkt;
            pkt.src = src;
            pkt.dst = dst;
            pkt.framing = framing;
            pkt.flow = static_cast<std::uint32_t>(f);
            pkt.words.assign(count, 0x4000);
            if (framing == Framing::AddrDataPair)
                pkt.addrs.assign(count, 0);
            else
                pkt.destBase = 0;
            machine.network().send(std::move(pkt));
        }
    }
    machine.events().run();
    if (remaining != 0)
        util::panic("measureNetwork: lost packets");
    return util::toMBps(words_per_flow * 8, last_delivery,
                        cfg.clockHz);
}

core::ThroughputTable
measuredTable(const MachineConfig &cfg)
{
    using P = AccessPattern;
    core::ThroughputTable table;
    table.setMachineName(cfg.name + " (sim)");

    const std::uint32_t strides[] = {1, 2, 4, 8, 16, 32, 64};
    std::vector<P> patterns;
    for (std::uint32_t s : strides)
        patterns.push_back(P::strided(s));
    patterns.push_back(P::indexed());

    for (const P &p : patterns) {
        // Local copies: vary one side at a time, like Table 1.
        table.set(core::localCopy(P::contiguous(), p),
                  measureLocalCopy(cfg, P::contiguous(), p));
        if (!p.isContiguous())
            table.set(core::localCopy(p, P::contiguous()),
                      measureLocalCopy(cfg, p, P::contiguous()));

        table.set(core::loadSend(p), measureLoadSend(cfg, p));
        if (auto r = measureReceiveStore(cfg, p))
            table.set(core::receiveStore(p), *r);
        if (auto d = measureReceiveDeposit(cfg, p))
            table.set(core::receiveDeposit(p), *d);
    }
    if (auto f = measureFetchSend(cfg))
        table.set(core::fetchSend(P::contiguous()), *f);

    for (int congestion : {1, 2, 4}) {
        table.setNetwork(
            core::TransferOp::NetData, congestion,
            measureNetwork(cfg, Framing::DataOnly, congestion));
        table.setNetwork(
            core::TransferOp::NetAddrData, congestion,
            measureNetwork(cfg, Framing::AddrDataPair, congestion));
    }
    return table;
}

} // namespace ct::sim
