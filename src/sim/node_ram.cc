#include "node_ram.h"

#include "util/logging.h"

namespace ct::sim {

NodeRam::NodeRam(Bytes size_bytes, Bytes alloc_skew_bytes)
    : allocSkew(alloc_skew_bytes)
{
    if (size_bytes == 0)
        util::fatal("NodeRam: zero size");
    storage.reset(static_cast<std::uint8_t *>(
        std::calloc(size_bytes, 1)));
    if (!storage)
        util::fatal("NodeRam: allocation of ", size_bytes,
                    " bytes failed");
    capacity = size_bytes;
}

Addr
NodeRam::alloc(Bytes bytes, Bytes align)
{
    if (!isPowerOfTwo(align))
        util::fatal("NodeRam::alloc: alignment not a power of two");
    Addr base = (next + align - 1) & ~(static_cast<Addr>(align) - 1);
    if (base + bytes > capacity)
        util::fatal("NodeRam::alloc: out of memory (", capacity,
                    " bytes total, need ", base + bytes, ")");
    next = base + bytes + allocSkew;
    return base;
}

void
NodeRam::reset()
{
    next = 0;
    std::memset(storage.get(), 0, capacity);
}

void
NodeRam::checkRange(Addr addr, Bytes bytes) const
{
    if (addr + bytes > capacity)
        util::fatal("NodeRam: access at ", addr, "+", bytes,
                    " beyond size ", capacity);
}

std::uint64_t
NodeRam::readWord(Addr addr) const
{
    checkRange(addr, 8);
    std::uint64_t value;
    std::memcpy(&value, storage.get() + addr, 8);
    return value;
}

void
NodeRam::writeWord(Addr addr, std::uint64_t value)
{
    checkRange(addr, 8);
    std::memcpy(storage.get() + addr, &value, 8);
}

double
NodeRam::readDouble(Addr addr) const
{
    checkRange(addr, 8);
    double value;
    std::memcpy(&value, storage.get() + addr, 8);
    return value;
}

void
NodeRam::writeDouble(Addr addr, double value)
{
    checkRange(addr, 8);
    std::memcpy(storage.get() + addr, &value, 8);
}

} // namespace ct::sim
