#include "node_ram.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace ct::sim {

NodeRam::NodeRam(Bytes size_bytes, Bytes alloc_skew_bytes)
    : allocSkew(alloc_skew_bytes)
{
    if (size_bytes == 0)
        util::fatal("NodeRam: zero size");
    capacity = size_bytes;
}

Addr
NodeRam::alloc(Bytes bytes, Bytes align)
{
    if (!isPowerOfTwo(align))
        util::fatal("NodeRam::alloc: alignment not a power of two");
    Addr base = (next + align - 1) & ~(static_cast<Addr>(align) - 1);
    if (base + bytes > capacity)
        util::fatal("NodeRam::alloc: out of memory (", capacity,
                    " bytes total, need ", base + bytes, ")");
    next = base + bytes + allocSkew;
    return base;
}

void
NodeRam::reset()
{
    next = 0;
    pages.clear();
    recycleQueue.clear();
    pinnedRanges.clear();
    for (TransEntry &entry : translations)
        entry = TransEntry{};
}

void
NodeRam::setResidencyLimit(std::size_t max_pages)
{
    residencyLimit = max_pages;
    if (residencyLimit)
        evictToLimit();
}

void
NodeRam::pinRange(Addr addr, Bytes bytes)
{
    if (bytes == 0)
        return;
    checkRange(addr, bytes);
    Addr first = addr / kPageBytes;
    Addr last = (addr + bytes - 1) / kPageBytes;
    pinnedRanges.emplace_back(first, last);
    // Pages already materialized inside the range may still sit on
    // the recycle queue; mark them so a stale queue entry is skipped.
    for (Addr page = first; page <= last; ++page) {
        auto it = pages.find(page);
        if (it != pages.end())
            it->second.pinned = true;
    }
}

void
NodeRam::outOfRange(Addr addr, Bytes bytes) const
{
    util::fatal("NodeRam: access at ", addr, "+", bytes,
                " beyond size ", capacity);
}

bool
NodeRam::isPinned(Addr page_index) const
{
    for (const auto &[first, last] : pinnedRanges)
        if (page_index >= first && page_index <= last)
            return true;
    return false;
}

const std::uint8_t *
NodeRam::peekPage(Addr page_index) const
{
    TransEntry &entry =
        translations[page_index & (kTransEntries - 1)];
    if (entry.pageIndexPlusOne == page_index + 1)
        return entry.data;
    auto it = pages.find(page_index);
    if (it == pages.end())
        return nullptr;
    entry.pageIndexPlusOne = page_index + 1;
    entry.data = it->second.data.get();
    return entry.data;
}

std::uint8_t *
NodeRam::touchPage(Addr page_index)
{
    TransEntry &entry =
        translations[page_index & (kTransEntries - 1)];
    if (entry.pageIndexPlusOne == page_index + 1)
        return entry.data;
    auto [it, inserted] = pages.try_emplace(page_index);
    Page &page = it->second;
    if (inserted) {
        page.data = std::make_unique<std::uint8_t[]>(kPageBytes);
        page.pinned = isPinned(page_index);
        if (!page.pinned)
            recycleQueue.push_back(page_index);
        if (residencyLimit)
            evictToLimit();
        if (pages.size() > peakResident)
            peakResident = pages.size();
        // evictToLimit may have recycled this very page only if the
        // limit is zero-sized nonsense; guard by re-looking it up.
        it = pages.find(page_index);
        if (it == pages.end())
            util::fatal("NodeRam: residency limit ", residencyLimit,
                        " too small to hold the working page");
    }
    entry.pageIndexPlusOne = page_index + 1;
    entry.data = it->second.data.get();
    return entry.data;
}

void
NodeRam::evictToLimit()
{
    while (pages.size() > residencyLimit && !recycleQueue.empty()) {
        Addr victim = recycleQueue.front();
        recycleQueue.pop_front();
        auto it = pages.find(victim);
        // Stale entries: the page was pinned after materializing.
        if (it == pages.end() || it->second.pinned)
            continue;
        pages.erase(it);
        dropTranslation(victim);
        ++recycled;
    }
}

void
NodeRam::dropTranslation(Addr page_index)
{
    TransEntry &entry =
        translations[page_index & (kTransEntries - 1)];
    if (entry.pageIndexPlusOne == page_index + 1)
        entry = TransEntry{};
}

void
NodeRam::readBytes(Addr addr, void *out, Bytes bytes) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (bytes > 0) {
        Addr page_index = addr / kPageBytes;
        Bytes offset = addr % kPageBytes;
        Bytes chunk = std::min<Bytes>(bytes, kPageBytes - offset);
        const std::uint8_t *page = peekPage(page_index);
        if (page)
            std::memcpy(dst, page + offset, chunk);
        else
            std::memset(dst, 0, chunk);
        addr += chunk;
        dst += chunk;
        bytes -= chunk;
    }
}

void
NodeRam::writeBytes(Addr addr, const void *in, Bytes bytes)
{
    auto *src = static_cast<const std::uint8_t *>(in);
    while (bytes > 0) {
        Addr page_index = addr / kPageBytes;
        Bytes offset = addr % kPageBytes;
        Bytes chunk = std::min<Bytes>(bytes, kPageBytes - offset);
        std::memcpy(touchPage(page_index) + offset, src, chunk);
        addr += chunk;
        src += chunk;
        bytes -= chunk;
    }
}

std::uint64_t
NodeRam::readWordSlow(Addr addr) const
{
    std::uint64_t value;
    readBytes(addr, &value, 8);
    return value;
}

void
NodeRam::writeWordSlow(Addr addr, std::uint64_t value)
{
    writeBytes(addr, &value, 8);
}

} // namespace ct::sim
