#include "processor.h"

#include <cmath>

#include "util/logging.h"

namespace ct::sim {

Processor::Processor(const ProcessorConfig &config, MemorySystem &memory,
                     NodeRam &ram, BusMaster bus_master)
    : cfg(config), mem(memory), nodeRam(ram), master(bus_master)
{
}

Cycles
Processor::loadElement(const PatternWalk &walk, const WalkCursor &cur,
                       Cycles now, std::uint64_t &value)
{
    Cycles cost = 0;
    if (walk.needsIndexLoad())
        cost += mem.load(cur.indexAddr(), now, master);
    Addr addr = cur.elementAddr(nodeRam);
    cost += mem.load(addr, now + cost, master);
    value = nodeRam.readWord(addr);
    return cost;
}

Cycles
Processor::copy(const PatternWalk &src, const PatternWalk &dst,
                std::uint64_t first, std::uint64_t count, Cycles start)
{
    return copy2(src, first, dst, first, count, start);
}

Cycles
Processor::copy2(const PatternWalk &src, std::uint64_t src_first,
                 const PatternWalk &dst, std::uint64_t dst_first,
                 std::uint64_t count, Cycles start)
{
    Cycles now = start;
    WalkCursor scur(src, src_first);
    WalkCursor dcur(dst, dst_first);
    for (std::uint64_t i = 0; i < count;
         ++i, scur.advance(), dcur.advance()) {
        std::uint64_t value = 0;
        now += loadElement(src, scur, now, value);
        if (dst.needsIndexLoad())
            now += mem.load(dcur.indexAddr(), now, master);
        Addr daddr = dcur.elementAddr(nodeRam);
        now += mem.store(daddr, now, master);
        nodeRam.writeWord(daddr, value);
        loopCarry += cfg.loopCyclesPerElem;
        double whole = std::floor(loopCarry);
        loopCarry -= whole;
        now += static_cast<Cycles>(whole);
    }
    return now - start;
}

Cycles
Processor::gatherToPort(const PatternWalk &src, std::uint64_t first,
                        std::uint64_t count, Cycles start,
                        std::vector<std::uint64_t> &words)
{
    Cycles now = start;
    WalkCursor cur(src, first);
    for (std::uint64_t i = 0; i < count; ++i, cur.advance()) {
        std::uint64_t value = 0;
        now += loadElement(src, cur, now, value);
        now += cfg.portStoreCycles;
        words.push_back(value);
        loopCarry += cfg.loopCyclesPerElem;
        double whole = std::floor(loopCarry);
        loopCarry -= whole;
        now += static_cast<Cycles>(whole);
    }
    return now - start;
}

Cycles
Processor::computeRemoteAddrs(const PatternWalk &dst,
                              std::uint64_t first, std::uint64_t count,
                              Cycles start, std::vector<Addr> &addrs)
{
    Cycles now = start;
    WalkCursor cur(dst, first);
    for (std::uint64_t i = 0; i < count; ++i, cur.advance()) {
        if (dst.needsIndexLoad())
            now += mem.load(cur.indexAddr(), now, master);
        addrs.push_back(cur.elementAddr(nodeRam));
    }
    return now - start;
}

Cycles
Processor::scatterFromPort(const PatternWalk &dst, std::uint64_t first,
                           std::uint64_t count, Cycles start,
                           const std::uint64_t *words)
{
    Cycles now = start;
    WalkCursor cur(dst, first);
    for (std::uint64_t i = 0; i < count; ++i, cur.advance()) {
        now += cfg.portLoadCycles;
        if (dst.needsIndexLoad())
            now += mem.load(cur.indexAddr(), now, master);
        Addr daddr = cur.elementAddr(nodeRam);
        now += mem.store(daddr, now, master);
        nodeRam.writeWord(daddr, words[i]);
        loopCarry += cfg.loopCyclesPerElem;
        double whole = std::floor(loopCarry);
        loopCarry -= whole;
        now += static_cast<Cycles>(whole);
    }
    return now - start;
}

} // namespace ct::sim
