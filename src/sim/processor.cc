#include "processor.h"

#include <cmath>

#include "util/logging.h"

namespace ct::sim {

Processor::Processor(const ProcessorConfig &config, MemorySystem &memory,
                     NodeRam &ram, BusMaster bus_master)
    : cfg(config), mem(memory), nodeRam(ram), master(bus_master)
{
}

Cycles
Processor::loadElement(const PatternWalk &walk, std::uint64_t i,
                       Cycles now, std::uint64_t &value)
{
    Cycles cost = 0;
    if (walk.needsIndexLoad())
        cost += mem.load(walk.indexAddr(i), now, master);
    Addr addr = walk.elementAddr(nodeRam, i);
    cost += mem.load(addr, now + cost, master);
    value = nodeRam.readWord(addr);
    return cost;
}

Cycles
Processor::copy(const PatternWalk &src, const PatternWalk &dst,
                std::uint64_t first, std::uint64_t count, Cycles start)
{
    return copy2(src, first, dst, first, count, start);
}

Cycles
Processor::copy2(const PatternWalk &src, std::uint64_t src_first,
                 const PatternWalk &dst, std::uint64_t dst_first,
                 std::uint64_t count, Cycles start)
{
    Cycles now = start;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t value = 0;
        now += loadElement(src, src_first + i, now, value);
        if (dst.needsIndexLoad())
            now += mem.load(dst.indexAddr(dst_first + i), now, master);
        Addr daddr = dst.elementAddr(nodeRam, dst_first + i);
        now += mem.store(daddr, now, master);
        nodeRam.writeWord(daddr, value);
        loopCarry += cfg.loopCyclesPerElem;
        double whole = std::floor(loopCarry);
        loopCarry -= whole;
        now += static_cast<Cycles>(whole);
    }
    return now - start;
}

Cycles
Processor::gatherToPort(const PatternWalk &src, std::uint64_t first,
                        std::uint64_t count, Cycles start,
                        std::vector<std::uint64_t> &words)
{
    Cycles now = start;
    for (std::uint64_t i = first; i < first + count; ++i) {
        std::uint64_t value = 0;
        now += loadElement(src, i, now, value);
        now += cfg.portStoreCycles;
        words.push_back(value);
        loopCarry += cfg.loopCyclesPerElem;
        double whole = std::floor(loopCarry);
        loopCarry -= whole;
        now += static_cast<Cycles>(whole);
    }
    return now - start;
}

Cycles
Processor::computeRemoteAddrs(const PatternWalk &dst,
                              std::uint64_t first, std::uint64_t count,
                              Cycles start, std::vector<Addr> &addrs)
{
    Cycles now = start;
    for (std::uint64_t i = first; i < first + count; ++i) {
        if (dst.needsIndexLoad())
            now += mem.load(dst.indexAddr(i), now, master);
        addrs.push_back(dst.elementAddr(nodeRam, i));
    }
    return now - start;
}

Cycles
Processor::scatterFromPort(const PatternWalk &dst, std::uint64_t first,
                           std::uint64_t count, Cycles start,
                           const std::uint64_t *words)
{
    Cycles now = start;
    for (std::uint64_t i = first; i < first + count; ++i) {
        now += cfg.portLoadCycles;
        if (dst.needsIndexLoad())
            now += mem.load(dst.indexAddr(i), now, master);
        Addr daddr = dst.elementAddr(nodeRam, i);
        now += mem.store(daddr, now, master);
        nodeRam.writeWord(daddr, words[i - first]);
        loopCarry += cfg.loopCyclesPerElem;
        double whole = std::floor(loopCarry);
        loopCarry -= whole;
        now += static_cast<Cycles>(whole);
    }
    return now - start;
}

} // namespace ct::sim
