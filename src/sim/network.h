/**
 * @file
 * Link-level network model. Packets traverse their dimension-order
 * route link by link; every directed link is a FIFO resource with a
 * fixed wire bandwidth, so congestion emerges from link sharing
 * instead of being an input parameter. Chunk-granularity store-and-
 * forward slightly overstates latency compared with wormhole routing
 * but leaves sustained bandwidth -- the quantity the paper's model is
 * built on -- unchanged.
 */

#ifndef CT_SIM_NETWORK_H
#define CT_SIM_NETWORK_H

#include <functional>

#include "sim/event.h"
#include "sim/topology.h"

namespace ct::sim {

/** Wire parameters of the network. */
struct NetworkConfig
{
    /** Wire bytes a link moves per node clock cycle. */
    double wireBytesPerCycle = 1.0;
    /** Fixed framing bytes per packet (header, delimiters). */
    Bytes headerBytes = 16;
    /** Wire bytes per payload word under address-data-pair framing
     *  (8 data bytes + address + per-word framing). */
    Bytes adpBytesPerWord = 16;
    /** Router traversal latency per hop. */
    Cycles hopLatencyCycles = 2;
};

/** Counters. */
struct NetworkStats
{
    std::uint64_t packets = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t wireBytes = 0;
};

/**
 * The machine's interconnect. send() reserves bandwidth on every link
 * of the packet's route (reservations are made in event-time order,
 * so FIFO link occupancy is consistent) and schedules a single
 * delivery callback at the arrival time.
 */
class Network
{
  public:
    using Deliver = std::function<void(Packet &&packet, Cycles time)>;

    Network(const NetworkConfig &config, const Topology &topology,
            EventQueue &queue);

    /** Install the delivery sink (dispatches on packet.dst). */
    void setDeliver(Deliver deliver);

    /** Wire bytes a packet occupies on each link it crosses. */
    Bytes wireBytesOf(const Packet &packet) const;

    /** Inject @p packet at the current event time. */
    void send(Packet &&packet);

    const NetworkStats &stats() const { return counters; }
    const NetworkConfig &config() const { return cfg; }

  private:
    NetworkConfig cfg;
    const Topology &topo;
    EventQueue &events;
    Deliver deliverFn;
    NetworkStats counters;
    /** Time each directed link becomes free. */
    std::vector<Cycles> linkFreeAt;
};

} // namespace ct::sim

#endif // CT_SIM_NETWORK_H
