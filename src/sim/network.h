/**
 * @file
 * Link-level network model. Packets traverse their dimension-order
 * route link by link; every directed link is a FIFO resource with a
 * fixed wire bandwidth, so congestion emerges from link sharing
 * instead of being an input parameter. Chunk-granularity store-and-
 * forward slightly overstates latency compared with wormhole routing
 * but leaves sustained bandwidth -- the quantity the paper's model is
 * built on -- unchanged.
 *
 * Topology outages are enforced here: a packet to or from a downed
 * node is swallowed (a dead node neither injects nor drains), routes
 * detour around dead links via Topology::healthyRoute, and when no
 * live path remains the packet is counted unroutable and dropped --
 * the reliable transport's watchdog turns that into a route-suspect
 * verdict instead of retrying forever.
 */

#ifndef CT_SIM_NETWORK_H
#define CT_SIM_NETWORK_H

#include <functional>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event.h"
#include "sim/fault.h"
#include "sim/topology.h"

namespace ct::sim {

/** Wire parameters of the network. */
struct NetworkConfig
{
    /** Wire bytes a link moves per node clock cycle. */
    double wireBytesPerCycle = 1.0;
    /** Fixed framing bytes per packet (header, delimiters). */
    Bytes headerBytes = 16;
    /** Wire bytes per payload word under address-data-pair framing
     *  (8 data bytes + address + per-word framing). */
    Bytes adpBytesPerWord = 16;
    /** Router traversal latency per hop. */
    Cycles hopLatencyCycles = 2;
};

/**
 * Counters. A snapshot view over the network's "sim.net.*" registry
 * metrics, materialized on stats() calls.
 */
struct NetworkStats
{
    std::uint64_t packets = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t wireBytes = 0;
    // Injected wire faults (non-zero only when faults are active).
    std::uint64_t droppedPackets = 0;
    std::uint64_t corruptedPackets = 0;
    std::uint64_t duplicatedPackets = 0;
    std::uint64_t delayedPackets = 0;
    // Topology outages (non-zero only when outages are active).
    std::uint64_t reroutedPackets = 0;   ///< detoured around dead links
    std::uint64_t reroutedLinks = 0;     ///< distinct dead links detoured
    std::uint64_t unroutablePackets = 0; ///< no live path existed
    std::uint64_t deadNodePackets = 0;   ///< src or dst node was down
    std::uint64_t linkFailures = 0;      ///< link_fail_rate firings
};

/**
 * The machine's interconnect. send() reserves bandwidth on every link
 * of the packet's route (reservations are made in event-time order,
 * so FIFO link occupancy is consistent) and schedules a single
 * delivery callback at the arrival time.
 *
 * A reliable transport can interpose on both directions: the send tap
 * sees every outbound layer packet before it hits the wire (to assign
 * sequence numbers and keep retransmission copies), the deliver tap
 * sees every arrival before the layer sink (to verify, reorder, and
 * acknowledge). sendRaw() and deliverDirect() bypass the taps so the
 * transport's own control traffic and in-order releases do not
 * re-enter it.
 */
class Network
{
  public:
    using Deliver = std::function<void(Packet &&packet, Cycles time)>;
    /** Outbound interposer; return false to swallow the packet. */
    using SendTap = std::function<bool(Packet &packet)>;
    /** Inbound interposer; return false to consume the packet. */
    using DeliverTap =
        std::function<bool(Packet &&packet, Cycles time)>;

    /**
     * @p registry hosts the network's "sim.net.*" metrics (the
     * machine passes its own); nullptr gives the network a private
     * registry so standalone use keeps working.
     */
    Network(const NetworkConfig &config, Topology &topology,
            EventQueue &queue,
            obs::MetricsRegistry *registry = nullptr);

    /** Install the delivery sink (dispatches on packet.dst). */
    void setDeliver(Deliver deliver);

    /** Install or clear (pass nullptr) the transport interposers. */
    void setSendTap(SendTap tap);
    void setDeliverTap(DeliverTap tap);

    /** Attach the machine's fault injector (nullptr = fault-free). */
    void setFaults(FaultInjector *injector);

    /** Attach a tracer for wire events (nullptr = tracing off). */
    void setTracer(obs::Tracer *t) { tracer = t; }

    /** Wire bytes a packet occupies on each link it crosses. */
    Bytes wireBytesOf(const Packet &packet) const;

    /** Inject @p packet at the current event time. */
    void send(Packet &&packet);

    /** Transmit bypassing the send tap (transport control traffic). */
    void sendRaw(Packet &&packet);

    /** Hand a packet to the sink bypassing the deliver tap. */
    void deliverDirect(Packet &&packet, Cycles time);

    /** Counter snapshot, refreshed from the registry on each call. */
    const NetworkStats &stats() const;

    const NetworkConfig &config() const { return cfg; }

  private:
    void transmit(Packet &&packet);
    /** Routing with outage handling; false = packet swallowed. */
    bool routeFor(const Packet &packet, std::vector<LinkId> &links);
    /** Reserve link slots along @p route; returns the arrival time. */
    Cycles reserveRoute(const std::vector<LinkId> &route,
                        const Packet &packet);
    void reserveAndSchedule(std::vector<LinkId> route,
                            Packet &&packet, Cycles extra_delay);
    void arrive(Packet &&packet, Cycles time);
    void noteAvoidedLinks(const std::vector<LinkId> &avoided);

    /** Registry handles behind the NetworkStats view. */
    struct Metrics
    {
        obs::Counter packets;
        obs::Counter payloadBytes;
        obs::Counter wireBytes;
        obs::Counter droppedPackets;
        obs::Counter corruptedPackets;
        obs::Counter duplicatedPackets;
        obs::Counter delayedPackets;
        obs::Counter reroutedPackets;
        obs::Counter reroutedLinks;
        obs::Counter unroutablePackets;
        obs::Counter deadNodePackets;
        obs::Counter linkFailures;
    };

    NetworkConfig cfg;
    Topology &topo;
    EventQueue &events;
    Deliver deliverFn;
    SendTap sendTap;
    DeliverTap deliverTap;
    FaultInjector *faults = nullptr;
    obs::Tracer *tracer = nullptr;
    std::unique_ptr<obs::MetricsRegistry> ownedRegistry;
    Metrics m;
    mutable NetworkStats view;
    /** Time each directed link becomes free. */
    std::vector<Cycles> linkFreeAt;
    /** Dead links already counted in stats().reroutedLinks. */
    std::vector<bool> reroutedLinkSeen;
};

} // namespace ct::sim

#endif // CT_SIM_NETWORK_H
