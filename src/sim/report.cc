#include "report.h"

#include <iomanip>
#include <sstream>

namespace ct::sim {

double
MachineReport::loadHitRate() const
{
    std::uint64_t total = loadHits + loadMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(loadHits) /
                            static_cast<double>(total);
}

double
MachineReport::rowHitRate() const
{
    std::uint64_t total = rowHits + rowMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(rowHits) /
                            static_cast<double>(total);
}

double
MachineReport::wireOverhead() const
{
    return payloadBytes == 0 ? 0.0
                             : static_cast<double>(wireBytes) /
                                   static_cast<double>(payloadBytes);
}

MachineReport
collectReport(Machine &machine)
{
    MachineReport r;
    r.nodes = machine.nodeCount();
    for (int n = 0; n < machine.nodeCount(); ++n) {
        Node &node = machine.node(n);
        const auto &cache = node.memory().cache().stats();
        r.loadHits += cache.loadHits;
        r.loadMisses += cache.loadMisses;
        r.cacheInvalidations += cache.invalidations;

        const auto &dram = node.memory().dram().stats();
        r.dramReads += dram.reads;
        r.dramWrites += dram.writes;
        r.rowHits += dram.rowHits;
        r.rowMisses += dram.rowMisses;

        const auto &wbq = node.memory().writeBuffer().stats();
        r.wbqStores += wbq.stores;
        r.wbqCoalesced += wbq.coalesced;
        r.wbqStallCycles += wbq.stallCycles;

        const auto &bus = node.memory().bus().stats();
        r.busTransactions += bus.transactions;
        r.busOwnerSwitches += bus.ownerSwitches;
        r.busWaitCycles += bus.waitCycles;

        const auto &deposit = node.depositEngine().stats();
        r.depositPackets += deposit.packets;
        r.depositWords += deposit.words;
        r.depositBusyCycles += deposit.busyCycles;
        r.engineRefusals += deposit.refusedPackets;
    }
    const auto &net = machine.network().stats();
    r.networkPackets = net.packets;
    r.payloadBytes = net.payloadBytes;
    r.wireBytes = net.wireBytes;
    r.faultDrops = net.droppedPackets;
    r.faultCorruptions = net.corruptedPackets;
    r.faultDuplicates = net.duplicatedPackets;
    r.faultDelays = net.delayedPackets;
    if (const auto *faults = machine.faults()) {
        r.engineStalls = faults->stats().engineStalls;
        r.engineFailures = faults->stats().engineFailures;
    }
    r.peakPendingEvents = machine.events().peakPending();
    r.truncatedRun = machine.events().truncated();
    r.reroutedPackets = net.reroutedPackets;
    r.reroutedLinks = net.reroutedLinks;
    r.unroutablePackets = net.unroutablePackets;
    r.deadNodePackets = net.deadNodePackets;
    r.linkFailures = net.linkFailures;
    const Topology &topo = machine.topology();
    if (topo.anyOutages()) {
        r.downedLinks = topo.downedLinks();
        r.downedNodes = topo.downedNodes();
    }

    // Publish the node aggregates into the machine registry so a
    // --metrics-out dump carries the whole picture (the network and
    // fault counters already live there as "sim.*" counters).
    obs::MetricsRegistry &reg = machine.metrics();
    auto set = [&reg](const char *name, std::uint64_t v) {
        reg.gauge(name).set(static_cast<std::int64_t>(v));
    };
    set("machine.nodes", static_cast<std::uint64_t>(r.nodes));
    set("machine.cache.load_hits", r.loadHits);
    set("machine.cache.load_misses", r.loadMisses);
    set("machine.cache.invalidations", r.cacheInvalidations);
    set("machine.dram.reads", r.dramReads);
    set("machine.dram.writes", r.dramWrites);
    set("machine.dram.row_hits", r.rowHits);
    set("machine.dram.row_misses", r.rowMisses);
    set("machine.wbq.stores", r.wbqStores);
    set("machine.wbq.coalesced", r.wbqCoalesced);
    set("machine.wbq.stall_cycles", r.wbqStallCycles);
    set("machine.bus.transactions", r.busTransactions);
    set("machine.bus.owner_switches", r.busOwnerSwitches);
    set("machine.bus.wait_cycles", r.busWaitCycles);
    set("machine.deposit.packets", r.depositPackets);
    set("machine.deposit.words", r.depositWords);
    set("machine.deposit.busy_cycles", r.depositBusyCycles);
    set("machine.deposit.refusals", r.engineRefusals);
    set("machine.topology.downed_links",
        static_cast<std::uint64_t>(r.downedLinks));
    set("machine.topology.downed_nodes",
        static_cast<std::uint64_t>(r.downedNodes));
    set("machine.events.peak_pending", r.peakPendingEvents);
    set("machine.events.truncated_run",
        static_cast<std::uint64_t>(r.truncatedRun ? 1 : 0));
    return r;
}

std::string
formatReport(const MachineReport &r)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "machine report (" << r.nodes << " nodes)\n";
    if (r.truncatedRun)
        os << "  *** TRUNCATED RUN: the event cap stopped the "
              "simulation with events still pending; every figure "
              "below is a lower bound ***\n";
    os << "  cache:   " << 100.0 * r.loadHitRate() << "% load hits ("
       << r.loadHits << "/" << r.loadHits + r.loadMisses << "), "
       << r.cacheInvalidations << " invalidations\n";
    os << "  dram:    " << r.dramReads << " reads, " << r.dramWrites
       << " writes, " << 100.0 * r.rowHitRate() << "% row hits\n";
    os << "  wbq:     " << r.wbqStores << " stores, "
       << r.wbqCoalesced << " coalesced, " << r.wbqStallCycles
       << " stall cycles\n";
    if (r.busTransactions > 0) {
        os << "  bus:     " << r.busTransactions << " transactions, "
           << r.busOwnerSwitches << " owner switches, "
           << r.busWaitCycles << " wait cycles\n";
    }
    os << "  deposit: " << r.depositPackets << " packets, "
       << r.depositWords << " words, " << r.depositBusyCycles
       << " busy cycles\n";
    os << "  network: " << r.networkPackets << " packets, "
       << r.payloadBytes << " payload bytes, wire overhead "
       << r.wireOverhead() << "x\n";
    if (r.faultDrops + r.faultCorruptions + r.faultDuplicates +
            r.faultDelays + r.engineStalls + r.engineFailures +
            r.engineRefusals >
        0) {
        os << "  faults:  " << r.faultDrops << " drops, "
           << r.faultCorruptions << " corruptions, "
           << r.faultDuplicates << " dups, " << r.faultDelays
           << " delays, " << r.engineStalls << " engine stalls, "
           << r.engineFailures << " engine failures, "
           << r.engineRefusals << " refusals\n";
    }
    if (r.downedLinks + r.downedNodes > 0 ||
        r.reroutedPackets + r.unroutablePackets + r.deadNodePackets +
                r.linkFailures >
            0) {
        os << "  outages: " << r.downedLinks << " links down, "
           << r.downedNodes << " nodes down, " << r.reroutedPackets
           << " rerouted packets (" << r.reroutedLinks
           << " links detoured), " << r.unroutablePackets
           << " unroutable, " << r.deadNodePackets
           << " to/from dead nodes, " << r.linkFailures
           << " wire link failures\n";
    }
    return os.str();
}

std::string
csvHeader()
{
    return "nodes,load_hits,load_misses,invalidations,dram_reads,"
           "dram_writes,row_hits,row_misses,wbq_stores,wbq_coalesced,"
           "wbq_stall_cycles,bus_transactions,bus_switches,"
           "bus_wait_cycles,deposit_packets,deposit_words,"
           "deposit_busy_cycles,network_packets,payload_bytes,"
           "wire_bytes,fault_drops,fault_corruptions,"
           "fault_duplicates,fault_delays,engine_stalls,"
           "engine_failures,engine_refusals,rerouted_packets,"
           "rerouted_links,unroutable_packets,dead_node_packets,"
           "link_failures,downed_links,downed_nodes,"
           "peak_pending_events,truncated_run";
}

std::string
toCsv(const MachineReport &r)
{
    std::ostringstream os;
    os << r.nodes << ',' << r.loadHits << ',' << r.loadMisses << ','
       << r.cacheInvalidations << ',' << r.dramReads << ','
       << r.dramWrites << ',' << r.rowHits << ',' << r.rowMisses
       << ',' << r.wbqStores << ',' << r.wbqCoalesced << ','
       << r.wbqStallCycles << ',' << r.busTransactions << ','
       << r.busOwnerSwitches << ',' << r.busWaitCycles << ','
       << r.depositPackets << ',' << r.depositWords << ','
       << r.depositBusyCycles << ',' << r.networkPackets << ','
       << r.payloadBytes << ',' << r.wireBytes << ',' << r.faultDrops
       << ',' << r.faultCorruptions << ',' << r.faultDuplicates << ','
       << r.faultDelays << ',' << r.engineStalls << ','
       << r.engineFailures << ',' << r.engineRefusals << ','
       << r.reroutedPackets << ',' << r.reroutedLinks << ','
       << r.unroutablePackets << ',' << r.deadNodePackets << ','
       << r.linkFailures << ',' << r.downedLinks << ','
       << r.downedNodes << ',' << r.peakPendingEvents << ','
       << (r.truncatedRun ? 1 : 0);
    return os.str();
}

} // namespace ct::sim
