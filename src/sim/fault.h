/**
 * @file
 * Deterministic fault injection. A FaultInjector perturbs the wire
 * path (packet drop / payload corruption / duplication / delay) and
 * the background engines (transient stalls, permanent loss of the
 * deposit engine's address-data-pair capability). Every decision is
 * drawn from seeded per-fault-class xoshiro streams, so the same
 * seed and spec reproduce a bit-identical fault schedule on the same
 * traffic.
 *
 * The model corrupts payload words only: packet headers are assumed
 * to be protected by a separate hardware CRC and always arrive
 * intact, which is what lets the reliable transport NACK a corrupted
 * packet by sequence number.
 */

#ifndef CT_SIM_FAULT_H
#define CT_SIM_FAULT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/packet.h"
#include "sim/topology.h"
#include "util/rng.h"

namespace ct::sim {

class EventQueue;
struct ChaosSchedule;

/**
 * Fault rates and magnitudes, parsed from a comma-separated spec
 * string such as
 *
 *     drop=1e-3,corrupt=1e-4,dup=1e-5,delay=200,engine_stall=1e-4
 *
 * Recognized keys:
 *   drop=P                per-packet drop probability
 *   corrupt=P             per-packet payload-corruption probability
 *   dup=P                 per-packet duplication probability
 *   delay=N               max extra delivery delay in cycles
 *   delay_rate=P          probability a packet is delayed
 *                         (default 0.01 when delay > 0)
 *   engine_stall=P        per-engine-operation transient-stall
 *                         probability (deposit and fetch engines)
 *   engine_stall_cycles=N stall duration (default 1000)
 *   engine_fail=P         per-ADP-deposit probability that the
 *                         deposit engine's address-data-pair
 *                         datapath fails permanently; the simpler
 *                         contiguous-block datapath survives
 *   link_down=ID@CYCLE    directed link ID dies at CYCLE (repeatable;
 *                         "@CYCLE" defaults to @0)
 *   node_down=N@CYCLE     node N stops injecting/draining at CYCLE
 *                         (repeatable; "@CYCLE" defaults to @0)
 *   link_fail_rate=P      per-packet probability that one network
 *                         link on the packet's route fails
 *                         permanently (the packet riding it is lost)
 *   seed=N                RNG seed (default 1)
 */
struct FaultSpec
{
    /** One scheduled topology outage (a link or a node). */
    struct Outage
    {
        std::int32_t id = 0; ///< LinkId or NodeId
        Cycles at = 0;       ///< first dead cycle
    };

    double drop = 0.0;
    double corrupt = 0.0;
    double dup = 0.0;
    Cycles delayMax = 0;
    double delayRate = 0.0;
    double engineStall = 0.0;
    Cycles engineStallCycles = 1000;
    double engineFail = 0.0;
    std::vector<Outage> linkDown;
    std::vector<Outage> nodeDown;
    double linkFailRate = 0.0;
    std::uint64_t seed = 1;

    /** True if any fault class has a non-zero rate. */
    bool any() const;

    /** Parse a spec string; fatal on unknown keys or bad values. */
    static FaultSpec parse(const std::string &spec);

    /**
     * Non-fatal parse for front ends that own the exit path: nullopt
     * on any malformed field -- unknown key, trailing garbage,
     * negative count, duplicate key -- with a diagnostic naming the
     * offending token in @p error (when non-null).
     */
    static std::optional<FaultSpec>
    tryParse(const std::string &spec, std::string *error);

    /** Canonical one-line rendering of the active fault classes. */
    std::string summary() const;
};

/**
 * Per-fault-class injection counters. A snapshot view over the
 * injector's "sim.fault.*" registry metrics (the registry cells are
 * the source of truth; this struct is materialized on stats() calls).
 */
struct FaultStats
{
    std::uint64_t drops = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    Cycles delayCycles = 0;
    std::uint64_t engineStalls = 0;
    Cycles engineStallCycles = 0;
    std::uint64_t engineFailures = 0;
    /** Probabilistic permanent link failures (link_fail_rate). */
    std::uint64_t linkFailures = 0;
};

/**
 * Draws fault decisions. The network consults it once per wire
 * transmission, the engines once per operation. Each fault class
 * consumes its own RNG stream (derived from the seed), so enabling
 * one class never shifts the schedule of another.
 */
class FaultInjector
{
  public:
    /**
     * @p registry hosts the injector's "sim.fault.*" metrics (the
     * machine passes its own); nullptr gives the injector a private
     * registry so standalone use keeps working.
     */
    explicit FaultInjector(const FaultSpec &spec,
                           obs::MetricsRegistry *registry = nullptr);

    /**
     * Attach a chaos schedule (borrowed, may be nullptr) and the
     * clock its time-varying rates are evaluated against. Schedule
     * rates add to the spec's static rates, clamped to 1. Every
     * class the schedule mentions consumes one RNG draw per roll
     * even while its current rate is zero, so replaying the same
     * schedule yields a bit-identical fault timeline.
     */
    void setChaos(const ChaosSchedule *chaos, const EventQueue *clock);

    const FaultSpec &spec() const { return cfg; }

    /** Counter snapshot, refreshed from the registry on each call. */
    const FaultStats &stats() const;

    // Wire rolls, one set per transmitted packet.

    /** True if this packet is lost in the network. */
    bool rollDrop();

    /** True if this packet's payload is corrupted in flight. */
    bool rollCorrupt();

    /** True if the network delivers this packet twice. */
    bool rollDuplicate();

    /** Extra delivery delay in cycles (0 = on time). */
    Cycles rollDelay();

    /** Flip one random payload bit of @p packet (no-op if empty). */
    void corruptPayload(Packet &packet);

    // Engine rolls, one per engine operation.

    /** Transient engine stall in cycles (0 = none). */
    Cycles rollEngineStall();

    /** True if the ADP datapath fails permanently on this deposit. */
    bool rollEngineFailure();

    // Topology rolls, one per transmitted packet.

    /** True if a link on this packet's route fails permanently. */
    bool rollLinkFailure();

    /** Which route position dies (drawn from the link-fault stream). */
    std::uint64_t pickFailingLink(std::uint64_t route_links);

  private:
    /** Registry handles behind the FaultStats view. */
    struct Metrics
    {
        obs::Counter drops;
        obs::Counter corruptions;
        obs::Counter duplicates;
        obs::Counter delays;
        obs::Counter delayCycles;
        obs::Counter engineStalls;
        obs::Counter engineStallCycles;
        obs::Counter engineFailures;
        obs::Counter linkFailures;
    };

    /** Chaos rate for one class at the current clock time (0 when
     *  no schedule is attached). */
    double chaosRate(int cls) const;

    FaultSpec cfg;
    const ChaosSchedule *chaos = nullptr;
    const EventQueue *chaosClock = nullptr;
    std::unique_ptr<obs::MetricsRegistry> ownedRegistry;
    Metrics m;
    mutable FaultStats view;
    util::Rng dropRng;
    util::Rng corruptRng;
    util::Rng dupRng;
    util::Rng delayRng;
    util::Rng engineRng;
    util::Rng linkRng;
};

} // namespace ct::sim

#endif // CT_SIM_FAULT_H
