#include "event.h"

#include "util/logging.h"

namespace ct::sim {

void
EventQueue::schedule(Cycles when, Callback cb)
{
    if (when < currentTime)
        util::fatal("EventQueue::schedule: time ", when,
                    " is in the past (now ", currentTime, ")");
    if (!cb)
        util::fatal("EventQueue::schedule: null callback");
    events.push(Event{when, nextSeq++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Cycles delay, Callback cb)
{
    schedule(currentTime + delay, std::move(cb));
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!events.empty() && executed < max_events) {
        // Moving out of a priority_queue requires a const_cast; the
        // element is popped immediately afterwards.
        auto &top = const_cast<Event &>(events.top());
        Cycles when = top.when;
        Callback cb = std::move(top.cb);
        events.pop();
        currentTime = when;
        cb();
        ++executed;
    }
    if (executed >= max_events && !events.empty())
        util::warn("EventQueue::run: stopped at event cap with ",
                   events.size(), " events pending");
    return executed;
}

} // namespace ct::sim
