#include "event.h"

#include "sim/parallel.h"
#include "util/logging.h"

namespace ct::sim {

thread_local EventQueue::WindowCtx *EventQueue::tlWindow = nullptr;

EventQueue::~EventQueue()
{
    // Destroy the callbacks of events that never fired. The nodes
    // themselves are slab storage and die with `slabs` (or, for
    // nodes adopted from a parallel window, with the engine's worker
    // contexts -- which is why sim::Machine destroys the queue
    // before the engine).
    std::vector<EventNode *> stack;
    if (root)
        stack.push_back(root);
    while (!stack.empty()) {
        EventNode *node = stack.back();
        stack.pop_back();
        if (node->child)
            stack.push_back(node->child);
        if (node->sibling)
            stack.push_back(node->sibling);
        if (node->destroy)
            node->destroy(*node);
    }
}

void
EventQueue::checkSchedule(Cycles when) const
{
    Cycles ref = now();
    if (when < ref)
        util::fatal("EventQueue::schedule: time ", when,
                    " is in the past (now ", ref, ")");
    if (replayEngine)
        replayEngine->checkCommitTime(when, activePartition);
}

void
EventQueue::nullCallback()
{
    util::fatal("EventQueue::schedule: null callback");
}

void
EventQueue::cancellableInWindow()
{
    util::fatal("EventQueue::scheduleCancellable: cancellable timers "
                "cannot be armed from inside a parallel window; a "
                "layer that needs them must report parallelSafe() == "
                "false so the run stays serial");
}

Cycles
EventQueue::windowNow() const
{
    const WindowCtx *win = windowCtx();
    return win ? win->time : currentTime;
}

std::int32_t
EventQueue::scopePartition() const
{
    if (windowOpen) {
        if (const WindowCtx *win = windowCtx())
            return win->scopePart;
    }
    return activePartition;
}

void
EventQueue::setScopePartition(std::int32_t part)
{
    if (windowOpen) {
        if (WindowCtx *win = windowCtx()) {
            win->scopePart = part;
            return;
        }
    }
    activePartition = part;
}

EventQueue::EventNode *
EventQueue::meld(EventNode *a, EventNode *b)
{
    if (before(*b, *a))
        std::swap(a, b);
    b->sibling = a->child;
    a->child = b;
    return a;
}

EventQueue::EventNode *
EventQueue::mergePairs(EventNode *first)
{
    // Standard two-pass pairing-heap merge, kept iterative so a root
    // with O(pending) children cannot overflow the stack. The pop
    // order is the unique (when, seq) minimum either way, so the
    // merge shape never affects determinism.
    EventNode *pairs = nullptr;
    while (first) {
        EventNode *a = first;
        EventNode *b = a->sibling;
        first = b ? b->sibling : nullptr;
        a->sibling = nullptr;
        EventNode *merged = a;
        if (b) {
            b->sibling = nullptr;
            merged = meld(a, b);
        }
        merged->sibling = pairs;
        pairs = merged;
    }
    EventNode *result = nullptr;
    while (pairs) {
        EventNode *next = pairs->sibling;
        pairs->sibling = nullptr;
        result = result ? meld(result, pairs) : pairs;
        pairs = next;
    }
    return result;
}

EventQueue::EventNode *
EventQueue::acquire(Cycles when)
{
    EventNode *node;
    if (freeList) {
        node = freeList;
        freeList = node->sibling;
        --freeCount;
    } else {
        if (slabUsed == kSlabEvents) {
            slabs.push_back(std::make_unique<EventNode[]>(kSlabEvents));
            slabUsed = 0;
        }
        node = &slabs.back()[slabUsed++];
    }
    node->when = when;
    node->seq = nextSeq++;
    node->child = nullptr;
    node->sibling = nullptr;
    node->cancelled = false;
    node->part = activePartition;
    return node;
}

EventQueue::EventNode *
EventQueue::windowAcquire(WindowCtx &win, Cycles when)
{
    EventNode *node = nullptr;
    // Shared prefill of recycled nodes first (lock-free index bump),
    // then worker-private slabs; seq is stamped at commit, never
    // here -- nextSeq is the queue's serial-order source of truth.
    std::size_t idx =
        win.reserveNext->fetch_add(1, std::memory_order_relaxed);
    if (idx < win.reserve->size()) {
        node = (*win.reserve)[idx];
    } else {
        if (win.slabUsed == kSlabEvents) {
            win.slabs.push_back(
                std::make_unique<EventNode[]>(kSlabEvents));
            win.slabUsed = 0;
        }
        node = &win.slabs.back()[win.slabUsed++];
    }
    node->when = when;
    node->seq = 0;
    node->child = nullptr;
    node->sibling = nullptr;
    node->cancelled = false;
    node->part = win.scopePart;
    return node;
}

void
EventQueue::push(EventNode *node)
{
    root = root ? meld(root, node) : node;
    ++pendingCount;
    if (pendingCount > peakPendingCount)
        peakPendingCount = pendingCount;
}

EventQueue::EventNode *
EventQueue::popMin()
{
    EventNode *top = root;
    root = mergePairs(top->child);
    top->child = nullptr;
    top->sibling = nullptr;
    --pendingCount;
    return top;
}

void
EventQueue::release(EventNode *node)
{
    if (node->destroy)
        node->destroy(*node);
    node->invoke = nullptr;
    node->destroy = nullptr;
    // Re-stamp so any Timer handle to the retired event disarms the
    // moment it fires or is discarded, not just on node reuse.
    node->seq = nextSeq++;
    node->sibling = freeList;
    freeList = node;
    ++freeCount;
}

void
EventQueue::recycleRaw(EventNode *node)
{
    node->invoke = nullptr;
    node->destroy = nullptr;
    node->sibling = freeList;
    freeList = node;
    ++freeCount;
}

void
EventQueue::drainFreeList(std::vector<EventNode *> &out)
{
    while (freeList) {
        EventNode *node = freeList;
        freeList = node->sibling;
        node->sibling = nullptr;
        out.push_back(node);
    }
    freeCount = 0;
}

std::uint64_t
EventQueue::runSerialBatch(Cycles horizon)
{
    std::uint64_t executed = 0;
    while (root && root->when <= horizon) {
        EventNode *node = popMin();
        if (node->cancelled) {
            release(node);
            continue;
        }
        currentTime = node->when;
        std::int32_t prev = activePartition;
        activePartition = node->part;
        node->invoke(*node);
        activePartition = prev;
        release(node);
        ++executed;
        ++executedTotal;
    }
    return executed;
}

std::uint64_t
EventQueue::runParallel()
{
    return runner->runAll();
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    // Capped or budgeted runs keep the serial path: the parallel
    // engine commits whole windows, which cannot honor a stop-after-
    // exactly-N contract, and truncated-fidelity degradation depends
    // on that contract.
    if (runner && max_events == UINT64_MAX && eventBudget == UINT64_MAX)
        return runParallel();
    std::uint64_t executed = 0;
    while (root && executed < max_events &&
           executedTotal < eventBudget) {
        EventNode *node = popMin();
        if (node->cancelled) {
            // Tombstone: a cancelled event never happens, so it must
            // not advance the clock -- otherwise an acknowledged
            // retransmit timer would still stretch the run's tail.
            release(node);
            continue;
        }
        currentTime = node->when;
        // The node stays off both the heap and the free list while
        // its callback runs, so events it schedules can never reuse
        // the storage under it. Spawns inherit the event's partition
        // tag unless a PartitionScope overrides it.
        std::int32_t prev = activePartition;
        activePartition = node->part;
        node->invoke(*node);
        activePartition = prev;
        release(node);
        ++executed;
        ++executedTotal;
    }
    if (root) {
        ++truncatedRuns;
        // A cooperative-budget cut is requested behavior (the caller
        // degrades the answer); only an unasked-for max_events stop
        // deserves the loud runaway warning.
        if (executedTotal < eventBudget)
            util::warn("EventQueue::run: stopped at event cap with ",
                       pendingCount,
                       " events pending; the run is TRUNCATED, not "
                       "converged");
    }
    return executed;
}

} // namespace ct::sim
