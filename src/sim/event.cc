#include "event.h"

#include "util/logging.h"

namespace ct::sim {

EventQueue::~EventQueue()
{
    // Destroy the callbacks of events that never fired. The nodes
    // themselves are slab storage and die with `slabs`.
    std::vector<EventNode *> stack;
    if (root)
        stack.push_back(root);
    while (!stack.empty()) {
        EventNode *node = stack.back();
        stack.pop_back();
        if (node->child)
            stack.push_back(node->child);
        if (node->sibling)
            stack.push_back(node->sibling);
        if (node->destroy)
            node->destroy(*node);
    }
}

void
EventQueue::checkSchedule(Cycles when) const
{
    if (when < currentTime)
        util::fatal("EventQueue::schedule: time ", when,
                    " is in the past (now ", currentTime, ")");
}

void
EventQueue::nullCallback()
{
    util::fatal("EventQueue::schedule: null callback");
}

EventQueue::EventNode *
EventQueue::meld(EventNode *a, EventNode *b)
{
    if (before(*b, *a))
        std::swap(a, b);
    b->sibling = a->child;
    a->child = b;
    return a;
}

EventQueue::EventNode *
EventQueue::mergePairs(EventNode *first)
{
    // Standard two-pass pairing-heap merge, kept iterative so a root
    // with O(pending) children cannot overflow the stack. The pop
    // order is the unique (when, seq) minimum either way, so the
    // merge shape never affects determinism.
    EventNode *pairs = nullptr;
    while (first) {
        EventNode *a = first;
        EventNode *b = a->sibling;
        first = b ? b->sibling : nullptr;
        a->sibling = nullptr;
        EventNode *merged = a;
        if (b) {
            b->sibling = nullptr;
            merged = meld(a, b);
        }
        merged->sibling = pairs;
        pairs = merged;
    }
    EventNode *result = nullptr;
    while (pairs) {
        EventNode *next = pairs->sibling;
        pairs->sibling = nullptr;
        result = result ? meld(result, pairs) : pairs;
        pairs = next;
    }
    return result;
}

EventQueue::EventNode *
EventQueue::acquire(Cycles when)
{
    EventNode *node;
    if (freeList) {
        node = freeList;
        freeList = node->sibling;
        --freeCount;
    } else {
        if (slabUsed == kSlabEvents) {
            slabs.push_back(std::make_unique<EventNode[]>(kSlabEvents));
            slabUsed = 0;
        }
        node = &slabs.back()[slabUsed++];
    }
    node->when = when;
    node->seq = nextSeq++;
    node->child = nullptr;
    node->sibling = nullptr;
    node->cancelled = false;
    return node;
}

void
EventQueue::push(EventNode *node)
{
    root = root ? meld(root, node) : node;
    ++pendingCount;
    if (pendingCount > peakPendingCount)
        peakPendingCount = pendingCount;
}

EventQueue::EventNode *
EventQueue::popMin()
{
    EventNode *top = root;
    root = mergePairs(top->child);
    top->child = nullptr;
    top->sibling = nullptr;
    --pendingCount;
    return top;
}

void
EventQueue::release(EventNode *node)
{
    if (node->destroy)
        node->destroy(*node);
    node->invoke = nullptr;
    node->destroy = nullptr;
    // Re-stamp so any Timer handle to the retired event disarms the
    // moment it fires or is discarded, not just on node reuse.
    node->seq = nextSeq++;
    node->sibling = freeList;
    freeList = node;
    ++freeCount;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (root && executed < max_events &&
           executedTotal < eventBudget) {
        EventNode *node = popMin();
        if (node->cancelled) {
            // Tombstone: a cancelled event never happens, so it must
            // not advance the clock -- otherwise an acknowledged
            // retransmit timer would still stretch the run's tail.
            release(node);
            continue;
        }
        currentTime = node->when;
        // The node stays off both the heap and the free list while
        // its callback runs, so events it schedules can never reuse
        // the storage under it.
        node->invoke(*node);
        release(node);
        ++executed;
        ++executedTotal;
    }
    if (root) {
        ++truncatedRuns;
        // A cooperative-budget cut is requested behavior (the caller
        // degrades the answer); only an unasked-for max_events stop
        // deserves the loud runaway warning.
        if (executedTotal < eventBudget)
            util::warn("EventQueue::run: stopped at event cap with ",
                       pendingCount,
                       " events pending; the run is TRUNCATED, not "
                       "converged");
    }
    return executed;
}

} // namespace ct::sim
