/**
 * @file
 * Trace track layout: every hardware unit of every node gets its own
 * tracer timeline, so spans on one track never overlap and a Chrome
 * trace renders each unit as a separate row. The machine-scope track
 * (whole-operation spans, global instants) sits after all node
 * tracks; Machine::setTracer labels every track.
 */

#ifndef CT_SIM_TRACE_TRACKS_H
#define CT_SIM_TRACE_TRACKS_H

#include <cstdint>

#include "sim/packet.h"

namespace ct::sim {

/** Hardware units with their own trace timeline per node. */
enum class TraceTrack : std::int32_t {
    Cpu = 0,     ///< main processor (gather, pack, unpack, scatter)
    CoProc = 1,  ///< receive co-processor
    Deposit = 2, ///< deposit engine (annex / line-transfer unit)
    Fetch = 3,   ///< fetch (send DMA) engine
    Net = 4,     ///< wire events involving this node
};

inline constexpr std::int32_t kTraceTracksPerNode = 5;

/** Track id of @p unit on @p node. */
inline std::int32_t
traceTrack(NodeId node, TraceTrack unit)
{
    return node * kTraceTracksPerNode +
           static_cast<std::int32_t>(unit);
}

/** Machine-scope track id for a machine of @p node_count nodes. */
inline std::int32_t
machineTraceTrack(int node_count)
{
    return node_count * kTraceTracksPerNode;
}

} // namespace ct::sim

#endif // CT_SIM_TRACE_TRACKS_H
