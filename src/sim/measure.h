/**
 * @file
 * Micro-benchmarks that measure the throughput of every basic
 * transfer on the simulated machines, reproducing the measurement
 * campaign of the paper's §4 (Tables 1-4 and Figure 4). The measured
 * table can then be fed into the copy-transfer model exactly as the
 * paper feeds its measured figures.
 */

#ifndef CT_SIM_MEASURE_H
#define CT_SIM_MEASURE_H

#include <optional>

#include "core/basic_transfer.h"
#include "sim/machine.h"

namespace ct::sim {

/** Default element count of one measurement (large vs the cache). */
inline constexpr std::uint64_t measureWords = 1ull << 15;

/**
 * Pages of node RAM a measurement keeps host-resident. Walk arenas
 * are address-space only: the sweep's footprint can exceed physical
 * node RAM (fig4 runs strides whose span is larger than a T3D node),
 * while host memory stays bounded by this window regardless of
 * stride or transfer size.
 */
inline constexpr std::size_t measureResidentPages = 1024;

/** Host-side footprint counters of one measurement run. */
struct MeasureStats
{
    /** High-water mark of materialized node-RAM pages. */
    std::size_t peakResidentPages = 0;
    /** Pages recycled by the residency window. */
    std::uint64_t recycledPages = 0;
};

/** Throughput of a local memory-to-memory copy xCy. */
util::MBps measureLocalCopy(const MachineConfig &cfg,
                            core::AccessPattern x, core::AccessPattern y,
                            std::uint64_t words = measureWords,
                            MeasureStats *stats = nullptr);

/** Throughput of the load-send transfer xS0. */
util::MBps measureLoadSend(const MachineConfig &cfg,
                           core::AccessPattern x,
                           std::uint64_t words = measureWords);

/** Throughput of the DMA fetch-send 1F0; nullopt without a DMA. */
std::optional<util::MBps>
measureFetchSend(const MachineConfig &cfg,
                 std::uint64_t words = measureWords);

/**
 * Throughput of the receive-store 0Ry executed by the communication
 * co-processor; nullopt when the node has none (T3D).
 */
std::optional<util::MBps>
measureReceiveStore(const MachineConfig &cfg, core::AccessPattern y,
                    std::uint64_t words = measureWords);

/**
 * Throughput of the background deposit 0Dy; nullopt when the deposit
 * engine cannot handle the pattern (Paragon DMA for y != 1).
 */
std::optional<util::MBps>
measureReceiveDeposit(const MachineConfig &cfg, core::AccessPattern y,
                      std::uint64_t words = measureWords);

/**
 * Per-flow network bandwidth at a fixed congestion factor (1, 2 or
 * 4), with data-only or address-data-pair framing, measured on a
 * 16-node ring partition like the paper's fixed-congestion runs.
 */
util::MBps measureNetwork(const MachineConfig &cfg, Framing framing,
                          int congestion,
                          std::uint64_t words_per_flow = measureWords);

/**
 * Run the whole campaign: strides 1..64, indexed patterns, all
 * engines, network at congestion 1/2/4. The result mirrors the
 * structure of core::paperTable() with simulator-measured values.
 */
core::ThroughputTable measuredTable(const MachineConfig &cfg);

} // namespace ct::sim

#endif // CT_SIM_MEASURE_H
