#include "network.h"

#include <cmath>

#include "util/logging.h"

namespace ct::sim {

Network::Network(const NetworkConfig &config, const Topology &topology,
                 EventQueue &queue)
    : cfg(config), topo(topology), events(queue),
      linkFreeAt(static_cast<std::size_t>(topology.linkCount()), 0)
{
    if (cfg.wireBytesPerCycle <= 0.0)
        util::fatal("Network: non-positive wire bandwidth");
}

void
Network::setDeliver(Deliver deliver)
{
    deliverFn = std::move(deliver);
}

Bytes
Network::wireBytesOf(const Packet &packet) const
{
    Bytes payload_words = packet.words.size();
    Bytes body = packet.framing == Framing::AddrDataPair
                     ? payload_words * cfg.adpBytesPerWord
                     : payload_words * 8;
    return cfg.headerBytes + body;
}

void
Network::send(Packet &&packet)
{
    if (!deliverFn)
        util::fatal("Network::send: no delivery sink installed");
    if (packet.framing == Framing::AddrDataPair &&
        packet.addrs.size() != packet.words.size())
        util::fatal("Network::send: adp packet without addresses");

    ++counters.packets;
    counters.payloadBytes += packet.payloadBytes();
    Bytes wire = wireBytesOf(packet);
    counters.wireBytes += wire;

    Cycles serialize = static_cast<Cycles>(std::llround(
        std::ceil(static_cast<double>(wire) / cfg.wireBytesPerCycle)));

    // Local delivery bypasses the wires.
    if (packet.src == packet.dst) {
        Packet p = std::move(packet);
        events.scheduleAfter(0, [this, p = std::move(p)]() mutable {
            deliverFn(std::move(p), events.now());
        });
        return;
    }

    Cycles cursor = events.now();
    auto route = topo.route(packet.src, packet.dst);
    for (LinkId link : route) {
        auto idx = static_cast<std::size_t>(link);
        Cycles start = std::max(cursor, linkFreeAt[idx]);
        Cycles done = start + serialize;
        linkFreeAt[idx] = done;
        cursor = done + cfg.hopLatencyCycles;
    }

    Packet p = std::move(packet);
    events.schedule(cursor, [this, p = std::move(p)]() mutable {
        deliverFn(std::move(p), events.now());
    });
}

} // namespace ct::sim
