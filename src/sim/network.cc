#include "network.h"

#include <cmath>

#include "sim/trace_tracks.h"
#include "util/logging.h"

namespace ct::sim {

Network::Network(const NetworkConfig &config, Topology &topology,
                 EventQueue &queue, obs::MetricsRegistry *registry)
    : cfg(config), topo(topology), events(queue),
      linkFreeAt(static_cast<std::size_t>(topology.linkCount()), 0),
      reroutedLinkSeen(static_cast<std::size_t>(topology.linkCount()),
                       false)
{
    if (!registry) {
        ownedRegistry = std::make_unique<obs::MetricsRegistry>();
        registry = ownedRegistry.get();
    }
    m.packets = registry->counter("sim.net.packets");
    m.payloadBytes = registry->counter("sim.net.payload_bytes");
    m.wireBytes = registry->counter("sim.net.wire_bytes");
    m.droppedPackets = registry->counter("sim.net.dropped_packets");
    m.corruptedPackets =
        registry->counter("sim.net.corrupted_packets");
    m.duplicatedPackets =
        registry->counter("sim.net.duplicated_packets");
    m.delayedPackets = registry->counter("sim.net.delayed_packets");
    m.reroutedPackets = registry->counter("sim.net.rerouted_packets");
    m.reroutedLinks = registry->counter("sim.net.rerouted_links");
    m.unroutablePackets =
        registry->counter("sim.net.unroutable_packets");
    m.deadNodePackets = registry->counter("sim.net.dead_node_packets");
    m.linkFailures = registry->counter("sim.net.link_failures");
    if (cfg.wireBytesPerCycle <= 0.0 ||
        !std::isfinite(cfg.wireBytesPerCycle))
        util::fatal("Network: wireBytesPerCycle must be a positive "
                    "finite number, got ",
                    cfg.wireBytesPerCycle);
    if (cfg.adpBytesPerWord < 8)
        util::fatal("Network: adpBytesPerWord must cover the 8 data "
                    "bytes of a word, got ",
                    cfg.adpBytesPerWord);
}

void
Network::setDeliver(Deliver deliver)
{
    deliverFn = std::move(deliver);
}

void
Network::setSendTap(SendTap tap)
{
    sendTap = std::move(tap);
}

void
Network::setDeliverTap(DeliverTap tap)
{
    deliverTap = std::move(tap);
}

void
Network::setFaults(FaultInjector *injector)
{
    faults = injector;
}

const NetworkStats &
Network::stats() const
{
    view.packets = m.packets.value();
    view.payloadBytes = m.payloadBytes.value();
    view.wireBytes = m.wireBytes.value();
    view.droppedPackets = m.droppedPackets.value();
    view.corruptedPackets = m.corruptedPackets.value();
    view.duplicatedPackets = m.duplicatedPackets.value();
    view.delayedPackets = m.delayedPackets.value();
    view.reroutedPackets = m.reroutedPackets.value();
    view.reroutedLinks = m.reroutedLinks.value();
    view.unroutablePackets = m.unroutablePackets.value();
    view.deadNodePackets = m.deadNodePackets.value();
    view.linkFailures = m.linkFailures.value();
    return view;
}

Bytes
Network::wireBytesOf(const Packet &packet) const
{
    Bytes payload_words = packet.words.size();
    Bytes body = packet.framing == Framing::AddrDataPair
                     ? payload_words * cfg.adpBytesPerWord
                     : payload_words * 8;
    return cfg.headerBytes + body;
}

void
Network::send(Packet &&packet)
{
    if (!deliverFn)
        util::fatal("Network::send: no delivery sink installed");
    if (packet.framing == Framing::AddrDataPair &&
        packet.addrs.size() != packet.words.size())
        util::fatal("Network::send: adp packet without addresses");

    // Inside a parallel window the link ledger (linkFreeAt) must not
    // be touched: reservations are made in event-time order and that
    // order only exists at commit. Buffer the whole send; it re-runs
    // here serially, at this event's exact (time, seq) slot.
    if (events.inWindow()) {
        events.deferToCommit([this, p = std::move(packet)]() mutable {
            send(std::move(p));
        });
        return;
    }

    if (sendTap && !sendTap(packet))
        return;
    transmit(std::move(packet));
}

void
Network::sendRaw(Packet &&packet)
{
    if (!deliverFn)
        util::fatal("Network::sendRaw: no delivery sink installed");
    if (events.inWindow()) {
        events.deferToCommit([this, p = std::move(packet)]() mutable {
            sendRaw(std::move(p));
        });
        return;
    }
    transmit(std::move(packet));
}

void
Network::deliverDirect(Packet &&packet, Cycles time)
{
    deliverFn(std::move(packet), time);
}

void
Network::noteAvoidedLinks(const std::vector<LinkId> &avoided)
{
    for (LinkId link : avoided) {
        auto idx = static_cast<std::size_t>(link);
        if (!reroutedLinkSeen[idx]) {
            reroutedLinkSeen[idx] = true;
            m.reroutedLinks.inc();
        }
    }
}

bool
Network::routeFor(const Packet &packet, std::vector<LinkId> &links)
{
    if (!topo.anyOutages()) {
        links = topo.route(packet.src, packet.dst);
        return true;
    }
    Cycles now = events.now();
    // A dead node neither injects nor drains: the packet vanishes and
    // the reliable transport's watchdog notices the silence.
    if (!topo.nodeAlive(packet.src, now) ||
        !topo.nodeAlive(packet.dst, now)) {
        m.deadNodePackets.inc();
        if (tracer)
            tracer->instant("net", "dead-node",
                            traceTrack(packet.src, TraceTrack::Net),
                            now, "dst", packet.dst);
        return false;
    }
    RouteInfo info = topo.healthyRoute(packet.src, packet.dst, now);
    if (!info.ok) {
        m.unroutablePackets.inc();
        noteAvoidedLinks(info.avoided);
        if (tracer)
            tracer->instant("net", "unroutable",
                            traceTrack(packet.src, TraceTrack::Net),
                            now, "dst", packet.dst);
        return false;
    }
    if (info.rerouted) {
        m.reroutedPackets.inc();
        noteAvoidedLinks(info.avoided);
        if (tracer)
            tracer->instant("net", "reroute",
                            traceTrack(packet.src, TraceTrack::Net),
                            now, "dst", packet.dst);
    }
    links = std::move(info.links);
    return true;
}

void
Network::transmit(Packet &&packet)
{
    m.packets.inc();
    m.payloadBytes.add(packet.payloadBytes());
    m.wireBytes.add(wireBytesOf(packet));

    // Local delivery bypasses the wires (and therefore wire faults),
    // but a dead node does not loop traffic back to itself either.
    if (packet.src == packet.dst) {
        if (topo.anyOutages() &&
            !topo.nodeAlive(packet.src, events.now())) {
            m.deadNodePackets.inc();
            return;
        }
        Packet p = std::move(packet);
        EventQueue::PartitionScope scope(events, p.dst);
        events.scheduleAfter(0, [this, p = std::move(p)]() mutable {
            arrive(std::move(p), events.now());
        });
        return;
    }

    std::vector<LinkId> route;
    if (!routeFor(packet, route))
        return;

    if (faults) {
        // A permanent probabilistic link failure takes down one
        // network link on this packet's route; the packet riding it
        // is lost (its bandwidth was spent) and every later packet
        // must detour.
        if (faults->rollLinkFailure() && route.size() > 2) {
            // Positions 0 and size-1 are the injection/ejection
            // ports; only inter-router links can fail this way.
            std::uint64_t pos =
                1 + faults->pickFailingLink(route.size() - 2);
            topo.downLink(route[pos], events.now());
            m.linkFailures.inc();
            if (tracer)
                tracer->instant(
                    "net", "link-fail",
                    traceTrack(packet.src, TraceTrack::Net),
                    events.now(), "link", route[pos]);
            reserveRoute(route, packet);
            return;
        }
        // A dropped packet still occupied the wires; charge it the
        // full route's bandwidth (the counters above already did) but
        // never schedule its delivery.
        if (faults->rollDrop()) {
            m.droppedPackets.inc();
            if (tracer)
                tracer->instant(
                    "net", "drop",
                    traceTrack(packet.src, TraceTrack::Net),
                    events.now(), "dst", packet.dst);
            reserveRoute(route, packet);
            return;
        }
        if (faults->rollCorrupt()) {
            m.corruptedPackets.inc();
            faults->corruptPayload(packet);
            if (tracer)
                tracer->instant(
                    "net", "corrupt",
                    traceTrack(packet.src, TraceTrack::Net),
                    events.now(), "dst", packet.dst);
        }
        if (faults->rollDuplicate()) {
            m.duplicatedPackets.inc();
            Packet copy = packet;
            m.packets.inc();
            m.payloadBytes.add(copy.payloadBytes());
            m.wireBytes.add(wireBytesOf(copy));
            if (tracer)
                tracer->instant(
                    "net", "duplicate",
                    traceTrack(packet.src, TraceTrack::Net),
                    events.now(), "dst", packet.dst);
            reserveAndSchedule(route, std::move(copy), 0);
        }
        Cycles extra = faults->rollDelay();
        if (extra > 0) {
            m.delayedPackets.inc();
            if (tracer)
                tracer->instant(
                    "net", "delay",
                    traceTrack(packet.src, TraceTrack::Net),
                    events.now(), "cycles", extra);
        }
        reserveAndSchedule(std::move(route), std::move(packet), extra);
        return;
    }

    reserveAndSchedule(std::move(route), std::move(packet), 0);
}

Cycles
Network::reserveRoute(const std::vector<LinkId> &route,
                      const Packet &packet)
{
    Cycles serialize = static_cast<Cycles>(std::llround(
        std::ceil(static_cast<double>(wireBytesOf(packet)) /
                  cfg.wireBytesPerCycle)));

    Cycles cursor = events.now();
    for (LinkId link : route) {
        auto idx = static_cast<std::size_t>(link);
        Cycles start = std::max(cursor, linkFreeAt[idx]);
        Cycles done = start + serialize;
        linkFreeAt[idx] = done;
        cursor = done + cfg.hopLatencyCycles;
    }
    return cursor;
}

void
Network::reserveAndSchedule(std::vector<LinkId> route,
                            Packet &&packet, Cycles extra_delay)
{
    Cycles arrival = reserveRoute(route, packet) + extra_delay;
    Packet p = std::move(packet);
    // The arrival event mutates the destination node's state.
    EventQueue::PartitionScope scope(events, p.dst);
    events.schedule(arrival, [this, p = std::move(p)]() mutable {
        arrive(std::move(p), events.now());
    });
}

void
Network::arrive(Packet &&packet, Cycles time)
{
    // The destination may have died while the packet was in flight.
    if (topo.anyOutages() && !topo.nodeAlive(packet.dst, time)) {
        m.deadNodePackets.inc();
        return;
    }
    if (deliverTap && !deliverTap(std::move(packet), time))
        return;
    deliverFn(std::move(packet), time);
}

} // namespace ct::sim
