/**
 * @file
 * The complete local memory system of one node: first-level cache,
 * write queue, read-ahead / pipelined-load units, shared bus and
 * page-mode DRAM. Exposes processor-visible cycle costs for loads and
 * stores, plus a cache-bypassing engine port used by deposit engines
 * and DMAs.
 */

#ifndef CT_SIM_MEMORY_H
#define CT_SIM_MEMORY_H

#include <memory>

#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/prefetch.h"
#include "sim/write_buffer.h"

namespace ct::sim {

/** Full configuration of a node's memory system. */
struct MemoryConfig
{
    CacheConfig cache;
    DramConfig dram;
    WriteBufferConfig writeBuffer;
    ReadAheadConfig readAhead;
    LoadPipelineConfig loadPipeline;
    BusConfig bus;

    /** Cycles for a load that hits in the cache. */
    Cycles cacheHitCycles = 1;
    /** Fixed overhead added to a demand miss (handshake, tags). */
    Cycles missOverheadCycles = 2;
    /** Cycles to issue a store into the write path. */
    Cycles storeIssueCycles = 1;
};

/**
 * One node's memory system. All methods take the caller's current
 * time so that the background units (write queue, prefetcher) can be
 * modeled by occupancy without a global event loop.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /**
     * Processor word load; returns visible cycles.
     * @param streaming data-array loads may use the pipelined-load
     *        path (i860 pfld); auxiliary loads such as index-array
     *        reads set this false and go through the cache.
     */
    Cycles load(Addr addr, Cycles now,
                BusMaster master = BusMaster::Processor,
                bool streaming = true);

    /** Processor word store; returns visible cycles. */
    Cycles store(Addr addr, Cycles now,
                 BusMaster master = BusMaster::Processor);

    /**
     * Read through the engine port (cache bypassed, pattern-neutral).
     * Used by DMA fetch engines. Returns service cycles.
     */
    Cycles engineRead(Addr addr, Bytes bytes, Cycles now,
                      BusMaster master = BusMaster::Dma);

    /**
     * Write through the engine port. Deposit engines invalidate the
     * corresponding cache line to stay coherent (T3D behaviour).
     */
    Cycles engineWrite(Addr addr, Bytes bytes, Cycles now,
                       BusMaster master = BusMaster::Dma);

    /** Drain write queue and load pipeline; returns wait cycles. */
    Cycles fence(Cycles now);

    /** Reset stream/pipeline state at a synchronization point. */
    void synchronize();

    const MemoryConfig &config() const { return cfg; }
    const Cache &cache() const { return cacheModel; }
    const Dram &dram() const { return dramModel; }
    const WriteBuffer &writeBuffer() const { return wbq; }
    const ReadAhead &readAhead() const { return rdal; }
    const Bus &bus() const { return busModel; }

  private:
    MemoryConfig cfg;
    Dram dramModel;
    Cache cacheModel;
    WriteBuffer wbq;
    ReadAhead rdal;
    LoadPipeline pipeline;
    Bus busModel;
};

} // namespace ct::sim

#endif // CT_SIM_MEMORY_H
