/**
 * @file
 * Collective communication operations built on the message layers:
 * the standard steps a parallelizing compiler emits around array
 * statements (paper §2.1): cyclic shifts, personalized all-to-all
 * (the paper's AAPC), broadcast, and gather. Each collective builds
 * its flow sets, executes them round by round with the chosen layer,
 * verifies delivery, and reports the end-to-end timing.
 */

#ifndef CT_RT_COLLECTIVES_H
#define CT_RT_COLLECTIVES_H

#include "rt/layer.h"

namespace ct::rt {

/** Timing summary of one collective. */
struct CollectiveResult
{
    Cycles makespan = 0;
    /** Payload bytes the busiest node injected over all rounds. */
    Bytes bytesPerNode = 0;
    int rounds = 0;

    // Failure handling (all zero on a healthy machine). Collectives
    // re-plan around nodes that are dead when the flow set is built
    // and exclude flows whose endpoint dies mid-operation from
    // verification; link outages are invisible at this level beyond
    // the detours they force.
    /** Distinct dead links the network detoured around. */
    std::uint64_t reroutedLinks = 0;
    /** Nodes dead by the end of the collective. */
    int lostNodes = 0;
    /** Words not delivered because an endpoint node was/went dead. */
    std::uint64_t lostWords = 0;
    /** First round this call executed (checkpointed resumption). */
    int resumedFromRound = 0;

    util::MBps
    perNodeMBps(const sim::Machine &machine) const
    {
        return machine.toMBps(bytesPerNode, makespan);
    }
};

/**
 * Cyclic shift: node p sends @p words contiguous words to node
 * (p + displacement) mod P. The next-neighbour pattern of the
 * paper's SOR kernel.
 */
CollectiveResult shift(sim::Machine &machine, MessageLayer &layer,
                       std::uint64_t words, int displacement = 1);

/**
 * All-to-all personalized communication: every node sends a distinct
 * block of @p words_per_pair words to every other node, staggered
 * with the rotation schedule of the paper's reference [8].
 */
CollectiveResult allToAll(sim::Machine &machine, MessageLayer &layer,
                          std::uint64_t words_per_pair);

/**
 * Naive all-to-all: every node serves its partners in ascending node
 * order, so early receivers are hit by every sender at once. Exists
 * to quantify what the rotation schedule buys.
 */
CollectiveResult allToAllNaive(sim::Machine &machine,
                               MessageLayer &layer,
                               std::uint64_t words_per_pair);

/**
 * Phased all-to-all: P-1 synchronized rounds; in round r node p
 * talks only to p+r. Each round is a contention-free permutation
 * (the schedule of the paper's reference [8]) at the cost of a
 * barrier per round.
 */
CollectiveResult allToAllPhased(sim::Machine &machine,
                                MessageLayer &layer,
                                std::uint64_t words_per_pair);

/**
 * Broadcast @p words words from @p root with a binomial tree
 * (ceil(log2 P) rounds of doubling senders).
 */
CollectiveResult broadcast(sim::Machine &machine, MessageLayer &layer,
                           std::uint64_t words, NodeId root = 0);

/**
 * Gather @p words_per_node words from every node into @p root's
 * buffer. The fan-in congests the root's ejection port, which the
 * link-level network model exposes.
 */
CollectiveResult gatherTo(sim::Machine &machine, MessageLayer &layer,
                          std::uint64_t words_per_node,
                          NodeId root = 0);

} // namespace ct::rt

#endif // CT_RT_COLLECTIVES_H
