#include "chained_layer.h"

#include <deque>

#include "obs/trace.h"
#include "sim/trace_tracks.h"
#include "util/logging.h"

namespace ct::rt {

namespace {

using sim::Framing;
using sim::Machine;
using sim::NodeId;
using sim::Packet;
using sim::TraceTrack;
using sim::traceTrack;

/** Execution state of the whole operation. */
struct Ctx
{
    Machine &machine;
    const CommOp &op;
    const ChainedOptions &opts;
    bool engineReceive; // deposit engine vs co-processor receive

    std::vector<FlowGroup> groups;
    /**
     * The operation's endpoints, slot-mapped. All per-node state
     * below is indexed by active slot, so an exchange between a
     * handful of nodes on an 8192-node machine allocates a handful
     * of entries, not 8192. The set is immutable after construction
     * (parallel windows read it concurrently).
     */
    ActiveSet active;

    struct GroupRun
    {
        std::uint64_t nextWord = 0; // group-space cursor
        int credits = layerCredits;
        bool setupPaid = false;
    };

    std::vector<GroupRun> runs;
    /** Group indices each active node still has to send, in order. */
    std::vector<std::deque<std::size_t>> senderQueue;
    /** Per-node flags are char, not vector<bool>: adjacent nodes may
     *  flip their flags concurrently inside a parallel window, and
     *  bit-packed storage would make that a data race. */
    std::vector<char> procBusy;
    /** Packets waiting for the receive co-processor, per node. */
    std::vector<std::deque<Packet>> coprocQueue;
    std::vector<Cycles> coprocFreeAt;
    std::vector<char> coprocBusy;
    std::vector<Cycles> fetchFreeAt;
    /** Last deposit completion seen by each *sender* (credit events
     *  run in the sender's partition); the makespan is the max. */
    std::vector<Cycles> lastDoneByNode;
    bool refusalWarned = false;
    obs::Tracer *tracer;

    Ctx(Machine &machine, const CommOp &op, const ChainedOptions &opts)
        : machine(machine), op(op), opts(opts), groups(groupFlows(op)),
          active(groups), runs(groups.size()),
          senderQueue(active.count()), procBusy(active.count(), 0),
          coprocQueue(active.count()), coprocFreeAt(active.count(), 0),
          coprocBusy(active.count(), 0),
          fetchFreeAt(active.count(), 0),
          lastDoneByNode(active.count(), 0), tracer(machine.tracer())
    {
        engineReceive = machine.config().node.deposit.anyPattern;
        if (opts.dmaFeed) {
            // DMA-fed direct transfers land through the contiguous
            // deposit datapath, never the co-processor.
            if (!machine.config().node.fetch.enabled)
                util::fatal("ChainedLayer: DMA feed needs a fetch "
                            "engine");
            if (!machine.config().node.deposit.enabled)
                util::fatal("ChainedLayer: DMA feed needs a deposit "
                            "engine");
        } else if (!engineReceive &&
                   !machine.config().node.hasCoProcessor) {
            util::fatal("ChainedLayer: machine has neither a flexible "
                        "deposit engine nor a receive co-processor");
        }
        for (std::size_t g = 0; g < groups.size(); ++g)
            senderQueue[active.slot(groups[g].src)].push_back(g);
    }

    void trySend(NodeId node);
    void tryReceive(NodeId node);
    void deliver(Packet &&pkt, Cycles time);
    void chunkDeposited(std::size_t group_idx, Cycles time);
};

void
Ctx::trySend(NodeId node)
{
    std::size_t n = active.slot(node);
    if (procBusy[n])
        return;
    auto &queue = senderQueue[n];

    // Partners are served in order: all data for one destination is
    // streamed before the annex is switched to the next.
    while (!queue.empty()) {
        std::size_t g = queue.front();
        const FlowGroup &group = groups[g];
        GroupRun &run = runs[g];
        if (run.nextWord >= group.totalWords()) {
            queue.pop_front();
            continue;
        }
        if (run.credits == 0)
            return; // re-triggered when a chunk is deposited

        auto [pos, offset] = group.locate(run.nextWord);
        std::size_t flow_idx = group.flows[pos];
        const Flow &flow = op.flows[flow_idx];

        // Remote stores through a deposit engine carry their own
        // addresses, so a chunk may stream across flow boundaries
        // within the partner group; the co-processor receive path
        // (no engine) needs software framing per flow.
        std::uint64_t limit =
            (engineReceive && !opts.dmaFeed)
                ? group.totalWords() - run.nextWord
                : flow.words - offset;
        std::uint64_t count =
            std::min<std::uint64_t>(layerChunkWords, limit);
        std::uint64_t chunk_first = run.nextWord;
        run.nextWord += count;
        --run.credits;

        bool contiguous = flow.srcWalk.pattern.isContiguous() &&
                          flow.dstWalk.pattern.isContiguous() &&
                          offset + count <= flow.words;

        procBusy[n] = true;
        sim::Processor &proc = machine.node(node).processor();
        Cycles now = machine.events().now();
        Cycles elapsed = 0;
        if (!run.setupPaid) {
            elapsed += opts.flowSetupOverhead;
            run.setupPaid = true;
        }

        Packet pkt;
        pkt.src = group.src;
        pkt.dst = group.dst;
        pkt.flow = static_cast<std::uint32_t>(flow_idx);
        pkt.seq = static_cast<std::uint32_t>(g);
        pkt.framing =
            contiguous ? Framing::DataOnly : Framing::AddrDataPair;
        pkt.destBase = offset; // in-flow first word, see deliver()

        if (opts.dmaFeed) {
            // 1F0: the fetch engine reads the block and injects it;
            // the processor only pays the kick-off and is released
            // while the engine streams.
            if (!contiguous)
                util::fatal("ChainedLayer: DMA feed requires "
                            "contiguous flows");
            sim::Node &sender = machine.node(node);
            sim::Addr src_addr = flow.srcWalk.base + offset * 8;
            for (std::uint64_t i = 0; i < count; ++i)
                pkt.words.push_back(
                    sender.ram().readWord(src_addr + i * 8));
            pkt.destBase = flow.dstWalk.base + offset * 8;
            Cycles fetch_start =
                std::max(now + elapsed, fetchFreeAt[n]);
            Cycles fetch_elapsed =
                sender.fetchEngine().fetch(src_addr, count * 8);
            fetchFreeAt[n] = fetch_start + fetch_elapsed;
            if (tracer) {
                tracer->span("stage", "dma-kick",
                             traceTrack(node, TraceTrack::Cpu), now,
                             elapsed, "words", count);
                tracer->span("resource", "fetch-dma",
                             traceTrack(node, TraceTrack::Fetch),
                             fetch_start, fetch_elapsed, "bytes",
                             count * 8);
            }
            machine.events().schedule(
                fetchFreeAt[n],
                [this, pkt = std::move(pkt)]() mutable {
                    machine.network().send(std::move(pkt));
                });
            machine.events().scheduleAfter(elapsed, [this, node]() {
                procBusy[active.slot(node)] = false;
                trySend(node);
            });
            return;
        }

        if (pkt.framing == Framing::DataOnly) {
            elapsed += proc.gatherToPort(flow.srcWalk, offset, count,
                                         now + elapsed, pkt.words);
            pkt.destBase = flow.dstWalk.base + offset * 8;
        } else {
            // Gather and address-generate segment by segment.
            std::uint64_t done = 0;
            while (done < count) {
                auto [seg_pos, seg_off] =
                    group.locate(chunk_first + done);
                const Flow &seg_flow = op.flows[group.flows[seg_pos]];
                std::uint64_t seg_count = std::min<std::uint64_t>(
                    count - done, seg_flow.words - seg_off);
                elapsed += proc.gatherToPort(seg_flow.srcWalk,
                                             seg_off, seg_count,
                                             now + elapsed, pkt.words);
                elapsed += proc.computeRemoteAddrs(
                    seg_flow.dstWalkOnSender, seg_off, seg_count,
                    now + elapsed, pkt.addrs);
                done += seg_count;
            }
        }

        if (tracer)
            tracer->span("stage",
                         pkt.framing == Framing::DataOnly
                             ? "gather"
                             : "gather+addr",
                         traceTrack(node, TraceTrack::Cpu), now,
                         elapsed, "words", count);
        machine.events().scheduleAfter(
            elapsed, [this, node, pkt = std::move(pkt)]() mutable {
                machine.network().send(std::move(pkt));
                procBusy[active.slot(node)] = false;
                trySend(node);
            });
        return;
    }
}

void
Ctx::chunkDeposited(std::size_t group_idx, Cycles time)
{
    std::size_t src = active.slot(groups[group_idx].src);
    lastDoneByNode[src] = std::max(lastDoneByNode[src], time);
    ++runs[group_idx].credits;
    trySend(groups[group_idx].src);
}

void
Ctx::tryReceive(NodeId node)
{
    std::size_t n = active.slot(node);
    if (coprocBusy[n] || coprocQueue[n].empty())
        return;
    Packet pkt = std::move(coprocQueue[n].front());
    coprocQueue[n].pop_front();
    coprocBusy[n] = true;

    const Flow &flow = op.flows[pkt.flow];
    std::uint64_t first = pkt.destBase; // in-flow first word
    Cycles now = machine.events().now();
    Cycles start = std::max(now, coprocFreeAt[n]);
    sim::Processor &coproc = machine.node(node).coProcessor();
    Cycles elapsed =
        coproc.scatterFromPort(flow.dstWalk, first, pkt.words.size(),
                               start, pkt.words.data());
    coprocFreeAt[n] = start + elapsed;
    if (tracer)
        tracer->span("stage", "recv-scatter",
                     traceTrack(node, TraceTrack::CoProc), start,
                     elapsed, "words", pkt.words.size());

    std::size_t group_idx = pkt.seq;
    // The completion used to be one event doing sender work (the
    // credit return) and receiver work (freeing the co-processor) in
    // one callback; split so each side runs in its own partition.
    // The credit event is scheduled first, preserving the original
    // intra-callback order -- chunkDeposited() touches only sender
    // state, so the serial timeline is unchanged by the split.
    {
        sim::EventQueue::PartitionScope scope(
            machine.events(), groups[group_idx].src);
        machine.events().schedule(
            start + elapsed, [this, group_idx]() {
                chunkDeposited(group_idx, machine.events().now());
            });
    }
    machine.events().schedule(start + elapsed, [this, node]() {
        coprocBusy[active.slot(node)] = false;
        tryReceive(node);
    });
}

void
Ctx::deliver(Packet &&pkt, Cycles time)
{
    NodeId node = pkt.dst;
    // DMA-fed data-only chunks always land through the deposit
    // engine, even on machines that otherwise receive via the
    // co-processor.
    if (engineReceive ||
        (opts.dmaFeed && pkt.framing == Framing::DataOnly)) {
        if (pkt.framing == Framing::DataOnly) {
            // destBase already holds the absolute address.
        }
        sim::DepositEngine &engine =
            machine.node(node).depositEngine();
        if (!engine.admit(pkt)) {
            // Permanent ADP-datapath failure (fault injection): the
            // chunk is lost and its credit is withheld, so the sender
            // winds down instead of crashing. A reliable wrapper
            // detects the dead engine afterwards and degrades the
            // whole step to buffer packing.
            if (!refusalWarned) {
                util::warn("ChainedLayer: deposit engine refused a "
                           "chunk on node ",
                           node, "; winding down this flow");
                refusalWarned = true;
            }
            if (tracer)
                tracer->instant(
                    "resource", "deposit-refused",
                    traceTrack(node, TraceTrack::Deposit), time);
            return;
        }
        std::size_t group_idx = pkt.seq;
        Cycles dep_start = std::max(time, engine.busyUntil());
        Cycles done = engine.deposit(pkt, time);
        if (tracer)
            tracer->span("resource", "deposit",
                         traceTrack(node, TraceTrack::Deposit),
                         dep_start, done - dep_start, "words",
                         pkt.words.size());
        // Credit return: sender-partition work, scheduled from the
        // receiver's arrival event.
        sim::EventQueue::PartitionScope scope(
            machine.events(), groups[group_idx].src);
        machine.events().schedule(done, [this, group_idx]() {
            chunkDeposited(group_idx, machine.events().now());
        });
        return;
    }
    // Co-processor receive path (Paragon): data-only packets carry
    // an absolute destBase, but the scatter kernel needs the in-flow
    // offset; recover it from the walk base.
    if (pkt.framing == Framing::DataOnly) {
        const Flow &flow = op.flows[pkt.flow];
        pkt.destBase = (pkt.destBase - flow.dstWalk.base) / 8;
    }
    coprocQueue[active.slot(node)].push_back(std::move(pkt));
    tryReceive(node);
}

} // namespace

RunResult
ChainedLayer::run(sim::Machine &machine, const CommOp &op)
{
    Cycles op_start = machine.events().now();
    Ctx ctx(machine, op, opts);
    machine.network().setDeliver(
        [&ctx](Packet &&pkt, Cycles time) {
            ctx.deliver(std::move(pkt), time);
        });
    // Kick off the active endpoints only (ascending, like the old
    // all-nodes loop): trySend() is a no-op for a node with nothing
    // queued, so skipping idle nodes leaves the event schedule -- and
    // therefore every downstream byte -- unchanged.
    for (NodeId node : ctx.active.nodeList()) {
        // The kick-off runs outside any event; tag each node's
        // initial sends with its own partition.
        sim::EventQueue::PartitionScope scope(machine.events(), node);
        ctx.trySend(node);
    }
    machine.events().run();

    // Settle write queues, then pay the end-of-step synchronization
    // (barrier + cache invalidation after background deposits). Only
    // the operation's endpoints touched memory, so only they can owe
    // a drain (an idle node's fence is zero).
    Cycles makespan = 0;
    for (Cycles done : ctx.lastDoneByNode)
        makespan = std::max(makespan, done);
    Cycles extra = 0;
    for (NodeId node : ctx.active.nodeList())
        extra = std::max(extra,
                         machine.node(node).memory().fence(makespan));
    makespan += extra + opts.stepSyncCycles;

    if (auto *t = machine.tracer())
        t->span("op", opts.dmaFeed ? "chained-dma" : "chained",
                machine.opTrack(), op_start,
                makespan > op_start ? makespan - op_start : 0,
                "bytes", op.totalBytes());

    RunResult result;
    result.makespan = makespan;
    result.payloadBytes = op.totalBytes();
    result.maxBytesPerSender = op.maxBytesPerSender();
    return result;
}

sim::Cycles
ChainedLayer::parallelLookahead(const sim::Machine &machine,
                                const CommOp &op) const
{
    (void)op;
    // The layer's fastest cross-node interaction beyond the wire is
    // the credit return, and a deposited chunk never returns its
    // credit sooner than the deposit engine's fixed per-packet cost
    // after arrival (the co-processor path's scatter is far slower
    // than that floor; the engine's commit check would catch an
    // overclaim loudly).
    sim::Cycles per_packet =
        machine.config().node.deposit.perPacketCycles;
    return per_packet > 0 ? per_packet : 1;
}

} // namespace ct::rt
