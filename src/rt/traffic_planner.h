/**
 * @file
 * Congestion-aware planning: the paper fixes the congestion factor of
 * a communication step by analyzing its traffic pattern on the
 * machine's topology (§4.3: shifts run at congestion ~1-2, dense
 * exchanges at ~2, fan-ins higher). This module closes the loop
 * between the model (`ct::core`) and the machine (`ct::sim`): it
 * derives the congestion of a concrete CommOp from static link-load
 * analysis and feeds it into the planner, so the recommended strategy
 * accounts for how loaded the wires will actually be.
 */

#ifndef CT_RT_TRAFFIC_PLANNER_H
#define CT_RT_TRAFFIC_PLANNER_H

#include "core/planner.h"
#include "rt/comm_op.h"

namespace ct::rt {

/** A plan annotated with the traffic analysis that produced it. */
struct TrafficPlan
{
    /** Congestion of the op's traffic pattern on this topology. */
    double congestion = 1.0;
    /** Demands that found a live route / that found none. A
     *  congestion of 1.0 with routedDemands == 0 means the pattern
     *  is entirely unroutable, not that the network is balanced. */
    int routedDemands = 0;
    int unroutableDemands = 0;
    /** Dominant access patterns of the op's flows. */
    core::AccessPattern read;
    core::AccessPattern write;
    /** Ranked strategies at that congestion. */
    std::vector<core::PlannedStrategy> strategies;

    /** True when there was traffic but none of it is routable. */
    bool allUnroutable() const
    {
        return routedDemands == 0 && unroutableDemands > 0;
    }
};

/**
 * Analyze @p op on @p machine: compute the congestion factor of its
 * demands on the machine's topology (never below the machine's
 * structural minimum -- two on the T3D, whose nodes share network
 * ports), take the access patterns of the largest flow, and rank the
 * implementation strategies at that congestion.
 */
TrafficPlan planForTraffic(sim::Machine &machine, const CommOp &op);

/** Render the analysis for tools and examples. */
std::string formatTrafficPlan(const sim::Machine &machine,
                              const CommOp &op,
                              const TrafficPlan &plan);

} // namespace ct::rt

#endif // CT_RT_TRAFFIC_PLANNER_H
