/**
 * @file
 * Checkpointed recovery of long redistributions. A full
 * redistribution is a rotation schedule of P steps; running it as
 * one monolithic operation means a node failure anywhere loses the
 * whole run. The checkpointed driver executes the schedule round by
 * round, verifying and recording each completed round in a
 * Checkpoint, and re-plans the remaining rounds around dead nodes
 * (the next live node takes over a dead node's block ownership, see
 * OwnerMap). When a node dies mid-round the driver returns with
 * `interrupted` set and the round unrecorded; calling it again
 * resumes from the last completed round under the new ownership map
 * -- sources are untouched by delivery, so re-running a round is
 * idempotent.
 *
 * Rounds that completed *before* a node died delivered their share
 * of the dead node's blocks into RAM that is now unreachable. The
 * checkpoint therefore also records the ownership map its rounds ran
 * under; on resume, the driver re-delivers exactly those flows of
 * completed rounds whose receiver's ownership moved (a repair pass),
 * so the takeover node's spill buffer ends up holding the dead
 * node's complete block set, not just the post-failure part.
 */

#ifndef CT_RT_CHECKPOINT_H
#define CT_RT_CHECKPOINT_H

#include <string>
#include <vector>

#include "rt/layer.h"
#include "rt/redistribute.h"
#include "rt/redistribute2d.h"

namespace ct::rt {

/** Per-round progress record of one checkpointed operation. */
struct Checkpoint
{
    std::string opName;
    int totalRounds = 0;
    /** done[r]: round r ran to completion and verified. */
    std::vector<bool> done;
    /** Ownership map the recorded rounds delivered under (empty
     *  until the driver first runs; maintained by the driver). */
    OwnerMap owners;

    /**
     * Bind the checkpoint to an operation. A checkpoint already
     * bound to the same (name, rounds) keeps its progress (that is
     * the resume path); anything else resets it to all-pending.
     */
    void begin(const std::string &name, int rounds);

    int completedRounds() const;

    /** First round still pending (== totalRounds when complete). */
    int resumePoint() const;

    bool complete() const { return completedRounds() == totalRounds; }

    void markDone(int round);
};

/** Outcome of one (possibly partial) checkpointed run. */
struct RecoveryResult
{
    /** Simulated cycles this call consumed. */
    Cycles makespan = 0;
    /** Rounds this call completed. */
    int rounds = 0;
    /** Completed rounds whose lost flows were re-delivered to the
     *  new owners on resume. */
    int repairedRounds = 0;
    /** First pending round when this call started. */
    int resumedFromRound = 0;
    /** A node died mid-round; call again to resume and re-plan. */
    bool interrupted = false;
    /** Nodes dead when this call returned. */
    int lostNodes = 0;
    /** Words lost with dead senders (unrecoverable data). */
    std::uint64_t lostWords = 0;
    /** Distinct dead links the network detoured around so far. */
    std::uint64_t reroutedLinks = 0;
};

/**
 * Run (or resume) @p work round by round under @p layer, recording
 * progress in @p ckpt. Returns with `interrupted` when a node death
 * is detected mid-round; the caller re-invokes to resume from the
 * last completed round. Fatal on data corruption that is not
 * explained by a failure.
 */
RecoveryResult
runRedistributionCheckpointed(sim::Machine &machine,
                              MessageLayer &layer,
                              RedistributionWorkload &work,
                              Checkpoint &ckpt);

/** 2-D / transpose variant of runRedistributionCheckpointed. */
RecoveryResult
runRedistribution2dCheckpointed(sim::Machine &machine,
                                MessageLayer &layer,
                                Redistribution2dWorkload &work,
                                Checkpoint &ckpt);

} // namespace ct::rt

#endif // CT_RT_CHECKPOINT_H
