#include "workload.h"

#include "core/distribution.h"

#include "util/logging.h"

namespace ct::rt {

using core::AccessPattern;
using core::PatternKind;

sim::PatternWalk
allocWalk(sim::Node &node, AccessPattern p, std::uint64_t words,
          util::Rng &rng)
{
    sim::NodeRam &ram = node.ram();
    switch (p.kind()) {
      case PatternKind::Contiguous:
        return sim::contiguousWalk(ram.alloc(words * 8));
      case PatternKind::Strided:
        return sim::stridedWalk(ram.alloc(words * p.stride() * 8),
                                p.stride());
      case PatternKind::Indexed: {
        Addr base = ram.alloc(words * 8);
        Addr idx = ram.alloc(words * 8);
        auto perm = rng.permutation(words);
        for (std::uint64_t i = 0; i < words; ++i)
            ram.writeWord(idx + i * 8, perm[i]);
        return sim::indexedWalk(base, idx);
      }
      case PatternKind::Fixed:
        break;
    }
    util::fatal("allocWalk: pattern must touch memory");
}

sim::PatternWalk
replicateIndexArray(const sim::PatternWalk &walk, std::uint64_t words,
                    const sim::NodeRam &owner_ram, sim::Node &node)
{
    if (!walk.pattern.isIndexed())
        return walk;
    Addr copy = node.ram().alloc(words * 8);
    for (std::uint64_t i = 0; i < words; ++i)
        node.ram().writeWord(copy + i * 8,
                             owner_ram.readWord(walk.indexAddr(i)));
    sim::PatternWalk replica = walk;
    replica.indexBase = copy;
    return replica;
}

Flow
makeFlow(sim::Machine &machine, NodeId src, NodeId dst,
         AccessPattern x, AccessPattern y, std::uint64_t words,
         util::Rng &rng)
{
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.words = words;
    flow.srcWalk = allocWalk(machine.node(src), x, words, rng);
    flow.dstWalk = allocWalk(machine.node(dst), y, words, rng);
    flow.dstWalkOnSender =
        replicateIndexArray(flow.dstWalk, words,
                            machine.node(dst).ram(),
                            machine.node(src));
    return flow;
}

sim::PatternWalk
walkForIndices(const std::vector<std::uint64_t> &locals,
               Addr array_base, sim::Node &index_home)
{
    if (locals.empty())
        util::fatal("walkForIndices: empty index list");
    AccessPattern pattern = core::classifyIndices(locals);
    switch (pattern.kind()) {
      case PatternKind::Contiguous:
        return sim::contiguousWalk(array_base + locals.front() * 8);
      case PatternKind::Strided:
        return sim::stridedWalk(array_base + locals.front() * 8,
                                pattern.stride(), pattern.block());
      case PatternKind::Indexed: {
        Addr idx = index_home.ram().alloc(locals.size() * 8);
        for (std::size_t i = 0; i < locals.size(); ++i)
            index_home.ram().writeWord(idx + i * 8, locals[i]);
        return sim::indexedWalk(array_base, idx);
      }
      default:
        break;
    }
    util::panic("walkForIndices: unexpected pattern");
}

Flow
makeTypedFlow(sim::Machine &machine, NodeId src, NodeId dst,
              const core::Datatype &src_type,
              const core::Datatype &dst_type)
{
    if (src_type.size() != dst_type.size())
        util::fatal("makeTypedFlow: type signatures differ (",
                    src_type.size(), " vs ", dst_type.size(),
                    " words)");
    if (src_type.hasOverlap() || dst_type.hasOverlap())
        util::fatal("makeTypedFlow: overlapping datatype");

    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.words = src_type.size();
    Addr src_base =
        machine.node(src).ram().alloc(src_type.extent() * 8);
    Addr dst_base =
        machine.node(dst).ram().alloc(dst_type.extent() * 8);
    flow.srcWalk = walkForIndices(src_type.offsets(), src_base,
                                  machine.node(src));
    flow.dstWalk = walkForIndices(dst_type.offsets(), dst_base,
                                  machine.node(dst));
    flow.dstWalkOnSender =
        flow.dstWalk.pattern.isIndexed()
            ? walkForIndices(dst_type.offsets(), dst_base,
                             machine.node(src))
            : flow.dstWalk;
    return flow;
}

CommOp
pairExchange(sim::Machine &machine, AccessPattern x, AccessPattern y,
             std::uint64_t words, std::uint64_t seed)
{
    util::Rng rng(seed);
    CommOp op;
    op.name = x.label() + std::string("Q") + y.label() + " exchange";
    for (NodeId node = 0; node + 1 < machine.nodeCount(); node += 2) {
        op.flows.push_back(
            makeFlow(machine, node, node + 1, x, y, words, rng));
        op.flows.push_back(
            makeFlow(machine, node + 1, node, x, y, words, rng));
    }
    return op;
}

std::vector<sim::TrafficDemand>
pairExchangeDemands(int nodes, Bytes bytes_per_demand)
{
    std::vector<sim::TrafficDemand> demands;
    demands.reserve(static_cast<std::size_t>(nodes));
    for (NodeId node = 0; node + 1 < nodes; node += 2) {
        demands.push_back({node, node + 1, bytes_per_demand});
        demands.push_back({node + 1, node, bytes_per_demand});
    }
    return demands;
}

} // namespace ct::rt
