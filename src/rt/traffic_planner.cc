#include "traffic_planner.h"

#include <sstream>

#include "util/logging.h"

namespace ct::rt {

TrafficPlan
planForTraffic(sim::Machine &machine, const CommOp &op)
{
    if (op.flows.empty())
        util::fatal("planForTraffic: empty operation");

    TrafficPlan plan;
    sim::CongestionReport report =
        machine.topology().analyzeCongestion(op.demands());
    plan.congestion = report.factor;
    plan.routedDemands = report.routed;
    plan.unroutableDemands = report.unroutable;
    if (plan.allUnroutable())
        util::warn("planForTraffic: '", op.name, "': all ",
                   plan.unroutableDemands,
                   " demands are unroutable on this topology; the "
                   "congestion floor of 1 is not a balance claim");

    const Flow *largest = nullptr;
    for (const auto &flow : op.flows)
        if (!largest || flow.words > largest->words)
            largest = &flow;
    plan.read = largest->srcWalk.pattern;
    plan.write = largest->dstWalk.pattern;

    core::PlanQuery query;
    query.machine = machine.config().id;
    query.read = plan.read;
    query.write = plan.write;
    query.congestion = plan.congestion;
    plan.strategies = core::plan(query);
    return plan;
}

std::string
formatTrafficPlan(const sim::Machine &machine, const CommOp &op,
                  const TrafficPlan &plan)
{
    std::ostringstream os;
    os << "'" << op.name << "' on " << machine.config().name << " ("
       << machine.nodeCount() << " nodes): " << op.flows.size()
       << " flows, " << op.totalBytes() / 1024 << " KB total\n";
    os << "  analyzed congestion: " << plan.congestion << "\n";
    if (plan.allUnroutable())
        os << "  WARNING: all " << plan.unroutableDemands
           << " demands unroutable (no live path); plan assumes the "
              "fabric heals\n";
    else if (plan.unroutableDemands > 0)
        os << "  unroutable demands: " << plan.unroutableDemands
           << " of "
           << plan.routedDemands + plan.unroutableDemands << "\n";
    core::PlanQuery query{machine.config().id, plan.read, plan.write,
                          plan.congestion};
    os << core::formatPlan(query, plan.strategies);
    return os.str();
}

} // namespace ct::rt
