#include "traffic_planner.h"

#include <sstream>

#include "util/logging.h"

namespace ct::rt {

TrafficPlan
planForTraffic(sim::Machine &machine, const CommOp &op)
{
    if (op.flows.empty())
        util::fatal("planForTraffic: empty operation");

    TrafficPlan plan;
    plan.congestion =
        machine.topology().congestionOf(op.demands());

    const Flow *largest = nullptr;
    for (const auto &flow : op.flows)
        if (!largest || flow.words > largest->words)
            largest = &flow;
    plan.read = largest->srcWalk.pattern;
    plan.write = largest->dstWalk.pattern;

    core::PlanQuery query;
    query.machine = machine.config().id;
    query.read = plan.read;
    query.write = plan.write;
    query.congestion = plan.congestion;
    plan.strategies = core::plan(query);
    return plan;
}

std::string
formatTrafficPlan(const sim::Machine &machine, const CommOp &op,
                  const TrafficPlan &plan)
{
    std::ostringstream os;
    os << "'" << op.name << "' on " << machine.config().name << " ("
       << machine.nodeCount() << " nodes): " << op.flows.size()
       << " flows, " << op.totalBytes() / 1024 << " KB total\n";
    os << "  analyzed congestion: " << plan.congestion << "\n";
    core::PlanQuery query{machine.config().id, plan.read, plan.write,
                          plan.congestion};
    os << core::formatPlan(query, plan.strategies);
    return os.str();
}

} // namespace ct::rt
