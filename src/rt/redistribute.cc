#include "redistribute.h"

#include "rt/workload.h"
#include "util/logging.h"

namespace ct::rt {

namespace {

using core::AccessPattern;
using core::Distribution;

} // namespace

RedistributionWorkload
RedistributionWorkload::create(sim::Machine &machine,
                               const Distribution &from,
                               const Distribution &to)
{
    if (from.nodes() != machine.nodeCount() ||
        to.nodes() != machine.nodeCount())
        util::fatal("RedistributionWorkload: distributions must span "
                    "the machine");
    if (from.elements() != to.elements())
        util::fatal("RedistributionWorkload: element count mismatch");

    RedistributionWorkload w;
    w.fromDist = from;
    w.toDist = to;
    w.commOp.name = from.name() + " -> " + to.name();

    int nodes = machine.nodeCount();
    for (int node = 0; node < nodes; ++node) {
        sim::NodeRam &ram = machine.node(node).ram();
        std::uint64_t src_count =
            std::max<std::uint64_t>(1, from.localCount(node));
        std::uint64_t dst_count =
            std::max<std::uint64_t>(1, to.localCount(node));
        w.srcBase.push_back(ram.alloc(src_count * 8));
        w.dstBase.push_back(ram.alloc(dst_count * 8));
    }

    // Rotation schedule over the receivers, as for the transpose.
    for (int p = 0; p < nodes; ++p) {
        for (int step = 0; step < nodes; ++step) {
            int q = (p + step) % nodes;
            auto moved = core::redistributionIndices(from, to, p, q);
            if (moved.empty())
                continue;

            std::vector<std::uint64_t> src_locals, dst_locals;
            src_locals.reserve(moved.size());
            dst_locals.reserve(moved.size());
            for (std::uint64_t g : moved) {
                src_locals.push_back(from.localIndexOf(g));
                dst_locals.push_back(to.localIndexOf(g));
            }

            Flow flow;
            flow.src = p;
            flow.dst = q;
            flow.words = moved.size();
            flow.srcWalk =
                walkForIndices(src_locals,
                        w.srcBase[static_cast<std::size_t>(p)],
                        machine.node(p));
            flow.dstWalk =
                walkForIndices(dst_locals,
                        w.dstBase[static_cast<std::size_t>(q)],
                        machine.node(q));
            // Chained senders generate remote addresses; an indexed
            // destination walk needs its index array sender-side.
            flow.dstWalkOnSender =
                flow.dstWalk.pattern.isIndexed()
                    ? walkForIndices(dst_locals,
                              w.dstBase[static_cast<std::size_t>(q)],
                              machine.node(p))
                    : flow.dstWalk;
            w.commOp.flows.push_back(flow);
        }
    }
    return w;
}

Addr
RedistributionWorkload::spillFor(sim::Machine &machine, NodeId dead,
                                 const OwnerMap &owners)
{
    NodeId takeover = owners.of(dead);
    auto it = spillBase.find(dead);
    if (it != spillBase.end() && it->second.first == takeover)
        return it->second.second;
    std::uint64_t count =
        std::max<std::uint64_t>(1, toDist.localCount(dead));
    Addr base = machine.node(takeover).ram().alloc(count * 8);
    spillBase[dead] = {takeover, base};
    return base;
}

CommOp
RedistributionWorkload::stepOp(sim::Machine &machine, int step,
                               const OwnerMap &owners,
                               std::uint64_t *lost_words)
{
    return buildStep(machine, step, owners, lost_words, nullptr);
}

CommOp
RedistributionWorkload::repairOp(sim::Machine &machine, int step,
                                 const OwnerMap &before,
                                 const OwnerMap &owners,
                                 std::uint64_t *lost_words)
{
    return buildStep(machine, step, owners, lost_words, &before);
}

CommOp
RedistributionWorkload::buildStep(sim::Machine &machine, int step,
                                  const OwnerMap &owners,
                                  std::uint64_t *lost_words,
                                  const OwnerMap *changed_since)
{
    int nodes = fromDist.nodes();
    if (step < 0 || step >= nodes)
        util::fatal("RedistributionWorkload::stepOp: bad step ",
                    step);
    CommOp op;
    op.name = commOp.name + " step " + std::to_string(step) +
              (changed_since ? " repair" : "");
    for (int p = 0; p < nodes; ++p) {
        int q = (p + step) % nodes;
        if (changed_since && owners.of(q) == changed_since->of(q))
            continue; // receiver unaffected; already delivered
        auto moved = core::redistributionIndices(fromDist, toDist, p,
                                                 q);
        if (moved.empty())
            continue;
        if (!owners.alive(p)) {
            // The sender died and its un-sent data with it.
            if (lost_words)
                *lost_words += moved.size();
            continue;
        }
        NodeId dst = owners.of(q);
        Addr dst_base =
            owners.alive(q)
                ? dstBase[static_cast<std::size_t>(q)]
                : spillFor(machine, q, owners);

        std::vector<std::uint64_t> src_locals, dst_locals;
        src_locals.reserve(moved.size());
        dst_locals.reserve(moved.size());
        for (std::uint64_t g : moved) {
            src_locals.push_back(fromDist.localIndexOf(g));
            dst_locals.push_back(toDist.localIndexOf(g));
        }

        Flow flow;
        flow.src = p;
        flow.dst = dst;
        flow.words = moved.size();
        flow.srcWalk = walkForIndices(
            src_locals, srcBase[static_cast<std::size_t>(p)],
            machine.node(p));
        flow.dstWalk =
            walkForIndices(dst_locals, dst_base, machine.node(dst));
        flow.dstWalkOnSender =
            flow.dstWalk.pattern.isIndexed()
                ? walkForIndices(dst_locals, dst_base,
                                 machine.node(p))
                : flow.dstWalk;
        op.flows.push_back(flow);
    }
    return op;
}

std::uint64_t
RedistributionWorkload::verify(sim::Machine &machine,
                               const OwnerMap &owners) const
{
    std::uint64_t mismatches = 0;
    for (std::uint64_t g = 0; g < toDist.elements(); ++g) {
        int q = toDist.ownerOf(g);
        int p = fromDist.ownerOf(g);
        if (p == q)
            continue; // stays local; no flow moved it
        if (!owners.alive(p))
            continue; // source data died with its node
        std::uint64_t got;
        if (owners.alive(q)) {
            got = machine.node(q).ram().readWord(
                dstBase[static_cast<std::size_t>(q)] +
                toDist.localIndexOf(g) * 8);
        } else {
            auto it = spillBase.find(q);
            if (it == spillBase.end()) {
                ++mismatches; // never redirected anywhere
                continue;
            }
            got = machine.node(it->second.first)
                      .ram()
                      .readWord(it->second.second +
                                toDist.localIndexOf(g) * 8);
        }
        mismatches += got != g + 1;
    }
    return mismatches;
}

void
RedistributionWorkload::fillInput(sim::Machine &machine) const
{
    for (std::uint64_t g = 0; g < fromDist.elements(); ++g) {
        int p = fromDist.ownerOf(g);
        machine.node(p).ram().writeWord(
            srcBase[static_cast<std::size_t>(p)] +
                fromDist.localIndexOf(g) * 8,
            g + 1);
    }
}

std::uint64_t
RedistributionWorkload::verify(sim::Machine &machine) const
{
    std::uint64_t mismatches = 0;
    for (std::uint64_t g = 0; g < toDist.elements(); ++g) {
        int q = toDist.ownerOf(g);
        if (fromDist.ownerOf(g) == q)
            continue; // stays local; no flow moved it
        std::uint64_t got = machine.node(q).ram().readWord(
            dstBase[static_cast<std::size_t>(q)] +
            toDist.localIndexOf(g) * 8);
        mismatches += got != g + 1;
    }
    return mismatches;
}

std::pair<core::AccessPattern, core::AccessPattern>
RedistributionWorkload::dominantPatterns() const
{
    const Flow *best = nullptr;
    for (const auto &flow : commOp.flows)
        if (!best || flow.words > best->words)
            best = &flow;
    if (!best)
        return {AccessPattern::contiguous(),
                AccessPattern::contiguous()};
    return {best->srcWalk.pattern, best->dstWalk.pattern};
}

} // namespace ct::rt
