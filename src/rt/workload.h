/**
 * @file
 * Generic workload builders: allocate pattern walks in node memories
 * and assemble simple CommOps (pairwise exchanges of a given xQy)
 * used by tests and the basic-operation benchmarks (Figures 7/8,
 * Table 5).
 */

#ifndef CT_RT_WORKLOAD_H
#define CT_RT_WORKLOAD_H

#include "core/datatype.h"
#include "rt/comm_op.h"
#include "util/rng.h"

namespace ct::rt {

/**
 * Allocate a walk of @p words elements with pattern @p p in @p node's
 * memory. Indexed walks get a fresh random permutation index array.
 */
sim::PatternWalk allocWalk(sim::Node &node, core::AccessPattern p,
                           std::uint64_t words, util::Rng &rng);

/**
 * Replicate the index array of @p walk into @p node's memory (the
 * sender of a chained transfer generates the remote store addresses
 * and therefore needs the destination index array locally).
 */
sim::PatternWalk replicateIndexArray(const sim::PatternWalk &walk,
                                     std::uint64_t words,
                                     const sim::NodeRam &owner_ram,
                                     sim::Node &node);

/**
 * Build one flow src -> dst moving @p words elements read with
 * pattern @p x and written with pattern @p y, allocating all storage.
 */
Flow makeFlow(sim::Machine &machine, NodeId src, NodeId dst,
              core::AccessPattern x, core::AccessPattern y,
              std::uint64_t words, util::Rng &rng);

/**
 * Build a walk over @p array_base visiting the sorted word indices
 * @p locals. Regular index lists become contiguous or (block-)
 * strided walks; irregular ones materialize an index array in
 * @p index_home's memory (the node the walk is evaluated on).
 */
sim::PatternWalk walkForIndices(const std::vector<std::uint64_t> &locals,
                                Addr array_base, sim::Node &index_home);

/**
 * Build a flow that transmits one instance of @p src_type from
 * @p src into the layout @p dst_type on @p dst (MPI-style typed
 * send/receive; the type signatures must carry the same word count).
 * Arrays large enough for each type's extent are allocated.
 */
Flow makeTypedFlow(sim::Machine &machine, NodeId src, NodeId dst,
                   const core::Datatype &src_type,
                   const core::Datatype &dst_type);

/**
 * Pairwise exchange: nodes are grouped in pairs (0,1), (2,3), ...;
 * each partner sends @p words elements to the other with patterns
 * x -> y. Every node both sends and receives, as in the paper's
 * measurement setup.
 */
CommOp pairExchange(sim::Machine &machine, core::AccessPattern x,
                    core::AccessPattern y, std::uint64_t words,
                    std::uint64_t seed = 42);

/**
 * The traffic demands pairExchange() would generate on a
 * @p nodes-node machine, without building the machine: one demand in
 * each direction per pair, @p bytes_per_demand each. This is the
 * large-N analysis path -- a Topology plus this list answers the
 * congestion question for thousands of nodes in microseconds, with no
 * node state behind it.
 */
std::vector<sim::TrafficDemand>
pairExchangeDemands(int nodes, Bytes bytes_per_demand);

} // namespace ct::rt

#endif // CT_RT_WORKLOAD_H
