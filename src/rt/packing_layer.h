/**
 * @file
 * Buffer-packing transfers (paper §3.4 / §5.1.1 / §5.1.3): gather
 * into a contiguous buffer, move the buffer as a block across the
 * network, scatter on the far side:
 *
 *     xQy = xC1 o (1S0|1F0 || Nd || 0D1) o 1Cy
 *
 * The PVM variant adds one more copy through a system buffer on each
 * side and a constant per-message software overhead (§5.1.1, §6.2).
 */

#ifndef CT_RT_PACKING_LAYER_H
#define CT_RT_PACKING_LAYER_H

#include "rt/layer.h"

namespace ct::rt {

/** Tunables distinguishing bare packing from PVM-style packing. */
struct PackingOptions
{
    /** Copy through an extra system buffer on both sides (PVM). */
    bool systemBufferCopies = false;
    /** Software cost charged to the sender per flow (message);
     *  the default models the libsma/NX block-send call. */
    Cycles senderMessageOverhead = 1000;
    /** Software cost charged to the receiver per flow. */
    Cycles receiverMessageOverhead = 500;
    /** End-of-step barrier cost, charged once per run. */
    Cycles stepSyncCycles = 3000;
    /** Layer name shown in reports. */
    std::string layerName = "buffer-packing";
};

/** Gather / block transfer / scatter implementation. */
class PackingLayer : public MessageLayer
{
  public:
    PackingLayer() = default;
    explicit PackingLayer(PackingOptions options)
        : opts(std::move(options))
    {}

    std::string name() const override { return opts.layerName; }

    RunResult run(sim::Machine &machine, const CommOp &op) override;

    /** Partition-tagged like chained; keeps the base lookahead of 1
     *  (credit returns ride on unpack completions with no fixed
     *  delay floor), so only same-timestamp events parallelize. */
    bool parallelSafe() const override { return true; }

    const PackingOptions &options() const { return opts; }

  private:
    PackingOptions opts;
};

/**
 * The PVM-style layer used for Figure 1 and the Table 6 footnote:
 * packing plus system-buffer copies plus per-message overhead. The
 * overhead default corresponds to the tens-of-microseconds message
 * latency of Cray PVM3.
 */
PackingLayer makePvmLayer(Cycles sender_overhead = 4000,
                          Cycles receiver_overhead = 2000);

} // namespace ct::rt

#endif // CT_RT_PACKING_LAYER_H
