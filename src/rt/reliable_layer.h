/**
 * @file
 * Reliable delivery on an unreliable interconnect. ReliableLayer
 * wraps any MessageLayer with an end-to-end transport interposed at
 * the network boundary:
 *
 *  - every outbound data packet gets a per-(src,dst)-channel sequence
 *    number and a CRC32C checksum, and a copy is retained for
 *    retransmission;
 *  - the receiver verifies the checksum (NACKing corrupted packets),
 *    suppresses duplicates, reorders out-of-order arrivals, releases
 *    packets to the wrapped layer strictly in sequence order, and
 *    returns cumulative ACKs;
 *  - the sender retransmits on NACK or on a simulated-cycle timeout
 *    with exponential backoff and a bounded retry budget.
 *
 * On a permanent deposit-engine (ADP-datapath) failure the wrapped
 * chained layer cannot finish: its address-data-pair chunks are
 * refused. Instead of erroring, ReliableLayer gracefully degrades,
 * re-running the whole operation through the buffer-packing path
 * (xC1 o (1S0 || Nd || 0D1) o 1Cy), which only needs contiguous
 * deposits. The result is flagged `degraded` and the downgrade is
 * logged; the makespan includes both the aborted chained phase and
 * the packing recovery.
 */

#ifndef CT_RT_RELIABLE_LAYER_H
#define CT_RT_RELIABLE_LAYER_H

#include <utility>
#include <vector>

#include "rt/layer.h"
#include "rt/packing_layer.h"

namespace ct::rt {

/** Transport tunables. */
struct ReliableOptions
{
    /** Initial retransmission timeout in simulated cycles. */
    Cycles retransmitTimeout = 30000;
    /** Timeout multiplier per retry (exponential backoff). */
    double backoff = 2.0;
    /** Retransmissions per packet before it is abandoned. */
    int maxRetries = 12;
    /** Degrade to buffer packing on permanent engine failure. */
    bool degradeToPacking = true;
    /** Options of the fallback packing layer. */
    PackingOptions fallback;
};

/**
 * Transport counters for one run. A snapshot view over the
 * machine-registry "rt.reliable.*" metrics: the transport counts into
 * registry cells (reset when a run starts) and the layer materializes
 * this struct when the run finishes.
 */
struct ReliableStats
{
    std::uint64_t dataPackets = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acksSent = 0;
    std::uint64_t nacksSent = 0;
    std::uint64_t duplicatesDropped = 0;
    std::uint64_t checksumFailures = 0;
    std::uint64_t outOfOrder = 0;
    /** Packets given up after the retry budget (should stay 0). */
    std::uint64_t abandoned = 0;
    /** Retry budgets exhausted (every abandon hits this first; a
     *  policy controller watches it to tighten or relax budgets). */
    std::uint64_t retryExhausted = 0;
    /** Degradation transitions to the packing fallback this run. */
    std::uint64_t degradations = 0;
    /** Pending packets dropped because an endpoint node died. The
     *  watchdog clears them so the run can wind down; a checkpointed
     *  driver re-plans the lost traffic around the dead node. */
    std::uint64_t deadEndpointDrops = 0;
    /** Pending packets written off because no live route existed
     *  (the channel is route-suspect: partition or dead port). */
    std::uint64_t routeSuspects = 0;
    /** Ack round-trip observations, Karn-filtered (first-transmission
     *  acks only; a retransmitted packet's ack is ambiguous). The
     *  resilience controller floors its retransmit timeout at a
     *  multiple of the mean so adaptation cannot tighten below the
     *  loaded path's round-trip time. */
    Cycles rttSumCycles = 0;
    std::uint64_t rttSamples = 0;
    /** Directed (src,dst) channels that actually carried traffic.
     *  Channel state materializes on first touch, so this is the
     *  transport's footprint: O(active pairs), never nodeCount()². */
    std::uint64_t activeChannels = 0;
    /** Channels on which delivery was given up (deduplicated).
     *  Dead-endpoint drops are expected losses and not listed. */
    std::vector<std::pair<sim::NodeId, sim::NodeId>>
        abandonedChannels;
    bool degraded = false;
};

/** Reliability wrapper around any message layer. */
class ReliableLayer : public MessageLayer
{
  public:
    explicit ReliableLayer(std::unique_ptr<MessageLayer> inner,
                           ReliableOptions options = {});

    std::string name() const override;

    RunResult run(sim::Machine &machine, const CommOp &op) override;

    /** Counters of the most recent run. */
    const ReliableStats &stats() const { return counters; }

    const ReliableOptions &options() const { return opts; }

    /** Replace the transport tunables (between runs; an adaptive
     *  controller retunes timeout and retry budget per round). */
    void setOptions(const ReliableOptions &options);

  private:
    std::unique_ptr<MessageLayer> inner;
    ReliableOptions opts;
    ReliableStats counters;
};

/** Convenience: reliable transport over a default chained layer. */
std::unique_ptr<ReliableLayer>
makeReliableChained(ReliableOptions options = {});

/** Convenience: reliable transport over a default packing layer. */
std::unique_ptr<ReliableLayer>
makeReliablePacking(ReliableOptions options = {});

} // namespace ct::rt

#endif // CT_RT_RELIABLE_LAYER_H
