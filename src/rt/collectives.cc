#include "collectives.h"

#include <map>

#include "util/logging.h"

namespace ct::rt {

namespace {

/** Is @p node able to inject/drain traffic right now? */
bool
nodeLive(sim::Machine &machine, NodeId node)
{
    const sim::Topology &topo = machine.topology();
    return !topo.anyOutages() ||
           topo.nodeAlive(node, machine.events().now());
}

/** Fold the machine's outage view into the collective summary. */
void
noteOutages(sim::Machine &machine, CollectiveResult &total)
{
    total.reroutedLinks = machine.network().stats().reroutedLinks;
    if (machine.topology().anyOutages())
        total.lostNodes = machine.topology().downedNodes(
            machine.events().now());
}

/**
 * Run one CommOp, verify it, and fold it into the summary. Flows
 * whose endpoint died (before or during the round) cannot have
 * delivered and are excluded from verification; their words are
 * counted lost. Any other mismatch is a genuine corruption and
 * fatal.
 */
void
runRound(sim::Machine &machine, MessageLayer &layer, CommOp &op,
         CollectiveResult &total)
{
    if (op.flows.empty())
        return;
    seedSources(machine, op);
    RunResult r = layer.run(machine, op);
    CommOp check;
    check.name = op.name;
    for (const Flow &flow : op.flows) {
        if (nodeLive(machine, flow.src) &&
            nodeLive(machine, flow.dst))
            check.flows.push_back(flow);
        else
            total.lostWords += flow.words;
    }
    if (verifyDelivery(machine, check) != 0)
        util::fatal("collective '", op.name, "': corrupted delivery");
    total.makespan += r.makespan;
    total.bytesPerNode += r.maxBytesPerSender;
    ++total.rounds;
}

Flow
contiguousFlow(sim::Machine &machine, NodeId src, NodeId dst,
               std::uint64_t words)
{
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.words = words;
    flow.srcWalk = sim::contiguousWalk(
        machine.node(src).ram().alloc(words * 8));
    flow.dstWalk = sim::contiguousWalk(
        machine.node(dst).ram().alloc(words * 8));
    flow.dstWalkOnSender = flow.dstWalk;
    return flow;
}

} // namespace

CollectiveResult
shift(sim::Machine &machine, MessageLayer &layer, std::uint64_t words,
      int displacement)
{
    int p = machine.nodeCount();
    if (displacement % p == 0)
        util::fatal("shift: displacement must move data");
    CommOp op;
    op.name = "shift(" + std::to_string(displacement) + ")";
    CollectiveResult total;
    for (NodeId node = 0; node < p; ++node) {
        NodeId dst = (node + displacement % p + p) % p;
        if (!nodeLive(machine, node) || !nodeLive(machine, dst)) {
            total.lostWords += words;
            continue;
        }
        op.flows.push_back(contiguousFlow(machine, node, dst, words));
    }
    runRound(machine, layer, op, total);
    noteOutages(machine, total);
    return total;
}

CollectiveResult
allToAll(sim::Machine &machine, MessageLayer &layer,
         std::uint64_t words_per_pair)
{
    int p = machine.nodeCount();
    CommOp op;
    op.name = "all-to-all";
    CollectiveResult total;
    for (NodeId src = 0; src < p; ++src) {
        if (!nodeLive(machine, src)) {
            total.lostWords +=
                words_per_pair * static_cast<std::uint64_t>(p - 1);
            continue;
        }
        // Rotation schedule: partner p+1, p+2, ... avoids hot
        // receivers (reference [8] of the paper).
        for (int step = 1; step < p; ++step) {
            NodeId dst = (src + step) % p;
            if (!nodeLive(machine, dst)) {
                total.lostWords += words_per_pair;
                continue;
            }
            op.flows.push_back(
                contiguousFlow(machine, src, dst, words_per_pair));
        }
    }
    runRound(machine, layer, op, total);
    noteOutages(machine, total);
    return total;
}

CollectiveResult
allToAllNaive(sim::Machine &machine, MessageLayer &layer,
              std::uint64_t words_per_pair)
{
    int p = machine.nodeCount();
    CommOp op;
    op.name = "all-to-all (naive order)";
    CollectiveResult total;
    for (NodeId src = 0; src < p; ++src)
        for (NodeId dst = 0; dst < p; ++dst) {
            if (dst == src)
                continue;
            if (!nodeLive(machine, src) || !nodeLive(machine, dst)) {
                total.lostWords += words_per_pair;
                continue;
            }
            op.flows.push_back(contiguousFlow(machine, src, dst,
                                              words_per_pair));
        }
    runRound(machine, layer, op, total);
    noteOutages(machine, total);
    return total;
}

CollectiveResult
allToAllPhased(sim::Machine &machine, MessageLayer &layer,
               std::uint64_t words_per_pair)
{
    int p = machine.nodeCount();
    CollectiveResult total;
    for (int step = 1; step < p; ++step) {
        CommOp op;
        op.name = "all-to-all phase " + std::to_string(step);
        for (NodeId src = 0; src < p; ++src) {
            NodeId dst = (src + step) % p;
            if (!nodeLive(machine, src) || !nodeLive(machine, dst)) {
                total.lostWords += words_per_pair;
                continue;
            }
            op.flows.push_back(
                contiguousFlow(machine, src, dst, words_per_pair));
        }
        runRound(machine, layer, op, total);
    }
    noteOutages(machine, total);
    return total;
}

CollectiveResult
broadcast(sim::Machine &machine, MessageLayer &layer,
          std::uint64_t words, NodeId root)
{
    int p = machine.nodeCount();
    if (root != 0)
        util::fatal("broadcast: only root 0 is supported");
    if (!nodeLive(machine, root))
        util::fatal("broadcast: root node ", root, " is down");

    // The tree spans the nodes alive at the start. A node that dies
    // mid-broadcast stops receiving (its words are counted lost) and
    // its pending forwards are re-sourced from the root, so live
    // descendants still get the data.
    std::vector<NodeId> live;
    for (NodeId node = 0; node < p; ++node)
        if (nodeLive(machine, node))
            live.push_back(node);
    int ranks = static_cast<int>(live.size());

    // One broadcast buffer per *live* node; the tree forwards through
    // them. Dead nodes never join the tree, so materializing their
    // buffers would be pure capacity-proportional waste (each node
    // has its own allocator, so skipping them shifts no addresses).
    std::map<NodeId, Addr> buffer;
    for (NodeId node : live)
        buffer.emplace(node, machine.node(node).ram().alloc(words * 8));
    for (std::uint64_t w = 0; w < words; ++w)
        machine.node(root).ram().writeWord(buffer.at(root) + w * 8,
                                           0xB0000 + w);

    // Binomial tree over live ranks: in round r, ranks < 2^r forward
    // to rank + 2^r.
    CollectiveResult total;
    for (int round = 1; round < ranks; round <<= 1) {
        CommOp op;
        op.name = "broadcast round";
        for (int rank = 0; rank < round && rank + round < ranks;
             ++rank) {
            NodeId src = live[static_cast<std::size_t>(rank)];
            NodeId dst =
                live[static_cast<std::size_t>(rank + round)];
            if (!nodeLive(machine, dst)) {
                total.lostWords += words;
                continue;
            }
            if (!nodeLive(machine, src))
                src = root; // parent died: re-source from the root
            Flow flow;
            flow.src = src;
            flow.dst = dst;
            flow.words = words;
            flow.srcWalk = sim::contiguousWalk(buffer.at(src));
            flow.dstWalk = sim::contiguousWalk(buffer.at(dst));
            flow.dstWalkOnSender = flow.dstWalk;
            op.flows.push_back(flow);
        }
        if (op.flows.empty())
            break;
        RunResult r = layer.run(machine, op);
        total.makespan += r.makespan;
        total.bytesPerNode += words * 8; // tree depth x message
        ++total.rounds;
    }

    // Every still-live node must now hold the root's data.
    for (NodeId node : live) {
        if (!nodeLive(machine, node))
            continue;
        for (std::uint64_t w = 0; w < words; w += 17)
            if (machine.node(node).ram().readWord(
                    buffer.at(node) + w * 8) != 0xB0000 + w)
                util::fatal("broadcast: node ", node,
                            " missing data at word ", w);
    }
    noteOutages(machine, total);
    return total;
}

CollectiveResult
gatherTo(sim::Machine &machine, MessageLayer &layer,
         std::uint64_t words_per_node, NodeId root)
{
    int p = machine.nodeCount();
    CommOp op;
    op.name = "gather";
    if (!nodeLive(machine, root))
        util::fatal("gatherTo: root node ", root, " is down");
    CollectiveResult total;
    Addr buffer = machine.node(root).ram().alloc(
        words_per_node * static_cast<std::uint64_t>(p) * 8);
    for (NodeId src = 0; src < p; ++src) {
        if (src == root)
            continue;
        if (!nodeLive(machine, src)) {
            total.lostWords += words_per_node;
            continue;
        }
        Flow flow;
        flow.src = src;
        flow.dst = root;
        flow.words = words_per_node;
        flow.srcWalk = sim::contiguousWalk(
            machine.node(src).ram().alloc(words_per_node * 8));
        flow.dstWalk = sim::contiguousWalk(
            buffer + static_cast<std::uint64_t>(src) *
                         words_per_node * 8);
        flow.dstWalkOnSender = flow.dstWalk;
        op.flows.push_back(flow);
    }
    runRound(machine, layer, op, total);
    // The gather is root-limited: report the root's receive volume.
    total.bytesPerNode = static_cast<Bytes>(op.flows.size()) *
                         words_per_node * 8;
    noteOutages(machine, total);
    return total;
}

} // namespace ct::rt
