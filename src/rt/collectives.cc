#include "collectives.h"

#include "util/logging.h"

namespace ct::rt {

namespace {

/** Run one CommOp, verify it, and fold it into the summary. */
void
runRound(sim::Machine &machine, MessageLayer &layer, CommOp &op,
         CollectiveResult &total)
{
    if (op.flows.empty())
        return;
    seedSources(machine, op);
    RunResult r = layer.run(machine, op);
    if (verifyDelivery(machine, op) != 0)
        util::fatal("collective '", op.name, "': corrupted delivery");
    total.makespan += r.makespan;
    total.bytesPerNode += r.maxBytesPerSender;
    ++total.rounds;
}

Flow
contiguousFlow(sim::Machine &machine, NodeId src, NodeId dst,
               std::uint64_t words)
{
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.words = words;
    flow.srcWalk = sim::contiguousWalk(
        machine.node(src).ram().alloc(words * 8));
    flow.dstWalk = sim::contiguousWalk(
        machine.node(dst).ram().alloc(words * 8));
    flow.dstWalkOnSender = flow.dstWalk;
    return flow;
}

} // namespace

CollectiveResult
shift(sim::Machine &machine, MessageLayer &layer, std::uint64_t words,
      int displacement)
{
    int p = machine.nodeCount();
    if (displacement % p == 0)
        util::fatal("shift: displacement must move data");
    CommOp op;
    op.name = "shift(" + std::to_string(displacement) + ")";
    for (NodeId node = 0; node < p; ++node) {
        NodeId dst = (node + displacement % p + p) % p;
        op.flows.push_back(contiguousFlow(machine, node, dst, words));
    }
    CollectiveResult total;
    runRound(machine, layer, op, total);
    return total;
}

CollectiveResult
allToAll(sim::Machine &machine, MessageLayer &layer,
         std::uint64_t words_per_pair)
{
    int p = machine.nodeCount();
    CommOp op;
    op.name = "all-to-all";
    for (NodeId src = 0; src < p; ++src) {
        // Rotation schedule: partner p+1, p+2, ... avoids hot
        // receivers (reference [8] of the paper).
        for (int step = 1; step < p; ++step) {
            NodeId dst = (src + step) % p;
            op.flows.push_back(
                contiguousFlow(machine, src, dst, words_per_pair));
        }
    }
    CollectiveResult total;
    runRound(machine, layer, op, total);
    return total;
}

CollectiveResult
allToAllNaive(sim::Machine &machine, MessageLayer &layer,
              std::uint64_t words_per_pair)
{
    int p = machine.nodeCount();
    CommOp op;
    op.name = "all-to-all (naive order)";
    for (NodeId src = 0; src < p; ++src)
        for (NodeId dst = 0; dst < p; ++dst)
            if (dst != src)
                op.flows.push_back(contiguousFlow(machine, src, dst,
                                                  words_per_pair));
    CollectiveResult total;
    runRound(machine, layer, op, total);
    return total;
}

CollectiveResult
allToAllPhased(sim::Machine &machine, MessageLayer &layer,
               std::uint64_t words_per_pair)
{
    int p = machine.nodeCount();
    CollectiveResult total;
    for (int step = 1; step < p; ++step) {
        CommOp op;
        op.name = "all-to-all phase " + std::to_string(step);
        for (NodeId src = 0; src < p; ++src)
            op.flows.push_back(contiguousFlow(
                machine, src, (src + step) % p, words_per_pair));
        runRound(machine, layer, op, total);
    }
    return total;
}

CollectiveResult
broadcast(sim::Machine &machine, MessageLayer &layer,
          std::uint64_t words, NodeId root)
{
    int p = machine.nodeCount();
    if (root != 0)
        util::fatal("broadcast: only root 0 is supported");

    // One broadcast buffer per node; the tree forwards through them.
    std::vector<Addr> buffer;
    for (NodeId node = 0; node < p; ++node)
        buffer.push_back(machine.node(node).ram().alloc(words * 8));
    for (std::uint64_t w = 0; w < words; ++w)
        machine.node(root).ram().writeWord(buffer[0] + w * 8,
                                           0xB0000 + w);

    // Binomial tree: in round r, nodes < 2^r forward to node + 2^r.
    CollectiveResult total;
    for (int round = 1; round < p; round <<= 1) {
        CommOp op;
        op.name = "broadcast round";
        for (NodeId src = 0; src < round && src + round < p; ++src) {
            Flow flow;
            flow.src = src;
            flow.dst = src + round;
            flow.words = words;
            flow.srcWalk = sim::contiguousWalk(
                buffer[static_cast<std::size_t>(src)]);
            flow.dstWalk = sim::contiguousWalk(
                buffer[static_cast<std::size_t>(src + round)]);
            flow.dstWalkOnSender = flow.dstWalk;
            op.flows.push_back(flow);
        }
        if (op.flows.empty())
            break;
        RunResult r = layer.run(machine, op);
        total.makespan += r.makespan;
        total.bytesPerNode += words * 8; // tree depth x message
        ++total.rounds;
    }

    // Every node must now hold the root's data.
    for (NodeId node = 0; node < p; ++node)
        for (std::uint64_t w = 0; w < words; w += 17)
            if (machine.node(node).ram().readWord(
                    buffer[static_cast<std::size_t>(node)] + w * 8) !=
                0xB0000 + w)
                util::fatal("broadcast: node ", node,
                            " missing data at word ", w);
    return total;
}

CollectiveResult
gatherTo(sim::Machine &machine, MessageLayer &layer,
         std::uint64_t words_per_node, NodeId root)
{
    int p = machine.nodeCount();
    CommOp op;
    op.name = "gather";
    Addr buffer = machine.node(root).ram().alloc(
        words_per_node * static_cast<std::uint64_t>(p) * 8);
    for (NodeId src = 0; src < p; ++src) {
        if (src == root)
            continue;
        Flow flow;
        flow.src = src;
        flow.dst = root;
        flow.words = words_per_node;
        flow.srcWalk = sim::contiguousWalk(
            machine.node(src).ram().alloc(words_per_node * 8));
        flow.dstWalk = sim::contiguousWalk(
            buffer + static_cast<std::uint64_t>(src) *
                         words_per_node * 8);
        flow.dstWalkOnSender = flow.dstWalk;
        op.flows.push_back(flow);
    }
    CollectiveResult total;
    runRound(machine, layer, op, total);
    // The gather is root-limited: report the root's receive volume.
    total.bytesPerNode =
        words_per_node * static_cast<std::uint64_t>(p - 1) * 8;
    return total;
}

} // namespace ct::rt
