#include "validation.h"

#include <cmath>
#include <iomanip>
#include <optional>
#include <sstream>

#include "core/analytic_backend.h"
#include "core/style_registry.h"
#include "rt/sim_backend.h"
#include "sim/measure.h"
#include "sweep/farm.h"
#include "util/logging.h"

namespace ct::rt {

ValidationReport
crossValidate(ValidationOptions options)
{
    ValidationReport report;
    report.options = options;

    const std::vector<core::AccessPattern> patterns = {
        core::AccessPattern::contiguous(),
        core::AccessPattern::strided(16),
        core::AccessPattern::strided(64),
        core::AccessPattern::indexed(),
    };

    // Per-machine inputs, measured serially up front: the measured
    // table is itself a simulation campaign, and the workers only
    // ever read these (shared immutable state is fine; DESIGN.md
    // §14).
    struct MachineCtx
    {
        sim::MachineConfig cfg;
        core::ThroughputTable table;
        core::ExecutionProfile profile;
    };
    std::vector<MachineCtx> machines;
    for (core::MachineId id :
         {core::MachineId::T3d, core::MachineId::Paragon}) {
        sim::MachineConfig cfg = sim::configFor(id);
        // Feed the model the simulator-measured basic-transfer table,
        // exactly as the paper feeds measured figures into the model:
        // the comparison then tests the *composition rules*, not the
        // table values.
        core::ThroughputTable table = sim::measuredTable(cfg);
        core::ExecutionProfile profile = executionProfileFor(cfg);
        machines.push_back(
            {std::move(cfg), std::move(table), profile});
    }

    // Expand the full cell list before anything runs, so the merged
    // report is a pure function of the grid (never of the schedule).
    struct PendingCell
    {
        std::size_t machineIndex = 0;
        core::MachineId id = core::MachineId::T3d;
        std::string style;
        core::AccessPattern x, y;
        core::TransferProgram program;
    };
    std::vector<PendingCell> pending;
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
        core::MachineId id = mi == 0 ? core::MachineId::T3d
                                     : core::MachineId::Paragon;
        for (const core::StyleInfo &info : core::styleRegistry()) {
            for (const core::AccessPattern &x : patterns) {
                for (const core::AccessPattern &y : patterns) {
                    auto program =
                        core::buildProgram(id, info.key, x, y);
                    if (!program)
                        continue; // illegal cell on this machine
                    pending.push_back({mi, id, info.key, x, y,
                                       std::move(*program)});
                }
            }
        }
    }

    // Each cell builds its own backends from the shared read-only
    // inputs; results land in canonical cell order regardless of the
    // steal schedule.
    sweep::Farm farm({options.threads, 0});
    auto cells = farm.map<std::optional<ValidationCell>>(
        pending.size(),
        [&](std::size_t i, int) -> std::optional<ValidationCell> {
            const PendingCell &p = pending[i];
            const MachineCtx &ctx = machines[p.machineIndex];
            core::AnalyticBackend analytic(ctx.table, ctx.profile);
            // The cells run one flow 0 -> 1: congestion 1.
            auto model = analytic.predictThroughputAt(
                p.program, options.words * 8, 1.0);
            if (!model) {
                util::warn("crossValidate: cannot predict ", p.style,
                           " ", p.x.label(), "Q", p.y.label(), " on ",
                           ctx.cfg.name, "; skipping");
                return std::nullopt;
            }
            SimBackend backend(ctx.cfg);
            SimRun run = backend.execute(p.program, options.words);

            ValidationCell cell;
            cell.machine = p.id;
            cell.machineName = ctx.cfg.name;
            cell.style = p.style;
            cell.x = p.x.label();
            cell.y = p.y.label();
            cell.formula = p.program.format();
            cell.modelMBps = *model;
            cell.simMBps = run.perNodeMBps;
            if (run.corruptWords != 0 || run.perNodeMBps <= 0.0) {
                util::warn("crossValidate: corrupted or empty run "
                           "for ",
                           p.style, " ", p.x.label(), "Q",
                           p.y.label(), " on ", ctx.cfg.name);
                cell.errorPct = 100.0;
                cell.pass = false;
            } else {
                cell.errorPct = (cell.modelMBps - cell.simMBps) /
                                cell.simMBps * 100.0;
                cell.pass =
                    std::abs(cell.errorPct) <= options.tolerancePct;
            }
            return cell;
        });

    for (std::optional<ValidationCell> &cell : cells) {
        if (!cell)
            continue;
        report.worstAbsErrPct = std::max(report.worstAbsErrPct,
                                         std::abs(cell->errorPct));
        report.allPass = report.allPass && cell->pass;
        report.cells.push_back(std::move(*cell));
    }
    return report;
}

std::string
formatValidation(const ValidationReport &report)
{
    std::ostringstream os;
    os << "model vs simulator, one TransferProgram per cell ("
       << report.options.words << " words, tolerance "
       << report.options.tolerancePct << "%):\n";
    os << std::left << std::setw(9) << "machine" << std::setw(15)
       << "style" << std::setw(8) << "cell" << std::right
       << std::setw(9) << "model" << std::setw(9) << "sim"
       << std::setw(9) << "err%"
       << "\n";
    for (const ValidationCell &cell : report.cells) {
        os << std::left << std::setw(9) << cell.machineName
           << std::setw(15) << cell.style << std::setw(8)
           << (cell.x + "Q" + cell.y) << std::right << std::fixed
           << std::setprecision(1) << std::setw(9) << cell.modelMBps
           << std::setw(9) << cell.simMBps << std::showpos
           << std::setw(9) << cell.errorPct << std::noshowpos
           << (cell.pass ? "" : "  FAIL") << "\n";
    }
    os << (report.allPass ? "PASS" : "FAIL") << ": "
       << report.cells.size() << " cells, worst |error| "
       << std::fixed << std::setprecision(1) << report.worstAbsErrPct
       << "%\n";
    return os.str();
}

std::string
validationJson(const ValidationReport &report)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << "{\n";
    os << "  \"words\": " << report.options.words << ",\n";
    os << "  \"tolerance_pct\": " << report.options.tolerancePct
       << ",\n";
    os << "  \"worst_abs_error_pct\": " << report.worstAbsErrPct
       << ",\n";
    os << "  \"all_pass\": " << (report.allPass ? "true" : "false")
       << ",\n";
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const ValidationCell &cell = report.cells[i];
        os << "    {\"machine\": \"" << cell.machineName
           << "\", \"style\": \"" << cell.style << "\", \"x\": \""
           << cell.x << "\", \"y\": \"" << cell.y
           << "\", \"formula\": \"" << cell.formula
           << "\", \"model_mbps\": " << cell.modelMBps
           << ", \"sim_mbps\": " << cell.simMBps
           << ", \"error_pct\": " << cell.errorPct
           << ", \"pass\": " << (cell.pass ? "true" : "false")
           << "}" << (i + 1 < report.cells.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace ct::rt
