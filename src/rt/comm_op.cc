#include "comm_op.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace ct::rt {

OwnerMap
OwnerMap::identity(int nodes)
{
    // Self-ownership is the map's default; nothing to materialize.
    OwnerMap map;
    map.nodes = nodes;
    return map;
}

OwnerMap
OwnerMap::fromMachine(sim::Machine &machine)
{
    const sim::Topology &topo = machine.topology();
    sim::Cycles now = machine.events().now();
    int nodes = machine.nodeCount();
    OwnerMap map;
    map.nodes = nodes;
    if (!topo.anyOutages())
        return map; // everyone alive: the identity map
    for (int n = 0; n < nodes; ++n) {
        NodeId candidate = n;
        int probed = 0;
        while (!topo.nodeAlive(candidate, now)) {
            candidate = (candidate + 1) % nodes;
            if (++probed > nodes)
                util::fatal("OwnerMap: no live node left");
        }
        if (candidate != n)
            map.moved[n] = candidate;
    }
    return map;
}

Bytes
CommOp::totalBytes() const
{
    Bytes total = 0;
    for (const auto &flow : flows)
        total += flow.words * 8;
    return total;
}

Bytes
CommOp::maxBytesPerSender() const
{
    std::map<NodeId, Bytes> per_sender;
    for (const auto &flow : flows)
        per_sender[flow.src] += flow.words * 8;
    Bytes best = 0;
    for (const auto &[node, bytes] : per_sender)
        best = std::max(best, bytes);
    return best;
}

int
CommOp::activeSenders() const
{
    std::map<NodeId, Bytes> per_sender;
    for (const auto &flow : flows)
        if (flow.words > 0)
            per_sender[flow.src] += flow.words;
    return static_cast<int>(per_sender.size());
}

std::vector<sim::TrafficDemand>
CommOp::demands() const
{
    std::vector<sim::TrafficDemand> result;
    result.reserve(flows.size());
    for (const auto &flow : flows)
        result.push_back({flow.src, flow.dst, flow.words * 8});
    return result;
}

std::pair<std::size_t, std::uint64_t>
FlowGroup::locate(std::uint64_t word) const
{
    // prefix is sorted; find the last flow starting at or before word.
    std::size_t lo = 0, hi = flows.size();
    while (lo + 1 < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (prefix[mid] <= word)
            lo = mid;
        else
            hi = mid;
    }
    return {lo, word - prefix[lo]};
}

std::vector<FlowGroup>
groupFlows(const CommOp &op)
{
    std::vector<FlowGroup> groups;
    for (std::size_t f = 0; f < op.flows.size(); ++f) {
        const Flow &flow = op.flows[f];
        if (flow.words == 0)
            continue;
        if (groups.empty() || groups.back().src != flow.src ||
            groups.back().dst != flow.dst) {
            FlowGroup group;
            group.src = flow.src;
            group.dst = flow.dst;
            group.prefix.push_back(0);
            groups.push_back(std::move(group));
        }
        FlowGroup &group = groups.back();
        group.flows.push_back(f);
        group.prefix.push_back(group.prefix.back() + flow.words);
    }
    return groups;
}

ActiveSet::ActiveSet(const std::vector<FlowGroup> &groups)
{
    ids.reserve(groups.size() * 2);
    for (const FlowGroup &group : groups) {
        ids.push_back(group.src);
        ids.push_back(group.dst);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    slots.reserve(ids.size());
    for (std::size_t s = 0; s < ids.size(); ++s)
        slots.emplace(ids[s], s);
}

std::size_t
ActiveSet::slot(NodeId node) const
{
    auto it = slots.find(node);
    if (it == slots.end())
        util::fatal("ActiveSet: node ", node,
                    " is not part of this operation");
    return it->second;
}

namespace {

std::uint64_t
sourceValue(std::size_t flow_idx, std::uint64_t element)
{
    return (static_cast<std::uint64_t>(flow_idx) << 40) ^ (element + 1);
}

} // namespace

void
seedSources(sim::Machine &machine, const CommOp &op)
{
    for (std::size_t f = 0; f < op.flows.size(); ++f) {
        const Flow &flow = op.flows[f];
        sim::NodeRam &ram = machine.node(flow.src).ram();
        for (std::uint64_t i = 0; i < flow.words; ++i)
            ram.writeWord(flow.srcWalk.elementAddr(ram, i),
                          sourceValue(f, i));
    }
}

std::uint64_t
verifyDelivery(sim::Machine &machine, const CommOp &op)
{
    std::uint64_t mismatches = 0;
    for (std::size_t f = 0; f < op.flows.size(); ++f) {
        const Flow &flow = op.flows[f];
        sim::NodeRam &src_ram = machine.node(flow.src).ram();
        sim::NodeRam &dst_ram = machine.node(flow.dst).ram();
        for (std::uint64_t i = 0; i < flow.words; ++i) {
            std::uint64_t sent =
                src_ram.readWord(flow.srcWalk.elementAddr(src_ram, i));
            std::uint64_t got =
                dst_ram.readWord(flow.dstWalk.elementAddr(dst_ram, i));
            mismatches += sent != got;
        }
    }
    return mismatches;
}

} // namespace ct::rt
