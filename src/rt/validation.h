/**
 * @file
 * Automatic cross-validation of the two TransferProgram backends:
 * every machine x style x legal pattern-pair cell is built ONCE as a
 * TransferProgram, rated by the analytic backend's execution-aware
 * predictor (against the simulator-measured basic-transfer table,
 * exactly as the paper feeds measured figures into the model), and
 * executed by the simulation backend. The per-cell relative error is
 * the regression gate: the model must stay within the tolerance the
 * paper claims for the copy-transfer approach (DESIGN.md §9 pins it
 * at 15%).
 */

#ifndef CT_RT_VALIDATION_H
#define CT_RT_VALIDATION_H

#include <string>
#include <vector>

#include "core/machine_params.h"
#include "util/units.h"

namespace ct::rt {

/** Cross-validation knobs. */
struct ValidationOptions
{
    /** Elements per cell (64 KB messages, past every half-power
     *  point but small enough to keep the sweep fast). */
    std::uint64_t words = 1 << 14;
    /** Per-cell |model - sim| / sim gate, in percent. */
    double tolerancePct = 15.0;
    /**
     * Sweep-farm workers running the cells (0 = serial inline).
     * Every cell builds its backends privately, so the report is
     * byte-identical for every thread count (DESIGN.md §14).
     */
    int threads = 0;
};

/** One machine x style x pattern-pair comparison. */
struct ValidationCell
{
    core::MachineId machine = core::MachineId::T3d;
    std::string machineName;
    /** Style registry key, e.g. "chained". */
    std::string style;
    std::string x, y;
    std::string formula;
    util::MBps modelMBps = 0.0;
    util::MBps simMBps = 0.0;
    /** (model - sim) / sim, in percent. */
    double errorPct = 0.0;
    bool pass = false;
};

/** Result of one full sweep. */
struct ValidationReport
{
    ValidationOptions options;
    std::vector<ValidationCell> cells;
    double worstAbsErrPct = 0.0;
    bool allPass = true;
};

/**
 * Run the sweep: both machines, every registered style, the full
 * {contiguous, stride-16, stride-64, indexed}^2 pattern grid,
 * skipping cells the machine cannot execute. Each legal cell goes
 * through both backends from one shared TransferProgram.
 */
ValidationReport crossValidate(ValidationOptions options = {});

/** Text table of a report (one row per cell plus a verdict line). */
std::string formatValidation(const ValidationReport &report);

/** JSON rendering of a report, for tools and CI artifacts. */
std::string validationJson(const ValidationReport &report);

} // namespace ct::rt

#endif // CT_RT_VALIDATION_H
