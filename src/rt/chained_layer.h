/**
 * @file
 * Chained transfers (paper §5.1.2 / §5.1.4): the sender reads source
 * elements with their native pattern and streams them straight into
 * the network; the receiver's deposit engine (T3D annex) or
 * communication co-processor (Paragon) stores them in the background.
 * No packing buffers exist:
 *
 *     1Q'1 = 1S0 || Nd   || 0D1 (or 0R1)
 *     xQ'y = xS0 || Nadp || 0Dy (or 0Ry)
 */

#ifndef CT_RT_CHAINED_LAYER_H
#define CT_RT_CHAINED_LAYER_H

#include "rt/layer.h"

namespace ct::rt {

/** Tunables of the chained implementation. */
struct ChainedOptions
{
    /**
     * Software cost the sender pays once per flow: switching the
     * annex to a new communication partner and setting up the
     * remote-store sequence must be done at assembler level (§5.1.2)
     * and is not free. Dominates for small messages (the paper's SOR
     * rows), which is why measured chained throughput falls far below
     * the model there (§6.2).
     */
    Cycles flowSetupOverhead = 1500;
    /**
     * Cost of ending the communication step: barrier plus the cache
     * invalidation the T3D requires after background deposits
     * ("the on-chip cache ... can be invalidated entirely when the
     * program reaches a synchronization point", §3.5.1). Charged
     * once per run. Dominates tiny steps like the paper's 256 x 256
     * SOR exchange, pulling measured chained throughput far below
     * the model's 68 MB/s prediction (§6.2).
     */
    Cycles stepSyncCycles = 8000;
    /**
     * Feed the network from the DMA fetch engine instead of processor
     * loads: the dma-direct style (1F0 || Nd || 0D1). Only legal for
     * fully contiguous flows on a machine with a fetch engine and a
     * contiguous deposit path; data-only chunks then bypass the
     * receive co-processor and land through the deposit engine.
     */
    bool dmaFeed = false;
};

/** Direct user-space to user-space transfers via remote stores. */
class ChainedLayer : public MessageLayer
{
  public:
    ChainedLayer() = default;
    explicit ChainedLayer(ChainedOptions options) : opts(options) {}

    std::string name() const override { return "chained"; }

    RunResult run(sim::Machine &machine, const CommOp &op) override;

    /** Every event is partition-tagged; credit returns are scoped
     *  cross-partition events and packet sends defer to commit. */
    bool parallelSafe() const override { return true; }

    sim::Cycles parallelLookahead(const sim::Machine &machine,
                                  const CommOp &op) const override;

    const ChainedOptions &options() const { return opts; }

  private:
    ChainedOptions opts;
};

} // namespace ct::rt

#endif // CT_RT_CHAINED_LAYER_H
