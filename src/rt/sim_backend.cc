#include "sim_backend.h"

#include "core/machine_params.h"
#include "rt/chained_layer.h"
#include "rt/packing_layer.h"
#include "rt/reliable_layer.h"
#include "rt/workload.h"
#include "util/logging.h"

namespace ct::rt {

core::ExecutionProfile
executionProfileFor(const sim::MachineConfig &cfg)
{
    core::ExecutionProfile profile;
    profile.clockHz = cfg.clockHz;
    profile.sharedBus = cfg.node.memory.bus.bytesPerCycle > 0;
    profile.chunkWords = layerChunkWords;
    profile.dmaChunkSetupCycles =
        cfg.node.fetch.enabled ? cfg.node.fetch.setupCycles : 0;
    profile.indexStreamMBps =
        core::paperCaps(cfg.id).loadOnlyBandwidth;
    return profile;
}

std::unique_ptr<MessageLayer>
lowerProgram(const core::TransferProgram &program)
{
    std::unique_ptr<MessageLayer> layer;
    if (program.stagingBuffers >= 1) {
        PackingOptions opts;
        opts.systemBufferCopies = program.stagingBuffers >= 2;
        opts.senderMessageOverhead = program.costs.senderStartup;
        opts.receiverMessageOverhead = program.costs.receiverStartup;
        opts.stepSyncCycles = program.costs.stepSync;
        opts.layerName = program.styleKey;
        layer = std::make_unique<PackingLayer>(std::move(opts));
    } else {
        ChainedOptions opts;
        opts.flowSetupOverhead = program.costs.startup();
        opts.stepSyncCycles = program.costs.stepSync;
        // A sender-engine stage means the program feeds the wire
        // from the DMA fetch engine (dma-direct) instead of
        // processor loads.
        opts.dmaFeed =
            program.stageOn(core::StageResource::SenderEngine) !=
            nullptr;
        layer = std::make_unique<ChainedLayer>(opts);
    }
    if (program.reliable)
        layer = std::make_unique<ReliableLayer>(std::move(layer));
    return layer;
}

SimBackend::SimBackend(sim::MachineConfig config)
    : cfg(std::move(config))
{}

SimRun
SimBackend::run(const core::TransferProgram &program, CommOp op,
                sim::Machine &machine)
{
    seedSources(machine, op);
    if (eventBudget > 0)
        machine.events().setEventBudget(eventBudget);
    std::unique_ptr<MessageLayer> layer = lowerProgram(program);
    machine.setParallelEnabled(layer->parallelSafe());
    machine.setParallelLookahead(layer->parallelLookahead(machine, op));
    SimRun out;
    out.layerName = layer->name();
    out.result = layer->run(machine, op);
    out.truncated = machine.events().truncated();
    out.eventsExecuted = machine.events().eventsExecuted();
    // A budget cut leaves flows legitimately half-delivered;
    // verifying would misreport the missing tail as corruption.
    out.corruptWords = out.truncated ? 0 : verifyDelivery(machine, op);
    out.perNodeMBps = out.result.perNodeMBps(machine);
    out.totalMBps = out.result.totalMBps(machine);
    return out;
}

SimRun
SimBackend::execute(const core::TransferProgram &program,
                    std::uint64_t words, std::uint64_t seed)
{
    sim::Machine machine(cfg);
    util::Rng rng(seed);
    CommOp op;
    op.name = program.styleKey;
    op.flows.push_back(
        makeFlow(machine, 0, 1, program.x, program.y, words, rng));
    return run(program, std::move(op), machine);
}

SimRun
SimBackend::exchange(const core::TransferProgram &program,
                     std::uint64_t words, std::uint64_t seed)
{
    sim::Machine machine(cfg);
    CommOp op =
        pairExchange(machine, program.x, program.y, words, seed);
    return run(program, std::move(op), machine);
}

} // namespace ct::rt
