#include "redistribute2d.h"

#include "rt/workload.h"
#include "util/logging.h"

namespace ct::rt {

std::vector<std::pair<std::size_t, std::size_t>>
splitAffineRuns(const std::vector<std::uint64_t> &src,
                const std::vector<std::uint64_t> &dst)
{
    if (src.size() != dst.size())
        util::fatal("splitAffineRuns: list length mismatch");
    std::vector<std::pair<std::size_t, std::size_t>> runs;
    std::size_t n = src.size();
    std::size_t start = 0;
    while (start < n) {
        std::size_t len = 1;
        if (start + 1 < n) {
            // Deltas may be negative (transposes walk backwards on
            // one side); track them as signed.
            auto sd = static_cast<std::int64_t>(src[start + 1]) -
                      static_cast<std::int64_t>(src[start]);
            auto dd = static_cast<std::int64_t>(dst[start + 1]) -
                      static_cast<std::int64_t>(dst[start]);
            while (start + len < n) {
                std::size_t i = start + len;
                auto s2 = static_cast<std::int64_t>(src[i]) -
                          static_cast<std::int64_t>(src[i - 1]);
                auto d2 = static_cast<std::int64_t>(dst[i]) -
                          static_cast<std::int64_t>(dst[i - 1]);
                if (s2 != sd || d2 != dd)
                    break;
                ++len;
            }
        }
        runs.emplace_back(start, len);
        start += len;
    }
    return runs;
}

namespace {

/**
 * Walk for a monotone affine run; falls back to an index array for
 * non-monotone runs (negative deltas).
 */
sim::PatternWalk
runWalk(const std::vector<std::uint64_t> &offsets, std::size_t start,
        std::size_t len, Addr base, sim::Node &index_home)
{
    std::vector<std::uint64_t> slice(
        offsets.begin() + static_cast<std::ptrdiff_t>(start),
        offsets.begin() + static_cast<std::ptrdiff_t>(start + len));
    return walkForIndices(slice, base, index_home);
}

} // namespace

Redistribution2dWorkload
Redistribution2dWorkload::create(sim::Machine &machine,
                                 const core::Distribution2d &from,
                                 const core::Distribution2d &to,
                                 bool transpose)
{
    if (from.nodes() != machine.nodeCount() ||
        to.nodes() != machine.nodeCount())
        util::fatal("Redistribution2dWorkload: distributions must "
                    "span the machine");

    Redistribution2dWorkload w;
    w.fromDist = from;
    w.toDist = to;
    w.transposed = transpose;
    w.commOp.name = to.name() + (transpose ? " = transpose "
                                           : " = ") +
                    from.name();

    int nodes = machine.nodeCount();
    for (int node = 0; node < nodes; ++node) {
        sim::NodeRam &ram = machine.node(node).ram();
        w.srcBase.push_back(ram.alloc(
            std::max<std::uint64_t>(1, from.localWords(node)) * 8));
        w.dstBase.push_back(ram.alloc(
            std::max<std::uint64_t>(1, to.localWords(node)) * 8));
    }

    for (int p = 0; p < nodes; ++p) {
        for (int step = 0; step < nodes; ++step) {
            int q = (p + step) % nodes; // rotation schedule
            auto pair = core::redistribution2dIndices(from, to, p, q,
                                                      transpose);
            if (pair.srcOffsets.empty())
                continue;
            auto runs =
                splitAffineRuns(pair.srcOffsets, pair.dstOffsets);
            for (auto [start, len] : runs) {
                Flow flow;
                flow.src = p;
                flow.dst = q;
                flow.words = len;
                flow.srcWalk = runWalk(
                    pair.srcOffsets, start, len,
                    w.srcBase[static_cast<std::size_t>(p)],
                    machine.node(p));
                flow.dstWalk = runWalk(
                    pair.dstOffsets, start, len,
                    w.dstBase[static_cast<std::size_t>(q)],
                    machine.node(q));
                flow.dstWalkOnSender =
                    flow.dstWalk.pattern.isIndexed()
                        ? runWalk(pair.dstOffsets, start, len,
                                  w.dstBase[static_cast<std::size_t>(
                                      q)],
                                  machine.node(p))
                        : flow.dstWalk;
                w.commOp.flows.push_back(flow);
            }
        }
    }
    return w;
}

Addr
Redistribution2dWorkload::spillFor(sim::Machine &machine,
                                   NodeId dead,
                                   const OwnerMap &owners)
{
    NodeId takeover = owners.of(dead);
    auto it = spillBase.find(dead);
    if (it != spillBase.end() && it->second.first == takeover)
        return it->second.second;
    std::uint64_t count =
        std::max<std::uint64_t>(1, toDist.localWords(dead));
    Addr base = machine.node(takeover).ram().alloc(count * 8);
    spillBase[dead] = {takeover, base};
    return base;
}

CommOp
Redistribution2dWorkload::stepOp(sim::Machine &machine, int step,
                                 const OwnerMap &owners,
                                 std::uint64_t *lost_words)
{
    return buildStep(machine, step, owners, lost_words, nullptr);
}

CommOp
Redistribution2dWorkload::repairOp(sim::Machine &machine, int step,
                                   const OwnerMap &before,
                                   const OwnerMap &owners,
                                   std::uint64_t *lost_words)
{
    return buildStep(machine, step, owners, lost_words, &before);
}

CommOp
Redistribution2dWorkload::buildStep(sim::Machine &machine, int step,
                                    const OwnerMap &owners,
                                    std::uint64_t *lost_words,
                                    const OwnerMap *changed_since)
{
    int nodes = fromDist.nodes();
    if (step < 0 || step >= nodes)
        util::fatal("Redistribution2dWorkload::stepOp: bad step ",
                    step);
    CommOp op;
    op.name = commOp.name + " step " + std::to_string(step) +
              (changed_since ? " repair" : "");
    for (int p = 0; p < nodes; ++p) {
        int q = (p + step) % nodes;
        if (changed_since && owners.of(q) == changed_since->of(q))
            continue; // receiver unaffected; already delivered
        auto pair = core::redistribution2dIndices(fromDist, toDist, p,
                                                  q, transposed);
        if (pair.srcOffsets.empty())
            continue;
        if (!owners.alive(p)) {
            // The sender died and its un-sent data with it.
            if (lost_words)
                *lost_words += pair.srcOffsets.size();
            continue;
        }
        NodeId dst = owners.of(q);
        Addr dst_base =
            owners.alive(q)
                ? dstBase[static_cast<std::size_t>(q)]
                : spillFor(machine, q, owners);
        auto runs = splitAffineRuns(pair.srcOffsets, pair.dstOffsets);
        for (auto [start, len] : runs) {
            Flow flow;
            flow.src = p;
            flow.dst = dst;
            flow.words = len;
            flow.srcWalk = runWalk(
                pair.srcOffsets, start, len,
                srcBase[static_cast<std::size_t>(p)],
                machine.node(p));
            flow.dstWalk = runWalk(pair.dstOffsets, start, len,
                                   dst_base, machine.node(dst));
            flow.dstWalkOnSender =
                flow.dstWalk.pattern.isIndexed()
                    ? runWalk(pair.dstOffsets, start, len, dst_base,
                              machine.node(p))
                    : flow.dstWalk;
            op.flows.push_back(flow);
        }
    }
    return op;
}

std::uint64_t
Redistribution2dWorkload::verify(sim::Machine &machine,
                                 const OwnerMap &owners) const
{
    std::uint64_t mismatches = 0;
    for (std::uint64_t i = 0; i < toDist.rows(); ++i) {
        for (std::uint64_t j = 0; j < toDist.cols(); ++j) {
            std::uint64_t si = transposed ? j : i;
            std::uint64_t sj = transposed ? i : j;
            int sender = fromDist.ownerOf(si, sj);
            int receiver = toDist.ownerOf(i, j);
            if (sender == receiver)
                continue; // local part never crossed the network
            if (!owners.alive(sender))
                continue; // source data died with its node
            std::uint64_t want = si * fromDist.cols() + sj + 1;
            std::uint64_t got;
            if (owners.alive(receiver)) {
                got = machine.node(receiver).ram().readWord(
                    dstBase[static_cast<std::size_t>(receiver)] +
                    toDist.localOffsetOf(i, j) * 8);
            } else {
                auto it = spillBase.find(receiver);
                if (it == spillBase.end()) {
                    ++mismatches; // never redirected anywhere
                    continue;
                }
                got = machine.node(it->second.first)
                          .ram()
                          .readWord(it->second.second +
                                    toDist.localOffsetOf(i, j) * 8);
            }
            mismatches += got != want;
        }
    }
    return mismatches;
}

void
Redistribution2dWorkload::fillInput(sim::Machine &machine) const
{
    for (std::uint64_t i = 0; i < fromDist.rows(); ++i) {
        for (std::uint64_t j = 0; j < fromDist.cols(); ++j) {
            int node = fromDist.ownerOf(i, j);
            machine.node(node).ram().writeWord(
                srcBase[static_cast<std::size_t>(node)] +
                    fromDist.localOffsetOf(i, j) * 8,
                i * fromDist.cols() + j + 1);
        }
    }
}

std::uint64_t
Redistribution2dWorkload::verify(sim::Machine &machine) const
{
    std::uint64_t mismatches = 0;
    for (std::uint64_t i = 0; i < toDist.rows(); ++i) {
        for (std::uint64_t j = 0; j < toDist.cols(); ++j) {
            std::uint64_t si = transposed ? j : i;
            std::uint64_t sj = transposed ? i : j;
            int sender = fromDist.ownerOf(si, sj);
            int receiver = toDist.ownerOf(i, j);
            if (sender == receiver)
                continue; // local part never crossed the network
            std::uint64_t want = si * fromDist.cols() + sj + 1;
            std::uint64_t got = machine.node(receiver).ram().readWord(
                dstBase[static_cast<std::size_t>(receiver)] +
                toDist.localOffsetOf(i, j) * 8);
            mismatches += got != want;
        }
    }
    return mismatches;
}

std::pair<core::AccessPattern, core::AccessPattern>
Redistribution2dWorkload::dominantPatterns() const
{
    const Flow *best = nullptr;
    for (const auto &flow : commOp.flows)
        if (!best || flow.words > best->words)
            best = &flow;
    if (!best)
        return {core::AccessPattern::contiguous(),
                core::AccessPattern::contiguous()};
    return {best->srcWalk.pattern, best->dstWalk.pattern};
}

} // namespace ct::rt
