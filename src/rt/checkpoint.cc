#include "checkpoint.h"

#include "obs/trace.h"
#include "util/logging.h"

namespace ct::rt {

void
Checkpoint::begin(const std::string &name, int rounds)
{
    if (opName == name && totalRounds == rounds &&
        done.size() == static_cast<std::size_t>(rounds))
        return; // resuming: keep recorded progress
    opName = name;
    totalRounds = rounds;
    done.assign(static_cast<std::size_t>(rounds), false);
    owners = OwnerMap{};
}

int
Checkpoint::completedRounds() const
{
    int count = 0;
    for (bool d : done)
        count += d;
    return count;
}

int
Checkpoint::resumePoint() const
{
    for (int r = 0; r < totalRounds; ++r)
        if (!done[static_cast<std::size_t>(r)])
            return r;
    return totalRounds;
}

void
Checkpoint::markDone(int round)
{
    if (round < 0 || round >= totalRounds)
        util::fatal("Checkpoint::markDone: bad round ", round);
    done[static_cast<std::size_t>(round)] = true;
}

namespace {

/**
 * The round-by-round driver, generic over the two workload kinds
 * (both expose totalSteps / stepOp / op). Each pending round is
 * re-planned under the current ownership map, executed, and verified
 * against the still-live flow endpoints. A mid-round node death
 * leaves the round unrecorded and returns `interrupted`; the next
 * call re-plans it under the new map and re-runs it (delivery never
 * touches sources, so the re-run is idempotent).
 */
template <typename Workload>
RecoveryResult
runCheckpointed(sim::Machine &machine, MessageLayer &layer,
                Workload &work, Checkpoint &ckpt)
{
    ckpt.begin(work.op().name, work.totalSteps());
    RecoveryResult result;
    result.resumedFromRound = ckpt.resumePoint();
    Cycles start = machine.events().now();

    OwnerMap owners = OwnerMap::fromMachine(machine);
    if (ckpt.owners.empty())
        ckpt.owners = OwnerMap::identity(machine.nodeCount());

    // Repair pass: ownership moved since the recorded rounds ran, so
    // their flows to affected receivers sit in RAM that is now dead
    // (or in a spill buffer whose host died). Sources are untouched
    // by delivery -- re-send exactly those flows into the new owner's
    // spill buffer before resuming the pending rounds.
    if (owners != ckpt.owners) {
        const OwnerMap &before = ckpt.owners;
        for (int round = 0; round < ckpt.totalRounds; ++round) {
            if (!ckpt.done[static_cast<std::size_t>(round)])
                continue;
            CommOp op = work.repairOp(machine, round, before, owners,
                                      &result.lostWords);
            if (op.flows.empty())
                continue;
            layer.run(machine, op);
            OwnerMap after = OwnerMap::fromMachine(machine);
            if (after != owners) {
                // Another death mid-repair: the checkpoint still
                // records the old map, so the next call restarts the
                // (idempotent) repair against the newest owners.
                util::warn("checkpoint '", ckpt.opName,
                           "': node failure while repairing round ",
                           round, "; interrupting");
                result.interrupted = true;
                if (auto *t = machine.tracer())
                    t->instant("ckpt", "interrupted",
                               machine.opTrack(),
                               machine.events().now(), "round",
                               static_cast<std::uint64_t>(round));
                break;
            }
            if (verifyDelivery(machine, op) != 0)
                util::fatal("checkpoint '", ckpt.opName,
                            "': corrupted re-delivery of round ",
                            round);
            ++result.repairedRounds;
            if (auto *t = machine.tracer())
                t->instant("ckpt", "repair", machine.opTrack(),
                           machine.events().now(), "round",
                           static_cast<std::uint64_t>(round));
        }
        if (!result.interrupted)
            ckpt.owners = owners;
    }

    for (int round = 0;
         !result.interrupted && round < ckpt.totalRounds; ++round) {
        if (ckpt.done[static_cast<std::size_t>(round)])
            continue;
        CommOp op =
            work.stepOp(machine, round, owners, &result.lostWords);
        if (op.flows.empty()) {
            ckpt.markDone(round);
            ++result.rounds;
            continue;
        }
        layer.run(machine, op);

        OwnerMap after = OwnerMap::fromMachine(machine);
        if (after != owners) {
            // A node died during this round: some of its flows can
            // not have delivered. Leave the round unrecorded; the
            // resume call re-plans it under the new ownership.
            util::warn("checkpoint '", ckpt.opName,
                       "': node failure during round ", round,
                       " (", ckpt.completedRounds(), "/",
                       ckpt.totalRounds,
                       " rounds checkpointed); interrupting");
            result.interrupted = true;
            if (auto *t = machine.tracer())
                t->instant("ckpt", "interrupted", machine.opTrack(),
                           machine.events().now(), "round",
                           static_cast<std::uint64_t>(round));
            break;
        }

        if (verifyDelivery(machine, op) != 0)
            util::fatal("checkpoint '", ckpt.opName,
                        "': corrupted delivery in round ", round);
        ckpt.markDone(round);
        ++result.rounds;
        if (auto *t = machine.tracer())
            t->instant("ckpt", "checkpoint", machine.opTrack(),
                       machine.events().now(), "round",
                       static_cast<std::uint64_t>(round));
    }

    result.makespan = machine.events().now() - start;
    result.lostNodes = OwnerMap::fromMachine(machine).lostNodes();
    result.reroutedLinks =
        machine.network().stats().reroutedLinks;
    return result;
}

} // namespace

RecoveryResult
runRedistributionCheckpointed(sim::Machine &machine,
                              MessageLayer &layer,
                              RedistributionWorkload &work,
                              Checkpoint &ckpt)
{
    return runCheckpointed(machine, layer, work, ckpt);
}

RecoveryResult
runRedistribution2dCheckpointed(sim::Machine &machine,
                                MessageLayer &layer,
                                Redistribution2dWorkload &work,
                                Checkpoint &ckpt)
{
    return runCheckpointed(machine, layer, work, ckpt);
}

} // namespace ct::rt
