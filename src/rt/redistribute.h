/**
 * @file
 * Array redistribution (paper §2.1): executing A(to) = B(from) where
 * the two sides have different HPF distributions. The workload
 * builder derives, for every (sender, receiver) pair, the induced
 * access patterns -- BLOCK -> CYCLIC sends contiguous runs into
 * strided remote locations, CYCLIC -> BLOCK gathers strided, and so
 * on -- and assembles the CommOp the runtime layers execute.
 */

#ifndef CT_RT_REDISTRIBUTE_H
#define CT_RT_REDISTRIBUTE_H

#include "core/distribution.h"
#include "rt/comm_op.h"

namespace ct::rt {

/** A distributed array pair plus the redistribution between them. */
class RedistributionWorkload
{
  public:
    /**
     * Allocate the source array (distributed per @p from) and the
     * destination array (per @p to) on @p machine's nodes and build
     * the flow set. Both distributions must span machine.nodeCount()
     * nodes and the same element count.
     */
    static RedistributionWorkload create(sim::Machine &machine,
                                         const core::Distribution &from,
                                         const core::Distribution &to);

    /** Fill the source with src[g] = g + 1 (global index). */
    void fillInput(sim::Machine &machine) const;

    /** Check dst[g] == g + 1 for every element; returns mismatches. */
    std::uint64_t verify(sim::Machine &machine) const;

    const CommOp &op() const { return commOp; }
    const core::Distribution &from() const { return fromDist; }
    const core::Distribution &to() const { return toDist; }

    /**
     * The access-pattern pair (x, y) of the largest flow -- what a
     * compiler would see as the dominant xQy of this redistribution.
     */
    std::pair<core::AccessPattern, core::AccessPattern>
    dominantPatterns() const;

  private:
    core::Distribution fromDist = core::Distribution::block(1, 1);
    core::Distribution toDist = core::Distribution::block(1, 1);
    std::vector<Addr> srcBase;
    std::vector<Addr> dstBase;
    CommOp commOp;
};

} // namespace ct::rt

#endif // CT_RT_REDISTRIBUTE_H
