/**
 * @file
 * Array redistribution (paper §2.1): executing A(to) = B(from) where
 * the two sides have different HPF distributions. The workload
 * builder derives, for every (sender, receiver) pair, the induced
 * access patterns -- BLOCK -> CYCLIC sends contiguous runs into
 * strided remote locations, CYCLIC -> BLOCK gathers strided, and so
 * on -- and assembles the CommOp the runtime layers execute.
 */

#ifndef CT_RT_REDISTRIBUTE_H
#define CT_RT_REDISTRIBUTE_H

#include <map>

#include "core/distribution.h"
#include "rt/comm_op.h"

namespace ct::rt {

/** A distributed array pair plus the redistribution between them. */
class RedistributionWorkload
{
  public:
    /**
     * Allocate the source array (distributed per @p from) and the
     * destination array (per @p to) on @p machine's nodes and build
     * the flow set. Both distributions must span machine.nodeCount()
     * nodes and the same element count.
     */
    static RedistributionWorkload create(sim::Machine &machine,
                                         const core::Distribution &from,
                                         const core::Distribution &to);

    /** Fill the source with src[g] = g + 1 (global index). */
    void fillInput(sim::Machine &machine) const;

    /** Check dst[g] == g + 1 for every element; returns mismatches. */
    std::uint64_t verify(sim::Machine &machine) const;

    /** Number of rotation steps of the full schedule (= node count). */
    int totalSteps() const { return fromDist.nodes(); }

    /**
     * Flow set of rotation step @p step (0-based) re-planned under
     * @p owners: flows whose receiver is dead are redirected to the
     * takeover node's spill buffer for that receiver; flows whose
     * sender is dead are dropped (the data lived in dead RAM) and
     * their words accumulated into @p lost_words. Spill buffers are
     * allocated lazily on first use. The checkpointed driver runs
     * steps one at a time through this.
     */
    CommOp stepOp(sim::Machine &machine, int step,
                  const OwnerMap &owners,
                  std::uint64_t *lost_words = nullptr);

    /**
     * Re-delivery op for the already-completed step @p step after an
     * ownership change: flows whose receiver's owner differs between
     * @p before and @p owners were delivered into RAM that has since
     * died (or into a spill buffer whose host died), so they are
     * re-sent from the still-intact sources into the new owner's
     * spill buffer. Flows whose sender is now dead too are
     * unrecoverable and counted into @p lost_words. Empty when the
     * step touched no affected receiver.
     */
    CommOp repairOp(sim::Machine &machine, int step,
                    const OwnerMap &before, const OwnerMap &owners,
                    std::uint64_t *lost_words = nullptr);

    /**
     * Failure-aware verify under @p owners: elements redirected to a
     * takeover node are checked in its spill buffer; elements whose
     * source node lost its data are skipped. Returns mismatches.
     */
    std::uint64_t verify(sim::Machine &machine,
                         const OwnerMap &owners) const;

    const CommOp &op() const { return commOp; }
    const core::Distribution &from() const { return fromDist; }
    const core::Distribution &to() const { return toDist; }

    /**
     * The access-pattern pair (x, y) of the largest flow -- what a
     * compiler would see as the dominant xQy of this redistribution.
     */
    std::pair<core::AccessPattern, core::AccessPattern>
    dominantPatterns() const;

  private:
    /** Spill buffer on @p owners.of(dead) for @p dead's blocks;
     *  reallocated if the previous takeover node died too. */
    Addr spillFor(sim::Machine &machine, NodeId dead,
                  const OwnerMap &owners);

    /** Shared builder of stepOp/repairOp: when @p changed_since is
     *  set, only flows whose receiver's owner moved are emitted. */
    CommOp buildStep(sim::Machine &machine, int step,
                     const OwnerMap &owners,
                     std::uint64_t *lost_words,
                     const OwnerMap *changed_since);

    core::Distribution fromDist = core::Distribution::block(1, 1);
    core::Distribution toDist = core::Distribution::block(1, 1);
    std::vector<Addr> srcBase;
    std::vector<Addr> dstBase;
    /** Dead destination node -> (takeover node, spill base). */
    std::map<NodeId, std::pair<NodeId, Addr>> spillBase;
    CommOp commOp;
};

} // namespace ct::rt

#endif // CT_RT_REDISTRIBUTE_H
