#include "packing_layer.h"

#include <deque>

#include "obs/trace.h"
#include "sim/trace_tracks.h"
#include "util/logging.h"

namespace ct::rt {

namespace {

using sim::Framing;
using sim::Machine;
using sim::NodeId;
using sim::Packet;
using sim::TraceTrack;
using sim::traceTrack;

constexpr std::uint64_t chunkBytes = layerChunkWords * 8;

/** Execution state of one packing run. */
struct Ctx
{
    Machine &machine;
    const CommOp &op;
    const PackingOptions &opts;

    std::vector<FlowGroup> groups;
    /** The operation's endpoints, slot-mapped; all per-node state
     *  below is indexed by active slot (O(active endpoints), not
     *  O(machine capacity)). Immutable after construction. */
    ActiveSet active;

    struct GroupRun
    {
        std::uint64_t nextWord = 0; // group-space cursor
        int credits = layerCredits;
        bool senderOverheadPaid = false;
        bool receiverOverheadPaid = false;
        Addr sendBuf = 0;    // ring of layerCredits chunks on src
        Addr recvBuf = 0;    // ring on dst
        Addr sysSendBuf = 0; // PVM system buffers
        Addr sysRecvBuf = 0;
    };

    struct UnpackTask
    {
        std::size_t group;
        std::uint64_t first; // group-space
        std::uint64_t count;
    };

    std::vector<GroupRun> runs;
    std::vector<std::deque<std::size_t>> senderQueue;
    std::vector<std::deque<UnpackTask>> unpackQueue;
    /** char, not vector<bool>: adjacent nodes flip their flags
     *  concurrently inside a parallel window, and bit-packed storage
     *  would make that a data race. */
    std::vector<char> procBusy;
    std::vector<Cycles> fetchFreeAt;
    /** Last unpack completion per *receiver*; makespan is the max. */
    std::vector<Cycles> lastDoneByNode;
    obs::Tracer *tracer;

    Ctx(Machine &machine, const CommOp &op, const PackingOptions &opts)
        : machine(machine), op(op), opts(opts),
          groups(groupFlows(op)), active(groups), runs(groups.size()),
          senderQueue(active.count()), unpackQueue(active.count()),
          procBusy(active.count(), 0), fetchFreeAt(active.count(), 0),
          lastDoneByNode(active.count(), 0), tracer(machine.tracer())
    {
        Bytes ring = static_cast<Bytes>(layerCredits) * chunkBytes;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const FlowGroup &group = groups[g];
            GroupRun &run = runs[g];
            run.sendBuf = machine.node(group.src).ram().alloc(ring);
            run.recvBuf = machine.node(group.dst).ram().alloc(ring);
            if (opts.systemBufferCopies) {
                run.sysSendBuf =
                    machine.node(group.src).ram().alloc(ring);
                run.sysRecvBuf =
                    machine.node(group.dst).ram().alloc(ring);
            }
            senderQueue[active.slot(group.src)].push_back(g);
        }
    }

    static Addr
    slotAddr(Addr ring_base, std::uint64_t group_word)
    {
        std::uint64_t slot =
            (group_word / layerChunkWords) % layerCredits;
        return ring_base + slot * chunkBytes;
    }

    /**
     * Apply @p body to each (flow index, in-flow offset, count,
     * group-space offset) segment of the group-space chunk
     * [first, first+count).
     */
    template <typename Fn>
    void
    forEachSegment(const FlowGroup &group, std::uint64_t first,
                   std::uint64_t count, Fn &&body)
    {
        std::uint64_t done = 0;
        while (done < count) {
            auto [pos, offset] = group.locate(first + done);
            const Flow &flow = op.flows[group.flows[pos]];
            std::uint64_t n = std::min<std::uint64_t>(
                count - done, flow.words - offset);
            body(group.flows[pos], offset, n, done);
            done += n;
        }
    }

    void tryProc(NodeId node);
    void runGather(NodeId node, std::size_t group_idx,
                   std::uint64_t first, std::uint64_t count);
    void runUnpack(NodeId node, const UnpackTask &task);
    void deliver(Packet &&pkt, Cycles time);
};

void
Ctx::tryProc(NodeId node)
{
    std::size_t n = active.slot(node);
    if (procBusy[n])
        return;

    // Draining arrived chunks has priority over producing new ones:
    // it is what returns credits and keeps the pipeline moving.
    if (!unpackQueue[n].empty()) {
        UnpackTask task = unpackQueue[n].front();
        unpackQueue[n].pop_front();
        runUnpack(node, task);
        return;
    }

    auto &queue = senderQueue[n];
    while (!queue.empty()) {
        std::size_t g = queue.front();
        const FlowGroup &group = groups[g];
        GroupRun &run = runs[g];
        if (run.nextWord >= group.totalWords()) {
            queue.pop_front();
            continue;
        }
        if (run.credits == 0)
            return; // re-triggered when credits return
        std::uint64_t first = run.nextWord;
        std::uint64_t count = std::min<std::uint64_t>(
            layerChunkWords, group.totalWords() - first);
        run.nextWord += count;
        --run.credits;
        runGather(node, g, first, count);
        return;
    }
}

void
Ctx::runGather(NodeId node, std::size_t group_idx, std::uint64_t first,
               std::uint64_t count)
{
    std::size_t n = active.slot(node);
    const FlowGroup &group = groups[group_idx];
    GroupRun &run = runs[group_idx];
    procBusy[n] = true;

    sim::Node &sender = machine.node(node);
    sim::Processor &proc = sender.processor();
    Cycles now = machine.events().now();
    Cycles elapsed = 0;

    if (!run.senderOverheadPaid) {
        elapsed += opts.senderMessageOverhead;
        run.senderOverheadPaid = true;
    }

    // Gather copy xC1 into the packing buffer, flow segment by flow
    // segment.
    Addr send_slot = slotAddr(run.sendBuf, first);
    sim::PatternWalk buf_walk = sim::contiguousWalk(send_slot);
    forEachSegment(group, first, count,
                   [&](std::size_t flow_idx, std::uint64_t offset,
                       std::uint64_t n_words, std::uint64_t at) {
                       elapsed += proc.copy2(
                           op.flows[flow_idx].srcWalk, offset,
                           buf_walk, at, n_words, now + elapsed);
                   });

    // PVM: one more copy into the system buffer.
    Addr feed_addr = send_slot;
    if (opts.systemBufferCopies) {
        Addr sys_slot = slotAddr(run.sysSendBuf, first);
        sim::PatternWalk sys_walk = sim::contiguousWalk(sys_slot);
        elapsed += proc.copy2(buf_walk, 0, sys_walk, 0, count,
                              now + elapsed);
        feed_addr = sys_slot;
    }

    Packet pkt;
    pkt.src = group.src;
    pkt.dst = group.dst;
    pkt.flow = static_cast<std::uint32_t>(group_idx);
    pkt.seq = static_cast<std::uint32_t>(first / layerChunkWords);
    pkt.framing = Framing::DataOnly;
    Addr recv_ring =
        opts.systemBufferCopies ? run.sysRecvBuf : run.recvBuf;
    pkt.destBase = slotAddr(recv_ring, first);

    if (sender.fetchEngine().enabled()) {
        // DMA feed (1F0): runs in parallel with further processor
        // work; the processor is released as soon as the gather is
        // done.
        for (std::uint64_t i = 0; i < count; ++i)
            pkt.words.push_back(
                sender.ram().readWord(feed_addr + i * 8));
        Cycles fetch_start = std::max(now + elapsed, fetchFreeAt[n]);
        Cycles fetch_elapsed =
            sender.fetchEngine().fetch(feed_addr, count * 8);
        fetchFreeAt[n] = fetch_start + fetch_elapsed;
        if (tracer) {
            tracer->span("stage", "pack",
                         traceTrack(node, TraceTrack::Cpu), now,
                         elapsed, "words", count);
            tracer->span("resource", "fetch-dma",
                         traceTrack(node, TraceTrack::Fetch),
                         fetch_start, fetch_elapsed, "bytes",
                         count * 8);
        }
        machine.events().schedule(
            fetchFreeAt[n], [this, pkt = std::move(pkt)]() mutable {
                machine.network().send(std::move(pkt));
            });
        machine.events().scheduleAfter(elapsed, [this, node]() {
            procBusy[active.slot(node)] = false;
            tryProc(node);
        });
        return;
    }

    // Processor feed (1S0) follows the gather sequentially.
    sim::PatternWalk feed_walk = sim::contiguousWalk(feed_addr);
    elapsed += proc.gatherToPort(feed_walk, 0, count, now + elapsed,
                                 pkt.words);
    if (tracer)
        tracer->span("stage", "pack+feed",
                     traceTrack(node, TraceTrack::Cpu), now, elapsed,
                     "words", count);
    machine.events().scheduleAfter(
        elapsed, [this, node, pkt = std::move(pkt)]() mutable {
            machine.network().send(std::move(pkt));
            procBusy[active.slot(node)] = false;
            tryProc(node);
        });
}

void
Ctx::runUnpack(NodeId node, const UnpackTask &task)
{
    std::size_t n = active.slot(node);
    const FlowGroup &group = groups[task.group];
    GroupRun &run = runs[task.group];
    procBusy[n] = true;

    sim::Processor &proc = machine.node(node).processor();
    Cycles now = machine.events().now();
    Cycles elapsed = 0;

    if (!run.receiverOverheadPaid) {
        elapsed += opts.receiverMessageOverhead;
        run.receiverOverheadPaid = true;
    }

    Addr recv_slot = slotAddr(run.recvBuf, task.first);
    if (opts.systemBufferCopies) {
        // PVM: system buffer -> user receive buffer first.
        Addr sys_slot = slotAddr(run.sysRecvBuf, task.first);
        sim::PatternWalk sys_walk = sim::contiguousWalk(sys_slot);
        sim::PatternWalk user_walk = sim::contiguousWalk(recv_slot);
        elapsed += proc.copy2(sys_walk, 0, user_walk, 0, task.count,
                              now + elapsed);
    }

    // Scatter copy 1Cy to the final destinations.
    sim::PatternWalk recv_walk = sim::contiguousWalk(recv_slot);
    forEachSegment(group, task.first, task.count,
                   [&](std::size_t flow_idx, std::uint64_t offset,
                       std::uint64_t n_words, std::uint64_t at) {
                       elapsed += proc.copy2(
                           recv_walk, at, op.flows[flow_idx].dstWalk,
                           offset, n_words, now + elapsed);
                   });

    if (tracer)
        tracer->span("stage", "unpack",
                     traceTrack(node, TraceTrack::Cpu), now, elapsed,
                     "words", task.count);
    std::size_t group_idx = task.group;
    // Completion used to be one event doing receiver work (free the
    // processor, continue unpacking) and sender work (the credit
    // return); split so each side runs in its own partition. The
    // receiver event keeps the original leading order; the credit
    // event carries the trailing ++credits / tryProc(src) pair,
    // which touches no receiver state, so the serial timeline is
    // unchanged by the split.
    machine.events().scheduleAfter(elapsed, [this, node]() {
        std::size_t idx = active.slot(node);
        procBusy[idx] = false;
        lastDoneByNode[idx] =
            std::max(lastDoneByNode[idx], machine.events().now());
        tryProc(node);
    });
    {
        sim::EventQueue::PartitionScope scope(
            machine.events(), groups[group_idx].src);
        machine.events().scheduleAfter(elapsed, [this, group_idx]() {
            ++runs[group_idx].credits;
            tryProc(groups[group_idx].src);
        });
    }
}

void
Ctx::deliver(Packet &&pkt, Cycles time)
{
    NodeId node = pkt.dst;
    sim::DepositEngine &engine = machine.node(node).depositEngine();
    if (!engine.admit(pkt))
        util::fatal("PackingLayer: deposit engine rejected a "
                    "contiguous block");
    std::size_t group_idx = pkt.flow;
    std::uint64_t first =
        static_cast<std::uint64_t>(pkt.seq) * layerChunkWords;
    std::uint64_t count = pkt.words.size();
    Cycles dep_start = std::max(time, engine.busyUntil());
    Cycles done = engine.deposit(pkt, time);
    if (tracer)
        tracer->span("resource", "deposit",
                     traceTrack(node, TraceTrack::Deposit), dep_start,
                     done - dep_start, "words", count);
    machine.events().schedule(
        done, [this, node, group_idx, first, count]() {
            unpackQueue[active.slot(node)].push_back(
                {group_idx, first, count});
            tryProc(node);
        });
}

} // namespace

RunResult
PackingLayer::run(sim::Machine &machine, const CommOp &op)
{
    Cycles op_start = machine.events().now();
    Ctx ctx(machine, op, opts);
    machine.network().setDeliver(
        [&ctx](Packet &&pkt, Cycles time) {
            ctx.deliver(std::move(pkt), time);
        });
    // Kick off the active endpoints only (ascending, like the old
    // all-nodes loop): tryProc() is a no-op for a node with nothing
    // queued, so the event schedule is unchanged.
    for (NodeId node : ctx.active.nodeList()) {
        // The kick-off runs outside any event; tag each node's
        // initial sends with its own partition.
        sim::EventQueue::PartitionScope scope(machine.events(), node);
        ctx.tryProc(node);
    }
    machine.events().run();

    Cycles makespan = 0;
    for (Cycles done : ctx.lastDoneByNode)
        makespan = std::max(makespan, done);
    Cycles extra = 0;
    for (NodeId node : ctx.active.nodeList())
        extra = std::max(extra,
                         machine.node(node).memory().fence(makespan));
    makespan += extra + opts.stepSyncCycles;

    if (auto *t = machine.tracer())
        t->span("op",
                opts.systemBufferCopies ? "pvm" : "packing",
                machine.opTrack(), op_start,
                makespan > op_start ? makespan - op_start : 0,
                "bytes", op.totalBytes());

    RunResult result;
    result.makespan = makespan;
    result.payloadBytes = op.totalBytes();
    result.maxBytesPerSender = op.maxBytesPerSender();
    return result;
}

PackingLayer
makePvmLayer(Cycles sender_overhead, Cycles receiver_overhead)
{
    PackingOptions opts;
    opts.systemBufferCopies = true;
    opts.senderMessageOverhead = sender_overhead;
    opts.receiverMessageOverhead = receiver_overhead;
    opts.layerName = "pvm";
    return PackingLayer(opts);
}

} // namespace ct::rt
