/**
 * @file
 * Closed-loop resilience: a policy engine between the observability
 * layer and the transfer layers. At every round boundary the
 * controller receives a RoundObservation sampled from the machine's
 * metrics registry (retransmit rate, NACK ratio, dead-endpoint
 * drops, rerouted-link congestion, repair volume), folds the
 * *measured* fault environment into the analytic cost surface
 * (core::AnalyticBackend::faultedRate), and emits policy actions when
 * break-even is crossed:
 *
 *  - switch the implementation style (chained <-> buffer packing) at
 *    the next round boundary, via the style registry;
 *  - tighten or relax the reliable transport's retransmit timeout and
 *    retry budget, bounded and deterministic;
 *  - force an early checkpoint when the projected repair cost of the
 *    un-checkpointed rounds exceeds the cost of taking one.
 *
 * The controller is a pure decision engine: observe() touches no
 * simulator state, so the policy is unit-testable against synthetic
 * observation streams and trivially replayable. Determinism contract:
 * identical observation sequences produce bit-identical decision logs
 * (fingerprint() folds every decision into one FNV-1a value; chaos
 * replays compare fingerprints).
 *
 * A style switch needs the alternate's predicted rate to beat the
 * current style's by the hysteresis band, and switches are separated
 * by a cooldown, so the controller cannot oscillate on a static
 * environment: after a switch the reverse trade is outside the band
 * by construction.
 */

#ifndef CT_RT_RESILIENCE_H
#define CT_RT_RESILIENCE_H

#include <string>
#include <vector>

#include "core/analytic_backend.h"
#include "core/transfer_program.h"
#include "rt/comm_op.h"
#include "rt/reliable_layer.h"

namespace ct::rt {

/** Policy bounds and thresholds of the closed loop. */
struct ResilienceOptions
{
    /** Re-evaluate the style break-even each round. */
    bool adaptStyle = true;
    /** Retune the transport timeout / retry budget each round. */
    bool adaptTransport = true;
    /** Consider forcing early checkpoints on node-loss signals. */
    bool adaptCheckpoint = true;
    /** The alternate must beat the current style's faulted rate by
     *  this fraction before a switch fires (no-oscillation band). */
    double hysteresis = 0.15;
    /** Rounds a style switch is held before the next may fire. */
    int cooldownRounds = 2;
    /** Transport adaptation bounds. */
    Cycles minRetransmitTimeout = 6000;
    Cycles maxRetransmitTimeout = 120000;
    int maxRetries = 24;
    /** Tightening never takes the timeout below rttFloor times the
     *  smoothed ack round-trip: a timeout under the loaded path RTT
     *  reads its own echoes as losses and spirals. */
    double rttFloor = 2.0;
    /** EWMA weight of the newest loss sample. */
    double ewma = 0.5;
    /** Smoothed retransmit rate above this tightens the transport; a
     *  quarter of it relaxes back toward the baseline. The trigger is
     *  deliberately the raw retransmit rate, not the duplicate-
     *  corrected loss estimate: any timer firing -- genuine loss or
     *  spurious -- marks a channel stalled for a timeout, and round
     *  boundaries serialize those stalls, so a short timeout pays off
     *  even when some retransmissions are echoes. */
    double lossTighten = 0.002;
    /** Baseline transport tunables (the relax target). */
    ReliableOptions transport;
    std::string initialStyle = "chained";
    std::string alternateStyle = "buffer-packing";
};

/** What the controller can decide at a round boundary. */
enum class PolicyAction {
    Hold,
    SwitchStyle,
    TightenTransport,
    RelaxTransport,
    ForceCheckpoint,
};

const char *policyActionName(PolicyAction action);

/**
 * One round's registry sample, taken by the driver after the round
 * completes. Counter fields are per-round deltas (the reliable
 * transport resets its registry cells at every run start, so a fresh
 * layer per round reads them off directly).
 */
struct RoundObservation
{
    int round = 0;
    std::uint64_t dataPackets = 0;
    std::uint64_t retransmits = 0;
    /** Receiver-side duplicate data packets. Each one is evidence of
     *  a *spurious* retransmission (both copies arrived), so the
     *  controller subtracts them from the loss estimate -- otherwise
     *  a too-tight timeout inflates the estimate, which tightens the
     *  timeout further (positive feedback). */
    std::uint64_t duplicatesDropped = 0;
    std::uint64_t nacksSent = 0;
    std::uint64_t retryExhausted = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t deadEndpointDrops = 0;
    /** Karn-filtered ack round-trip sample sum and count; the
     *  controller floors the tightened timeout at a multiple of the
     *  mean so it can never sit below the loaded path RTT. */
    Cycles rttSumCycles = 0;
    std::uint64_t rttSamples = 0;
    /** Cumulative rerouted-link count (network stats). */
    std::uint64_t reroutedLinks = 0;
    /** Congestion of the op's demands under the current outages. */
    double congestion = 1.0;
    /** Routability split of the op's demands under the current
     *  outages. congestion == 1.0 with routedDemands == 0 means
     *  *nothing* is routable -- previously indistinguishable from a
     *  perfectly balanced network, which made the controller compare
     *  styles against an absurdly optimistic environment. */
    int routedDemands = 0;
    int unroutableDemands = 0;
    /** Payload words this round moved (checkpoint-cost proxy). */
    std::uint64_t roundWords = 0;
    Cycles roundMakespan = 0;
};

/** One policy decision, with the evidence that produced it. */
struct PolicyDecision
{
    int round = 0;
    PolicyAction action = PolicyAction::Hold;
    std::string fromStyle;
    std::string toStyle;
    /** Smoothed per-packet loss estimate the decision used. */
    double observedLoss = 0.0;
    double observedCongestion = 1.0;
    /** Faulted rates (MB/s) of current and alternate styles. */
    double rateCurrent = 0.0;
    double rateAlternate = 0.0;
    /** Transport tunables after the decision. */
    Cycles retransmitTimeout = 0;
    int maxRetries = 0;
    std::string reason;
};

/**
 * The closed-loop policy engine. Construct once per operation with
 * the machine and the transfer's patterns; feed observe() one
 * RoundObservation per round; read the current style / transport and
 * build the next round's layer with makeLayer().
 */
class ResilienceController
{
  public:
    ResilienceController(const sim::MachineConfig &config,
                         core::AccessPattern x, core::AccessPattern y,
                         ResilienceOptions options = {});

    /** Digest one round; returns the decisions it triggered (also
     *  appended to the persistent log). Pure: no simulator access. */
    std::vector<PolicyDecision> observe(const RoundObservation &obs);

    /** Style key the next round should run. */
    const std::string &styleKey() const { return currentKey; }

    /** Transport tunables the next round should run. */
    const ReliableOptions &transport() const { return transportOpts; }

    /** Program of the current style (non-reliable; the layer wraps). */
    const core::TransferProgram &currentProgram() const
    {
        return current;
    }

    /** Reliable layer over the current style with the adapted
     *  transport tunables, ready for the next round. */
    std::unique_ptr<ReliableLayer> makeLayer() const;

    /** Full decision log (Hold rounds are not recorded). */
    const std::vector<PolicyDecision> &decisions() const
    {
        return log;
    }

    /** FNV-1a fold of the decision log; bit-identical across replays
     *  of the same observation stream. */
    std::uint64_t fingerprint() const;

    /** Smoothed per-packet loss estimate (duplicate-corrected; feeds
     *  the analytic style comparison). */
    double smoothedLoss() const { return lossEwma; }

    /** Smoothed retransmit rate (uncorrected; drives the transport
     *  tighten/relax trigger). */
    double smoothedRetransmitRate() const { return retransEwma; }

    /** Smoothed ack round-trip estimate in cycles (0 = no samples
     *  yet). */
    double smoothedRtt() const { return rttEwma; }

    int styleSwitches() const { return switches; }

    /** Driver notification that a checkpoint was recorded, resetting
     *  the projected-repair accumulator. */
    void checkpointTaken() { unCheckpointedWords = 0; }

    const ResilienceOptions &options() const { return opts; }

    const core::AnalyticBackend &backend() const { return analytic; }

  private:
    PolicyDecision baseDecision(const RoundObservation &obs) const;

    ResilienceOptions opts;
    core::AnalyticBackend analytic;
    core::TransferProgram current;
    core::TransferProgram alternate;
    std::string currentKey;
    std::string alternateKey;
    ReliableOptions transportOpts;
    std::vector<PolicyDecision> log;
    double lossEwma = 0.0;
    double retransEwma = 0.0;
    double rttEwma = 0.0;
    bool haveLoss = false;
    int cooldown = 0;
    int switches = 0;
    std::uint64_t lastRerouted = 0;
    std::uint64_t unCheckpointedWords = 0;
};

/**
 * Round-slicing helpers: execute a CommOp in block-aligned word
 * slices so the controller gets round boundaries to act on.
 * sliceAlignment is the word granularity flow offsets must respect
 * (the lcm of the walks' strided block sizes); sliceFlow cuts
 * [offset, offset + words) out of a flow by offsetting its walks.
 */
std::uint64_t sliceAlignment(const Flow &flow);
Flow sliceFlow(const Flow &flow, std::uint64_t offset,
               std::uint64_t words);

/** Outcome of an adaptive multi-round execution. */
struct AdaptiveResult
{
    Cycles makespan = 0;
    Bytes payloadBytes = 0;
    int rounds = 0;
    int styleSwitches = 0;
    int transportAdaptations = 0;
    int forcedCheckpoints = 0;
    std::string finalStyle;
    std::uint64_t fingerprint = 0;
    /** Mismatched words at final verification (0 = success). */
    std::uint64_t corruptWords = 0;
    /** Flows excluded from verification (dead endpoint). */
    int skippedFlows = 0;
    bool degraded = false;
    std::vector<PolicyDecision> decisions;
};

/**
 * Execute @p op in @p rounds block-aligned slices under closed-loop
 * control: each round runs the controller's current style behind the
 * reliable transport, then the registry sample is fed back and the
 * controller may flip the style or retune the transport for the next
 * round. Decision points are emitted as cat "policy" tracer instants.
 * Sources are seeded once up front and the whole op is verified at
 * the end (flows with a dead endpoint excluded, as a checkpointed
 * driver would re-plan them).
 */
AdaptiveResult runAdaptiveExchange(sim::Machine &machine,
                                   const CommOp &op,
                                   ResilienceController &controller,
                                   int rounds);

} // namespace ct::rt

#endif // CT_RT_RESILIENCE_H
