#include "resilience.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/machine_params.h"
#include "core/style_registry.h"
#include "obs/trace.h"
#include "rt/sim_backend.h"
#include "util/logging.h"

namespace ct::rt {

const char *
policyActionName(PolicyAction action)
{
    switch (action) {
      case PolicyAction::Hold:
        return "hold";
      case PolicyAction::SwitchStyle:
        return "switch-style";
      case PolicyAction::TightenTransport:
        return "tighten-transport";
      case PolicyAction::RelaxTransport:
        return "relax-transport";
      case PolicyAction::ForceCheckpoint:
        return "force-checkpoint";
    }
    util::panic("policyActionName: bad action");
}

namespace {

core::TransferProgram
programOrDie(const sim::MachineConfig &config, const std::string &key,
             core::AccessPattern x, core::AccessPattern y)
{
    auto program = core::buildProgram(config.id, key, x, y);
    if (!program)
        util::fatal("ResilienceController: style '", key,
                    "' cannot implement ", x.label(), "Q", y.label(),
                    " on ", config.name);
    return *std::move(program);
}

} // namespace

ResilienceController::ResilienceController(
    const sim::MachineConfig &config, core::AccessPattern x,
    core::AccessPattern y, ResilienceOptions options)
    : opts(std::move(options)),
      analytic(core::paperTable(config.id),
               executionProfileFor(config)),
      current(programOrDie(config, opts.initialStyle, x, y)),
      alternate(programOrDie(config, opts.alternateStyle, x, y)),
      currentKey(opts.initialStyle),
      alternateKey(opts.alternateStyle),
      transportOpts(opts.transport)
{
    if (opts.hysteresis < 0.0)
        util::fatal("ResilienceController: hysteresis must be >= 0, "
                    "got ",
                    opts.hysteresis);
    if (opts.cooldownRounds < 0)
        util::fatal("ResilienceController: cooldownRounds must be "
                    ">= 0, got ",
                    opts.cooldownRounds);
    if (opts.minRetransmitTimeout == 0 ||
        opts.minRetransmitTimeout > opts.maxRetransmitTimeout)
        util::fatal("ResilienceController: need 0 < "
                    "minRetransmitTimeout <= maxRetransmitTimeout");
    if (opts.ewma <= 0.0 || opts.ewma > 1.0)
        util::fatal("ResilienceController: ewma weight must be in "
                    "(0, 1], got ",
                    opts.ewma);
    if (opts.rttFloor <= 0.0)
        util::fatal("ResilienceController: rttFloor must be > 0, "
                    "got ",
                    opts.rttFloor);
}

PolicyDecision
ResilienceController::baseDecision(const RoundObservation &obs) const
{
    PolicyDecision d;
    d.round = obs.round;
    d.fromStyle = currentKey;
    d.toStyle = currentKey;
    d.observedLoss = lossEwma;
    d.observedCongestion = obs.congestion;
    d.retransmitTimeout = transportOpts.retransmitTimeout;
    d.maxRetries = transportOpts.maxRetries;
    return d;
}

std::vector<PolicyDecision>
ResilienceController::observe(const RoundObservation &obs)
{
    std::vector<PolicyDecision> out;

    // Two smoothed signals from one counter sample. The loss
    // estimate discounts spurious retransmissions -- ones where both
    // copies arrived and the receiver saw a duplicate -- because the
    // analytic cost surface wants true per-packet loss, and a
    // too-tight timeout must not read its own echoes as loss. The
    // retransmit rate stays uncorrected: it measures timeout stalls,
    // which cost the same whether the packet was really lost.
    std::uint64_t attempts = obs.dataPackets + obs.retransmits;
    std::uint64_t genuine =
        obs.retransmits -
        std::min(obs.retransmits, obs.duplicatesDropped);
    if (attempts > 0) {
        double lossSample = static_cast<double>(genuine) /
                            static_cast<double>(attempts);
        double retransSample =
            static_cast<double>(obs.retransmits) /
            static_cast<double>(attempts);
        if (haveLoss) {
            lossEwma = opts.ewma * lossSample +
                       (1.0 - opts.ewma) * lossEwma;
            retransEwma = opts.ewma * retransSample +
                          (1.0 - opts.ewma) * retransEwma;
        } else {
            lossEwma = lossSample;
            retransEwma = retransSample;
        }
        haveLoss = true;
    }
    if (obs.rttSamples > 0) {
        double sample = static_cast<double>(obs.rttSumCycles) /
                        static_cast<double>(obs.rttSamples);
        rttEwma = rttEwma > 0.0 ? opts.ewma * sample +
                                      (1.0 - opts.ewma) * rttEwma
                                : sample;
    }
    if (cooldown > 0)
        --cooldown;
    unCheckpointedWords += obs.roundWords;

    core::FaultEnvironment env;
    env.packetLoss = lossEwma;
    env.congestion = std::max(1.0, obs.congestion);
    env.retransmitTimeout = transportOpts.retransmitTimeout;
    env.packetWords = layerChunkWords;
    auto rateCur = analytic.faultedRate(current, env);
    auto rateAlt = analytic.faultedRate(alternate, env);

    // When *no* demand is routable the congestion floor of 1.0 is
    // not a measurement -- comparing styles against that fictional
    // uncongested network could flip the style on garbage. Hold the
    // style and let the transport/checkpoint signals (which are real)
    // drive the round.
    bool allUnroutable =
        obs.routedDemands == 0 && obs.unroutableDemands > 0;

    // Style break-even: flip when the alternate's predicted rate
    // under the measured environment clears the hysteresis band.
    if (opts.adaptStyle && !allUnroutable && cooldown == 0 &&
        rateCur && rateAlt &&
        *rateAlt > *rateCur * (1.0 + opts.hysteresis)) {
        PolicyDecision d = baseDecision(obs);
        d.action = PolicyAction::SwitchStyle;
        d.toStyle = alternateKey;
        d.rateCurrent = *rateCur;
        d.rateAlternate = *rateAlt;
        d.reason = "alternate rate clears hysteresis band under "
                   "measured faults";
        std::swap(current, alternate);
        std::swap(currentKey, alternateKey);
        cooldown = opts.cooldownRounds;
        ++switches;
        out.push_back(std::move(d));
    }

    // Transport adaptation: sustained loss shortens the detection
    // stall and widens the retry budget; a clean channel relaxes back
    // toward the baseline. Both directions are bounded.
    auto relaxStep = [&](const char *reason) {
        transportOpts.retransmitTimeout =
            std::min({opts.maxRetransmitTimeout,
                      opts.transport.retransmitTimeout,
                      transportOpts.retransmitTimeout * 2});
        transportOpts.maxRetries = std::max(
            opts.transport.maxRetries, transportOpts.maxRetries - 4);
        PolicyDecision d = baseDecision(obs);
        d.action = PolicyAction::RelaxTransport;
        if (rateCur)
            d.rateCurrent = *rateCur;
        if (rateAlt)
            d.rateAlternate = *rateAlt;
        d.retransmitTimeout = transportOpts.retransmitTimeout;
        d.maxRetries = transportOpts.maxRetries;
        d.reason = reason;
        out.push_back(std::move(d));
    };
    if (opts.adaptTransport && haveLoss) {
        // The tightened timeout is floored at a multiple of the
        // measured round-trip (Karn-filtered samples), never just the
        // static minimum: a timeout below the loaded path RTT fires
        // before acks can possibly arrive and floods the wire with
        // spurious copies.
        Cycles floorRto = opts.minRetransmitTimeout;
        if (rttEwma > 0.0)
            floorRto = std::max(
                floorRto, static_cast<Cycles>(opts.rttFloor *
                                              rttEwma));
        floorRto = std::min(floorRto, opts.transport.retransmitTimeout);
        if (retransEwma > opts.lossTighten &&
            (transportOpts.retransmitTimeout > floorRto ||
             transportOpts.maxRetries < opts.maxRetries)) {
            transportOpts.retransmitTimeout =
                std::max(floorRto,
                         transportOpts.retransmitTimeout / 2);
            transportOpts.maxRetries = std::min(
                opts.maxRetries, transportOpts.maxRetries + 4);
            PolicyDecision d = baseDecision(obs);
            d.action = PolicyAction::TightenTransport;
            if (rateCur)
                d.rateCurrent = *rateCur;
            if (rateAlt)
                d.rateAlternate = *rateAlt;
            d.retransmitTimeout = transportOpts.retransmitTimeout;
            d.maxRetries = transportOpts.maxRetries;
            d.reason = "smoothed retransmit rate above tighten "
                       "threshold";
            out.push_back(std::move(d));
        } else if (retransEwma < opts.lossTighten / 4.0 &&
                   (transportOpts.retransmitTimeout <
                        opts.transport.retransmitTimeout ||
                    transportOpts.maxRetries >
                        opts.transport.maxRetries)) {
            relaxStep("channel clean; relaxing toward baseline");
        }
    }

    // Checkpoint pressure: a node-loss signal (dead-endpoint drops,
    // or fresh reroutes from a link death) projects the repair cost
    // as everything since the last checkpoint; once that exceeds the
    // one-round cost of taking a checkpoint, force one now.
    if (opts.adaptCheckpoint) {
        bool lossSignal = obs.deadEndpointDrops > 0 ||
                          obs.reroutedLinks > lastRerouted;
        if (lossSignal && unCheckpointedWords > obs.roundWords) {
            PolicyDecision d = baseDecision(obs);
            d.action = PolicyAction::ForceCheckpoint;
            if (rateCur)
                d.rateCurrent = *rateCur;
            if (rateAlt)
                d.rateAlternate = *rateAlt;
            d.reason = "projected repair volume exceeds one-round "
                       "checkpoint cost";
            unCheckpointedWords = 0;
            out.push_back(std::move(d));
        }
    }
    lastRerouted = std::max(lastRerouted, obs.reroutedLinks);

    log.insert(log.end(), out.begin(), out.end());
    return out;
}

std::unique_ptr<ReliableLayer>
ResilienceController::makeLayer() const
{
    return std::make_unique<ReliableLayer>(lowerProgram(current),
                                           transportOpts);
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvU64(std::uint64_t &h, std::uint64_t v)
{
    fnvBytes(h, &v, sizeof v);
}

void
fnvDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    fnvU64(h, bits);
}

void
fnvString(std::uint64_t &h, const std::string &s)
{
    fnvU64(h, s.size());
    fnvBytes(h, s.data(), s.size());
}

} // namespace

std::uint64_t
ResilienceController::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    for (const PolicyDecision &d : log) {
        fnvU64(h, static_cast<std::uint64_t>(d.round));
        fnvU64(h, static_cast<std::uint64_t>(d.action));
        fnvString(h, d.fromStyle);
        fnvString(h, d.toStyle);
        fnvDouble(h, d.observedLoss);
        fnvDouble(h, d.observedCongestion);
        fnvDouble(h, d.rateCurrent);
        fnvDouble(h, d.rateAlternate);
        fnvU64(h, d.retransmitTimeout);
        fnvU64(h, static_cast<std::uint64_t>(d.maxRetries));
        fnvString(h, d.reason);
    }
    return h;
}

namespace {

std::uint64_t
walkBlock(const sim::PatternWalk &walk)
{
    return walk.pattern.isStrided() ? walk.pattern.block() : 1;
}

sim::PatternWalk
offsetWalk(const sim::PatternWalk &walk, std::uint64_t off)
{
    sim::PatternWalk w = walk;
    switch (walk.pattern.kind()) {
      case core::PatternKind::Fixed:
        break;
      case core::PatternKind::Contiguous:
        w.base += off * 8;
        break;
      case core::PatternKind::Strided: {
        std::uint64_t block = walk.pattern.block();
        if (off % block != 0)
            util::fatal("sliceFlow: offset ", off,
                        " not aligned to block ", block);
        w.base += (off / block) * walk.pattern.stride() * 8;
        break;
      }
      case core::PatternKind::Indexed:
        w.indexBase += off * 8;
        break;
    }
    return w;
}

} // namespace

std::uint64_t
sliceAlignment(const Flow &flow)
{
    std::uint64_t align = std::lcm(walkBlock(flow.srcWalk),
                                   walkBlock(flow.dstWalk));
    return std::lcm(align, walkBlock(flow.dstWalkOnSender));
}

Flow
sliceFlow(const Flow &flow, std::uint64_t offset, std::uint64_t words)
{
    if (offset + words > flow.words)
        util::fatal("sliceFlow: slice [", offset, ", ",
                    offset + words, ") exceeds flow of ", flow.words,
                    " words");
    Flow slice = flow;
    slice.words = words;
    slice.srcWalk = offsetWalk(flow.srcWalk, offset);
    slice.dstWalk = offsetWalk(flow.dstWalk, offset);
    slice.dstWalkOnSender = offsetWalk(flow.dstWalkOnSender, offset);
    return slice;
}

AdaptiveResult
runAdaptiveExchange(sim::Machine &machine, const CommOp &op,
                    ResilienceController &controller, int rounds)
{
    if (rounds < 1)
        util::fatal("runAdaptiveExchange: rounds must be >= 1, got ",
                    rounds);
    AdaptiveResult result;
    result.payloadBytes = op.totalBytes();
    seedSources(machine, op);
    Cycles start = machine.events().now();
    obs::Tracer *tracer = machine.tracer();
    std::vector<sim::TrafficDemand> demands = op.demands();
    // One scratch arena for the per-round congestion analysis: the
    // load map and route buffers are reused across every round.
    sim::CongestionScratch congestionScratch;

    for (int r = 0; r < rounds; ++r) {
        CommOp sub;
        sub.name = op.name + "/round" + std::to_string(r);
        std::uint64_t subWords = 0;
        for (const Flow &flow : op.flows) {
            std::uint64_t align = sliceAlignment(flow);
            std::uint64_t per =
                (flow.words + static_cast<std::uint64_t>(rounds) -
                 1) /
                static_cast<std::uint64_t>(rounds);
            per = (per + align - 1) / align * align;
            std::uint64_t begin = std::min(
                flow.words, static_cast<std::uint64_t>(r) * per);
            std::uint64_t end =
                r == rounds - 1
                    ? flow.words
                    : std::min(flow.words,
                               (static_cast<std::uint64_t>(r) + 1) *
                                   per);
            if (end > begin) {
                sub.flows.push_back(
                    sliceFlow(flow, begin, end - begin));
                subWords += end - begin;
            }
        }
        if (sub.flows.empty())
            continue;

        Cycles roundStart = machine.events().now();
        std::unique_ptr<ReliableLayer> layer =
            controller.makeLayer();
        RunResult rr = layer->run(machine, sub);
        result.degraded = result.degraded || rr.degraded;
        const ReliableStats &st = layer->stats();

        RoundObservation obs;
        obs.round = r;
        obs.dataPackets = st.dataPackets;
        obs.retransmits = st.retransmits;
        obs.duplicatesDropped = st.duplicatesDropped;
        obs.nacksSent = st.nacksSent;
        obs.retryExhausted = st.retryExhausted;
        obs.abandoned = st.abandoned;
        obs.deadEndpointDrops = st.deadEndpointDrops;
        obs.rttSumCycles = st.rttSumCycles;
        obs.rttSamples = st.rttSamples;
        obs.reroutedLinks = machine.network().stats().reroutedLinks;
        sim::CongestionReport congestion =
            machine.topology().analyzeCongestion(
                demands, machine.events().now(), congestionScratch);
        obs.congestion = congestion.factor;
        obs.routedDemands = congestion.routed;
        obs.unroutableDemands = congestion.unroutable;
        obs.roundWords = subWords;
        obs.roundMakespan = machine.events().now() - roundStart;

        for (const PolicyDecision &d : controller.observe(obs)) {
            switch (d.action) {
              case PolicyAction::SwitchStyle:
                ++result.styleSwitches;
                break;
              case PolicyAction::TightenTransport:
              case PolicyAction::RelaxTransport:
                ++result.transportAdaptations;
                break;
              case PolicyAction::ForceCheckpoint:
                ++result.forcedCheckpoints;
                break;
              case PolicyAction::Hold:
                break;
            }
            if (tracer)
                tracer->instant(
                    "policy", policyActionName(d.action),
                    machine.opTrack(), machine.events().now(),
                    "round", static_cast<std::uint64_t>(d.round),
                    "rto", d.retransmitTimeout);
        }
        ++result.rounds;
    }

    result.makespan = machine.events().now() - start;
    result.finalStyle = controller.styleKey();
    result.fingerprint = controller.fingerprint();
    result.decisions = controller.decisions();

    // Verify everything still owned by a reachable node. A flapped
    // node counts as reachable: its memory survives the outage.
    CommOp check;
    check.name = op.name;
    Cycles now = machine.events().now();
    const sim::Topology &topo = machine.topology();
    auto reachable = [&](NodeId n) {
        return topo.nodeAlive(n, now) || topo.nodeRecovers(n, now);
    };
    for (const Flow &flow : op.flows) {
        if (reachable(flow.src) && reachable(flow.dst))
            check.flows.push_back(flow);
        else
            ++result.skippedFlows;
    }
    result.corruptWords = verifyDelivery(machine, check);
    return result;
}

} // namespace ct::rt
