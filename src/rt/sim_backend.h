/**
 * @file
 * The simulation backend: lowers a core::TransferProgram onto the
 * simulator's message layers and actually moves the data.
 *
 * Lowering is driven by the program's *shape*, not its style tag:
 * programs that stage through packing buffers (stagingBuffers >= 1)
 * become a PackingLayer (with PVM's extra system-buffer copies when
 * stagingBuffers >= 2); direct programs become a ChainedLayer, in
 * DMA-feed mode when the program runs a fetch engine on the sender.
 * The program's software costs flow straight into the layer options,
 * so the analytic latency model and the simulator charge the same
 * constants by construction. Reliable programs are wrapped in the
 * ReliableLayer transport.
 */

#ifndef CT_RT_SIM_BACKEND_H
#define CT_RT_SIM_BACKEND_H

#include <memory>

#include "core/analytic_backend.h"
#include "core/transfer_program.h"
#include "rt/layer.h"

namespace ct::rt {

/**
 * Derive the analytic backend's execution profile (clock, shared
 * bus, chunking, DMA setup cost, index-stream rate) from a simulator
 * machine configuration, so model and simulator describe the same
 * hardware.
 */
core::ExecutionProfile
executionProfileFor(const sim::MachineConfig &cfg);

/**
 * Lower @p program onto a concrete message layer (see file comment).
 * The returned layer is reusable across runs on fresh machines.
 */
std::unique_ptr<MessageLayer>
lowerProgram(const core::TransferProgram &program);

/** Outcome of one backend execution, with the rates resolved. */
struct SimRun
{
    RunResult result;
    util::MBps perNodeMBps = 0.0;
    util::MBps totalMBps = 0.0;
    /** Words that arrived with the wrong value (0 = verified). */
    std::uint64_t corruptWords = 0;
    std::string layerName;
    /**
     * True when the run hit the cooperative event budget and was cut
     * short: makespan/rates describe the progress made up to the cut
     * and delivery was NOT verified (partial delivery is a deadline
     * artifact, not corruption). Callers surfacing truncated runs
     * must label them as such (the planning service reports
     * fidelity "truncated").
     */
    bool truncated = false;
    /** Events the simulation executed (the budget spent). */
    std::uint64_t eventsExecuted = 0;
};

/** Executes TransferPrograms on one simulated machine model. */
class SimBackend
{
  public:
    explicit SimBackend(sim::MachineConfig config);

    /**
     * One-directional run: node 0 sends @p words elements to node 1
     * with the program's patterns (the validation-cell setup).
     */
    SimRun execute(const core::TransferProgram &program,
                   std::uint64_t words, std::uint64_t seed = 42);

    /**
     * Pairwise exchange across all nodes, every node sending and
     * receiving (the paper's measurement setup).
     */
    SimRun exchange(const core::TransferProgram &program,
                    std::uint64_t words, std::uint64_t seed = 42);

    const sim::MachineConfig &config() const { return cfg; }

    /**
     * Cooperative cancellation checkpoint for deadline-bound
     * callers: cap the total simulator events one execute()/
     * exchange() may fire. When the budget runs out mid-run the
     * event loop stops at the next checkpoint, the run comes back
     * with truncated = true, and its numbers describe the progress
     * made so far. 0 (the default) means unlimited.
     */
    void setEventBudget(std::uint64_t budget) { eventBudget = budget; }
    std::uint64_t eventBudgetCap() const { return eventBudget; }

    /**
     * Worker threads for the conservative parallel engine. 0 or 1
     * keeps the serial event loop with zero overhead; N > 1 runs
     * partitioned windows that commit in serial order, so reports
     * and metrics stay byte-identical to the serial run. Layers that
     * are not parallel-safe (e.g. the reliable transport) and
     * budget-capped runs fall back to serial automatically.
     */
    void setThreads(int n) { cfg.threads = n; }
    int threads() const { return cfg.threads; }

  private:
    SimRun run(const core::TransferProgram &program, CommOp op,
               sim::Machine &machine);

    sim::MachineConfig cfg;
    std::uint64_t eventBudget = 0;
};

} // namespace ct::rt

#endif // CT_RT_SIM_BACKEND_H
