/**
 * @file
 * Message-layer interface: the different software implementations of
 * a communication operation the paper compares (§5.1). Each layer
 * executes a CommOp end-to-end on a simulated machine, actually
 * moving the data, and reports the makespan.
 */

#ifndef CT_RT_LAYER_H
#define CT_RT_LAYER_H

#include <memory>
#include <string>

#include "rt/comm_op.h"
#include "util/logging.h"

namespace ct::rt {

/** Outcome of one end-to-end run. */
struct RunResult
{
    Cycles makespan = 0;
    Bytes payloadBytes = 0;
    /** Largest payload injected by one node (basis of per-node MB/s). */
    Bytes maxBytesPerSender = 0;
    /**
     * True when the run completed on a fallback path (e.g. chained
     * transfers downgraded to buffer packing after a permanent
     * deposit-engine failure). Reports label such rows "degraded".
     */
    bool degraded = false;

    /**
     * Per-node throughput as the paper reports it: the data one node
     * moved divided by the time the whole step took.
     */
    util::MBps perNodeMBps(const sim::Machine &machine) const
    {
        return rateOf(machine, maxBytesPerSender);
    }

    /** Aggregate throughput of the whole step. */
    util::MBps totalMBps(const sim::Machine &machine) const
    {
        return rateOf(machine, payloadBytes);
    }

  private:
    /** Shared guard: a zero makespan reports 0 MB/s with a warning. */
    util::MBps rateOf(const sim::Machine &machine, Bytes bytes) const
    {
        if (makespan == 0) {
            util::warn("RunResult: zero makespan, reporting 0 MB/s");
            return 0.0;
        }
        return machine.toMBps(bytes, makespan);
    }
};

/** Abstract message layer. */
class MessageLayer
{
  public:
    virtual ~MessageLayer() = default;

    /** Human-readable layer name, e.g. "chained". */
    virtual std::string name() const = 0;

    /**
     * Execute @p op on @p machine. The machine must be freshly
     * constructed (or otherwise quiescent); the layer drives the
     * machine's event queue to completion.
     */
    virtual RunResult run(sim::Machine &machine, const CommOp &op) = 0;

    /**
     * True when the layer's event structure may run under the
     * conservative parallel engine (sim::ParallelEngine): every
     * event is partition-tagged, cross-partition effects go through
     * the network or are explicitly scoped, and no cancellable
     * timers are armed. Default is the safe answer; the driver
     * (SimBackend, tools) calls machine.setParallelEnabled() with
     * this before running.
     */
    virtual bool parallelSafe() const { return false; }

    /**
     * The layer's minimum cross-partition delay in cycles: no event
     * executing on one node ever schedules an event on another node
     * fewer than this many cycles ahead. Used as the parallel
     * engine's window lookahead (clamped to the network's own wire
     * floor); only meaningful when parallelSafe(). 1 is always
     * correct -- the engine then only parallelizes same-timestamp
     * events -- and any overdeclaration is caught fatally by the
     * engine's commit-time check.
     */
    virtual sim::Cycles
    parallelLookahead(const sim::Machine &machine,
                      const CommOp &op) const
    {
        (void)machine;
        (void)op;
        return 1;
    }
};

/** Number of words moved per pipelined chunk by all layers. */
inline constexpr std::uint64_t layerChunkWords = 64;

/** In-flight chunks allowed per flow before the sender throttles. */
inline constexpr int layerCredits = 4;

} // namespace ct::rt

#endif // CT_RT_LAYER_H
