/**
 * @file
 * Two-dimensional array redistribution, including the transposing
 * assignment B[i][j] = A[j][i]. Flow construction splits each
 * (sender, receiver) element list into maximal affine runs (constant
 * source and destination deltas), which automatically recovers the
 * paper's Figure 9 decomposition: a (BLOCK, *) -> (*, BLOCK)
 * transpose falls apart into per-row flows that are contiguous on
 * one side and strided on the other, and the choice of which side
 * carries the stride is exactly Table 5's loop-order choice.
 */

#ifndef CT_RT_REDISTRIBUTE2D_H
#define CT_RT_REDISTRIBUTE2D_H

#include <map>

#include "core/distribution2d.h"
#include "rt/comm_op.h"

namespace ct::rt {

/**
 * Split the parallel offset lists into maximal runs with constant
 * (src delta, dst delta). Returns (start, length) pairs covering the
 * lists. Exposed for testing.
 */
std::vector<std::pair<std::size_t, std::size_t>>
splitAffineRuns(const std::vector<std::uint64_t> &src,
                const std::vector<std::uint64_t> &dst);

/** A distributed 2-D array pair and the redistribution between them. */
class Redistribution2dWorkload
{
  public:
    /**
     * Build B(to) = A(from), transposed when @p transpose is set.
     * Both distributions must span machine.nodeCount() nodes.
     */
    static Redistribution2dWorkload
    create(sim::Machine &machine, const core::Distribution2d &from,
           const core::Distribution2d &to, bool transpose);

    /** Fill A with A[i][j] = i * cols + j + 1. */
    void fillInput(sim::Machine &machine) const;

    /** Check every element of B; returns mismatches. */
    std::uint64_t verify(sim::Machine &machine) const;

    /** Number of rotation steps of the full schedule (= node count). */
    int totalSteps() const { return fromDist.nodes(); }

    /**
     * Flow set of rotation step @p step re-planned under @p owners:
     * dead receivers are redirected to the takeover node's spill
     * buffer, dead senders' words are dropped into @p lost_words.
     * See RedistributionWorkload::stepOp.
     */
    CommOp stepOp(sim::Machine &machine, int step,
                  const OwnerMap &owners,
                  std::uint64_t *lost_words = nullptr);

    /**
     * Re-delivery op for a completed step after an ownership change:
     * flows whose receiver's owner differs between @p before and
     * @p owners are re-sent into the new owner's spill buffer. See
     * RedistributionWorkload::repairOp.
     */
    CommOp repairOp(sim::Machine &machine, int step,
                    const OwnerMap &before, const OwnerMap &owners,
                    std::uint64_t *lost_words = nullptr);

    /** Failure-aware verify under @p owners (spill-buffer aware). */
    std::uint64_t verify(sim::Machine &machine,
                         const OwnerMap &owners) const;

    const CommOp &op() const { return commOp; }

    /** Patterns of the largest flow (the compiler's xQy view). */
    std::pair<core::AccessPattern, core::AccessPattern>
    dominantPatterns() const;

  private:
    /** Spill buffer on @p owners.of(dead) for @p dead's blocks. */
    Addr spillFor(sim::Machine &machine, NodeId dead,
                  const OwnerMap &owners);

    /** Shared builder of stepOp/repairOp: when @p changed_since is
     *  set, only flows whose receiver's owner moved are emitted. */
    CommOp buildStep(sim::Machine &machine, int step,
                     const OwnerMap &owners,
                     std::uint64_t *lost_words,
                     const OwnerMap *changed_since);

    core::Distribution2d fromDist{core::DimSpec::whole(1),
                                  core::DimSpec::whole(1)};
    core::Distribution2d toDist{core::DimSpec::whole(1),
                                core::DimSpec::whole(1)};
    bool transposed = false;
    std::vector<Addr> srcBase;
    std::vector<Addr> dstBase;
    /** Dead destination node -> (takeover node, spill base). */
    std::map<NodeId, std::pair<NodeId, Addr>> spillBase;
    CommOp commOp;
};

} // namespace ct::rt

#endif // CT_RT_REDISTRIBUTE2D_H
