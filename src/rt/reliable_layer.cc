#include "reliable_layer.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/chained_layer.h"
#include "sim/packet.h"
#include "sim/trace_tracks.h"
#include "util/logging.h"

namespace ct::rt {

namespace {

using sim::Cycles;
using sim::Machine;
using sim::NodeId;
using sim::Packet;
using sim::PacketKind;

/**
 * Per-run transport state. Interposed on the network via the
 * send/deliver taps; all traffic of the wrapped layer flows through
 * it, its own control traffic (acks, nacks, retransmissions) bypasses
 * the taps via sendRaw/deliverDirect.
 */
struct Transport
{
    /** One retained outbound packet awaiting acknowledgment. */
    struct Pending
    {
        Packet packet;
        int retries = 0;
        /** Bumped on every (re)transmission; a timeout event only
         *  acts if its captured generation is still current. */
        std::uint64_t generation = 0;
        /** Armed retransmit timer; cancelled when the packet is
         *  retired so a finished run never waits out dead timeouts. */
        sim::EventQueue::Timer timer;
        /** First-transmission time, for ack round-trip sampling. */
        Cycles sentAt = 0;
    };

    /** Sender + receiver state of one directed (src,dst) channel. */
    struct Channel
    {
        // Sender side.
        std::uint32_t nextSeq = 0;
        std::map<std::uint32_t, Pending> pending;
        // Receiver side.
        std::uint32_t expected = 0;
        std::map<std::uint32_t, Packet> reorder;
    };

    /** Registry handles behind the ReliableStats snapshot. */
    struct Metrics
    {
        obs::Counter dataPackets;
        obs::Counter retransmits;
        obs::Counter acksSent;
        obs::Counter nacksSent;
        obs::Counter duplicatesDropped;
        obs::Counter checksumFailures;
        obs::Counter outOfOrder;
        obs::Counter abandoned;
        obs::Counter retryExhausted;
        obs::Counter degradations;
        obs::Counter deadEndpointDrops;
        obs::Counter routeSuspects;
        obs::Counter rttSumCycles;
        obs::Counter rttSamples;
    };

    Machine &machine;
    const ReliableOptions &opts;
    ReliableStats &stats;
    obs::Tracer *tracer;
    Metrics m;
    /**
     * Channel state keyed on the (src,dst) pairs that have actually
     * carried traffic. A dense nodeCount()² table would be 16.7M
     * Channel structs at 4096 nodes (and its index arithmetic
     * silently overflowed std::size_t first); the active set is
     * bounded by the traffic pattern, not the machine capacity.
     */
    std::unordered_map<std::uint64_t, Channel> channels;

    Transport(Machine &machine, const ReliableOptions &opts,
              ReliableStats &stats)
        : machine(machine), opts(opts), stats(stats),
          tracer(machine.tracer())
    {
        obs::MetricsRegistry &reg = machine.metrics();
        m.dataPackets = reg.counter("rt.reliable.data_packets");
        m.retransmits = reg.counter("rt.reliable.retransmits");
        m.acksSent = reg.counter("rt.reliable.acks_sent");
        m.nacksSent = reg.counter("rt.reliable.nacks_sent");
        m.duplicatesDropped =
            reg.counter("rt.reliable.duplicates_dropped");
        m.checksumFailures =
            reg.counter("rt.reliable.checksum_failures");
        m.outOfOrder = reg.counter("rt.reliable.out_of_order");
        m.abandoned = reg.counter("rt.reliable.abandoned");
        m.retryExhausted =
            reg.counter("rt.reliable.retry_exhausted");
        m.degradations = reg.counter("rt.reliable.degradations");
        m.deadEndpointDrops =
            reg.counter("rt.reliable.dead_endpoint_drops");
        m.routeSuspects = reg.counter("rt.reliable.route_suspects");
        m.rttSumCycles = reg.counter("rt.reliable.rtt_sum_cycles");
        m.rttSamples = reg.counter("rt.reliable.rtt_samples");
        // The cells count one run at a time.
        m.dataPackets.reset();
        m.retransmits.reset();
        m.acksSent.reset();
        m.nacksSent.reset();
        m.duplicatesDropped.reset();
        m.checksumFailures.reset();
        m.outOfOrder.reset();
        m.abandoned.reset();
        m.retryExhausted.reset();
        m.degradations.reset();
        m.deadEndpointDrops.reset();
        m.routeSuspects.reset();
        m.rttSumCycles.reset();
        m.rttSamples.reset();
    }

    /** Materialize the run's ReliableStats from the registry. */
    void
    snapshot()
    {
        stats.dataPackets = m.dataPackets.value();
        stats.retransmits = m.retransmits.value();
        stats.acksSent = m.acksSent.value();
        stats.nacksSent = m.nacksSent.value();
        stats.duplicatesDropped = m.duplicatesDropped.value();
        stats.checksumFailures = m.checksumFailures.value();
        stats.outOfOrder = m.outOfOrder.value();
        stats.abandoned = m.abandoned.value();
        stats.retryExhausted = m.retryExhausted.value();
        stats.degradations = m.degradations.value();
        stats.deadEndpointDrops = m.deadEndpointDrops.value();
        stats.routeSuspects = m.routeSuspects.value();
        stats.rttSumCycles = m.rttSumCycles.value();
        stats.rttSamples = m.rttSamples.value();
        stats.activeChannels = channels.size();
    }

    /** Overflow-proof (src,dst) key: two 32-bit halves, no N² index
     *  arithmetic that could wrap at large node counts. */
    static std::uint64_t
    channelKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst);
    }

    /** Channel state, materialized on first touch. */
    Channel &
    channel(NodeId src, NodeId dst)
    {
        return channels[channelKey(src, dst)];
    }

    /** Disarm every retransmit timer of @p c's pending packets. */
    static void
    cancelPending(Channel &c)
    {
        for (auto &[rseq, entry] : c.pending)
            entry.timer.cancel();
    }

    /** Drop all per-channel state (between phases of a run). */
    void
    reset()
    {
        for (auto &[key, c] : channels)
            cancelPending(c);
        channels.clear();
    }

    Cycles
    timeoutAfter(int retries) const
    {
        double t = static_cast<double>(opts.retransmitTimeout) *
                   std::pow(opts.backoff, retries);
        return static_cast<Cycles>(t);
    }

    void
    scheduleTimeout(Pending &entry, NodeId src, NodeId dst,
                    std::uint32_t rseq, Cycles delay)
    {
        // A NACK-triggered retransmission re-arms while the original
        // timer is still pending; disarm it so the dead event cannot
        // hold the clock hostage at run end.
        entry.timer.cancel();
        std::uint64_t generation = entry.generation;
        entry.timer = machine.events().scheduleAfterCancellable(
            delay, [this, src, dst, rseq, generation]() {
                onTimeout(src, dst, rseq, generation);
            });
    }

    /** Outbound tap: sequence, checksum, retain, arm the timer. */
    bool
    onSend(Packet &p)
    {
        Channel &c = channel(p.src, p.dst);
        p.kind = PacketKind::Data;
        p.rseq = c.nextSeq++;
        sim::sealChecksum(p);
        m.dataPackets.inc();
        Pending &entry = c.pending[p.rseq];
        entry.packet = p;
        entry.sentAt = machine.events().now();
        scheduleTimeout(entry, p.src, p.dst, p.rseq,
                        timeoutAfter(0));
        return true; // network transmits the sealed packet
    }

    void
    noteAbandonedChannel(NodeId src, NodeId dst)
    {
        for (const auto &ch : stats.abandonedChannels)
            if (ch.first == src && ch.second == dst)
                return;
        stats.abandonedChannels.emplace_back(src, dst);
    }

    /**
     * Watchdog: a retransmission timeout is the transport's failure
     * detector. Before spending another retry, ask the topology
     * whether this channel can still deliver at all. A dead endpoint
     * swallows every (re)transmission and a partitioned route has no
     * live path, so in both cases further retries are pointless:
     * drop the channel's pending traffic and let the operation wind
     * down (a checkpointed driver re-plans around the loss).
     * Returns true when the channel was written off.
     */
    bool
    routeDead(Channel &c, NodeId src, NodeId dst)
    {
        sim::Topology &topo = machine.topology();
        if (!topo.anyOutages())
            return false;
        Cycles now = machine.events().now();
        // A flapping component is down *transiently*: it will come
        // back, so retrying (with backoff) is the right call and
        // writing the channel off would lose recoverable traffic.
        if (topo.nodeRecovers(src, now) || topo.nodeRecovers(dst, now))
            return false;
        if (!topo.nodeAlive(src, now) || !topo.nodeAlive(dst, now)) {
            cancelPending(c);
            m.deadEndpointDrops.add(c.pending.size());
            if (tracer)
                tracer->instant(
                    "transport", "dead-endpoint",
                    sim::traceTrack(src, sim::TraceTrack::Net), now,
                    "dst", static_cast<std::uint64_t>(dst),
                    "pending", c.pending.size());
            util::warn("ReliableLayer: endpoint died on channel ",
                       src, "->", dst, "; dropping ",
                       c.pending.size(), " pending packet(s)");
            c.pending.clear();
            return true;
        }
        if (!topo.healthyRoute(src, dst, now).ok) {
            if (topo.anyFlaps())
                return false; // a flapped link may restore the route
            cancelPending(c);
            m.routeSuspects.add(c.pending.size());
            if (tracer)
                tracer->instant(
                    "transport", "route-suspect",
                    sim::traceTrack(src, sim::TraceTrack::Net), now,
                    "dst", static_cast<std::uint64_t>(dst),
                    "pending", c.pending.size());
            util::warn("ReliableLayer: no live route on channel ",
                       src, "->", dst, "; dropping ",
                       c.pending.size(), " pending packet(s)");
            noteAbandonedChannel(src, dst);
            c.pending.clear();
            return true;
        }
        return false;
    }

    void
    retransmit(NodeId src, NodeId dst, std::uint32_t rseq)
    {
        Channel &c = channel(src, dst);
        auto it = c.pending.find(rseq);
        if (it == c.pending.end())
            return; // acknowledged in the meantime
        if (routeDead(c, src, dst))
            return;
        Pending &entry = it->second;
        ++entry.retries;
        if (entry.retries > opts.maxRetries) {
            entry.timer.cancel();
            m.retryExhausted.inc();
            m.abandoned.inc();
            if (tracer) {
                // Policy-relevant event: a controller reading the
                // trace sees budget exhaustion as a first-class
                // decision input, distinct from the transport churn.
                tracer->instant(
                    "policy", "retry-exhausted",
                    sim::traceTrack(src, sim::TraceTrack::Net),
                    machine.events().now(), "dst",
                    static_cast<std::uint64_t>(dst), "budget",
                    static_cast<std::uint64_t>(opts.maxRetries));
                tracer->instant(
                    "transport", "abandon",
                    sim::traceTrack(src, sim::TraceTrack::Net),
                    machine.events().now(), "dst",
                    static_cast<std::uint64_t>(dst), "rseq", rseq);
            }
            noteAbandonedChannel(src, dst);
            util::warn("ReliableLayer: abandoning packet rseq=", rseq,
                       " on channel ", src, "->", dst, " after ",
                       opts.maxRetries, " retries");
            c.pending.erase(it);
            return;
        }
        ++entry.generation;
        entry.timer.cancel();
        m.retransmits.inc();
        if (tracer)
            tracer->instant(
                "transport", "retransmit",
                sim::traceTrack(src, sim::TraceTrack::Net),
                machine.events().now(), "dst",
                static_cast<std::uint64_t>(dst), "rseq", rseq);
        Packet copy = entry.packet;
        scheduleTimeout(entry, src, dst, rseq,
                        timeoutAfter(entry.retries));
        machine.network().sendRaw(std::move(copy));
    }

    void
    onTimeout(NodeId src, NodeId dst, std::uint32_t rseq,
              std::uint64_t generation)
    {
        Channel &c = channel(src, dst);
        auto it = c.pending.find(rseq);
        if (it == c.pending.end())
            return; // acknowledged
        if (it->second.generation != generation)
            return; // a newer transmission armed its own timer
        retransmit(src, dst, rseq);
    }

    void
    sendControl(PacketKind kind, NodeId from, NodeId to,
                std::uint32_t ctrl)
    {
        Packet p;
        p.kind = kind;
        p.src = from;
        p.dst = to;
        p.ctrl = ctrl;
        if (kind == PacketKind::Ack)
            m.acksSent.inc();
        else
            m.nacksSent.inc();
        machine.network().sendRaw(std::move(p));
    }

    /** Cumulative ack: everything below @p upto has been received. */
    void
    onAck(NodeId sender, NodeId receiver, std::uint32_t upto)
    {
        Channel &c = channel(sender, receiver);
        Cycles now = machine.events().now();
        auto it = c.pending.begin();
        while (it != c.pending.end() && it->first < upto) {
            it->second.timer.cancel();
            // Karn's rule: only never-retransmitted packets give an
            // unambiguous round-trip sample (a retransmitted one
            // could be acked for either copy).
            if (it->second.generation == 0) {
                m.rttSumCycles.add(now - it->second.sentAt);
                m.rttSamples.inc();
            }
            it = c.pending.erase(it);
        }
    }

    void
    onNack(NodeId sender, NodeId receiver, std::uint32_t rseq)
    {
        retransmit(sender, receiver, rseq);
    }

    /** Inbound tap; returns false when the transport consumed it. */
    bool
    onArrive(Packet &&p, Cycles time)
    {
        if (p.kind == PacketKind::Ack) {
            // The ack arrived at the data sender (p.dst); the data
            // channel it refers to runs the other way.
            onAck(p.dst, p.src, p.ctrl);
            return false;
        }
        if (p.kind == PacketKind::Nack) {
            onNack(p.dst, p.src, p.ctrl);
            return false;
        }

        Channel &c = channel(p.src, p.dst);
        if (!sim::checksumOk(p)) {
            m.checksumFailures.inc();
            if (tracer)
                tracer->instant(
                    "transport", "checksum-fail",
                    sim::traceTrack(p.dst, sim::TraceTrack::Net),
                    time, "src", static_cast<std::uint64_t>(p.src),
                    "rseq", p.rseq);
            sendControl(PacketKind::Nack, p.dst, p.src, p.rseq);
            return false;
        }
        if (p.rseq < c.expected) {
            // Duplicate of an already-released packet (network dup or
            // retransmission whose ack was lost): re-ack, drop.
            m.duplicatesDropped.inc();
            sendControl(PacketKind::Ack, p.dst, p.src, c.expected);
            return false;
        }
        if (p.rseq > c.expected) {
            m.outOfOrder.inc();
            if (c.reorder.find(p.rseq) != c.reorder.end())
                m.duplicatesDropped.inc();
            else
                c.reorder.emplace(p.rseq, std::move(p));
            // Dup-ack keeps the sender's view of progress current.
            sendControl(PacketKind::Ack, p.dst, p.src, c.expected);
            return false;
        }

        // In order: release to the wrapped layer, then drain every
        // buffered successor that is now in sequence.
        NodeId src = p.src, dst = p.dst;
        machine.network().deliverDirect(std::move(p), time);
        ++c.expected;
        auto next = c.reorder.find(c.expected);
        while (next != c.reorder.end()) {
            machine.network().deliverDirect(std::move(next->second),
                                            time);
            c.reorder.erase(next);
            ++c.expected;
            next = c.reorder.find(c.expected);
        }
        sendControl(PacketKind::Ack, dst, src, c.expected);
        return false;
    }
};

} // namespace

ReliableLayer::ReliableLayer(std::unique_ptr<MessageLayer> inner,
                             ReliableOptions options)
    : inner(std::move(inner)), opts(options)
{
    if (!this->inner)
        util::fatal("ReliableLayer: no inner layer");
    if (opts.maxRetries < 0)
        util::fatal("ReliableLayer: maxRetries must be >= 0");
    if (opts.backoff < 1.0)
        util::fatal("ReliableLayer: backoff must be >= 1");
    if (opts.retransmitTimeout == 0)
        util::fatal("ReliableLayer: retransmitTimeout must be "
                    "positive");
}

std::string
ReliableLayer::name() const
{
    return "reliable+" + inner->name();
}

void
ReliableLayer::setOptions(const ReliableOptions &options)
{
    if (options.maxRetries < 0)
        util::fatal("ReliableLayer: maxRetries must be >= 0");
    if (options.backoff < 1.0)
        util::fatal("ReliableLayer: backoff must be >= 1");
    if (options.retransmitTimeout == 0)
        util::fatal("ReliableLayer: retransmitTimeout must be "
                    "positive");
    opts = options;
}

RunResult
ReliableLayer::run(sim::Machine &machine, const CommOp &op)
{
    counters = ReliableStats{};
    Transport transport(machine, opts, counters);
    sim::Network &net = machine.network();
    net.setSendTap(
        [&transport](Packet &p) { return transport.onSend(p); });
    net.setDeliverTap([&transport](Packet &&p, Cycles time) {
        return transport.onArrive(std::move(p), time);
    });

    RunResult result = inner->run(machine, op);

    bool engine_failed = false;
    for (NodeId n = 0; n < machine.nodeCount(); ++n)
        engine_failed |=
            machine.node(n).depositEngine().adpFailed();

    if (engine_failed && opts.degradeToPacking) {
        // The wrapped layer lost its deposit engine mid-step. Re-run
        // the whole operation through the buffer-packing path, which
        // needs only contiguous deposits; sources are untouched, so
        // the rerun rewrites every destination correctly. The
        // transport stays interposed: the recovery phase runs under
        // the same wire faults.
        util::warn("ReliableLayer: permanent deposit-engine failure "
                   "during '",
                   inner->name(),
                   "'; degrading to the buffer-packing path");
        counters.degraded = true;
        machine.metrics().counter("rt.reliable.degradations").inc();
        if (auto *t = machine.tracer()) {
            t->instant("transport", "degrade", machine.opTrack(),
                       machine.events().now());
            // The style actually changed: a policy-level transition.
            t->instant("policy", "degrade-to-packing",
                       machine.opTrack(), machine.events().now());
        }
        transport.reset();
        PackingLayer fallback(opts.fallback);
        result = fallback.run(machine, op);
        // The packing makespan is measured on the machine's absolute
        // clock, so it already contains the aborted chained phase.
        result.degraded = true;
    }

    transport.snapshot();
    net.setSendTap(nullptr);
    net.setDeliverTap(nullptr);
    return result;
}

std::unique_ptr<ReliableLayer>
makeReliableChained(ReliableOptions options)
{
    return std::make_unique<ReliableLayer>(
        std::make_unique<ChainedLayer>(), options);
}

std::unique_ptr<ReliableLayer>
makeReliablePacking(ReliableOptions options)
{
    return std::make_unique<ReliableLayer>(
        std::make_unique<PackingLayer>(), options);
}

} // namespace ct::rt
