/**
 * @file
 * Communication operations: the compiler-level description of a data
 * transfer step (paper §2.1). A CommOp is a set of flows, each moving
 * a number of words from a source-node walk to a destination-node
 * walk; the runtime layers (chained / buffer-packing / PVM) decide
 * how the flows are executed on the machine.
 */

#ifndef CT_RT_COMM_OP_H
#define CT_RT_COMM_OP_H

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.h"
#include "sim/walk.h"

namespace ct::rt {

using sim::Addr;
using sim::Bytes;
using sim::Cycles;
using sim::NodeId;

/** One point-to-point transfer of a communication step. */
struct Flow
{
    NodeId src = 0;
    NodeId dst = 0;
    /** How the source node reads the data (pattern x). */
    sim::PatternWalk srcWalk;
    /** Where and how the data lands on the destination (pattern y). */
    sim::PatternWalk dstWalk;
    /**
     * For chained transfers the *sender* generates the remote store
     * addresses (§2.1); an indexed destination pattern therefore
     * needs its index array replicated in the sender's memory. For
     * non-indexed destinations this equals dstWalk.
     */
    sim::PatternWalk dstWalkOnSender;
    std::uint64_t words = 0;
};

/** A complete communication step (e.g. one transpose exchange). */
struct CommOp
{
    std::string name = "comm-op";
    std::vector<Flow> flows;

    /** Total payload moved by all flows. */
    Bytes totalBytes() const;

    /** Largest payload sent by any single node. */
    Bytes maxBytesPerSender() const;

    /** Number of nodes that send at least one word. */
    int activeSenders() const;

    /** Traffic demands for congestion analysis. */
    std::vector<sim::TrafficDemand> demands() const;
};

/**
 * Block-ownership remap for failure-aware redistribution. When a
 * node dies, the next live node (in cyclic order) takes over its
 * block ownership: data that should have landed on the dead node is
 * redirected to a spill buffer on the takeover node, so the
 * redistribution still completes and no surviving data is lost.
 */
struct OwnerMap
{
    /** Node count the map covers (0 until bound to a machine). */
    int nodes = 0;

    /**
     * Only the nodes whose ownership moved (dead node -> takeover
     * node); a node absent from this map owns itself. Storing just
     * the exceptions keeps the map O(lost nodes), not O(capacity) --
     * the healthy identity map for an 8192-node machine is empty.
     */
    std::map<NodeId, NodeId> moved;

    /** Every node owns itself (the healthy mapping). */
    static OwnerMap identity(int nodes);

    /**
     * Derive the map from @p machine's liveness at the current event
     * time: dead nodes hand their blocks to the next live node in
     * cyclic order. Fatal when no node is left alive.
     */
    static OwnerMap fromMachine(sim::Machine &machine);

    NodeId of(NodeId n) const
    {
        auto it = moved.find(n);
        return it == moved.end() ? n : it->second;
    }

    bool alive(NodeId n) const { return of(n) == n; }

    /** Number of nodes whose ownership moved. */
    int lostNodes() const { return static_cast<int>(moved.size()); }

    /** True until bound to a machine (no node count yet). */
    bool empty() const { return nodes == 0; }

    bool operator==(const OwnerMap &other) const
    {
        return nodes == other.nodes && moved == other.moved;
    }

    bool operator!=(const OwnerMap &other) const
    {
        return !(*this == other);
    }
};

/**
 * Flows of one (src, dst) pair, as aggregated by the runtime layers:
 * buffer packing packs all of a partner's data into one message
 * stream, and chained transfers switch the annex once per partner.
 */
struct FlowGroup
{
    NodeId src = 0;
    NodeId dst = 0;
    /** Indices into CommOp::flows, in transmission order. */
    std::vector<std::size_t> flows;
    /** Word offset of each flow within the group (plus the total). */
    std::vector<std::uint64_t> prefix;

    std::uint64_t totalWords() const { return prefix.back(); }

    /**
     * Map a group-space word offset to (position within `flows`,
     * offset within that flow).
     */
    std::pair<std::size_t, std::uint64_t>
    locate(std::uint64_t word) const;
};

/**
 * Partition the flows into maximal runs of consecutive flows with
 * the same (src, dst). Builders emit flows grouped by partner, so
 * this recovers the per-partner message streams.
 */
std::vector<FlowGroup> groupFlows(const CommOp &op);

/**
 * The nodes a communication operation actually touches, each mapped
 * to a dense slot so layers can size per-node state O(active
 * endpoints) instead of O(machine capacity). Built once when a run
 * starts and immutable afterwards, so parallel event windows may read
 * it concurrently without synchronization.
 */
class ActiveSet
{
  public:
    ActiveSet() = default;

    /** All distinct sources and destinations of @p groups. */
    explicit ActiveSet(const std::vector<FlowGroup> &groups);

    /** Active node count (== slot count). */
    std::size_t count() const { return ids.size(); }

    /** The active nodes, ascending. */
    const std::vector<NodeId> &nodeList() const { return ids; }

    /** Dense slot of @p node; fatal when the node is not active. */
    std::size_t slot(NodeId node) const;

  private:
    std::vector<NodeId> ids; ///< ascending
    std::unordered_map<NodeId, std::size_t> slots;
};

/**
 * Seed every flow's source elements with deterministic values
 * derived from (flow index, element index), so delivery can be
 * verified bit-exactly.
 */
void seedSources(sim::Machine &machine, const CommOp &op);

/**
 * Check that every destination element holds the value of its source
 * element. Returns the number of mismatched words (0 = success).
 */
std::uint64_t verifyDelivery(sim::Machine &machine, const CommOp &op);

} // namespace ct::rt

#endif // CT_RT_COMM_OP_H
