/**
 * @file
 * Cross-validation of the two TransferProgram backends: every
 * machine x style x legal pattern-pair cell is built once by the
 * style registry and executed by BOTH the analytic backend (the
 * copy-transfer model fed the simulator-measured basic-transfer
 * table) and the simulation backend (the lowered runtime layer on
 * the cycle-level machine). Each row reports the two rates and the
 * relative error; a cell outside the tolerance stated in DESIGN.md
 * (15%) sets model_within_tolerance to 0, which the CI gate checks.
 *
 * The same sweep is available as `ctplan validate`.
 */

#include <cstring>
#include <vector>

#include "bench_util.h"

#include "rt/validation.h"

namespace {

using namespace ct;
using namespace ct::bench;

// Run the sweep once, up front: the rows then just report the cells,
// so one benchmark binary invocation simulates each cell exactly
// once. The 97-cell harness runs through the sweep farm
// (BENCH_THREADS workers); the report is byte-identical for every
// thread count.
const rt::ValidationReport &
report()
{
    static const rt::ValidationReport r = [] {
        rt::ValidationOptions options;
        options.threads = benchThreads();
        return rt::crossValidate(options);
    }();
    return r;
}

void
cellRow(benchmark::State &state, const rt::ValidationCell &cell)
{
    for (auto _ : state) {
    }
    setCounter(state, "model_MBps", cell.modelMBps);
    setCounter(state, "sim_MBps", cell.simMBps);
    setCounter(state, "error_pct", cell.errorPct);
    setCounter(state, "model_within_tolerance", cell.pass ? 1.0 : 0.0);
}

void
registerAll()
{
    for (const rt::ValidationCell &cell : report().cells) {
        std::string name = cell.machineName + "/" + cell.style + "/" +
                           cell.x + "Q" + cell.y;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&cell](benchmark::State &s) { cellRow(s, cell); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    // Emit a machine-readable JSON dump by default so CI can archive
    // the model-vs-simulator comparison; any explicit --benchmark_out
    // flag wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_model_vs_sim.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    ct::bench::runBenchmarks(n, args.data(), "model_vs_sim");
    // The regression gate: fail the binary (and CI) if any cell
    // drifted outside the tolerance.
    return report().allPass ? 0 : 1;
}
