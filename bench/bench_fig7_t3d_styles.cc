/**
 * @file
 * Reproduces Figure 7 (and the §5.1.1/§5.1.2 predictions): throughput
 * of communication operations xQy on the T3D for contiguous, strided
 * and indexed patterns, comparing the buffer-packing and chained
 * implementations. Each row reports the copy-transfer model estimate
 * (model_MBps), the end-to-end simulator measurement (sim_MBps) and,
 * where the paper prints one, the published model value (paper_MBps).
 * Cells run through the sweep farm (BENCH_THREADS workers).
 *
 * Shape to check: chained beats buffer packing for every pattern;
 * contiguous chained reaches about 2.5x buffer packing.
 */

#include "bench_util.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct Row
{
    const char *name;
    P x;
    P y;
    double paperPacking; // §5.1.1 predictions, 0 = not printed
    double paperChained; // §5.1.2 predictions
};

const Row rows[] = {
    {"1Q1", P::contiguous(), P::contiguous(), 27.9, 70.0},
    {"1Q16", P::contiguous(), P::strided(16), 25.4, 38.0},
    {"1Q64", P::contiguous(), P::strided(64), 25.2, 38.0},
    {"16Q1", P::strided(16), P::contiguous(), 18.4, 38.0},
    {"64Q1", P::strided(64), P::contiguous(), 17.1, 0.0},
    {"wQw", P::indexed(), P::indexed(), 14.2, 32.0},
};

ct::bench::SweepCell
styleCell(MachineId machine, const Row &row, core::Style style,
          double paper)
{
    return {benchLabel(style) + "/" + row.name,
            [machine, &row, style, paper]()
                -> std::vector<std::pair<std::string, double>> {
                std::vector<std::pair<std::string, double>> out{
                    {"sim_MBps",
                     exchangeMBps(machine, style, row.x, row.y)},
                    {"model_MBps",
                     modelMBps(machine, style, row.x, row.y)}};
                if (paper > 0.0)
                    out.emplace_back("paper_model_MBps", paper);
                return out;
            }};
}

void
registerAll()
{
    std::vector<SweepCell> cells;
    for (const Row &row : rows) {
        cells.push_back(styleCell(MachineId::T3d, row,
                                  core::Style::BufferPacking,
                                  row.paperPacking));
        cells.push_back(styleCell(MachineId::T3d, row,
                                  core::Style::Chained,
                                  row.paperChained));
    }
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig7_t3d_styles");
}
