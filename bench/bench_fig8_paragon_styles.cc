/**
 * @file
 * Reproduces Figure 8 (and the §5.1.3/§5.1.4 predictions): buffer
 * packing vs chained transfers on the Paragon. The chained receiver
 * is the communication co-processor (0Ry); buffer packing feeds the
 * network through the DMA (1F0) and deposits through the
 * line-transfer unit (0D1). Cells run through the sweep farm
 * (BENCH_THREADS workers).
 */

#include "bench_util.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct Row
{
    const char *name;
    P x;
    P y;
    double paperPacking; // §5.1.3 predictions (0 = not printed)
    double paperChained; // §5.1.4 predictions
};

const Row rows[] = {
    {"1Q1", P::contiguous(), P::contiguous(), 20.7, 52.0},
    {"1Q16", P::contiguous(), P::strided(16), 18.3, 32.0},
    {"1Q64", P::contiguous(), P::strided(64), 16.1, 38.0},
    {"16Q1", P::strided(16), P::contiguous(), 20.7, 42.0},
    {"64Q1", P::strided(64), P::contiguous(), 0.0, 0.0},
    {"wQw", P::indexed(), P::indexed(), 16.2, 36.0},
};

ct::bench::SweepCell
styleCell(const Row &row, core::Style style, double paper)
{
    return {benchLabel(style) + "/" + row.name,
            [&row, style, paper]()
                -> std::vector<std::pair<std::string, double>> {
                std::vector<std::pair<std::string, double>> out{
                    {"sim_MBps",
                     exchangeMBps(MachineId::Paragon, style, row.x,
                                  row.y)},
                    {"model_MBps",
                     modelMBps(MachineId::Paragon, style, row.x,
                               row.y)}};
                if (paper > 0.0)
                    out.emplace_back("paper_model_MBps", paper);
                return out;
            }};
}

void
registerAll()
{
    std::vector<SweepCell> cells;
    for (const Row &row : rows) {
        cells.push_back(styleCell(row, core::Style::BufferPacking,
                                  row.paperPacking));
        cells.push_back(
            styleCell(row, core::Style::Chained, row.paperChained));
    }
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig8_paragon_styles");
}
