/**
 * @file
 * Reproduces Figure 8 (and the §5.1.3/§5.1.4 predictions): buffer
 * packing vs chained transfers on the Paragon. The chained receiver
 * is the communication co-processor (0Ry); buffer packing feeds the
 * network through the DMA (1F0) and deposits through the
 * line-transfer unit (0D1).
 */

#include "bench_util.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct Row
{
    const char *name;
    P x;
    P y;
    double paperPacking; // §5.1.3 predictions (0 = not printed)
    double paperChained; // §5.1.4 predictions
};

const Row rows[] = {
    {"1Q1", P::contiguous(), P::contiguous(), 20.7, 52.0},
    {"1Q16", P::contiguous(), P::strided(16), 18.3, 32.0},
    {"1Q64", P::contiguous(), P::strided(64), 16.1, 38.0},
    {"16Q1", P::strided(16), P::contiguous(), 20.7, 42.0},
    {"64Q1", P::strided(64), P::contiguous(), 0.0, 0.0},
    {"wQw", P::indexed(), P::indexed(), 16.2, 36.0},
};

void
styleRow(benchmark::State &state, const Row &row, core::Style style,
         double paper)
{
    double sim = 0.0;
    for (auto _ : state)
        sim = exchangeMBps(MachineId::Paragon, style, row.x, row.y);
    setCounter(state, "sim_MBps", sim);
    setCounter(state, "model_MBps",
               modelMBps(MachineId::Paragon, style, row.x, row.y));
    if (paper > 0.0)
        setCounter(state, "paper_model_MBps", paper);
}

void
registerAll()
{
    for (const Row &row : rows) {
        benchmark::RegisterBenchmark(
            (benchLabel(core::Style::BufferPacking) + "/" + row.name)
                .c_str(),
            [&row](benchmark::State &s) {
                styleRow(s, row, core::Style::BufferPacking,
                         row.paperPacking);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            (benchLabel(core::Style::Chained) + "/" + row.name)
                .c_str(),
            [&row](benchmark::State &s) {
                styleRow(s, row, core::Style::Chained,
                         row.paperChained);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig8_paragon_styles");
}
