/**
 * @file
 * Shared helpers for the benchmark harness. Every bench binary
 * regenerates one table or figure of the paper: rows appear as
 * google-benchmark counters (sim_MBps for simulator measurements,
 * model_MBps for copy-transfer-model estimates, paper_MBps for the
 * value printed in the paper), so the "who wins and by how much"
 * comparison is visible directly in the benchmark report.
 *
 * Both directions run from the same TransferProgram IR: the style
 * registry builds the program, the analytic backend rates it, the
 * simulation backend lowers it onto a runtime layer and executes it.
 *
 * The simulator is deterministic, so benchmarks run one iteration.
 */

#ifndef CT_BENCH_BENCH_UTIL_H
#define CT_BENCH_BENCH_UTIL_H

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/strategies.h"
#include "rt/chained_layer.h"
#include "rt/packing_layer.h"
#include "rt/sim_backend.h"
#include "rt/workload.h"

namespace ct::bench {

using core::AccessPattern;
using core::MachineId;
using core::Style;

/**
 * Lower @p style's TransferProgram onto a runtime layer for executing
 * arbitrary CommOps on @p machine. The program is built for 1Q1; the
 * lowering shape (staging copies, software costs, engine use) does
 * not depend on the patterns.
 */
std::unique_ptr<rt::MessageLayer> makeStyleLayer(MachineId machine,
                                                 Style style);

/**
 * Short label used in bench row names: the style's registry key,
 * except the historical "packing" for buffer-packing.
 */
std::string benchLabel(Style style);

/**
 * Per-node throughput of a pairwise exchange xQy executed with the
 * given style's program on a small partition of the machine (every
 * node both sends and receives, as in the paper's measurements).
 * Verifies delivery and aborts on corruption.
 */
double exchangeMBps(MachineId machine, Style style, AccessPattern x,
                    AccessPattern y, std::uint64_t words = 1 << 14);

/** Copy-transfer model estimate from the paper's parameter tables. */
double modelMBps(MachineId machine, core::Style style,
                 AccessPattern x, AccessPattern y);

/**
 * Attach a rate counter to the current benchmark row and record it
 * in the run's summary (see runBenchmarks). Every value recorded
 * this way is derived from the deterministic simulator or the
 * analytic model -- never from wall-clock time -- so the summary is
 * bit-stable across hosts and fit for committed baselines.
 */
void setCounter(benchmark::State &state, const char *name,
                double value);

/**
 * Record one summary counter directly. Thread-safe: sweep workers
 * record rows concurrently and the summary stays canonical because
 * rows are keyed (and dumped) sorted by row name, independent of
 * recording order. setCounter() funnels into the same store when the
 * report is captured.
 */
void recordSummaryRow(const std::string &row,
                      const std::string &counter, double value);

/**
 * One sweep cell: the registered benchmark row name (including any
 * "/arg" suffix the legacy ->Arg() registration would have produced)
 * and the closure computing its summary counters. The closure runs on
 * a farm worker, so it must build all simulator state privately and
 * return plain values (DESIGN.md §14).
 */
struct SweepCell
{
    std::string name;
    std::function<std::vector<std::pair<std::string, double>>()> run;
};

/**
 * Queue @p cells for the farmed sweep and register one benchmark row
 * per cell. runBenchmarks() fans the cells across a sweep::Farm
 * (worker count from BENCH_THREADS, default serial) BEFORE
 * google-benchmark runs; each registered row then republishes its
 * precomputed counters via setCounter(), so row names, console
 * report and summary are byte-identical to the legacy serial loops
 * for every thread count. @p unit sets the console time unit of the
 * registered rows (cosmetic only).
 */
void registerSweep(std::vector<SweepCell> cells,
                   std::optional<benchmark::TimeUnit> unit =
                       std::nullopt);

/**
 * Farm worker count from BENCH_THREADS ([1, 256]; absent or 1 = 0,
 * i.e. serial inline). Fatal on malformed values, mirroring ctplan's
 * --threads policy.
 */
int benchThreads();

/**
 * Standard bench main body: initialize google-benchmark, run the
 * registered benchmarks, then write the counters recorded via
 * setCounter() as a summary JSON
 *
 *   {"bench": "<benchName>", "rows": {"<row>": {"<counter>": v}}}
 *
 * to BENCH_summary.json (override the path with the BENCH_SUMMARY
 * environment variable; an empty value disables the dump).
 * tools/bench_compare.py diffs these summaries against the committed
 * baselines in bench/baselines/. Counters whose name starts with
 * "wall_" are host wall-clock derived and excluded from the summary
 * (archived in the --benchmark_out JSON only), so baselines stay
 * bit-stable across hosts.
 */
int runBenchmarks(int argc, char **argv, const char *benchName);

} // namespace ct::bench

#endif // CT_BENCH_BENCH_UTIL_H
