/**
 * @file
 * Shared helpers for the benchmark harness. Every bench binary
 * regenerates one table or figure of the paper: rows appear as
 * google-benchmark counters (sim_MBps for simulator measurements,
 * model_MBps for copy-transfer-model estimates, paper_MBps for the
 * value printed in the paper), so the "who wins and by how much"
 * comparison is visible directly in the benchmark report.
 *
 * The simulator is deterministic, so benchmarks run one iteration.
 */

#ifndef CT_BENCH_BENCH_UTIL_H
#define CT_BENCH_BENCH_UTIL_H

#include <benchmark/benchmark.h>

#include "core/strategies.h"
#include "rt/chained_layer.h"
#include "rt/packing_layer.h"
#include "rt/workload.h"

namespace ct::bench {

using core::AccessPattern;
using core::MachineId;

/** Which runtime layer executes an operation. */
enum class LayerKind {
    Chained,
    Packing,
    Pvm,
};

/** Layer factory. */
std::unique_ptr<rt::MessageLayer> makeLayer(LayerKind kind);

/** Name used in reports. */
std::string layerName(LayerKind kind);

/**
 * Per-node throughput of a pairwise exchange xQy executed with the
 * given layer on a small partition of the machine (every node both
 * sends and receives, as in the paper's measurements). Verifies
 * delivery and aborts on corruption.
 */
double exchangeMBps(MachineId machine, LayerKind kind,
                    AccessPattern x, AccessPattern y,
                    std::uint64_t words = 1 << 14);

/** Copy-transfer model estimate from the paper's parameter tables. */
double modelMBps(MachineId machine, core::Style style,
                 AccessPattern x, AccessPattern y);

/** Attach a rate counter to the current benchmark row. */
inline void
setCounter(benchmark::State &state, const char *name, double value)
{
    state.counters[name] = benchmark::Counter(value);
}

} // namespace ct::bench

#endif // CT_BENCH_BENCH_UTIL_H
