/**
 * @file
 * Reproduces Figure 4: throughput of strided local memory-to-memory
 * transfers as a function of the stride, separately for strided
 * loads (sC1) and strided stores (1Cs), on both machines. The series
 * shape to check: on the T3D strided stores stay well above strided
 * loads (write-back queue); on the Paragon strided loads win
 * (pipelined loads).
 *
 * The grid (machine x direction x stride) runs through the sweep
 * farm: BENCH_THREADS workers, rows merged in canonical order, names
 * and counters byte-identical to the legacy serial loop.
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
registerAll()
{
    struct MachineEntry
    {
        const char *name;
        MachineId id;
    };
    std::vector<SweepCell> cells;
    for (MachineEntry m : {MachineEntry{"T3D", MachineId::T3d},
                           MachineEntry{"Paragon",
                                        MachineId::Paragon}}) {
        for (bool loads : {true, false}) {
            for (int stride : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
                auto id = m.id;
                auto s = static_cast<std::uint32_t>(stride);
                std::string name =
                    std::string(m.name) +
                    (loads ? "/strided_loads_sC1/"
                           : "/strided_stores_1Cs/") +
                    std::to_string(stride);
                cells.push_back(
                    {std::move(name),
                     [id, s, loads]()
                         -> std::vector<
                             std::pair<std::string, double>> {
                         auto cfg = sim::configFor(id);
                         double mbps =
                             loads ? sim::measureLocalCopy(
                                         cfg, P::strided(s),
                                         P::contiguous())
                                   : sim::measureLocalCopy(
                                         cfg, P::contiguous(),
                                         P::strided(s));
                         return {{"sim_MBps", mbps}};
                     }});
            }
        }
    }
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig4_stride_sweep");
}
