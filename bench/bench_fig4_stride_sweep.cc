/**
 * @file
 * Reproduces Figure 4: throughput of strided local memory-to-memory
 * transfers as a function of the stride, separately for strided
 * loads (sC1) and strided stores (1Cs), on both machines. The series
 * shape to check: on the T3D strided stores stay well above strided
 * loads (write-back queue); on the Paragon strided loads win
 * (pipelined loads).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
strideLoads(benchmark::State &state, MachineId machine)
{
    auto stride = static_cast<std::uint32_t>(state.range(0));
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state)
        mbps = sim::measureLocalCopy(cfg, P::strided(stride),
                                     P::contiguous());
    setCounter(state, "sim_MBps", mbps);
}

void
strideStores(benchmark::State &state, MachineId machine)
{
    auto stride = static_cast<std::uint32_t>(state.range(0));
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state)
        mbps = sim::measureLocalCopy(cfg, P::contiguous(),
                                     P::strided(stride));
    setCounter(state, "sim_MBps", mbps);
}

void
registerAll()
{
    struct MachineEntry
    {
        const char *name;
        MachineId id;
    };
    for (MachineEntry m : {MachineEntry{"T3D", MachineId::T3d},
                           MachineEntry{"Paragon",
                                        MachineId::Paragon}}) {
        auto id = m.id;
        auto *loads = benchmark::RegisterBenchmark(
            (std::string(m.name) + "/strided_loads_sC1").c_str(),
            [id](benchmark::State &s) { strideLoads(s, id); });
        auto *stores = benchmark::RegisterBenchmark(
            (std::string(m.name) + "/strided_stores_1Cs").c_str(),
            [id](benchmark::State &s) { strideStores(s, id); });
        for (auto *b : {loads, stores}) {
            b->Iterations(1)->Unit(benchmark::kMillisecond);
            for (int stride : {1, 2, 4, 8, 16, 32, 64, 128, 256})
                b->Arg(stride);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig4_stride_sweep");
}
