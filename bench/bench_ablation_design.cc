/**
 * @file
 * Ablations of the design choices DESIGN.md calls out. Each pair of
 * rows measures a basic transfer or end-to-end operation with one
 * mechanism enabled and disabled:
 *
 *  - the T3D write-back queue (strided stores),
 *  - the T3D read-ahead circuitry (contiguous loads; the paper
 *    reports ~60% gain),
 *  - the Paragon pipelined loads (the paper reports a 30-40% loss
 *    when they cannot be used),
 *  - deposit-engine flexibility (any-pattern annex vs a
 *    contiguous-only DMA forces packing for strided transfers),
 *  - the Paragon bus arbitration penalty for fine-grain
 *    processor/co-processor interleaving (up to 50% per the paper).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

double
copyRate(const sim::MachineConfig &cfg, P x, P y)
{
    return sim::measureLocalCopy(cfg, x, y);
}

void
wbq(benchmark::State &state, bool enabled)
{
    auto cfg = sim::t3dConfig();
    if (!enabled)
        cfg.node.memory.writeBuffer.entries = 0;
    double mbps = 0.0;
    for (auto _ : state)
        mbps = copyRate(cfg, P::contiguous(), P::strided(64));
    setCounter(state, "sim_MBps", mbps);
}

void
readAhead(benchmark::State &state, bool enabled)
{
    auto cfg = sim::t3dConfig();
    cfg.node.memory.readAhead.enabled = enabled;
    double mbps = 0.0;
    for (auto _ : state)
        mbps = copyRate(cfg, P::contiguous(), P::contiguous());
    setCounter(state, "sim_MBps", mbps);
}

void
pipelinedLoads(benchmark::State &state, bool enabled)
{
    auto cfg = sim::paragonConfig();
    cfg.node.memory.loadPipeline.enabled = enabled;
    double mbps = 0.0;
    for (auto _ : state)
        mbps = copyRate(cfg, P::strided(16), P::contiguous());
    setCounter(state, "sim_MBps", mbps);
}

void
depositFlexibility(benchmark::State &state, bool any_pattern)
{
    // With a flexible engine the strided transfer can be chained;
    // a contiguous-only engine forces buffer packing.
    double mbps = 0.0;
    for (auto _ : state) {
        if (any_pattern) {
            mbps = exchangeMBps(MachineId::T3d, core::Style::Chained,
                                P::contiguous(), P::strided(64));
        } else {
            mbps = exchangeMBps(MachineId::T3d,
                                core::Style::BufferPacking,
                                P::contiguous(), P::strided(64));
        }
    }
    setCounter(state, "sim_MBps", mbps);
}

void
busArbitration(benchmark::State &state, bool penalized)
{
    auto cfg = sim::paragonConfig();
    cfg.node.memory.bus.arbitrationCycles = penalized ? 12 : 0;
    sim::Machine m(cfg);
    auto op = rt::pairExchange(m, P::strided(16), P::strided(16),
                               1 << 14);
    rt::seedSources(m, op);
    double mbps = 0.0;
    for (auto _ : state) {
        rt::ChainedLayer layer;
        auto r = layer.run(m, op);
        mbps = r.perNodeMBps(m);
    }
    setCounter(state, "sim_MBps", mbps);
}

void
chunkSize(benchmark::State &state)
{
    // The pipelining granularity of the runtime layers is a compile
    // time constant; this row documents the configured value next to
    // the throughput it achieves.
    double mbps = 0.0;
    for (auto _ : state)
        mbps = exchangeMBps(MachineId::T3d, core::Style::Chained,
                            P::contiguous(), P::strided(64));
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "chunk_words",
               static_cast<double>(rt::layerChunkWords));
    setCounter(state, "credits",
               static_cast<double>(rt::layerCredits));
}

void
registerAll()
{
    auto reg = [](const char *name, auto fn, bool flag) {
        benchmark::RegisterBenchmark(
            name, [fn, flag](benchmark::State &s) { fn(s, flag); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    };
    reg("t3d_wbq/on", wbq, true);
    reg("t3d_wbq/off", wbq, false);
    reg("t3d_read_ahead/on", readAhead, true);
    reg("t3d_read_ahead/off", readAhead, false);
    reg("paragon_pipelined_loads/on", pipelinedLoads, true);
    reg("paragon_pipelined_loads/off", pipelinedLoads, false);
    reg("deposit_engine/any_pattern", depositFlexibility, true);
    reg("deposit_engine/contiguous_only", depositFlexibility, false);
    reg("paragon_bus_arbitration/penalized", busArbitration, true);
    reg("paragon_bus_arbitration/free", busArbitration, false);
    benchmark::RegisterBenchmark("layer_chunking", chunkSize)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "ablation_design");
}
