/**
 * @file
 * Extension bench (not a paper table): the irregular gather
 * A[1:n] = B[X[1:n]] of the paper's Figure 2, swept over the
 * locality of the index permutation. Communication volume shrinks
 * linearly with locality while the per-partner overheads stay, so
 * effective throughput of the *communication step* falls as the
 * halo gets thinner -- the regime in which the FEM kernel of Table 6
 * lives (its halo moves only a fraction of the local data).
 */

#include "apps/irregular.h"
#include "bench_util.h"

namespace {

using namespace ct;
using namespace ct::bench;

void
gatherRow(benchmark::State &state, core::Style style)
{
    double locality =
        static_cast<double>(state.range(0)) / 100.0;
    double mbps = 0.0;
    std::uint64_t remote = 0;
    for (auto _ : state) {
        sim::Machine m(sim::t3dConfig({2, 2, 2}));
        apps::IrregularConfig cfg;
        cfg.n = 1 << 14;
        cfg.locality = locality;
        auto w = apps::IrregularGatherWorkload::create(m, cfg);
        remote = w.remoteWords();
        if (w.op().flows.empty()) {
            mbps = 0.0; // fully local: nothing to communicate
            continue;
        }
        auto layer = makeStyleLayer(MachineId::T3d, style);
        auto r = layer->run(m, w.op());
        if (w.verify(m) != 0)
            state.SkipWithError("corrupted gather");
        mbps = r.perNodeMBps(m);
    }
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "remote_words",
               static_cast<double>(remote));
}

void
registerAll()
{
    for (core::Style style :
         {core::Style::Chained, core::Style::BufferPacking}) {
        auto *b = benchmark::RegisterBenchmark(
            (std::string("gather_locality_pct/") + benchLabel(style))
                .c_str(),
            [style](benchmark::State &s) { gatherRow(s, style); });
        b->Iterations(1)->Unit(benchmark::kMillisecond);
        for (int pct : {0, 25, 50, 75, 90})
            b->Arg(pct);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "ext_irregular");
}
