/**
 * @file
 * Extension bench (not a paper table): closed-loop adaptation versus
 * a static reliable chained layer as the wire degrades. Each drop
 * row runs the same pair-exchange twice from identical machine
 * configurations -- once under the static transport, once in
 * round-sliced adaptive mode (rt::runAdaptiveExchange) -- and
 * reports both makespans. Past the retune break-even the adaptive
 * run must win: the controller halves the retransmit timeout (RTT-
 * floored) so round-tail timeout stalls stop dominating; below it
 * the controller holds and pays only the round-slicing premium.
 *
 * A chaos row replays a seed-derived fault campaign twice and
 * publishes the controller fingerprint halves; any nondeterminism in
 * the decision loop shows up as a baseline diff, so the perf gate
 * doubles as a replay bit-identity gate.
 */

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "rt/collectives.h"
#include "rt/reliable_layer.h"
#include "rt/resilience.h"
#include "rt/workload.h"
#include "sim/chaos.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

sim::MachineConfig
faultedConfig(double drop)
{
    auto cfg = sim::t3dConfig({2, 1, 1});
    if (drop > 0.0)
        cfg.faults = sim::FaultSpec::parse(
            "drop=" + std::to_string(drop) + ",seed=1");
    return cfg;
}

rt::AdaptiveResult
runAdaptive(const sim::MachineConfig &cfg, std::uint64_t words,
            int rounds)
{
    sim::Machine m(cfg);
    auto op =
        rt::pairExchange(m, P::contiguous(), P::contiguous(), words);
    rt::ResilienceController controller(
        cfg, P::contiguous(), P::contiguous());
    return rt::runAdaptiveExchange(m, op, controller, rounds);
}

void
adaptiveRow(benchmark::State &state)
{
    // drop rate in 1/10000ths so the integer Args stay readable.
    double drop = static_cast<double>(state.range(0)) / 10000.0;
    auto words = static_cast<std::uint64_t>(state.range(1));

    double static_makespan = 0.0;
    double adaptive_makespan = 0.0;
    double switches = 0.0;
    double retunes = 0.0;
    double adaptive_wins = 0.0;
    for (auto _ : state) {
        auto cfg = faultedConfig(drop);

        sim::Machine ms(cfg);
        auto op = rt::pairExchange(ms, P::contiguous(),
                                   P::contiguous(), words);
        rt::seedSources(ms, op);
        auto layer = rt::makeReliableChained();
        auto r = layer->run(ms, op);
        if (rt::verifyDelivery(ms, op) != 0)
            state.SkipWithError("static run corrupted delivery");

        auto ar = runAdaptive(cfg, words, 4);
        if (ar.corruptWords != 0)
            state.SkipWithError("adaptive run corrupted delivery");

        static_makespan = static_cast<double>(r.makespan);
        adaptive_makespan = static_cast<double>(ar.makespan);
        switches = static_cast<double>(ar.styleSwitches);
        retunes = static_cast<double>(ar.transportAdaptations);
        adaptive_wins = ar.makespan < r.makespan ? 1.0 : 0.0;
    }
    setCounter(state, "static_makespan", static_makespan);
    setCounter(state, "adaptive_makespan", adaptive_makespan);
    setCounter(state, "style_switches", switches);
    setCounter(state, "transport_retunes", retunes);
    setCounter(state, "adaptive_wins", adaptive_wins);
}

void
chaosReplayRow(benchmark::State &state)
{
    auto words = static_cast<std::uint64_t>(state.range(0));
    double makespan = 0.0;
    double fp_lo = 0.0;
    double fp_hi = 0.0;
    double replay_identical = 0.0;
    for (auto _ : state) {
        auto cfg = faultedConfig(0.02);
        cfg.chaos = sim::ChaosSchedule::parse(
            "seed:7;ramp:drop:0:0.08:0:400000;"
            "step:corrupt:0.01:100000");

        auto a = runAdaptive(cfg, words, 4);
        auto b = runAdaptive(cfg, words, 4);
        if (a.corruptWords != 0 || b.corruptWords != 0)
            state.SkipWithError("chaos run corrupted delivery");

        makespan = static_cast<double>(a.makespan);
        fp_lo = static_cast<double>(a.fingerprint & 0xffffffffu);
        fp_hi = static_cast<double>(a.fingerprint >> 32);
        replay_identical = (a.fingerprint == b.fingerprint &&
                            a.makespan == b.makespan)
                               ? 1.0
                               : 0.0;
    }
    setCounter(state, "makespan", makespan);
    setCounter(state, "fingerprint_lo32", fp_lo);
    setCounter(state, "fingerprint_hi32", fp_hi);
    setCounter(state, "replay_identical", replay_identical);
}

void
registerAll()
{
    auto *b = benchmark::RegisterBenchmark(
        "adaptive_vs_static/drop_x10000/words", adaptiveRow);
    b->Iterations(1)->Unit(benchmark::kMillisecond);
    // 0, 0.1%, 1%, 5%, 10% packet loss.
    for (std::int64_t drop : {0, 10, 100, 500, 1000})
        b->Args({drop, 8192});

    auto *c = benchmark::RegisterBenchmark(
        "adaptive_chaos_replay/words", chaosReplayRow);
    c->Iterations(1)->Unit(benchmark::kMillisecond);
    c->Arg(4096);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    // Emit a machine-readable JSON dump by default so CI can archive
    // the adaptive-vs-static curves; any explicit --benchmark_out
    // flag wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_adaptive.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    return ct::bench::runBenchmarks(n, args.data(), "ext_adaptive");
}
