/**
 * @file
 * Extension bench (not a paper table): the Table 6 application
 * kernels on the simulated Paragon. The paper ran its application
 * measurements only on the T3D ("it is easier for us to explore
 * architectural aspects on this machine", §6); this bench answers
 * the obvious follow-up question with the calibrated Paragon model.
 *
 * Finding: at 64 nodes chained transfers LOSE to buffer packing on
 * all three kernels. This is the paper's own §5.1.4 caveat playing
 * out: the chained receive path needs the co-processor to share the
 * memory bus with the sending processor at single-word granularity,
 * and the arbitration cost eats the copy savings -- "if there is a
 * heavy penalty for bus arbitration between processor or
 * co-processor, the second processor would be unable to help".
 * Packing keeps the DMA feeding the wire and the bus single-owner.
 */

#include <array>
#include <functional>

#include "apps/fem.h"
#include "apps/sor.h"
#include "apps/transpose.h"
#include "bench_util.h"

#include "util/logging.h"

namespace {

using namespace ct;
using namespace ct::bench;

using Verify = std::function<std::uint64_t(sim::Machine &)>;
using OpAndVerify = std::pair<rt::CommOp, Verify>;

sim::MachineConfig
machineConfig()
{
    return sim::paragonConfig({8, 8}); // 64 nodes
}

OpAndVerify
makeTranspose(sim::Machine &m)
{
    apps::TransposeConfig cfg;
    cfg.n = 1024;
    cfg.variant = apps::TransposeVariant::StridedLoads; // Paragon's
    auto w = std::make_shared<apps::TransposeWorkload>(
        apps::TransposeWorkload::create(m, cfg));
    w->fillInput(m);
    return {w->op(),
            [w](sim::Machine &machine) { return w->verify(machine); }};
}

OpAndVerify
makeFem(sim::Machine &m)
{
    apps::FemConfig cfg;
    cfg.nx = 96;
    cfg.ny = 96;
    cfg.nz = 28;
    auto w = std::make_shared<apps::FemWorkload>(
        apps::FemWorkload::create(m, cfg));
    rt::seedSources(m, w->op());
    rt::CommOp op = w->op();
    return {op, [op](sim::Machine &machine) {
                return rt::verifyDelivery(machine, op);
            }};
}

OpAndVerify
makeSor(sim::Machine &m)
{
    apps::SorConfig cfg;
    cfg.n = 256;
    auto w = std::make_shared<apps::SorWorkload>(
        apps::SorWorkload::create(m, cfg));
    w->fillInterior(m);
    return {w->op(),
            [w](sim::Machine &machine) { return w->verify(machine); }};
}

void
kernelRow(benchmark::State &state,
          OpAndVerify (*make)(sim::Machine &), core::Style style)
{
    double sim = 0.0;
    for (auto _ : state) {
        sim::Machine m(machineConfig());
        auto [op, verify] = make(m);
        auto layer = makeStyleLayer(MachineId::Paragon, style);
        auto r = layer->run(m, op);
        if (verify(m) != 0)
            util::fatal("bench_ext_paragon_apps: corrupted result");
        sim = r.perNodeMBps(m);
    }
    setCounter(state, "sim_MBps", sim);
}

void
registerAll()
{
    struct Kernel
    {
        const char *name;
        OpAndVerify (*make)(sim::Machine &);
    };
    const Kernel kernels[] = {
        {"transpose", makeTranspose},
        {"fem", makeFem},
        {"sor", makeSor},
    };
    for (const Kernel &kernel : kernels) {
        for (core::Style style :
             {core::Style::BufferPacking, core::Style::Chained}) {
            std::string name =
                std::string(kernel.name) + "/" + benchLabel(style);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [&kernel, style](benchmark::State &s) {
                    kernelRow(s, kernel.make, style);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "ext_paragon_apps");
}
