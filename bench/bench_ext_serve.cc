/**
 * @file
 * Extension bench (not a paper table): the planning service under a
 * deterministic request storm, clean versus self-chaos. Each row
 * pushes the same generated NDJSON stream through a 4-worker
 * PlanService twice and records the response-status census plus a
 * replay bit-identity flag, so the perf gate doubles as a
 * crash-calm-contract gate: a dropped response, a mislabelled
 * fidelity tier, a chaos reject drifting to a different request, or
 * any nondeterminism in the response log shows up as a baseline
 * diff. All counters are response-content censuses -- pure functions
 * of the request stream and service config -- never cache hit/miss
 * or timing state, which scheduling is allowed to vary.
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "svc/service.h"
#include "util/rng.h"

namespace {

using namespace ct;

/** Deterministic mixed-op request stream (ids 0..count-1). */
std::vector<std::string>
makeStorm(std::uint64_t seed, int count)
{
    util::Rng rng(seed);
    const char *machines[] = {"t3d", "paragon"};
    const char *patterns[] = {"1Q64", "1Q4", "wQw", "1Q1"};
    std::vector<std::string> lines;
    lines.reserve(count);
    for (int i = 0; i < count; ++i) {
        std::uint64_t dice = rng.nextBelow(100);
        std::string line;
        if (dice < 45) {
            line = R"({"id":)" + std::to_string(i) +
                   R"(,"op":"plan","machine":")" +
                   machines[rng.nextBelow(2)] + R"(","xqy":")" +
                   patterns[rng.nextBelow(4)] + "\"}";
        } else if (dice < 75) {
            std::uint64_t budget_dice = rng.nextBelow(3);
            std::uint64_t budget = budget_dice == 0 ? 0
                                   : budget_dice == 1
                                       ? 200 + rng.nextBelow(500)
                                       : 4096 + rng.nextBelow(2048);
            line = R"({"id":)" + std::to_string(i) +
                   R"(,"op":"sim","machine":")" +
                   machines[rng.nextBelow(2)] + R"(","xqy":")" +
                   patterns[rng.nextBelow(4)] + R"(","words":)" +
                   std::to_string(512u << rng.nextBelow(2));
            if (budget)
                line += R"(,"budget":)" + std::to_string(budget);
            line += "}";
        } else if (dice < 92) {
            line = R"({"id":)" + std::to_string(i) +
                   R"(,"op":"health"})";
        } else {
            // malformed on purpose: answered with an in-band error
            line = R"({"id":)" + std::to_string(i) +
                   R"(,"op":"sim","machine":"cm5","xqy":"1Q1"})";
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

std::string
runOnce(const std::vector<std::string> &lines,
        const svc::ServiceOptions &opts, std::uint64_t census[4])
{
    std::string log;
    svc::PlanService service(
        opts, [&](const svc::ServiceResponse &resp) {
            ++census[static_cast<int>(resp.status)];
            log += resp.line;
            log += '\n';
        });
    service.start();
    for (const std::string &line : lines)
        service.submit(line);
    service.stop();
    return log;
}

void
serveRow(benchmark::State &state)
{
    bool with_chaos = state.range(0) != 0;
    const int n = 160;

    std::uint64_t census[4] = {0, 0, 0, 0};
    double replay_identical = 0.0;
    for (auto _ : state) {
        std::vector<std::string> lines = makeStorm(1995, n);
        svc::ServiceOptions opts;
        opts.workers = 4;
        // Capacity >= storm length: rejects come only from the
        // deterministic satq windows, keeping the census replayable.
        opts.queueCapacity = n;
        opts.cacheCapacity = 64;
        if (with_chaos) {
            std::string error;
            auto chaos = svc::SvcChaos::tryParse(
                "seed:13;stall:0.05:1;flip:0.3;satq:40:10", &error);
            if (!chaos)
                state.SkipWithError(error.c_str());
            else
                opts.chaos = *chaos;
        }

        census[0] = census[1] = census[2] = census[3] = 0;
        std::string first = runOnce(lines, opts, census);
        std::uint64_t replay_census[4] = {0, 0, 0, 0};
        std::string second = runOnce(lines, opts, replay_census);
        replay_identical = first == second ? 1.0 : 0.0;
    }
    using bench::setCounter;
    setCounter(state, "responses_ok",
               static_cast<double>(
                   census[static_cast<int>(svc::Status::Ok)]));
    setCounter(state, "responses_degraded",
               static_cast<double>(
                   census[static_cast<int>(svc::Status::Degraded)]));
    setCounter(state, "responses_rejected",
               static_cast<double>(
                   census[static_cast<int>(svc::Status::Rejected)]));
    setCounter(state, "responses_error",
               static_cast<double>(
                   census[static_cast<int>(svc::Status::Error)]));
    setCounter(state, "replay_identical", replay_identical);
}

void
registerAll()
{
    auto *b = benchmark::RegisterBenchmark("serve_storm/chaos",
                                           serveRow);
    b->Iterations(1)->Unit(benchmark::kMillisecond);
    b->Arg(0); // clean
    b->Arg(1); // self-chaos: stalls + cache flips + satq rejects
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    // Emit a machine-readable JSON dump by default so CI can archive
    // the serve-storm census; any explicit --benchmark_out flag wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_serve.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    return ct::bench::runBenchmarks(n, args.data(), "ext_serve");
}
