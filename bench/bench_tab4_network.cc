/**
 * @file
 * Reproduces Table 4: network bandwidth (MB/s) as a function of a
 * fixed overall congestion (1, 2, 4), for data-only (Nd) and
 * address-data-pair (Nadp) framing, on both machines. The shape to
 * check: bandwidth halves per congestion doubling, and address-data
 * pairs cost roughly half the payload bandwidth. Cells run through
 * the sweep farm (BENCH_THREADS workers).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;

void
registerAll()
{
    // Paper values: T3D Nd 142/69/35, Nadp 62/38/20;
    //               Paragon Nd 176/90/44, Nadp 88/45/22.
    const double paper[2][2][3] = {
        {{142, 69, 35}, {62, 38, 20}},
        {{176, 90, 44}, {88, 45, 22}},
    };
    struct MachineEntry
    {
        const char *name;
        MachineId id;
        int index;
    };
    const MachineEntry machines[] = {
        {"T3D", MachineId::T3d, 0},
        {"Paragon", MachineId::Paragon, 1},
    };
    const int congestions[] = {1, 2, 4};
    std::vector<SweepCell> cells;
    for (const auto &m : machines) {
        for (int fi = 0; fi < 2; ++fi) {
            auto framing = fi == 0 ? sim::Framing::DataOnly
                                   : sim::Framing::AddrDataPair;
            const char *fname = fi == 0 ? "Nd" : "Nadp";
            for (int ci = 0; ci < 3; ++ci) {
                int congestion = congestions[ci];
                double paper_value = paper[m.index][fi][ci];
                auto id = m.id;
                cells.push_back(
                    {std::string(m.name) + "/" + fname + "@" +
                         std::to_string(congestion),
                     [id, framing, congestion, paper_value]()
                         -> std::vector<
                             std::pair<std::string, double>> {
                         auto cfg = sim::configFor(id);
                         return {{"sim_MBps",
                                  sim::measureNetwork(cfg, framing,
                                                      congestion)},
                                 {"paper_MBps", paper_value}};
                     }});
            }
        }
    }
    registerSweep(std::move(cells));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab4_network");
}
