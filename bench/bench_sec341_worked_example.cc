/**
 * @file
 * Reproduces the worked example of §3.4.1: buffer-packing message
 * passing for the transpose of a 1024 x 1024 matrix on a 64-node
 * T3D partition (operation 1Q1024).
 *
 * Paper: model estimate 25.0 MB/s, measured 20.0 MB/s per node.
 */

#include "apps/transpose.h"
#include "bench_util.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
workedExample(benchmark::State &state)
{
    double sim = 0.0;
    for (auto _ : state) {
        sim::Machine m(sim::t3dConfig({4, 4, 4}));
        apps::TransposeConfig cfg;
        cfg.n = 1024;
        cfg.variant = apps::TransposeVariant::StridedStores;
        auto w = apps::TransposeWorkload::create(m, cfg);
        w.fillInput(m);
        rt::PackingLayer layer;
        auto r = layer.run(m, w.op());
        if (w.verify(m) != 0)
            state.SkipWithError("transpose corrupted");
        sim = r.perNodeMBps(m);
    }
    setCounter(state, "sim_MBps", sim);
    setCounter(state, "model_MBps",
               modelMBps(MachineId::T3d, core::Style::BufferPacking,
                         P::contiguous(), P::strided(1024)));
    setCounter(state, "paper_model_MBps", 25.0);
    setCounter(state, "paper_measured_MBps", 20.0);
}

} // namespace

BENCHMARK(workedExample)->Iterations(1)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return ct::bench::runBenchmarks(argc, argv, "sec341_worked_example");
}
