/**
 * @file
 * Reproduces Table 1: throughput of selected local memory-to-memory
 * transfers (MB/s) for large blocks, on both machines. Counters:
 * sim_MBps (our simulator) vs paper_MBps (published).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct Row
{
    const char *name;
    P x;
    P y;
    double paperT3d;
    double paperParagon;
};

const Row rows[] = {
    {"1C1", P::contiguous(), P::contiguous(), 93.0, 67.6},
    {"1C64", P::contiguous(), P::strided(64), 67.9, 27.6},
    {"64C1", P::strided(64), P::contiguous(), 33.3, 31.1},
    {"1Cw", P::contiguous(), P::indexed(), 38.5, 35.2},
    {"wC1", P::indexed(), P::contiguous(), 32.9, 45.1},
};

void
localCopy(benchmark::State &state, MachineId machine, const Row &row)
{
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state)
        mbps = sim::measureLocalCopy(cfg, row.x, row.y);
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "paper_MBps", machine == MachineId::T3d
                                        ? row.paperT3d
                                        : row.paperParagon);
}

void
registerAll()
{
    for (const Row &row : rows) {
        benchmark::RegisterBenchmark(
            (std::string("T3D/") + row.name).c_str(),
            [&row](benchmark::State &s) {
                localCopy(s, MachineId::T3d, row);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            (std::string("Paragon/") + row.name).c_str(),
            [&row](benchmark::State &s) {
                localCopy(s, MachineId::Paragon, row);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab1_local_copies");
}
