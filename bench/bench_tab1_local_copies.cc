/**
 * @file
 * Reproduces Table 1: throughput of selected local memory-to-memory
 * transfers (MB/s) for large blocks, on both machines. Counters:
 * sim_MBps (our simulator) vs paper_MBps (published). Cells run
 * through the sweep farm (BENCH_THREADS workers).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct Row
{
    const char *name;
    P x;
    P y;
    double paperT3d;
    double paperParagon;
};

const Row rows[] = {
    {"1C1", P::contiguous(), P::contiguous(), 93.0, 67.6},
    {"1C64", P::contiguous(), P::strided(64), 67.9, 27.6},
    {"64C1", P::strided(64), P::contiguous(), 33.3, 31.1},
    {"1Cw", P::contiguous(), P::indexed(), 38.5, 35.2},
    {"wC1", P::indexed(), P::contiguous(), 32.9, 45.1},
};

ct::bench::SweepCell
copyCell(const char *machine_name, MachineId machine, const Row &row)
{
    double paper =
        machine == MachineId::T3d ? row.paperT3d : row.paperParagon;
    P x = row.x, y = row.y;
    return {std::string(machine_name) + "/" + row.name,
            [machine, x, y, paper]()
                -> std::vector<std::pair<std::string, double>> {
                auto cfg = sim::configFor(machine);
                return {{"sim_MBps",
                         sim::measureLocalCopy(cfg, x, y)},
                        {"paper_MBps", paper}};
            }};
}

void
registerAll()
{
    std::vector<SweepCell> cells;
    for (const Row &row : rows) {
        cells.push_back(copyCell("T3D", MachineId::T3d, row));
        cells.push_back(copyCell("Paragon", MachineId::Paragon, row));
    }
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab1_local_copies");
}
