/**
 * @file
 * Extension bench (not a paper table): collective operations built
 * on the runtime layers. Quantifies the all-to-all scheduling
 * choices (naive partner order vs the rotation schedule of the
 * paper's reference [8] vs fully phased rounds) and the scaling of
 * broadcast and gather.
 */

#include "bench_util.h"
#include "rt/collectives.h"

namespace {

using namespace ct;
using namespace ct::bench;

template <typename Fn>
void
collectiveRow(benchmark::State &state, Fn &&fn)
{
    double mbps = 0.0;
    int rounds = 0;
    for (auto _ : state) {
        sim::Machine m(sim::t3dConfig({4, 4, 1})); // 16 nodes
        rt::ChainedLayer layer;
        auto r = fn(m, layer);
        mbps = r.perNodeMBps(m);
        rounds = r.rounds;
    }
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "rounds", rounds);
}

void
registerAll()
{
    auto reg = [](const char *name, auto fn) {
        benchmark::RegisterBenchmark(
            name,
            [fn](benchmark::State &s) { collectiveRow(s, fn); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    };
    reg("shift", [](sim::Machine &m, rt::MessageLayer &l) {
        return rt::shift(m, l, 4096);
    });
    reg("all_to_all/rotated", [](sim::Machine &m,
                                 rt::MessageLayer &l) {
        return rt::allToAll(m, l, 512);
    });
    reg("all_to_all/naive", [](sim::Machine &m, rt::MessageLayer &l) {
        return rt::allToAllNaive(m, l, 512);
    });
    reg("all_to_all/phased", [](sim::Machine &m,
                                rt::MessageLayer &l) {
        return rt::allToAllPhased(m, l, 512);
    });
    reg("broadcast", [](sim::Machine &m, rt::MessageLayer &l) {
        return rt::broadcast(m, l, 8192);
    });
    reg("gather", [](sim::Machine &m, rt::MessageLayer &l) {
        return rt::gatherTo(m, l, 2048);
    });
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "ext_collectives");
}
