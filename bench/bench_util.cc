#include "bench_util.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>

#include "sweep/farm.h"
#include "util/logging.h"

namespace ct::bench {

namespace {

/**
 * Row -> counter -> value. std::map keys both levels, so the dump
 * order is canonical (sorted by row name, then counter name) no
 * matter which worker recorded a row first.
 */
using SummaryRows =
    std::map<std::string, std::map<std::string, double>>;

/** The shared summary store and the mutex guarding it. Sweep workers
 *  record concurrently through recordSummaryRow(). */
SummaryRows &
summaryRows()
{
    static SummaryRows rows;
    return rows;
}

std::mutex &
summaryMutex()
{
    static std::mutex mu;
    return mu;
}

/** Sweep cells queued by registerSweep() and their merged results,
 *  slotted by cell index (the canonical-order merge). */
struct SweepState
{
    std::vector<SweepCell> cells;
    std::vector<std::vector<std::pair<std::string, double>>> results;
};

SweepState &
sweepState()
{
    static SweepState state;
    return state;
}

/**
 * Console reporter that funnels every row's user counters into the
 * shared summary store, so the summary holds exactly what the
 * benchmark report printed (idempotent for farmed rows, which were
 * already recorded by their worker).
 */
class SummaryReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs)
            if (run.run_type == Run::RT_Iteration)
                for (const auto &[name, counter] : run.counters) {
                    // "wall_*" counters are host wall-clock derived:
                    // visible in the console report and the archived
                    // --benchmark_out JSON, but never in the summary
                    // the perf gate diffs against baselines.
                    if (name.rfind("wall_", 0) == 0)
                        continue;
                    recordSummaryRow(run.benchmark_name(), name,
                                     counter.value);
                }
        ConsoleReporter::ReportRuns(runs);
    }
};

/**
 * Fan the queued sweep cells across a farm. BENCH_THREADS picks the
 * worker count ([1, 256]; 1 = serial inline, the default); results
 * land in canonical cell order regardless of the steal schedule.
 */
void
runSweepCells()
{
    SweepState &sw = sweepState();
    if (sw.cells.empty())
        return;
    sweep::Farm farm({benchThreads(), 0});
    farm.forEach(sw.cells.size(), [&sw](std::size_t i, int) {
        sw.results[i] = sw.cells[i].run();
        // Record under the name google-benchmark will report for the
        // republisher row (Iterations(1) appends the annotation), so
        // the worker-side and reporter-side recordings are the same
        // rows and the summary matches the committed baselines.
        std::string row = sw.cells[i].name + "/iterations:1";
        for (const auto &[counter, value] : sw.results[i])
            recordSummaryRow(row, counter, value);
    });
}

void
writeSummary(const std::string &path, const char *bench_name,
             const SummaryRows &rows)
{
    std::ofstream out(path);
    if (!out) {
        util::warn("bench summary: cannot write '", path, "'");
        return;
    }
    // max_digits10 makes the doubles round-trip exactly, so equal
    // simulations produce byte-identical summaries.
    out << std::setprecision(17);
    out << "{\n  \"bench\": \"" << bench_name << "\",\n"
        << "  \"rows\": {\n";
    std::size_t r = 0;
    for (const auto &[row, counters] : rows) {
        out << "    \"" << row << "\": {";
        std::size_t c = 0;
        for (const auto &[name, value] : counters) {
            out << "\"" << name << "\": " << value;
            if (++c < counters.size())
                out << ", ";
        }
        out << "}";
        if (++r < rows.size())
            out << ",";
        out << "\n";
    }
    out << "  }\n}\n";
}

} // namespace

std::unique_ptr<rt::MessageLayer>
makeStyleLayer(MachineId machine, Style style)
{
    auto program =
        core::buildProgram(machine, style, AccessPattern::contiguous(),
                           AccessPattern::contiguous());
    if (!program)
        util::fatal("makeStyleLayer: style not available on this "
                    "machine");
    return rt::lowerProgram(*program);
}

std::string
benchLabel(Style style)
{
    std::string key = core::styleName(style);
    return key == "buffer-packing" ? "packing" : key;
}

double
exchangeMBps(MachineId machine, Style style, AccessPattern x,
             AccessPattern y, std::uint64_t words)
{
    auto program = core::buildProgram(machine, style, x, y);
    if (!program)
        util::fatal("exchangeMBps: style not available for ",
                    x.label(), "Q", y.label());
    rt::SimBackend backend(sim::configFor(machine));
    rt::SimRun run = backend.exchange(*program, words);
    if (run.corruptWords != 0)
        util::fatal("exchangeMBps: corrupted delivery for ",
                    x.label(), "Q", y.label());
    return run.perNodeMBps;
}

void
setCounter(benchmark::State &state, const char *name, double value)
{
    state.counters[name] = benchmark::Counter(value);
}

int
benchThreads()
{
    const char *env = std::getenv("BENCH_THREADS");
    if (!env || *env == '\0')
        return 0;
    int parsed = 0;
    std::string error;
    if (!sweep::parseThreadCount(env, parsed, error))
        util::fatal("BENCH_THREADS: ", error);
    return parsed == 1 ? 0 : parsed;
}

void
recordSummaryRow(const std::string &row, const std::string &counter,
                 double value)
{
    std::lock_guard<std::mutex> lock(summaryMutex());
    summaryRows()[row][counter] = value;
}

void
registerSweep(std::vector<SweepCell> cells,
              std::optional<benchmark::TimeUnit> unit)
{
    SweepState &sw = sweepState();
    for (SweepCell &cell : cells) {
        std::size_t index = sw.cells.size();
        auto *b = benchmark::RegisterBenchmark(
            cell.name.c_str(), [index](benchmark::State &state) {
                for (auto _ : state) {
                }
                for (const auto &[counter, value] :
                     sweepState().results[index])
                    setCounter(state, counter.c_str(), value);
            });
        b->Iterations(1);
        if (unit)
            b->Unit(*unit);
        sw.cells.push_back(std::move(cell));
    }
    sw.results.resize(sw.cells.size());
}

int
runBenchmarks(int argc, char **argv, const char *bench_name)
{
    benchmark::Initialize(&argc, argv);
    runSweepCells();
    SummaryReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const char *env = std::getenv("BENCH_SUMMARY");
    std::string path = env ? env : "BENCH_summary.json";
    if (!path.empty()) {
        std::lock_guard<std::mutex> lock(summaryMutex());
        writeSummary(path, bench_name, summaryRows());
    }
    return 0;
}

double
modelMBps(MachineId machine, core::Style style, AccessPattern x,
          AccessPattern y)
{
    auto strategy = core::makeStrategy(machine, style, x, y);
    if (!strategy)
        util::fatal("modelMBps: style not available on this machine");
    auto table = core::paperTable(machine);
    auto rate = core::rateStrategy(
        *strategy, table, core::paperCaps(machine).defaultCongestion);
    if (!rate)
        util::fatal("modelMBps: strategy not rateable");
    return *rate;
}

} // namespace ct::bench
