#include "bench_util.h"

#include "util/logging.h"

namespace ct::bench {

std::unique_ptr<rt::MessageLayer>
makeStyleLayer(MachineId machine, Style style)
{
    auto program =
        core::buildProgram(machine, style, AccessPattern::contiguous(),
                           AccessPattern::contiguous());
    if (!program)
        util::fatal("makeStyleLayer: style not available on this "
                    "machine");
    return rt::lowerProgram(*program);
}

std::string
benchLabel(Style style)
{
    std::string key = core::styleName(style);
    return key == "buffer-packing" ? "packing" : key;
}

double
exchangeMBps(MachineId machine, Style style, AccessPattern x,
             AccessPattern y, std::uint64_t words)
{
    auto program = core::buildProgram(machine, style, x, y);
    if (!program)
        util::fatal("exchangeMBps: style not available for ",
                    x.label(), "Q", y.label());
    rt::SimBackend backend(sim::configFor(machine));
    rt::SimRun run = backend.exchange(*program, words);
    if (run.corruptWords != 0)
        util::fatal("exchangeMBps: corrupted delivery for ",
                    x.label(), "Q", y.label());
    return run.perNodeMBps;
}

double
modelMBps(MachineId machine, core::Style style, AccessPattern x,
          AccessPattern y)
{
    auto strategy = core::makeStrategy(machine, style, x, y);
    if (!strategy)
        util::fatal("modelMBps: style not available on this machine");
    auto table = core::paperTable(machine);
    auto rate = core::rateStrategy(
        *strategy, table, core::paperCaps(machine).defaultCongestion);
    if (!rate)
        util::fatal("modelMBps: strategy not rateable");
    return *rate;
}

} // namespace ct::bench
