#include "bench_util.h"

#include "util/logging.h"

namespace ct::bench {

std::unique_ptr<rt::MessageLayer>
makeLayer(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Chained:
        return std::make_unique<rt::ChainedLayer>();
      case LayerKind::Packing:
        return std::make_unique<rt::PackingLayer>();
      case LayerKind::Pvm:
        return std::make_unique<rt::PackingLayer>(
            rt::makePvmLayer());
    }
    util::panic("makeLayer: bad kind");
}

std::string
layerName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Chained:
        return "chained";
      case LayerKind::Packing:
        return "packing";
      case LayerKind::Pvm:
        return "pvm";
    }
    util::panic("layerName: bad kind");
}

double
exchangeMBps(MachineId machine, LayerKind kind, AccessPattern x,
             AccessPattern y, std::uint64_t words)
{
    sim::Machine m(sim::configFor(machine));
    auto op = rt::pairExchange(m, x, y, words);
    rt::seedSources(m, op);
    auto layer = makeLayer(kind);
    auto result = layer->run(m, op);
    if (rt::verifyDelivery(m, op) != 0)
        util::fatal("exchangeMBps: corrupted delivery for ",
                    x.label(), "Q", y.label());
    return result.perNodeMBps(m);
}

double
modelMBps(MachineId machine, core::Style style, AccessPattern x,
          AccessPattern y)
{
    auto strategy = core::makeStrategy(machine, style, x, y);
    if (!strategy)
        util::fatal("modelMBps: style not available on this machine");
    auto table = core::paperTable(machine);
    auto rate = core::rateStrategy(
        *strategy, table, core::paperCaps(machine).defaultCongestion);
    if (!rate)
        util::fatal("modelMBps: strategy not rateable");
    return *rate;
}

} // namespace ct::bench
