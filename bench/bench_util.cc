#include "bench_util.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>

#include "util/logging.h"

namespace ct::bench {

namespace {

/** Row -> counter -> value; std::map keeps dump order stable. */
using SummaryRows =
    std::map<std::string, std::map<std::string, double>>;

/**
 * Console reporter that also captures every row's user counters, so
 * the summary holds exactly what the benchmark report printed.
 */
class SummaryReporter : public benchmark::ConsoleReporter
{
  public:
    SummaryRows rows;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs)
            if (run.run_type == Run::RT_Iteration)
                for (const auto &[name, counter] : run.counters)
                    rows[run.benchmark_name()][name] = counter.value;
        ConsoleReporter::ReportRuns(runs);
    }
};

void
writeSummary(const std::string &path, const char *bench_name,
             const SummaryRows &rows)
{
    std::ofstream out(path);
    if (!out) {
        util::warn("bench summary: cannot write '", path, "'");
        return;
    }
    // max_digits10 makes the doubles round-trip exactly, so equal
    // simulations produce byte-identical summaries.
    out << std::setprecision(17);
    out << "{\n  \"bench\": \"" << bench_name << "\",\n"
        << "  \"rows\": {\n";
    std::size_t r = 0;
    for (const auto &[row, counters] : rows) {
        out << "    \"" << row << "\": {";
        std::size_t c = 0;
        for (const auto &[name, value] : counters) {
            out << "\"" << name << "\": " << value;
            if (++c < counters.size())
                out << ", ";
        }
        out << "}";
        if (++r < rows.size())
            out << ",";
        out << "\n";
    }
    out << "  }\n}\n";
}

} // namespace

std::unique_ptr<rt::MessageLayer>
makeStyleLayer(MachineId machine, Style style)
{
    auto program =
        core::buildProgram(machine, style, AccessPattern::contiguous(),
                           AccessPattern::contiguous());
    if (!program)
        util::fatal("makeStyleLayer: style not available on this "
                    "machine");
    return rt::lowerProgram(*program);
}

std::string
benchLabel(Style style)
{
    std::string key = core::styleName(style);
    return key == "buffer-packing" ? "packing" : key;
}

double
exchangeMBps(MachineId machine, Style style, AccessPattern x,
             AccessPattern y, std::uint64_t words)
{
    auto program = core::buildProgram(machine, style, x, y);
    if (!program)
        util::fatal("exchangeMBps: style not available for ",
                    x.label(), "Q", y.label());
    rt::SimBackend backend(sim::configFor(machine));
    rt::SimRun run = backend.exchange(*program, words);
    if (run.corruptWords != 0)
        util::fatal("exchangeMBps: corrupted delivery for ",
                    x.label(), "Q", y.label());
    return run.perNodeMBps;
}

void
setCounter(benchmark::State &state, const char *name, double value)
{
    state.counters[name] = benchmark::Counter(value);
}

int
runBenchmarks(int argc, char **argv, const char *bench_name)
{
    benchmark::Initialize(&argc, argv);
    SummaryReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const char *env = std::getenv("BENCH_SUMMARY");
    std::string path = env ? env : "BENCH_summary.json";
    if (!path.empty())
        writeSummary(path, bench_name, reporter.rows);
    return 0;
}

double
modelMBps(MachineId machine, core::Style style, AccessPattern x,
          AccessPattern y)
{
    auto strategy = core::makeStrategy(machine, style, x, y);
    if (!strategy)
        util::fatal("modelMBps: style not available on this machine");
    auto table = core::paperTable(machine);
    auto rate = core::rateStrategy(
        *strategy, table, core::paperCaps(machine).defaultCongestion);
    if (!rate)
        util::fatal("modelMBps: strategy not rateable");
    return *rate;
}

} // namespace ct::bench
