/**
 * @file
 * Extension bench (not a paper table): HPF redistributions executed
 * with both communication styles on the 8-node T3D. Shows the
 * compiler view end to end: each (from, to) pair induces an xQy
 * operation whose winner the planner predicts; the last two rows are
 * the 2-D transposing redistribution of Figure 9 in both loop
 * orders, i.e. Table 5 derived from distribution specs instead of
 * hand-built flows.
 */

#include "bench_util.h"

#include "core/planner.h"
#include "rt/redistribute.h"
#include "rt/redistribute2d.h"

namespace {

using namespace ct;
using namespace ct::bench;
using D = core::Distribution;

constexpr std::uint64_t N = 1 << 14;
constexpr int P = 8;

template <typename Workload>
void
annotate(benchmark::State &state, const Workload &w, double mbps)
{
    auto [x, y] = w.dominantPatterns();
    setCounter(state, "sim_MBps", mbps);
    core::PlanQuery q{core::MachineId::T3d, x, y, 0.0};
    setCounter(state, "model_best_MBps",
               core::bestPlan(q).estimate);
}

void
redistRow(benchmark::State &state, const D &from, const D &to,
          core::Style style)
{
    double mbps = 0.0;
    sim::Machine probe(sim::t3dConfig({2, 2, 2}));
    auto shape = rt::RedistributionWorkload::create(probe, from, to);
    for (auto _ : state) {
        sim::Machine m(sim::t3dConfig({2, 2, 2}));
        auto w = rt::RedistributionWorkload::create(m, from, to);
        w.fillInput(m);
        auto layer = makeStyleLayer(core::MachineId::T3d, style);
        auto r = layer->run(m, w.op());
        if (w.verify(m) != 0)
            state.SkipWithError("corrupted");
        mbps = r.perNodeMBps(m);
    }
    annotate(state, shape, mbps);
}

void
redist2dRow(benchmark::State &state, bool transpose,
            core::Style style)
{
    using core::DimSpec;
    core::Distribution2d row_block{DimSpec::dist(D::block(512, P)),
                                   DimSpec::whole(512)};
    core::Distribution2d col_block{DimSpec::whole(512),
                                   DimSpec::dist(D::block(512, P))};
    // transpose: B(BLOCK, *) = A^T(BLOCK, *), the Figure 9 exchange;
    // otherwise the (BLOCK, *) -> (*, BLOCK) layout change.
    const core::Distribution2d &to =
        transpose ? row_block : col_block;
    double mbps = 0.0;
    sim::Machine probe(sim::t3dConfig({2, 2, 2}));
    auto shape = rt::Redistribution2dWorkload::create(
        probe, row_block, to, transpose);
    for (auto _ : state) {
        sim::Machine m(sim::t3dConfig({2, 2, 2}));
        auto w = rt::Redistribution2dWorkload::create(m, row_block,
                                                      to, transpose);
        w.fillInput(m);
        auto layer = makeStyleLayer(core::MachineId::T3d, style);
        auto r = layer->run(m, w.op());
        if (w.verify(m) != 0)
            state.SkipWithError("corrupted");
        mbps = r.perNodeMBps(m);
    }
    annotate(state, shape, mbps);
}

void
registerAll()
{
    struct Pair
    {
        const char *name;
        D from;
        D to;
    };
    const Pair pairs[] = {
        {"block_to_cyclic", D::block(N, P), D::cyclic(N, P)},
        {"cyclic_to_block", D::cyclic(N, P), D::block(N, P)},
        {"block_to_blockcyclic8", D::block(N, P),
         D::blockCyclic(N, P, 8)},
        {"blockcyclic8_to_cyclic", D::blockCyclic(N, P, 8),
         D::cyclic(N, P)},
    };
    for (const Pair &pair : pairs) {
        for (core::Style style :
             {core::Style::Chained, core::Style::BufferPacking}) {
            std::string name = std::string(pair.name) + "/" +
                               benchLabel(style);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [pair, style](benchmark::State &s) {
                    redistRow(s, pair.from, pair.to, style);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    for (bool transpose : {true, false}) {
        for (core::Style style :
             {core::Style::Chained, core::Style::BufferPacking}) {
            std::string name =
                std::string(transpose ? "transpose2d"
                                      : "row_to_col_blocks") +
                "/" + benchLabel(style);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [transpose, style](benchmark::State &s) {
                    redist2dRow(s, transpose, style);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "ext_redistribution");
}
