/**
 * @file
 * Reproduces Table 5: strided loads vs strided stores. When a 2-D
 * transpose patch moves between nodes, the compiler can place the
 * stride on the load side (16Q1) or the store side (1Q16); the best
 * choice differs between the machines (write-back queue vs pipelined
 * loads). Rows report model, simulator, and the paper's model and
 * measured values. Cells run through the sweep farm (BENCH_THREADS
 * workers).
 */

#include "bench_util.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct Row
{
    const char *machineName;
    MachineId machine;
    const char *opName;
    P x;
    P y;
    core::Style style;
    double paperModel;
    double paperMeasured;
};

const Row rows[] = {
    // T3D, buffer packing.
    {"T3D", MachineId::T3d, "1Q16_packing", P::contiguous(),
     P::strided(16), core::Style::BufferPacking, 25.4, 20.8},
    {"T3D", MachineId::T3d, "16Q1_packing", P::strided(16),
     P::contiguous(), core::Style::BufferPacking, 18.4, 14.3},
    // T3D, chained.
    {"T3D", MachineId::T3d, "1Q16_chained", P::contiguous(),
     P::strided(16), core::Style::Chained, 38.0, 31.3},
    {"T3D", MachineId::T3d, "16Q1_chained", P::strided(16),
     P::contiguous(), core::Style::Chained, 38.0, 27.4},
    // Paragon, buffer packing.
    {"Paragon", MachineId::Paragon, "1Q16_packing", P::contiguous(),
     P::strided(16), core::Style::BufferPacking, 18.3, 20.7},
    {"Paragon", MachineId::Paragon, "16Q1_packing", P::strided(16),
     P::contiguous(), core::Style::BufferPacking, 20.7, 24.2},
    // Paragon, chained.
    {"Paragon", MachineId::Paragon, "1Q16_chained", P::contiguous(),
     P::strided(16), core::Style::Chained, 32.0, 29.7},
    {"Paragon", MachineId::Paragon, "16Q1_chained", P::strided(16),
     P::contiguous(), core::Style::Chained, 42.0, 39.2},
};

void
registerAll()
{
    std::vector<SweepCell> cells;
    for (const Row &row : rows) {
        cells.push_back(
            {std::string(row.machineName) + "/" + row.opName,
             [&row]()
                 -> std::vector<std::pair<std::string, double>> {
                 return {{"sim_MBps",
                          exchangeMBps(row.machine, row.style, row.x,
                                       row.y)},
                         {"model_MBps",
                          modelMBps(row.machine, row.style, row.x,
                                    row.y)},
                         {"paper_model_MBps", row.paperModel},
                         {"paper_measured_MBps", row.paperMeasured}};
             }});
    }
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab5_load_vs_store");
}
