/**
 * @file
 * Extension bench (not a paper table): the conservative parallel
 * engine's determinism contract, run as a perf-gate row. Each row
 * executes the same pairwise exchange twice from identical machine
 * configurations -- once on the serial event loop, once on the
 * parallel engine at 8 workers -- fingerprints everything the run
 * committed (makespan, rates, delivery check, event totals, queue
 * peaks, the full metrics registry) and publishes identity_ok = 1
 * only when the two fingerprints are byte-identical. The engine's
 * own counters (windows formed, parallel windows, events run on
 * workers, committed cross-partition spawns) are schedule-
 * independent -- window shapes depend only on the event timeline,
 * never on thread interleaving -- so they are baselined too: a
 * change in window formation or commit behaviour shows up as a
 * baseline diff even when the results still match.
 *
 * Wall-clock speedup is published as a plain benchmark counter for
 * the archived artifact, NOT via the summary: it varies with the
 * host and must never gate.
 */

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/style_registry.h"
#include "sim/parallel.h"
#include "sim/report.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

struct PdesRun
{
    std::string fingerprint;
    sim::ParallelStats engine;
    double makespan = 0.0;
    double wallSeconds = 0.0;
    bool corrupt = false;
};

/** One full exchange, lowered exactly like rt::SimBackend does, with
 *  every committed observable serialized into the fingerprint. */
PdesRun
runOnce(sim::MachineConfig cfg, int threads, core::Style style,
        std::uint64_t words)
{
    cfg.threads = threads;
    auto program =
        core::buildProgram(cfg.id, style, P::strided(4),
                           P::contiguous());

    PdesRun out;
    auto t0 = std::chrono::steady_clock::now();
    sim::Machine m(cfg);
    auto op = rt::pairExchange(m, P::strided(4), P::contiguous(),
                               words, 42);
    rt::seedSources(m, op);
    auto layer = rt::lowerProgram(*program);
    m.setParallelEnabled(layer->parallelSafe());
    m.setParallelLookahead(layer->parallelLookahead(m, op));
    auto result = layer->run(m, op);
    std::uint64_t bad = rt::verifyDelivery(m, op);
    sim::collectReport(m);
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - t0)
            .count();

    std::ostringstream os;
    os << "layer " << layer->name() << '\n'
       << "makespan " << result.makespan << '\n'
       << "perNodeMBps " << result.perNodeMBps(m) << '\n'
       << "totalMBps " << result.totalMBps(m) << '\n'
       << "corrupt " << bad << '\n'
       << "events " << m.events().eventsExecuted() << '\n'
       << "peakPending " << m.events().peakPending() << '\n'
       << "wireBytes " << m.network().stats().wireBytes << '\n';
    m.metrics().writeJson(os);
    out.fingerprint = os.str();
    out.makespan = static_cast<double>(result.makespan);
    out.corrupt = bad != 0;
    if (const sim::ParallelEngine *eng = m.parallelEngine())
        out.engine = eng->stats();
    return out;
}

struct PdesCase
{
    const char *name;
    core::MachineId machine;
    core::Style style;
};

sim::MachineConfig
configFor(core::MachineId machine)
{
    return machine == core::MachineId::T3d
               ? sim::t3dConfig({4, 2, 1})
               : sim::paragonConfig({4, 2});
}

void
pdesRow(benchmark::State &state, PdesCase c)
{
    auto words = static_cast<std::uint64_t>(state.range(0));
    PdesRun serial, parallel;
    for (auto _ : state) {
        serial = runOnce(configFor(c.machine), 1, c.style, words);
        parallel = runOnce(configFor(c.machine), 8, c.style, words);
        if (serial.corrupt || parallel.corrupt)
            state.SkipWithError("corrupted delivery");
    }
    double identical =
        serial.fingerprint == parallel.fingerprint ? 1.0 : 0.0;

    // Deterministic counters: baselined by the perf gate.
    setCounter(state, "identity_ok", identical);
    setCounter(state, "makespan", serial.makespan);
    setCounter(state, "windows",
               static_cast<double>(parallel.engine.windows));
    setCounter(state, "parallel_windows",
               static_cast<double>(parallel.engine.parallelWindows));
    setCounter(state, "parallel_events",
               static_cast<double>(parallel.engine.parallelEvents));
    setCounter(state, "cross_spawns",
               static_cast<double>(parallel.engine.crossSpawns));
    setCounter(state, "max_window_span",
               static_cast<double>(parallel.engine.maxWindowSpan));

    // Host-dependent: archived artifact only, never baselined.
    state.counters["wall_speedup"] =
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 0.0;
}

void
registerAll()
{
    const PdesCase cases[] = {
        {"t3d_chained", core::MachineId::T3d, core::Style::Chained},
        {"paragon_chained", core::MachineId::Paragon,
         core::Style::Chained},
        {"paragon_packing", core::MachineId::Paragon,
         core::Style::BufferPacking},
    };
    for (const PdesCase &c : cases) {
        std::string name =
            std::string("pdes_identity/") + c.name + "/words";
        auto *b = benchmark::RegisterBenchmark(
            name.c_str(),
            [c](benchmark::State &state) { pdesRow(state, c); });
        b->Iterations(1)->Unit(benchmark::kMillisecond);
        b->Arg(4096);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    // Emit a machine-readable JSON dump by default so CI can archive
    // the identity rows; any explicit --benchmark_out flag wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_pdes.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    return ct::bench::runBenchmarks(n, args.data(), "ext_pdes");
}
