/**
 * @file
 * Extension bench (not a paper table): goodput of the reliable
 * chained layer as the wire degrades. Sweeps packet-drop rate x
 * message size; reports delivered goodput, total wire bytes (every
 * retransmission and ack included), retransmission count, and
 * whether the run had to degrade to the buffer-packing path.
 * Goodput must fall monotonically as the drop rate rises: the
 * payload is fixed while timeouts and retransmissions stretch the
 * makespan and burn extra wire bandwidth. Cells run through the
 * sweep farm (BENCH_THREADS workers); each builds its own Machine.
 */

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "rt/collectives.h"
#include "rt/reliable_layer.h"
#include "rt/workload.h"
#include "util/logging.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

std::vector<std::pair<std::string, double>>
faultCell(std::int64_t drop_x10000, std::uint64_t words)
{
    // drop rate in 1/10000ths so the integer row names stay readable.
    double drop = static_cast<double>(drop_x10000) / 10000.0;
    auto cfg = sim::t3dConfig({2, 1, 1});
    if (drop > 0.0)
        cfg.faults = sim::FaultSpec::parse(
            "drop=" + std::to_string(drop) + ",seed=1");
    sim::Machine m(cfg);
    auto op = rt::pairExchange(m, P::strided(4), P::strided(4), words);
    rt::seedSources(m, op);
    auto layer = rt::makeReliableChained();
    auto r = layer->run(m, op);
    if (rt::verifyDelivery(m, op) != 0)
        util::fatal("fault sweep: corrupted delivery");
    return {{"goodput_MBps", r.perNodeMBps(m)},
            {"wire_bytes",
             static_cast<double>(m.network().stats().wireBytes)},
            {"retransmits",
             static_cast<double>(layer->stats().retransmits)},
            {"dropped",
             static_cast<double>(m.network().stats().droppedPackets)},
            {"degraded", r.degraded ? 1.0 : 0.0}};
}

std::vector<std::pair<std::string, double>>
engineFailCell(std::uint64_t words)
{
    auto cfg = sim::t3dConfig({2, 1, 1});
    cfg.faults = sim::FaultSpec::parse("engine_fail=1,seed=1");
    sim::Machine m(cfg);
    auto op = rt::pairExchange(m, P::strided(4), P::strided(4), words);
    rt::seedSources(m, op);
    auto layer = rt::makeReliableChained();
    auto r = layer->run(m, op);
    if (rt::verifyDelivery(m, op) != 0)
        util::fatal("engine-fail sweep: corrupted delivery");
    return {{"goodput_MBps", r.perNodeMBps(m)},
            {"degraded", r.degraded ? 1.0 : 0.0}};
}

std::vector<std::pair<std::string, double>>
outageCell(bool down, std::uint64_t words)
{
    // All-to-all on a 2x2x2 torus with one network link downed from
    // cycle 0: every packet that would have crossed it detours.
    auto cfg = sim::t3dConfig({2, 2, 2});
    if (down)
        cfg.faults = sim::FaultSpec::parse("link_down=0@0");
    sim::Machine m(cfg);
    auto layer = rt::makeReliableChained();
    auto r = rt::allToAll(m, *layer, words);
    return {{"goodput_MBps", r.perNodeMBps(m)},
            {"rerouted_packets",
             static_cast<double>(m.network().stats().reroutedPackets)},
            {"rerouted_links",
             static_cast<double>(r.reroutedLinks)}};
}

void
registerAll()
{
    std::vector<SweepCell> cells;
    for (std::int64_t words : {1024, 8192}) {
        // 0, 0.1%, 1%, 5%, 10% packet loss.
        for (std::int64_t drop : {0, 10, 100, 500, 1000}) {
            auto w = static_cast<std::uint64_t>(words);
            cells.push_back(
                {"reliable_chained_goodput/drop_x10000/words/" +
                     std::to_string(drop) + "/" +
                     std::to_string(words),
                 [drop, w] { return faultCell(drop, w); }});
        }
    }
    for (std::int64_t words : {1024, 8192}) {
        auto w = static_cast<std::uint64_t>(words);
        cells.push_back({"reliable_chained_engine_fail/words/" +
                             std::to_string(words),
                         [w] { return engineFailCell(w); }});
    }
    for (std::int64_t down : {0, 1})
        cells.push_back({"reliable_chained_link_outage/down/words/" +
                             std::to_string(down) + "/512",
                         [down] {
                             return outageCell(down != 0, 512);
                         }});
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    // Emit a machine-readable JSON dump by default so CI can archive
    // the fault-degradation curves; any explicit --benchmark_out
    // flag wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_fault.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    return ct::bench::runBenchmarks(n, args.data(), "ext_fault_degradation");
}
