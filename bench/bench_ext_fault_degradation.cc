/**
 * @file
 * Extension bench (not a paper table): goodput of the reliable
 * chained layer as the wire degrades. Sweeps packet-drop rate x
 * message size; reports delivered goodput, total wire bytes (every
 * retransmission and ack included), retransmission count, and
 * whether the run had to degrade to the buffer-packing path.
 * Goodput must fall monotonically as the drop rate rises: the
 * payload is fixed while timeouts and retransmissions stretch the
 * makespan and burn extra wire bandwidth.
 */

#include "bench_util.h"
#include "rt/reliable_layer.h"
#include "rt/workload.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
faultRow(benchmark::State &state)
{
    // drop rate in 1/10000ths so the integer Args stay readable.
    double drop = static_cast<double>(state.range(0)) / 10000.0;
    auto words = static_cast<std::uint64_t>(state.range(1));

    double mbps = 0.0;
    double wire_bytes = 0.0;
    double retransmits = 0.0;
    double drops = 0.0;
    double degraded = 0.0;
    for (auto _ : state) {
        auto cfg = sim::t3dConfig({2, 1, 1});
        if (drop > 0.0)
            cfg.faults = sim::FaultSpec::parse(
                "drop=" + std::to_string(drop) + ",seed=1");
        sim::Machine m(cfg);
        auto op =
            rt::pairExchange(m, P::strided(4), P::strided(4), words);
        rt::seedSources(m, op);
        auto layer = rt::makeReliableChained();
        auto r = layer->run(m, op);
        if (rt::verifyDelivery(m, op) != 0)
            state.SkipWithError("corrupted delivery");
        mbps = r.perNodeMBps(m);
        wire_bytes = static_cast<double>(m.network().stats().wireBytes);
        retransmits =
            static_cast<double>(layer->stats().retransmits);
        drops =
            static_cast<double>(m.network().stats().droppedPackets);
        degraded = r.degraded ? 1.0 : 0.0;
    }
    setCounter(state, "goodput_MBps", mbps);
    setCounter(state, "wire_bytes", wire_bytes);
    setCounter(state, "retransmits", retransmits);
    setCounter(state, "dropped", drops);
    setCounter(state, "degraded", degraded);
}

void
engineFailRow(benchmark::State &state)
{
    auto words = static_cast<std::uint64_t>(state.range(0));
    double mbps = 0.0;
    double degraded = 0.0;
    for (auto _ : state) {
        auto cfg = sim::t3dConfig({2, 1, 1});
        cfg.faults = sim::FaultSpec::parse("engine_fail=1,seed=1");
        sim::Machine m(cfg);
        auto op =
            rt::pairExchange(m, P::strided(4), P::strided(4), words);
        rt::seedSources(m, op);
        auto layer = rt::makeReliableChained();
        auto r = layer->run(m, op);
        if (rt::verifyDelivery(m, op) != 0)
            state.SkipWithError("corrupted delivery");
        mbps = r.perNodeMBps(m);
        degraded = r.degraded ? 1.0 : 0.0;
    }
    setCounter(state, "goodput_MBps", mbps);
    setCounter(state, "degraded", degraded);
}

void
registerAll()
{
    auto *b = benchmark::RegisterBenchmark(
        "reliable_chained_goodput/drop_x10000/words", faultRow);
    b->Iterations(1)->Unit(benchmark::kMillisecond);
    for (std::int64_t words : {1024, 8192}) {
        // 0, 0.1%, 1%, 5%, 10% packet loss.
        for (std::int64_t drop : {0, 10, 100, 500, 1000})
            b->Args({drop, words});
    }

    auto *e = benchmark::RegisterBenchmark(
        "reliable_chained_engine_fail/words", engineFailRow);
    e->Iterations(1)->Unit(benchmark::kMillisecond);
    for (std::int64_t words : {1024, 8192})
        e->Arg(words);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
