/**
 * @file
 * Extension bench (not a paper table): goodput of the reliable
 * chained layer as the wire degrades. Sweeps packet-drop rate x
 * message size; reports delivered goodput, total wire bytes (every
 * retransmission and ack included), retransmission count, and
 * whether the run had to degrade to the buffer-packing path.
 * Goodput must fall monotonically as the drop rate rises: the
 * payload is fixed while timeouts and retransmissions stretch the
 * makespan and burn extra wire bandwidth.
 */

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "rt/collectives.h"
#include "rt/reliable_layer.h"
#include "rt/workload.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
faultRow(benchmark::State &state)
{
    // drop rate in 1/10000ths so the integer Args stay readable.
    double drop = static_cast<double>(state.range(0)) / 10000.0;
    auto words = static_cast<std::uint64_t>(state.range(1));

    double mbps = 0.0;
    double wire_bytes = 0.0;
    double retransmits = 0.0;
    double drops = 0.0;
    double degraded = 0.0;
    for (auto _ : state) {
        auto cfg = sim::t3dConfig({2, 1, 1});
        if (drop > 0.0)
            cfg.faults = sim::FaultSpec::parse(
                "drop=" + std::to_string(drop) + ",seed=1");
        sim::Machine m(cfg);
        auto op =
            rt::pairExchange(m, P::strided(4), P::strided(4), words);
        rt::seedSources(m, op);
        auto layer = rt::makeReliableChained();
        auto r = layer->run(m, op);
        if (rt::verifyDelivery(m, op) != 0)
            state.SkipWithError("corrupted delivery");
        mbps = r.perNodeMBps(m);
        wire_bytes = static_cast<double>(m.network().stats().wireBytes);
        retransmits =
            static_cast<double>(layer->stats().retransmits);
        drops =
            static_cast<double>(m.network().stats().droppedPackets);
        degraded = r.degraded ? 1.0 : 0.0;
    }
    setCounter(state, "goodput_MBps", mbps);
    setCounter(state, "wire_bytes", wire_bytes);
    setCounter(state, "retransmits", retransmits);
    setCounter(state, "dropped", drops);
    setCounter(state, "degraded", degraded);
}

void
engineFailRow(benchmark::State &state)
{
    auto words = static_cast<std::uint64_t>(state.range(0));
    double mbps = 0.0;
    double degraded = 0.0;
    for (auto _ : state) {
        auto cfg = sim::t3dConfig({2, 1, 1});
        cfg.faults = sim::FaultSpec::parse("engine_fail=1,seed=1");
        sim::Machine m(cfg);
        auto op =
            rt::pairExchange(m, P::strided(4), P::strided(4), words);
        rt::seedSources(m, op);
        auto layer = rt::makeReliableChained();
        auto r = layer->run(m, op);
        if (rt::verifyDelivery(m, op) != 0)
            state.SkipWithError("corrupted delivery");
        mbps = r.perNodeMBps(m);
        degraded = r.degraded ? 1.0 : 0.0;
    }
    setCounter(state, "goodput_MBps", mbps);
    setCounter(state, "degraded", degraded);
}

void
outageRow(benchmark::State &state)
{
    // All-to-all on a 2x2x2 torus with one network link downed from
    // cycle 0: every packet that would have crossed it detours.
    bool down = state.range(0) != 0;
    auto words = static_cast<std::uint64_t>(state.range(1));
    double mbps = 0.0;
    double rerouted = 0.0;
    double rerouted_links = 0.0;
    for (auto _ : state) {
        auto cfg = sim::t3dConfig({2, 2, 2});
        if (down)
            cfg.faults = sim::FaultSpec::parse("link_down=0@0");
        sim::Machine m(cfg);
        auto layer = rt::makeReliableChained();
        auto r = rt::allToAll(m, *layer, words);
        mbps = r.perNodeMBps(m);
        rerouted = static_cast<double>(
            m.network().stats().reroutedPackets);
        rerouted_links = static_cast<double>(r.reroutedLinks);
    }
    setCounter(state, "goodput_MBps", mbps);
    setCounter(state, "rerouted_packets", rerouted);
    setCounter(state, "rerouted_links", rerouted_links);
}

void
registerAll()
{
    auto *b = benchmark::RegisterBenchmark(
        "reliable_chained_goodput/drop_x10000/words", faultRow);
    b->Iterations(1)->Unit(benchmark::kMillisecond);
    for (std::int64_t words : {1024, 8192}) {
        // 0, 0.1%, 1%, 5%, 10% packet loss.
        for (std::int64_t drop : {0, 10, 100, 500, 1000})
            b->Args({drop, words});
    }

    auto *e = benchmark::RegisterBenchmark(
        "reliable_chained_engine_fail/words", engineFailRow);
    e->Iterations(1)->Unit(benchmark::kMillisecond);
    for (std::int64_t words : {1024, 8192})
        e->Arg(words);

    auto *o = benchmark::RegisterBenchmark(
        "reliable_chained_link_outage/down/words", outageRow);
    o->Iterations(1)->Unit(benchmark::kMillisecond);
    for (std::int64_t down : {0, 1})
        o->Args({down, 512});
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    // Emit a machine-readable JSON dump by default so CI can archive
    // the fault-degradation curves; any explicit --benchmark_out
    // flag wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_fault.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    return ct::bench::runBenchmarks(n, args.data(), "ext_fault_degradation");
}
