/**
 * @file
 * Reproduces Figure 1: measured application throughput for simple
 * (contiguous) communication operations, comparing the portable
 * PVM-style library against the fastest vendor-specific path, as a
 * function of the message size. The shape to check: the low-level
 * layers sit far above PVM, whose throughput only slowly approaches
 * theirs as messages grow, and both stay well below the wire's peak
 * bandwidth. Cells run through the sweep farm (BENCH_THREADS
 * workers).
 */

#include "bench_util.h"

#include "core/latency_model.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
registerAll()
{
    struct Entry
    {
        const char *name;
        MachineId machine;
        core::Style style;
    };
    // "Fastest" on the T3D is the chained/remote-store path (libsm);
    // on the Paragon the SUNMOS NX packing path with DMA transfers.
    const Entry entries[] = {
        {"T3D/pvm", MachineId::T3d, core::Style::Pvm},
        {"T3D/libsm_chained", MachineId::T3d, core::Style::Chained},
        {"Paragon/pvm", MachineId::Paragon, core::Style::Pvm},
        {"Paragon/sunmos_packing", MachineId::Paragon,
         core::Style::BufferPacking},
        {"Paragon/sunmos_chained", MachineId::Paragon,
         core::Style::Chained},
    };
    std::vector<SweepCell> cells;
    for (const Entry &entry : entries) {
        for (std::uint64_t words = 64; words <= (1 << 16);
             words *= 4) {
            cells.push_back(
                {std::string(entry.name) + "/" +
                     std::to_string(words),
                 [entry, words]()
                     -> std::vector<std::pair<std::string, double>> {
                     std::vector<std::pair<std::string, double>> out{
                         {"sim_MBps",
                          exchangeMBps(entry.machine, entry.style,
                                       P::contiguous(),
                                       P::contiguous(), words)},
                         {"message_KB",
                          static_cast<double>(words * 8) / 1024.0}};
                     // The latency-extended model's prediction of
                     // the same curve.
                     if (auto m = core::makeMessageCostModel(
                             entry.machine, entry.style,
                             P::contiguous(), P::contiguous()))
                         out.emplace_back("latency_model_MBps",
                                          m->throughputAt(words * 8));
                     return out;
                 }});
        }
    }
    registerSweep(std::move(cells), benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig1_library_throughput");
}
