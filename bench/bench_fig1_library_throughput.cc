/**
 * @file
 * Reproduces Figure 1: measured application throughput for simple
 * (contiguous) communication operations, comparing the portable
 * PVM-style library against the fastest vendor-specific path, as a
 * function of the message size. The shape to check: the low-level
 * layers sit far above PVM, whose throughput only slowly approaches
 * theirs as messages grow, and both stay well below the wire's peak
 * bandwidth.
 */

#include "bench_util.h"

#include "core/latency_model.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
libraryRow(benchmark::State &state, MachineId machine,
           core::Style style)
{
    auto words = static_cast<std::uint64_t>(state.range(0));
    double sim = 0.0;
    for (auto _ : state)
        sim = exchangeMBps(machine, style, P::contiguous(),
                           P::contiguous(), words);
    setCounter(state, "sim_MBps", sim);
    setCounter(state, "message_KB",
               static_cast<double>(words * 8) / 1024.0);
    // The latency-extended model's prediction of the same curve.
    if (auto m = core::makeMessageCostModel(machine, style,
                                            P::contiguous(),
                                            P::contiguous()))
        setCounter(state, "latency_model_MBps",
                   m->throughputAt(words * 8));
}

void
registerAll()
{
    struct Entry
    {
        const char *name;
        MachineId machine;
        core::Style style;
    };
    // "Fastest" on the T3D is the chained/remote-store path (libsm);
    // on the Paragon the SUNMOS NX packing path with DMA transfers.
    const Entry entries[] = {
        {"T3D/pvm", MachineId::T3d, core::Style::Pvm},
        {"T3D/libsm_chained", MachineId::T3d, core::Style::Chained},
        {"Paragon/pvm", MachineId::Paragon, core::Style::Pvm},
        {"Paragon/sunmos_packing", MachineId::Paragon,
         core::Style::BufferPacking},
        {"Paragon/sunmos_chained", MachineId::Paragon,
         core::Style::Chained},
    };
    for (const Entry &entry : entries) {
        auto *b = benchmark::RegisterBenchmark(
            entry.name, [entry](benchmark::State &s) {
                libraryRow(s, entry.machine, entry.style);
            });
        b->Iterations(1)->Unit(benchmark::kMillisecond);
        for (std::int64_t words = 64; words <= (1 << 16); words *= 4)
            b->Arg(words);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "fig1_library_throughput");
}
