/**
 * @file
 * Reproduces Figure 1: measured application throughput for simple
 * (contiguous) communication operations, comparing the portable
 * PVM-style library against the fastest vendor-specific path, as a
 * function of the message size. The shape to check: the low-level
 * layers sit far above PVM, whose throughput only slowly approaches
 * theirs as messages grow, and both stay well below the wire's peak
 * bandwidth.
 */

#include "bench_util.h"

#include "core/latency_model.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

core::Style
styleOf(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Chained:
        return core::Style::Chained;
      case LayerKind::Packing:
        return core::Style::BufferPacking;
      case LayerKind::Pvm:
        return core::Style::Pvm;
    }
    return core::Style::BufferPacking;
}

void
libraryRow(benchmark::State &state, MachineId machine, LayerKind kind)
{
    auto words = static_cast<std::uint64_t>(state.range(0));
    double sim = 0.0;
    for (auto _ : state)
        sim = exchangeMBps(machine, kind, P::contiguous(),
                           P::contiguous(), words);
    setCounter(state, "sim_MBps", sim);
    setCounter(state, "message_KB",
               static_cast<double>(words * 8) / 1024.0);
    // The latency-extended model's prediction of the same curve.
    if (auto m = core::makeMessageCostModel(machine, styleOf(kind),
                                            P::contiguous(),
                                            P::contiguous()))
        setCounter(state, "latency_model_MBps",
                   m->throughputAt(words * 8));
}

void
registerAll()
{
    struct Entry
    {
        const char *name;
        MachineId machine;
        LayerKind kind;
    };
    // "Fastest" on the T3D is the chained/remote-store path (libsm);
    // on the Paragon the SUNMOS NX packing path with DMA transfers.
    const Entry entries[] = {
        {"T3D/pvm", MachineId::T3d, LayerKind::Pvm},
        {"T3D/libsm_chained", MachineId::T3d, LayerKind::Chained},
        {"Paragon/pvm", MachineId::Paragon, LayerKind::Pvm},
        {"Paragon/sunmos_packing", MachineId::Paragon,
         LayerKind::Packing},
        {"Paragon/sunmos_chained", MachineId::Paragon,
         LayerKind::Chained},
    };
    for (const Entry &entry : entries) {
        auto *b = benchmark::RegisterBenchmark(
            entry.name, [entry](benchmark::State &s) {
                libraryRow(s, entry.machine, entry.kind);
            });
        b->Iterations(1)->Unit(benchmark::kMillisecond);
        for (std::int64_t words = 64; words <= (1 << 16); words *= 4)
            b->Arg(words);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
