/**
 * @file
 * Reproduces Table 2: throughput figures for sending network
 * transfers (1S0, 1F0, 64S0, wS0) on both machines. Cells run
 * through the sweep farm (BENCH_THREADS workers).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

ct::bench::SweepCell
loadSendCell(const char *machine_name, MachineId machine,
             const char *row_name, P x, double paper)
{
    return {std::string(machine_name) + "/" + row_name,
            [machine, x, paper]()
                -> std::vector<std::pair<std::string, double>> {
                auto cfg = sim::configFor(machine);
                return {{"sim_MBps", sim::measureLoadSend(cfg, x)},
                        {"paper_MBps", paper}};
            }};
}

ct::bench::SweepCell
fetchSendCell(const char *machine_name, MachineId machine,
              double paper)
{
    return {std::string(machine_name) + "/1F0",
            [machine, paper]()
                -> std::vector<std::pair<std::string, double>> {
                auto cfg = sim::configFor(machine);
                // 0 = "-" in the paper's table.
                double mbps =
                    sim::measureFetchSend(cfg).value_or(0.0);
                return {{"sim_MBps", mbps}, {"paper_MBps", paper}};
            }};
}

void
registerAll()
{
    struct Row
    {
        const char *name;
        P x;
        double t3d;
        double paragon;
    };
    const Row rows[] = {
        {"1S0", P::contiguous(), 126.0, 52.0},
        {"16S0", P::strided(16), 41.0, 42.0},
        {"64S0", P::strided(64), 35.0, 42.0},
        {"wS0", P::indexed(), 32.0, 36.0},
    };
    std::vector<SweepCell> cells;
    for (const Row &row : rows) {
        cells.push_back(loadSendCell("T3D", MachineId::T3d, row.name,
                                     row.x, row.t3d));
        cells.push_back(loadSendCell("Paragon", MachineId::Paragon,
                                     row.name, row.x, row.paragon));
    }
    cells.push_back(fetchSendCell("T3D", MachineId::T3d, 0.0));
    cells.push_back(
        fetchSendCell("Paragon", MachineId::Paragon, 160.0));
    registerSweep(std::move(cells));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab2_send");
}
