/**
 * @file
 * Reproduces Table 2: throughput figures for sending network
 * transfers (1S0, 1F0, 64S0, wS0) on both machines.
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
loadSendRow(benchmark::State &state, MachineId machine, P x,
            double paper)
{
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state)
        mbps = sim::measureLoadSend(cfg, x);
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "paper_MBps", paper);
}

void
fetchSendRow(benchmark::State &state, MachineId machine, double paper)
{
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state) {
        auto v = sim::measureFetchSend(cfg);
        mbps = v.value_or(0.0); // 0 = "-" in the paper's table
    }
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "paper_MBps", paper);
}

void
registerAll()
{
    struct Row
    {
        const char *name;
        P x;
        double t3d;
        double paragon;
    };
    const Row rows[] = {
        {"1S0", P::contiguous(), 126.0, 52.0},
        {"16S0", P::strided(16), 41.0, 42.0},
        {"64S0", P::strided(64), 35.0, 42.0},
        {"wS0", P::indexed(), 32.0, 36.0},
    };
    for (const Row &row : rows) {
        benchmark::RegisterBenchmark(
            (std::string("T3D/") + row.name).c_str(),
            [row](benchmark::State &s) {
                loadSendRow(s, MachineId::T3d, row.x, row.t3d);
            })
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            (std::string("Paragon/") + row.name).c_str(),
            [row](benchmark::State &s) {
                loadSendRow(s, MachineId::Paragon, row.x, row.paragon);
            })
            ->Iterations(1);
    }
    benchmark::RegisterBenchmark("T3D/1F0",
                                 [](benchmark::State &s) {
                                     fetchSendRow(s, MachineId::T3d,
                                                  0.0);
                                 })
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "Paragon/1F0",
        [](benchmark::State &s) {
            fetchSendRow(s, MachineId::Paragon, 160.0);
        })
        ->Iterations(1);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab2_send");
}
