/**
 * @file
 * Extension bench (not a paper table): the machine model at
 * thousands of nodes. Guards the active-set scaling contract
 * (DESIGN.md §16): congestion analysis, planning and transport
 * footprints grow with the *active* communication set, never with
 * machine capacity, so the analytic backend answers 8192-node
 * questions in microseconds while a bounded-footprint sim
 * cross-validates the sampled small cells.
 *
 * Three row families, all counters deterministic (baselined by the
 * perf gate):
 *
 *  - scale_congestion/<machine>/nodes/N: static link-load analysis
 *    of the pair-exchange pattern on the scaled topology. Baselines
 *    the congestion factor, the routed/unroutable split, and the
 *    touched-links count against the total link count -- the
 *    sparsity witness: touched stays a fraction of total as N grows.
 *  - scale_model/<machine>/nodes/N: analytic chained-1Q1 rate at the
 *    analyzed congestion (the large-N planning answer).
 *  - scale_xval/<machine>/nodes/64: the same cell through the full
 *    simulator (sweep::runCell), plus the reliable transport's
 *    active-channel count at 64 nodes -- 64 directed channels for 32
 *    pairs, not 64² slots.
 *
 * Wall-clock of the 8192-node analysis is archived as a wall_
 * counter (excluded from the summary: host-dependent, never gates).
 */

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/analytic_backend.h"
#include "core/style_registry.h"
#include "rt/reliable_layer.h"
#include "sweep/grid.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

const int kScaleNodes[] = {64, 256, 1024, 4096, 8192};

const core::MachineId kMachines[] = {core::MachineId::T3d,
                                     core::MachineId::Paragon};

const char *
label(core::MachineId id)
{
    return id == core::MachineId::T3d ? "t3d" : "paragon";
}

void
congestionRow(benchmark::State &state, core::MachineId machine)
{
    int nodes = static_cast<int>(state.range(0));
    sim::Topology topo(sim::configFor(machine, nodes).topology);
    sim::CongestionReport report;
    double wall_us = 0.0;
    for (auto _ : state) {
        auto t0 = std::chrono::steady_clock::now();
        report = topo.analyzeCongestion(
            rt::pairExchangeDemands(nodes, 8192));
        wall_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    }
    setCounter(state, "link_count",
               static_cast<double>(topo.linkCount()));
    setCounter(state, "congestion", report.factor);
    setCounter(state, "routed", static_cast<double>(report.routed));
    setCounter(state, "unroutable",
               static_cast<double>(report.unroutable));
    setCounter(state, "touched_links",
               static_cast<double>(report.touchedLinks));
    state.counters["wall_analysis_us"] = wall_us;
}

void
modelRow(benchmark::State &state, core::MachineId machine)
{
    int nodes = static_cast<int>(state.range(0));
    sim::MachineConfig cfg = sim::configFor(machine, nodes);
    sim::Topology topo(cfg.topology);
    sim::CongestionReport report = topo.analyzeCongestion(
        rt::pairExchangeDemands(nodes, 8192));
    auto program = core::buildProgram(
        machine, "chained", P::contiguous(), P::contiguous());
    double model = 0.0;
    for (auto _ : state) {
        core::AnalyticBackend analytic(
            core::paperTable(machine),
            rt::executionProfileFor(cfg));
        if (auto rate = analytic.predictThroughputAt(
                *program, 1024 * 8, report.factor))
            model = *rate;
    }
    setCounter(state, "model_MBps", model);
    setCounter(state, "congestion", report.factor);
}

void
xvalRow(benchmark::State &state, core::MachineId machine)
{
    int nodes = static_cast<int>(state.range(0));
    sweep::CellSpec spec;
    spec.kind = sweep::CellKind::Exchange;
    spec.machine = machine;
    spec.style = "chained";
    spec.x = P::contiguous();
    spec.y = P::contiguous();
    spec.words = 1024;
    spec.nodes = nodes;
    spec.id = "xval";
    sweep::CellResult cell;
    rt::ReliableStats reliable;
    for (auto _ : state) {
        cell = sweep::runCell(spec);

        // The reliable transport over the same exchange: channel
        // state materializes per active (src,dst) pair, so 32 pairs
        // x 2 directions = 64 channels -- the footprint witness.
        sim::Machine machine_state(sim::configFor(machine, nodes));
        auto op = rt::pairExchange(machine_state, spec.x, spec.y,
                                   spec.words, 42);
        rt::seedSources(machine_state, op);
        auto layer = rt::makeReliableChained();
        layer->run(machine_state, op);
        reliable = layer->stats();
    }
    setCounter(state, "sim_MBps", cell.simMBps);
    setCounter(state, "model_MBps", cell.modelMBps);
    setCounter(state, "congestion", cell.congestion);
    setCounter(state, "corrupt_words",
               static_cast<double>(cell.corruptWords));
    setCounter(state, "active_channels",
               static_cast<double>(reliable.activeChannels));
    setCounter(state, "retransmits",
               static_cast<double>(reliable.retransmits));
}

void
registerAll()
{
    for (core::MachineId machine : kMachines) {
        std::string base =
            std::string("scale_congestion/") + label(machine) +
            "/nodes";
        auto *c = benchmark::RegisterBenchmark(
            base.c_str(), [machine](benchmark::State &state) {
                congestionRow(state, machine);
            });
        c->Iterations(1)->Unit(benchmark::kMicrosecond);
        for (int nodes : kScaleNodes)
            c->Arg(nodes);

        std::string model_name =
            std::string("scale_model/") + label(machine) + "/nodes";
        auto *m = benchmark::RegisterBenchmark(
            model_name.c_str(), [machine](benchmark::State &state) {
                modelRow(state, machine);
            });
        m->Iterations(1)->Unit(benchmark::kMicrosecond);
        for (int nodes : kScaleNodes)
            m->Arg(nodes);

        std::string xval_name =
            std::string("scale_xval/") + label(machine) + "/nodes";
        auto *x = benchmark::RegisterBenchmark(
            xval_name.c_str(), [machine](benchmark::State &state) {
                xvalRow(state, machine);
            });
        x->Iterations(1)->Unit(benchmark::kMillisecond);
        x->Arg(64);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_scale.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |=
            std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    return ct::bench::runBenchmarks(n, args.data(), "ext_scale");
}
