/**
 * @file
 * Reproduces Table 3: throughput figures for receiving network
 * transfers (0Ry via processor/co-processor, 0Dy via the deposit
 * engine). Missing combinations report 0, matching the dashes in the
 * paper's table (no 0R on the T3D, no strided 0D on the Paragon).
 * Cells run through the sweep farm (BENCH_THREADS workers).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

ct::bench::SweepCell
receiveCell(std::string name, MachineId machine, P y, bool deposit,
            double paper)
{
    return {std::move(name),
            [machine, y, deposit, paper]()
                -> std::vector<std::pair<std::string, double>> {
                auto cfg = sim::configFor(machine);
                double mbps =
                    (deposit ? sim::measureReceiveDeposit(cfg, y)
                             : sim::measureReceiveStore(cfg, y))
                        .value_or(0.0);
                return {{"sim_MBps", mbps}, {"paper_MBps", paper}};
            }};
}

void
registerAll()
{
    struct Row
    {
        const char *name;
        P y;
        double r_t3d, d_t3d, r_par, d_par; // 0 = "-"
    };
    const Row rows[] = {
        {"y1", P::contiguous(), 0.0, 142.0, 82.0, 160.0},
        {"y64", P::strided(64), 0.0, 52.0, 38.0, 0.0},
        {"yw", P::indexed(), 0.0, 52.0, 42.0, 0.0},
    };
    std::vector<SweepCell> cells;
    for (const Row &row : rows) {
        std::string suffix = row.name + 1; // drop the leading 'y'
        cells.push_back(receiveCell("T3D/0R" + suffix,
                                    MachineId::T3d, row.y, false,
                                    row.r_t3d));
        cells.push_back(receiveCell("T3D/0D" + suffix,
                                    MachineId::T3d, row.y, true,
                                    row.d_t3d));
        cells.push_back(receiveCell("Paragon/0R" + suffix,
                                    MachineId::Paragon, row.y, false,
                                    row.r_par));
        cells.push_back(receiveCell("Paragon/0D" + suffix,
                                    MachineId::Paragon, row.y, true,
                                    row.d_par));
    }
    registerSweep(std::move(cells));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab3_receive");
}
