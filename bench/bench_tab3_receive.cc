/**
 * @file
 * Reproduces Table 3: throughput figures for receiving network
 * transfers (0Ry via processor/co-processor, 0Dy via the deposit
 * engine). Missing combinations report 0, matching the dashes in the
 * paper's table (no 0R on the T3D, no strided 0D on the Paragon).
 */

#include "bench_util.h"
#include "sim/measure.h"

namespace {

using namespace ct;
using namespace ct::bench;
using P = core::AccessPattern;

void
receiveStoreRow(benchmark::State &state, MachineId machine, P y,
                double paper)
{
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state)
        mbps = sim::measureReceiveStore(cfg, y).value_or(0.0);
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "paper_MBps", paper);
}

void
depositRow(benchmark::State &state, MachineId machine, P y,
           double paper)
{
    auto cfg = sim::configFor(machine);
    double mbps = 0.0;
    for (auto _ : state)
        mbps = sim::measureReceiveDeposit(cfg, y).value_or(0.0);
    setCounter(state, "sim_MBps", mbps);
    setCounter(state, "paper_MBps", paper);
}

void
registerAll()
{
    struct Row
    {
        const char *name;
        P y;
        double r_t3d, d_t3d, r_par, d_par; // 0 = "-"
    };
    const Row rows[] = {
        {"y1", P::contiguous(), 0.0, 142.0, 82.0, 160.0},
        {"y64", P::strided(64), 0.0, 52.0, 38.0, 0.0},
        {"yw", P::indexed(), 0.0, 52.0, 42.0, 0.0},
    };
    for (const Row &row : rows) {
        std::string suffix = row.name + 1; // drop the leading 'y'
        benchmark::RegisterBenchmark(
            ("T3D/0R" + suffix).c_str(),
            [row](benchmark::State &s) {
                receiveStoreRow(s, MachineId::T3d, row.y, row.r_t3d);
            })
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("T3D/0D" + suffix).c_str(),
            [row](benchmark::State &s) {
                depositRow(s, MachineId::T3d, row.y, row.d_t3d);
            })
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("Paragon/0R" + suffix).c_str(),
            [row](benchmark::State &s) {
                receiveStoreRow(s, MachineId::Paragon, row.y,
                                row.r_par);
            })
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("Paragon/0D" + suffix).c_str(),
            [row](benchmark::State &s) {
                depositRow(s, MachineId::Paragon, row.y, row.d_par);
            })
            ->Iterations(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    return ct::bench::runBenchmarks(argc, argv, "tab3_receive");
}
